"""The service's compute kernel: schedule one request, ground-truth it in
the window simulator, return plain data.

:func:`compute_request` is deliberately a **module-level function of one
JSON-able argument returning a JSON-able dict** so it satisfies the
picklability contract of :class:`repro.robust.ExecutionPool` — the daemon
can dispatch batches to fork-based worker processes and inherit the sweep
driver's timeout/retry/crash-blame machinery unchanged.  Everything a
response or cache entry needs is in the returned dict; no live objects
cross the process boundary.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from typing import Mapping

from ..core import algorithm_lookahead, local_block_orders
from ..ir.basicblock import Trace
from ..machine.model import MachineModel
from ..obs import recorder as obs
from ..obs.pipeline import TraceContext
from ..schedulers import (
    block_orders_with_priority,
    critical_path_priority,
    source_order_priority,
)
from ..sim import simulate_trace
from .protocol import ScheduleRequest


@contextmanager
def request_trace_context(trace_id: str | None, parent_span_id: str | None):
    """Re-stamp the active recorder's context with the *request's* trace id
    for the duration of one compute.

    Inside a pool worker the active recorder is the per-batch
    ``spooled_cell`` recorder, whose context carries the daemon's batch
    trace id.  Spans recorded while this context manager is active are
    instead stamped with the distributed trace id the client supplied — so
    a request's worker-side spans join *its* trace across the fork
    boundary, not just the worker's pid.  No-op when tracing is off or the
    request is untraced.
    """
    rec = obs.get_recorder()
    if rec is None or trace_id is None:
        yield
        return
    previous = rec.context
    rec.context = TraceContext(
        trace_id=trace_id, parent_span_id=parent_span_id, pid=os.getpid()
    )
    try:
        yield
    finally:
        rec.context = previous


def compute_block_orders(
    trace: Trace, machine: MachineModel, scheduler: str
) -> list[list[str]]:
    """Dispatch on scheduler name — the same table ``repro schedule``
    uses, shared so the daemon can never drift from the CLI."""
    if scheduler == "anticipatory":
        return algorithm_lookahead(trace, machine).block_orders
    if scheduler == "local":
        return local_block_orders(trace, machine)
    if scheduler == "critical-path":
        return block_orders_with_priority(trace, critical_path_priority, machine)
    if scheduler == "source":
        return block_orders_with_priority(trace, source_order_priority, machine)
    raise ValueError(f"unknown scheduler {scheduler!r}")


def compute_schedule(request: ScheduleRequest) -> dict:
    """Schedule + simulate one decoded request.

    The returned dict is the full uncached answer: emitted block orders,
    the simulated makespan / stall count, the runtime schedule's start
    times and unit assignments (needed so cache hits can reconstruct the
    response without re-running anything), the schedule's own content
    digest (:meth:`repro.core.schedule.Schedule.digest`), and a
    ``"worker"`` block — pid, per-phase wall times, the request's trace id
    — that rides back through the pool pickle so the service can graft
    worker spans into the request's span tree even when spooling is off.
    """
    with request_trace_context(request.trace_id, request.parent_span_id):
        t0 = time.perf_counter_ns()
        with obs.span(
            "serve.worker.schedule",
            scheduler=request.scheduler,
            trace_id=request.trace_id,
        ):
            orders = compute_block_orders(
                request.trace, request.machine, request.scheduler
            )
        t1 = time.perf_counter_ns()
        with obs.span("serve.worker.simulate", trace_id=request.trace_id):
            sim = simulate_trace(request.trace, orders, request.machine)
        t2 = time.perf_counter_ns()
    schedule = sim.schedule
    return {
        "block_orders": [list(o) for o in orders],
        "makespan": sim.makespan,
        "stall_cycles": sim.stall_cycles,
        "starts": dict(schedule.starts),
        "units": {n: list(u) for n, u in schedule.units.items()},
        "schedule_digest": schedule.digest(),
        "worker": {
            "pid": os.getpid(),
            "trace_id": request.trace_id,
            "start_ns": t0,
            "phases": {
                "schedule_ns": t1 - t0,
                "simulate_ns": t2 - t1,
            },
        },
    }


def compute_request(doc: Mapping) -> dict:
    """Picklable pool entry point: wire dict in, result dict out."""
    return compute_schedule(ScheduleRequest.from_dict(doc))
