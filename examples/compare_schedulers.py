#!/usr/bin/env python
"""The study the paper proposed as future work (§7): anticipatory vs. known
local and global scheduling algorithms on synthetic workloads.

Sweeps random traces over window sizes and cross-edge densities; reports
geometric-mean speedups over the source-order baseline and the fraction of
the local→global gap that anticipatory scheduling recovers while staying
safe (never moving an instruction across a block boundary).

Run:  python examples/compare_schedulers.py [--trials N]
"""

import argparse

from repro import algorithm_lookahead, paper_machine, simulate_trace
from repro.analysis import format_table, gap_recovered, geometric_mean
from repro.core import local_block_orders
from repro.schedulers import (
    block_orders_with_priority,
    critical_path_priority,
    global_upper_bound,
    source_order_priority,
    speculative_trace,
)
from repro.workloads import random_trace


def run_cell(window: int, cross: float, trials: int, seed0: int = 0):
    speed_local, speed_ant, recovered = [], [], []
    for trial in range(trials):
        trace = random_trace(
            4,
            (5, 9),
            edge_probability=0.3,
            cross_probability=cross,
            latencies=(0, 1, 2, 4),
            seed=seed0 + trial,
        )
        machine = paper_machine(window)
        src = simulate_trace(
            trace,
            block_orders_with_priority(trace, source_order_priority, machine),
            machine,
        ).makespan
        local = simulate_trace(
            trace, local_block_orders(trace, machine, delay_idles=False), machine
        ).makespan
        ant = simulate_trace(
            trace, algorithm_lookahead(trace, machine).block_orders, machine
        ).makespan
        bound = global_upper_bound(trace, machine).makespan
        speed_local.append(src / local)
        speed_ant.append(src / ant)
        recovered.append(gap_recovered(local, ant, bound))
    return (
        geometric_mean(speed_local),
        geometric_mean(speed_ant),
        sum(recovered) / len(recovered),
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--trials", type=int, default=10)
    args = parser.parse_args()

    rows = []
    for window in (1, 2, 4, 8):
        for cross in (0.0, 0.05, 0.15):
            local, ant, rec = run_cell(window, cross, args.trials)
            rows.append([window, cross, local, ant, rec])
    print(
        format_table(
            ["W", "cross p", "local speedup", "anticipatory speedup",
             "gap recovered"],
            rows,
            title=(
                "random traces (4 blocks of 5-9 instrs, geomean over "
                f"{args.trials} seeds; speedups vs. source order)"
            ),
        )
    )

    # How close does *unsafe* speculation get?  Hoist independent
    # instructions one block earlier, then schedule locally.
    print("\nunsafe speculative hoisting for comparison (W=4, cross=0.15):")
    rows = []
    for trial in range(args.trials):
        trace = random_trace(
            4, (5, 9), edge_probability=0.3, cross_probability=0.15,
            latencies=(0, 1, 2, 4), seed=trial,
        )
        machine = paper_machine(4)
        ant = simulate_trace(
            trace, algorithm_lookahead(trace, machine).block_orders, machine
        ).makespan
        spec = speculative_trace(trace, machine)
        spec_span = simulate_trace(
            spec,
            [list(spec.block_nodes(i)) for i in range(spec.num_blocks)],
            machine,
        ).makespan
        rows.append([trial, ant, spec_span])
    print(format_table(["seed", "anticipatory (safe)", "speculative (unsafe)"], rows))


if __name__ == "__main__":
    main()
