"""Unit tests for LoopGraph (⟨latency, distance⟩ loop bodies)."""

import pytest

from repro.ir import CycleError, LoopGraph, instance_name, loop_from_edges
from repro.workloads import figure3_loop


class TestConstruction:
    def test_basic(self):
        g = loop_from_edges([("a", "b", 1, 0), ("b", "a", 2, 1)])
        assert len(g) == 2
        assert len(g.independent_edges()) == 1
        assert len(g.carried_edges()) == 1

    def test_duplicate_node_rejected(self):
        g = LoopGraph()
        g.add_node("a")
        with pytest.raises(ValueError, match="duplicate"):
            g.add_node("a")

    def test_self_loop_needs_distance(self):
        g = LoopGraph()
        g.add_node("a")
        with pytest.raises(CycleError):
            g.add_edge("a", "a", 1, 0)
        g.add_edge("a", "a", 1, 1)  # carried self edge is fine

    def test_independent_cycle_rejected(self):
        g = loop_from_edges([("a", "b", 0, 0)])
        with pytest.raises(CycleError):
            g.add_edge("b", "a", 0, 0)

    def test_negative_labels_rejected(self):
        g = loop_from_edges([], nodes=["a", "b"])
        with pytest.raises(ValueError):
            g.add_edge("a", "b", -1, 0)
        with pytest.raises(ValueError):
            g.add_edge("a", "b", 0, -1)

    def test_unknown_node_in_edge(self):
        g = loop_from_edges([], nodes=["a"])
        with pytest.raises(KeyError):
            g.add_edge("a", "zzz", 0, 0)


class TestQueries:
    def test_carried_endpoints_exclude_self(self):
        g = figure3_loop()
        # Non-self carried edges: M->ST, C4->L4, M->L4.
        assert g.carried_targets() == ["L4", "ST"]
        assert g.carried_sources() == ["C4", "M"]

    def test_loop_independent_subgraph(self):
        g = figure3_loop()
        gli = g.loop_independent_subgraph()
        assert len(gli) == 5
        assert gli.is_acyclic()
        assert ("M", "ST") not in [(u, v) for u, v, _ in gli.edges()]


class TestUnroll:
    def test_unroll_sizes(self):
        g = figure3_loop()
        u3 = g.unroll(3)
        assert len(u3) == 15
        assert instance_name("M", 2) in u3

    def test_unroll_carried_edges_instantiated(self):
        g = loop_from_edges([("a", "b", 1, 0), ("b", "a", 3, 1)])
        u = g.unroll(3)
        # b[0] -> a[1], b[1] -> a[2]; not b[2] -> a[3].
        assert u.latency(instance_name("b", 0), instance_name("a", 1)) == 3
        assert u.latency(instance_name("b", 1), instance_name("a", 2)) == 3
        assert instance_name("a", 3) not in u

    def test_unroll_distance_two(self):
        g = loop_from_edges([("a", "a", 2, 2)])
        u = g.unroll(4)
        assert u.latency(instance_name("a", 0), instance_name("a", 2)) == 2
        assert u.latency(instance_name("a", 1), instance_name("a", 3)) == 2
        assert u.num_edges() == 2

    def test_unroll_invalid(self):
        with pytest.raises(ValueError):
            figure3_loop().unroll(0)


class TestRecurrenceBound:
    def test_figure3(self):
        # Tightest cycle: M ->(4,1) ST ->(0,0) M gives (1+4+1+0)/1 = 6 —
        # exactly why Schedule 2's steady state of 6 cycles is optimal.
        assert figure3_loop().recurrence_bound() == 6

    def test_no_cycles(self):
        g = loop_from_edges([("a", "b", 1, 0), ("a", "c", 4, 1)])
        assert g.recurrence_bound() == 1

    def test_long_cycle(self):
        # a -> b (lat 2) -> a carried (lat 3, dist 1): (1+2+1+3)/1 = 7.
        g = loop_from_edges([("a", "b", 2, 0), ("b", "a", 3, 1)])
        assert g.recurrence_bound() == 7

    def test_distance_two_halves_bound(self):
        g = loop_from_edges([("a", "b", 2, 0), ("b", "a", 3, 2)])
        # Same cycle weight 7 but spanning 2 iterations: ceil(7/2) = 4.
        assert g.recurrence_bound() == 4
