#!/usr/bin/env python
"""Compile a branchy kernel: text → dependence analysis → trace scheduling.

Demonstrates the full compiler-side path on the if-then-join kernel the
library ships: parse the textual program, derive all register/memory/control
dependences, schedule the trace with several algorithms, and execute each
output on the lookahead hardware across window sizes and branch-prediction
accuracies.

Run:  python examples/trace_compilation.py
"""

from repro import algorithm_lookahead, paper_machine, simulate_trace
from repro.analysis import format_table, gap_recovered
from repro.core import local_block_orders
from repro.schedulers import (
    block_orders_with_priority,
    critical_path_priority,
    global_upper_bound,
    source_order_priority,
)
from repro.sim import BranchModel, run_with_prediction
from repro.workloads import branchy_trace


def main() -> None:
    trace = branchy_trace()
    print("blocks:", [bb.name for bb in trace.blocks])
    print("cross-block dependences:")
    for u, v, lat in trace.cross_edges:
        print(f"  {u} -> {v}  (latency {lat})")

    rows = []
    for w in (1, 2, 4, 8):
        machine = paper_machine(w)
        schedulers = {
            "source order": block_orders_with_priority(
                trace, source_order_priority, machine
            ),
            "critical path": block_orders_with_priority(
                trace, critical_path_priority, machine
            ),
            "local rank": local_block_orders(trace, machine, delay_idles=False),
            "local + idle delay": local_block_orders(trace, machine, delay_idles=True),
            "anticipatory": algorithm_lookahead(trace, machine).block_orders,
        }
        spans = {
            name: simulate_trace(trace, orders, machine).makespan
            for name, orders in schedulers.items()
        }
        bound = global_upper_bound(trace, machine).makespan
        rows.append(
            [
                w,
                spans["source order"],
                spans["critical path"],
                spans["local rank"],
                spans["local + idle delay"],
                spans["anticipatory"],
                bound,
                gap_recovered(
                    spans["local rank"], spans["anticipatory"], bound
                ),
            ]
        )
    print()
    print(
        format_table(
            ["W", "source", "crit-path", "local", "local+delay",
             "anticipatory", "global bound", "gap recovered"],
            rows,
            title="branchy kernel: completion cycles by scheduler and window size",
        )
    )

    # Branch prediction sensitivity (paper §1: lookahead pairs with
    # prediction; a flush serializes the mispredicted boundary).
    machine = paper_machine(4)
    orders = algorithm_lookahead(trace, machine).block_orders
    print("\nbranch prediction sensitivity (W=4, anticipatory orders):")
    rows = []
    for acc in (1.0, 0.9, 0.5, 0.0):
        study = run_with_prediction(
            trace, orders, BranchModel(accuracy=acc, penalty=3), machine,
            trials=64, seed=1,
        )
        rows.append([acc, study.best_makespan, study.mean_makespan, study.worst_makespan])
    print(
        format_table(
            ["accuracy", "best", "mean", "worst"],
            rows,
        )
    )


if __name__ == "__main__":
    main()
