"""Unit tests for Procedure Merge (paper Fig. 7)."""

import pytest

from repro.core import delay_idle_slots, makespan_deadlines, merge, rank_schedule
from repro.ir import graph_from_edges
from repro.workloads import figure2_trace


def bb1_after_block_processing():
    """Reproduce Algorithm Lookahead's state after processing BB1: the
    delayed schedule x e r b w _ a and its deadline map."""
    t = figure2_trace()
    g1 = t.blocks[0].graph
    s, _ = rank_schedule(g1)
    return t, delay_idle_slots(s, makespan_deadlines(s))


class TestFigure2Merge:
    def test_merged_completion_is_11_with_cross_edge(self):
        t, (s1, d1) = bb1_after_block_processing()
        res = merge(t.graph, s1.graph.nodes, d1, s1.makespan, t.block_nodes(1))
        assert res.feasible
        assert res.schedule.makespan == 11  # the paper's merged completion
        assert res.lower_bound == 11
        assert res.relaxations == 0

    def test_merge_reorders_old_nodes(self):
        """Paper §2.3: the cross edge w→z makes the merged schedule put w
        before b (the BB1-alone order had b before w)."""
        t, (s1, d1) = bb1_after_block_processing()
        res = merge(t.graph, s1.graph.nodes, d1, s1.makespan, t.block_nodes(1))
        perm = res.schedule.permutation()
        assert perm.index("w") < perm.index("b")
        # x keeps its derived deadline 1 and is first.
        assert perm[0] == "x"

    def test_merge_without_cross_edge_fills_idle_slot(self):
        t = figure2_trace(with_cross_edge=False)
        g1 = t.blocks[0].graph
        s, _ = rank_schedule(g1)
        s1, d1 = delay_idle_slots(s, makespan_deadlines(s))
        res = merge(t.graph, s1.graph.nodes, d1, s1.makespan, t.block_nodes(1))
        assert res.schedule.makespan == 11
        # z (a BB2 source) fills BB1's late idle slot at t=5.
        assert res.schedule.start("z") == 5

    def test_old_nodes_keep_their_deadlines(self):
        t, (s1, d1) = bb1_after_block_processing()
        res = merge(t.graph, s1.graph.nodes, d1, s1.makespan, t.block_nodes(1))
        assert res.deadlines["x"] == 1
        assert all(res.deadlines[n] <= s1.makespan for n in s1.graph.nodes)
        assert all(res.deadlines[n] == 11 for n in t.block_nodes(1))


class TestMergeMechanics:
    def test_empty_old(self):
        g = graph_from_edges([("a", "b", 1)])
        res = merge(g, [], {}, 0, ["a", "b"])
        assert res.feasible
        assert res.schedule.makespan == 3

    def test_overlapping_old_new_rejected(self):
        g = graph_from_edges([("a", "b", 1)])
        with pytest.raises(ValueError, match="overlap"):
            merge(g, ["a"], {"a": 1}, 1, ["a", "b"])

    def test_relaxation_when_old_blocks_new(self):
        """Old deadline forces old first; a latency edge into new then needs
        deadline relaxations beyond the naive lower bound."""
        g = graph_from_edges([("o1", "n1", 3)], nodes=["o1", "o2", "n1"])
        # old = {o1, o2} with makespan 2 and tight deadlines.
        res = merge(g, ["o1", "o2"], {"o1": 1, "o2": 2}, 2, ["n1"])
        assert res.feasible
        res.schedule.validate()
        # o1 completes at 1, latency 3 => n1 starts at 4, completes 5; the
        # unconstrained lower bound is also 5 (o1 first), so no relaxation…
        assert res.schedule.makespan == 5

    def test_relaxation_counter(self):
        """Force a real relaxation: old deadlines pin o1 *second*, so the
        latency edge into new pushes past the unconstrained lower bound."""
        g = graph_from_edges([("o1", "n1", 3)], nodes=["o2", "o1", "n1"])
        res = merge(g, ["o2", "o1"], {"o2": 1, "o1": 2}, 2, ["n1"])
        assert res.feasible
        # Unconstrained lower bound: o1 @0, o2 @1, n1 @5 -> 6... o1 first
        # gives n1 start 4: makespan 5 = lower bound. With o1 pinned second,
        # n1 starts at 5 and completes 6: one relaxation beyond T=5.
        assert res.schedule.makespan == 6
        assert res.relaxations == 1

    def test_new_fills_multiple_idle_slots(self):
        g = graph_from_edges(
            [("o1", "o2", 2)], nodes=["o1", "o2", "n1", "n2"]
        )
        # old schedule o1 _ _ o2 (makespan 4) has idle at 1, 2.
        res = merge(g, ["o1", "o2"], {"o1": 1, "o2": 4}, 4, ["n1", "n2"])
        assert res.feasible
        assert res.schedule.makespan == 4
        assert sorted([res.schedule.start("n1"), res.schedule.start("n2")]) == [1, 2]
