"""Tests for the cross-process telemetry pipeline: trace contexts, worker
spools, and the parent-side merge."""

import json
import os

from repro.obs import TraceRecorder, get_recorder, recording
from repro.obs.events import SimEvent, SimTrace
from repro.obs.pipeline import (
    SPOOL_VERSION,
    CellTelemetry,
    TraceContext,
    append_cell,
    cell_record,
    clear_spools,
    current_context,
    iter_spool_records,
    merge_spools,
    read_spools,
    spool_path,
    spooled_cell,
)
from repro.obs.recorder import SpanRecord


class TestTraceContext:
    def test_new_has_random_trace_id_and_own_pid(self):
        a, b = TraceContext.new(), TraceContext.new()
        assert a.trace_id != b.trace_id
        assert len(a.trace_id) == 16
        assert a.parent_span_id is None
        assert a.pid == os.getpid()

    def test_child_shares_trace_id(self):
        root = TraceContext.new()
        child = root.child("cell-3")
        assert child.trace_id == root.trace_id
        assert child.parent_span_id == "cell-3"
        assert child.pid == os.getpid()

    def test_dict_roundtrip(self):
        ctx = TraceContext.new().child("cell-1")
        assert TraceContext.from_dict(ctx.to_dict()) == ctx

    def test_current_context_is_recorders(self):
        with recording() as rec:
            assert current_context() is rec.context
        # Tracing off: a fresh root context, never None.
        assert current_context().trace_id

    def test_recorder_stamps_context_on_spans(self):
        ctx = TraceContext.new()
        rec = TraceRecorder(context=ctx)
        with rec.span("phase"):
            pass
        assert rec.spans[0].trace_id == ctx.trace_id
        assert rec.spans[0].pid == os.getpid()


class TestSpanRecordSchema:
    def test_v2_dict_roundtrip(self):
        rec = TraceRecorder()
        with rec.span("work", cell=3):
            pass
        d = rec.spans[0].to_dict()
        assert d["pid"] == os.getpid()
        assert d["trace_id"] == rec.context.trace_id
        back = SpanRecord.from_dict(d)
        assert back.name == "work"
        assert back.pid == os.getpid()
        assert back.trace_id == rec.context.trace_id
        assert back.attrs == {"cell": 3}

    def test_v1_dict_loads_without_pid(self):
        # A span record written before the pipeline existed.
        v1 = {"type": "span", "name": "rank", "start_us": 10,
              "dur_us": 5.0, "depth": 1}
        back = SpanRecord.from_dict(v1)
        assert back.pid is None and back.trace_id is None
        assert back.start_ns == 10_000 and back.duration_ns == 5_000


def _run_cell(directory, ctx, cell, fail=False, sim_trace=False):
    """One fake worker cell under spooled_cell."""
    try:
        with spooled_cell(directory, ctx, cell) as rec:
            from repro.obs import recorder as obs

            obs.count("cell.work", cell + 1)
            with obs.span("cell.inner"):
                pass
            if sim_trace:
                trace = SimTrace(window_size=2, num_instructions=1,
                                 label=f"sim {cell}")
                trace.events.append(SimEvent(cycle=0, kind="issue", node="a"))
                rec.add_sim_trace(trace)
            if fail:
                raise RuntimeError("cell blew up")
    except RuntimeError:
        pass


class TestSpooledCell:
    def test_one_line_per_cell_flushed(self, tmp_path):
        ctx = TraceContext.new()
        _run_cell(tmp_path, ctx.child("cell-0"), 0)
        _run_cell(tmp_path, ctx.child("cell-1"), 1)
        path = spool_path(tmp_path)
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        rec = json.loads(lines[0])
        assert rec["type"] == "cell" and rec["v"] == SPOOL_VERSION
        assert rec["trace_id"] == ctx.trace_id
        assert rec["pid"] == os.getpid()
        assert rec["ok"] is True

    def test_restores_previous_recorder(self, tmp_path):
        with recording() as outer:
            _run_cell(tmp_path, TraceContext.new(), 0)
            assert get_recorder() is outer
            # The cell's telemetry went to the spool, not the outer recorder.
            assert not outer.counters

    def test_exception_path_spools_ok_false(self, tmp_path):
        _run_cell(tmp_path, TraceContext.new(), 0, fail=True)
        cells = read_spools(tmp_path)
        assert len(cells) == 1 and cells[0].ok is False
        # The sweep.cell span and the counters still made it out.
        assert any(s.name == "sweep.cell" for s in cells[0].spans)
        assert cells[0].counters == {"cell.work": 1}

    def test_records_sweep_cell_root_span(self, tmp_path):
        _run_cell(tmp_path, TraceContext.new(), 7)
        (cell,) = read_spools(tmp_path)
        root = [s for s in cell.spans if s.name == "sweep.cell"]
        assert len(root) == 1 and root[0].attrs == {"cell": 7}
        assert root[0].depth == 0


class TestSpoolReading:
    def test_torn_trailing_line_skipped(self, tmp_path):
        ctx = TraceContext.new()
        _run_cell(tmp_path, ctx, 0)
        with spool_path(tmp_path).open("a", encoding="utf-8") as fh:
            fh.write('{"type": "cell", "v": 1, "cel')  # died mid-append
        assert len(list(iter_spool_records(spool_path(tmp_path)))) == 1
        assert len(read_spools(tmp_path)) == 1

    def test_missing_directory_is_empty(self, tmp_path):
        assert read_spools(tmp_path / "nope") == []

    def test_clear_spools(self, tmp_path):
        _run_cell(tmp_path, TraceContext.new(), 0)
        assert clear_spools(tmp_path) == 1
        assert read_spools(tmp_path) == []

    def test_unknown_version_skipped(self, tmp_path):
        path = spool_path(tmp_path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps({"type": "cell", "v": 999}) + "\n")
        assert read_spools(tmp_path) == []


class TestMerge:
    def _spool(self, tmp_path, cells=3):
        ctx = TraceContext.new()
        for i in range(cells):
            _run_cell(tmp_path, ctx.child(f"cell-{i}"), i, sim_trace=True)
        return ctx

    def test_counters_summed_over_executions(self, tmp_path):
        self._spool(tmp_path)
        merge = merge_spools(tmp_path)
        # cell.work incremented by (cell + 1) per cell: 1 + 2 + 3.
        assert merge.counters == {"cell.work": 6}

    def test_spans_timestamp_ordered(self, tmp_path):
        self._spool(tmp_path)
        merge = merge_spools(tmp_path)
        starts = [s.start_ns for s in merge.spans]
        assert starts == sorted(starts)
        names = {s.name for s in merge.spans}
        assert names == {"sweep.cell", "cell.inner"}

    def test_merge_into_recorder_accumulates(self, tmp_path):
        self._spool(tmp_path)
        with recording() as rec:
            rec.count("parent.counter")
            merge_spools(tmp_path, rec)
        assert rec.counters["cell.work"] == 6
        assert rec.counters["parent.counter"] == 1
        assert len([s for s in rec.spans if s.name == "sweep.cell"]) == 3
        # Worker sim traces arrive labelled with their pid.
        assert all(f"[pid {os.getpid()}]" in t.label for t in rec.sim_traces)

    def test_registry_view(self, tmp_path):
        self._spool(tmp_path)
        merge = merge_spools(tmp_path)
        registry = merge.registry()
        assert registry["cell.work"].to_value() == 6
        assert registry["cells"].to_value() == 3
        assert registry["workers"].to_value() == 1
        hist = registry["span.sweep.cell.duration_s"]
        assert hist.to_value()["count"] == 3

    def test_merge_counts_executions_not_logical_cells(self, tmp_path):
        ctx = TraceContext.new()
        _run_cell(tmp_path, ctx.child("cell-0"), 0)
        _run_cell(tmp_path, ctx.child("cell-0"), 0)  # requeued re-execution
        merge = merge_spools(tmp_path)
        assert len(merge.cells) == 2
        assert merge.counters == {"cell.work": 2}

    def test_cell_telemetry_start_ns_default(self):
        empty = CellTelemetry(
            cell=0, pid=1, trace_id="t", parent_span_id=None, ok=True
        )
        assert empty.start_ns == 0


class TestCellRecordShape:
    def test_counter_samples_survive_roundtrip(self, tmp_path):
        ctx = TraceContext.new()
        rec = TraceRecorder(context=ctx)
        rec.count("x", 2)
        rec.count("x", 3)
        append_cell(tmp_path, cell_record(rec, cell=4))
        (cell,) = read_spools(tmp_path)
        assert [(n, v) for _, n, v, _ in cell.counter_samples] == [
            ("x", 2), ("x", 5),
        ]
        assert all(pid == os.getpid() for _, _, _, pid in cell.counter_samples)
