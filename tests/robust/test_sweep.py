"""Tests for the crash-tolerant sweep driver, including the regression the
old driver had: a worker that dies mid-sweep (``os._exit``) must not lose
sibling cells' results."""

import os
import sys
import time

import pytest

from repro.robust.sweep import (
    SweepError,
    SweepFailure,
    load_checkpoint,
    run_sweep,
    run_sweep_robust,
    schedule_cell,
)


# Cell functions live at module level so process pools can pickle them.


def square(x):
    return x * x


def pair(x, y):
    return (x, y)


def boom(x):
    if x == 2:
        raise ValueError(f"bad cell {x}")
    return x * 10


def flaky(x, _counts={}):
    _counts[x] = _counts.get(x, 0) + 1
    if _counts[x] == 1:
        raise RuntimeError(f"transient {x}")
    return x + 100


def hard_exit(x):
    if x == 2:
        os._exit(13)  # simulates a segfault: the worker dies uncleanly
    return x * 10


def hang(x):
    if x == 2:
        time.sleep(60)
    return x * 10


class TestSerial:
    def test_results_in_input_order(self):
        res = run_sweep_robust(square, [1, 2, 3])
        assert res.results == [1, 4, 9]
        assert res.ok and res.attempts == 3

    def test_tuple_params(self):
        res = run_sweep_robust(pair, [(1, 2), (3, 4)])
        assert res.results == [(1, 2), (3, 4)]

    def test_transient_failure_retried(self):
        res = run_sweep_robust(flaky, [11, 12], retries=2, backoff_s=0.001)
        assert res.results == [111, 112]
        assert res.attempts == 4  # one retry each

    def test_exhausted_retries_become_sweep_failure(self):
        res = run_sweep_robust(boom, [1, 2, 3], retries=1, backoff_s=0.001)
        assert res.results[0] == 10 and res.results[2] == 30
        failure = res.results[1]
        assert isinstance(failure, SweepFailure)
        assert failure.error_type == "ValueError"
        assert failure.attempts == 2
        assert res.failures == [failure]
        assert not res.ok

    def test_validation(self):
        with pytest.raises(ValueError):
            run_sweep_robust(square, [1], retries=-1)
        with pytest.raises(ValueError):
            run_sweep_robust(square, [1], timeout_s=0)


class TestStrictFacade:
    def test_returns_plain_results(self):
        assert run_sweep(square, [1, 2, 3]) == [1, 4, 9]

    def test_raises_after_driving_whole_grid(self):
        with pytest.raises(SweepError) as info:
            run_sweep(boom, [1, 2, 3], retries=0, backoff_s=0.001)
        exc = info.value
        # Every sibling's result survives on the exception.
        assert exc.results[0] == 10 and exc.results[2] == 30
        assert len(exc.failures) == 1
        assert "cell 1" in str(exc)


class TestPool:
    def test_pool_results_in_input_order(self):
        res = run_sweep_robust(square, [1, 2, 3, 4], jobs=2)
        assert res.results == [1, 4, 9, 16] and res.ok

    def test_worker_exception_isolated(self):
        res = run_sweep_robust(boom, [1, 2, 3], jobs=2, retries=0)
        assert res.results[0] == 10 and res.results[2] == 30
        assert isinstance(res.results[1], SweepFailure)
        assert res.results[1].error_type == "ValueError"

    def test_worker_death_does_not_lose_sibling_results(self):
        # Regression: the old run_sweep called future.result() with no
        # isolation, so one os._exit worker aborted the whole sweep with
        # BrokenProcessPool and every sibling result was lost.
        res = run_sweep_robust(
            hard_exit, [0, 1, 2, 3, 4, 5], jobs=2, retries=1, backoff_s=0.001
        )
        failure = res.results[2]
        assert isinstance(failure, SweepFailure)
        assert failure.error_type == "BrokenProcessPool"
        for i in (0, 1, 3, 4, 5):
            assert res.results[i] == i * 10
        assert res.pool_restarts >= 1

    def test_stall_timeout_abandons_hung_cell(self):
        started = time.perf_counter()
        res = run_sweep_robust(
            hang, [0, 1, 2, 3], jobs=2, timeout_s=0.5, retries=0
        )
        elapsed = time.perf_counter() - started
        failure = res.results[2]
        assert isinstance(failure, SweepFailure)
        assert failure.error_type == "Timeout"
        for i in (0, 1, 3):
            assert res.results[i] == i * 10
        assert elapsed < 30  # did not wait for the 60s sleep


class TestCheckpoint:
    def test_missing_file_is_empty(self, tmp_path):
        assert load_checkpoint(tmp_path / "nope.jsonl") == {}

    def test_interrupted_sweep_resumes_identically(self, tmp_path):
        ck = tmp_path / "sweep.jsonl"
        params = [(w, s) for w in (2, 3) for s in (0, 1, 2)]
        full = run_sweep_robust(schedule_cell, params)
        assert full.ok

        # "Interrupt" after two cells: only those land in the checkpoint.
        partial = run_sweep_robust(schedule_cell, params[:2], checkpoint=ck)
        assert partial.ok and len(load_checkpoint(ck)) == 2

        resumed = run_sweep_robust(
            schedule_cell, params, jobs=2, checkpoint=ck
        )
        assert resumed.resumed == 2
        assert resumed.attempts == len(params) - 2
        # Identical to the uninterrupted run, types included (the pickle
        # payload round-trips tuples exactly).
        assert resumed.results == full.results
        assert all(isinstance(r, tuple) for r in resumed.results)

    def test_failures_are_not_checkpointed(self, tmp_path):
        ck = tmp_path / "sweep.jsonl"
        res = run_sweep_robust(
            boom, [1, 2, 3], retries=0, backoff_s=0.001, checkpoint=ck
        )
        assert not res.ok
        done = load_checkpoint(ck)
        assert set(done) == {0, 2}  # the failed cell stays recomputable

    def test_torn_trailing_line_tolerated(self, tmp_path):
        ck = tmp_path / "sweep.jsonl"
        run_sweep_robust(square, [1, 2], checkpoint=ck)
        with open(ck, "a", encoding="utf-8") as fh:
            fh.write('{"v": 1, "index": 9, "pic')  # crash mid-append
        assert set(load_checkpoint(ck)) == {0, 1}
        res = run_sweep_robust(square, [1, 2, 3], checkpoint=ck)
        assert res.results == [1, 4, 9] and res.resumed == 2


class TestBenchmarksFacade:
    """benchmarks/common.py::run_sweep now rides on the robust driver."""

    @pytest.fixture
    def common(self):
        bench_dir = os.path.join(
            os.path.dirname(__file__), os.pardir, os.pardir, "benchmarks"
        )
        sys.path.insert(0, os.path.abspath(bench_dir))
        try:
            import common

            yield common
        finally:
            sys.path.pop(0)

    def test_plain_results(self, common):
        assert common.run_sweep(square, [1, 2, 3]) == [1, 4, 9]

    def test_sibling_results_survive_worker_death(self, common):
        with pytest.raises(SweepError) as info:
            common.run_sweep(hard_exit, [0, 1, 2, 3, 4, 5], jobs=2)
        exc = info.value
        for i in (0, 1, 3, 4, 5):
            assert exc.results[i] == i * 10
        assert [f.index for f in exc.failures] == [2]

    def test_jobs_default_from_env(self, common, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "2")
        assert common.sweep_jobs() == 2
        assert common.run_sweep(square, [1, 2, 3, 4]) == [1, 4, 9, 16]


class TestSpoolCrashSafety:
    """ISSUE PR 7 satellite: a worker killed via ``os._exit`` mid-cell must
    leave a *readable* spool — every completed cell's telemetry recovered
    into the merge, the dying cell's line simply absent (never torn)."""

    def test_dead_worker_spool_recovers_completed_cells(self, tmp_path):
        from repro.obs import recording
        from repro.obs.pipeline import read_spools

        with recording() as rec:
            res = run_sweep_robust(
                hard_exit, [0, 1, 2, 3, 4, 5], jobs=2, retries=1,
                backoff_s=0.001, telemetry_dir=tmp_path,
            )

        # The sweep behaves exactly as without telemetry: the dead cell is
        # a BrokenProcessPool failure, every sibling completes.
        assert isinstance(res.results[2], SweepFailure)
        assert res.results[2].error_type == "BrokenProcessPool"
        for i in (0, 1, 3, 4, 5):
            assert res.results[i] == i * 10

        # The spool files parse cleanly despite the uncleanly-dead worker:
        # os._exit skips the cell's append, so its line is absent — not
        # half-written.  (Torn-line tolerance is belt-and-braces on top.)
        cells = read_spools(tmp_path)
        spooled = {c.cell for c in cells}
        assert 2 not in spooled
        assert spooled == {0, 1, 3, 4, 5}
        assert all(c.ok for c in cells)

        # Completed cells were recovered into the merged telemetry and the
        # session recorder — one sweep.cell span per completed execution
        # (retries may re-execute a sibling that was in flight when the
        # pool broke, so >= is the correct bound).
        merge = res.telemetry
        assert merge is not None
        assert {c.cell for c in merge.cells} == spooled
        assert len(merge.cells) >= 5
        recovered = [s for s in rec.spans if s.name == "sweep.cell"]
        assert len(recovered) == len(merge.cells)
        assert {s.attrs["cell"] for s in recovered} == spooled
