"""E9 — window-size study (§2.3): how much overlap each W can realize.

Fixes anticipatory block orders and sweeps the hardware window, measuring
completion time and the realized cross-block overlap.  Expected shape
(asserted): completion time is monotonically non-increasing in W and
saturates — consistent with the paper's note that W is kept small in
hardware (quadratic dependence-check cost) because modest windows already
capture most of the benefit when schedules anticipate them.
"""

from common import emit_metrics, emit_table, run_sweep

from repro.analysis import overlap_cycles
from repro.core import algorithm_lookahead
from repro.machine import paper_machine
from repro.sim import simulate_trace
from repro.workloads import random_trace

TRIALS = 8
WINDOWS = (1, 2, 3, 4, 6, 8, 12, 16)


def make_trace(seed: int):
    return random_trace(
        4,
        (4, 7),
        edge_probability=0.3,
        cross_probability=0.08,
        latencies=(0, 1, 2, 4),
        seed=seed,
    )


def run_window(w: int) -> tuple[int, int]:
    m = paper_machine(w)
    total = overlap = 0
    for seed in range(TRIALS):
        t = make_trace(seed)
        # Schedule *for* this window, execute *on* this window.
        orders = algorithm_lookahead(t, m).block_orders
        sim = simulate_trace(t, orders, m)
        total += sim.makespan
        overlap += overlap_cycles(t, sim.schedule)
    return total, overlap


def test_window_sweep(benchmark):
    rows = []
    totals = {}
    overlaps = {}
    for w, (total, overlap) in zip(WINDOWS, run_sweep(run_window, list(WINDOWS))):
        totals[w] = total
        overlaps[w] = overlap
        rows.append(
            [
                w,
                totals[w] / TRIALS,
                overlaps[w] / TRIALS,
            ]
        )

    emit_table(
        "E9_window_sweep",
        ["window W", "mean completion (cycles)", "mean overlapped issues"],
        rows,
        title=(
            "E9: window-size sweep (anticipatory schedules, random traces, "
            f"mean over {TRIALS} seeds)"
        ),
    )

    # Shape: a clear downward trend from W=1 to wide windows with
    # saturation at the end; overlap grows from zero.  (Strict per-step
    # monotonicity does not hold because the schedule is *recomputed* for
    # each W and the latency-4 regime is heuristic.)
    means = [totals[w] for w in WINDOWS]
    assert means[0] > means[-1]
    assert all(b <= a + TRIALS for a, b in zip(means, means[1:])), means
    assert overlaps[1] == 0
    assert overlaps[4] > 0
    assert totals[16] == totals[12]

    emit_metrics(
        "E9_window_sweep",
        {
            "trials": TRIALS,
            "total_completion_by_window": {str(w): totals[w] for w in WINDOWS},
            "total_overlap_by_window": {str(w): overlaps[w] for w in WINDOWS},
        },
    )

    t = make_trace(0)
    m = paper_machine(8)
    orders = algorithm_lookahead(t, m).block_orders
    benchmark(lambda: simulate_trace(t, orders, m))
