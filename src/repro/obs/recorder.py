"""Low-overhead span/counter recorder.

Instrumented code calls the module-level helpers::

    from ..obs import recorder as obs

    def compute_ranks(...):
        with obs.span("rank", nodes=len(graph)):
            ...

When no recorder is installed (the default) ``obs.span`` returns a shared
reusable null context manager and ``obs.count`` is a no-op — the cost is one
function call and an ``is None`` test, so instrumentation can live on warm
paths permanently.  Tracing is turned on by installing a
:class:`TraceRecorder`, most conveniently with the :func:`recording` context
manager::

    with recording() as rec:
        algorithm_lookahead(trace, machine)
    print(rec.phase_walltimes())

The recorder collects three streams:

- **spans** — named wall-clock intervals with nesting depth and arbitrary
  attributes (one per pipeline phase invocation);
- **counters** — monotonically accumulated named integers;
- **sim traces** — :class:`~repro.obs.events.SimTrace` cycle-event streams
  published by the window simulator (whose event collection keys off
  :func:`sim_events_enabled`).

Exporters for JSONL and the Chrome trace-event format live in
:mod:`repro.obs.export`.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field
from typing import Any, Iterator

from .events import SimTrace


@dataclass
class SpanRecord:
    """One completed span."""

    name: str
    #: ``time.perf_counter_ns`` timestamp at entry.
    start_ns: int
    duration_ns: int
    #: Nesting depth at entry (0 = top level).
    depth: int
    attrs: dict[str, Any] = field(default_factory=dict)
    #: Process that recorded the span (cross-process traces interleave
    #: spans from several pids; ``None`` on records loaded from old files).
    pid: int | None = None
    #: Trace the span belongs to (shared by every process of one session).
    trace_id: str | None = None

    @property
    def duration_s(self) -> float:
        return self.duration_ns / 1e9

    def to_dict(self) -> dict:
        out: dict = {
            "type": "span",
            "name": self.name,
            "start_us": self.start_ns // 1000,
            "dur_us": self.duration_ns / 1000,
            "depth": self.depth,
        }
        if self.pid is not None:
            out["pid"] = self.pid
        if self.trace_id is not None:
            out["trace_id"] = self.trace_id
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        return out

    @classmethod
    def from_dict(cls, d: dict) -> "SpanRecord":
        """Rebuild a span from its JSONL dict (schema v1 records carry no
        ``pid``/``trace_id``; they load as ``None``)."""
        return cls(
            name=str(d["name"]),
            start_ns=int(d["start_us"]) * 1000,
            duration_ns=int(d["dur_us"] * 1000),
            depth=int(d.get("depth", 0)),
            attrs=dict(d.get("attrs", {})),
            pid=d.get("pid"),
            trace_id=d.get("trace_id"),
        )


class _Span:
    """Context manager recording one span into its recorder."""

    __slots__ = ("_recorder", "name", "attrs", "_start_ns", "_depth")

    def __init__(self, recorder: "TraceRecorder", name: str, attrs: dict) -> None:
        self._recorder = recorder
        self.name = name
        self.attrs = attrs

    def __enter__(self) -> "_Span":
        stack = self._recorder._stack
        self._depth = len(stack)
        stack.append(self.name)
        self._start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, *exc) -> bool:
        end = time.perf_counter_ns()
        rec = self._recorder
        rec._stack.pop()
        rec.spans.append(
            SpanRecord(
                name=self.name,
                start_ns=self._start_ns,
                duration_ns=end - self._start_ns,
                depth=self._depth,
                attrs=self.attrs,
                pid=os.getpid(),
                trace_id=rec.context.trace_id,
            )
        )
        return False


class TraceRecorder:
    """Collects spans, counters and simulator event traces.

    ``sim_events`` controls whether window simulations started while this
    recorder is active collect cycle-level events (they are by far the
    largest stream; disable for pure wall-time profiling).
    ``counter_samples`` controls whether each counter increment additionally
    records a ``(t_ns, name, total, pid)`` sample, so counter *timelines*
    can be exported (Perfetto "C" events) rather than just final totals.
    ``context`` is the :class:`~repro.obs.pipeline.TraceContext` the
    recorder stamps on its spans; worker processes receive a child context
    derived from the parent's so a fanned-out sweep shares one trace id.
    """

    def __init__(
        self,
        sim_events: bool = True,
        counter_samples: bool = True,
        context=None,
    ) -> None:
        if context is None:
            from .pipeline import TraceContext

            context = TraceContext.new()
        self.context = context
        self.sim_events = sim_events
        self.spans: list[SpanRecord] = []
        self.counters: dict[str, int] = {}
        #: Timestamped counter increments: ``(perf_counter_ns, name,
        #: cumulative total, pid)``; empty when ``counter_samples`` is off.
        self.counter_samples: list[tuple[int, str, int, int]] = []
        self._sample_counters = counter_samples
        self.sim_traces: list[SimTrace] = []
        self._stack: list[str] = []

    def span(self, name: str, **attrs) -> _Span:
        return _Span(self, name, attrs)

    def count(self, name: str, n: int = 1) -> None:
        total = self.counters.get(name, 0) + n
        self.counters[name] = total
        if self._sample_counters:
            self.counter_samples.append(
                (time.perf_counter_ns(), name, total, os.getpid())
            )

    def add_sim_trace(self, trace: SimTrace) -> None:
        self.sim_traces.append(trace)

    def phase_walltimes(self) -> dict[str, float]:
        """Total wall-clock seconds per span name, descending."""
        totals: dict[str, float] = {}
        for s in self.spans:
            totals[s.name] = totals.get(s.name, 0.0) + s.duration_s
        return dict(sorted(totals.items(), key=lambda kv: -kv[1]))

    def span_stats(self) -> dict[str, tuple[int, float]]:
        """Per span name: ``(call count, total seconds)``, descending by
        total."""
        counts: dict[str, int] = {}
        totals: dict[str, float] = {}
        for s in self.spans:
            counts[s.name] = counts.get(s.name, 0) + 1
            totals[s.name] = totals.get(s.name, 0.0) + s.duration_s
        return {
            name: (counts[name], totals[name])
            for name in sorted(totals, key=lambda n: -totals[n])
        }


#: Shared reusable no-op context manager handed out when tracing is off.
_NULL_SPAN = nullcontext()

_active: TraceRecorder | None = None


def get_recorder() -> TraceRecorder | None:
    """The currently installed recorder, or ``None`` (tracing off)."""
    return _active


def set_recorder(recorder: TraceRecorder | None) -> TraceRecorder | None:
    """Install ``recorder`` globally (``None`` turns tracing off); returns
    the previous recorder."""
    global _active
    previous = _active
    _active = recorder
    return previous


@contextmanager
def recording(recorder: TraceRecorder | None = None) -> Iterator[TraceRecorder]:
    """Install a recorder for the duration of the block (creating a default
    :class:`TraceRecorder` if none is given) and restore the previous one on
    exit."""
    rec = recorder if recorder is not None else TraceRecorder()
    previous = set_recorder(rec)
    try:
        yield rec
    finally:
        set_recorder(previous)


def span(name: str, **attrs):
    """A span context manager on the active recorder — or the shared no-op
    context when tracing is off."""
    rec = _active
    if rec is None:
        return _NULL_SPAN
    return rec.span(name, **attrs)


def count(name: str, n: int = 1) -> None:
    """Accumulate a counter on the active recorder (no-op when off)."""
    rec = _active
    if rec is not None:
        rec.count(name, n)


def sim_events_enabled() -> bool:
    """True iff an active recorder wants cycle-level simulator events."""
    rec = _active
    return rec is not None and rec.sim_events


def publish_sim_trace(trace: SimTrace) -> None:
    """Hand a finished simulator trace to the active recorder, if any."""
    rec = _active
    if rec is not None:
        rec.add_sim_trace(trace)
