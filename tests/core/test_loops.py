"""Unit tests for the §5 loop algorithms, pinned to Figures 3 and 8."""

import pytest

from repro.core import (
    schedule_loop_trace,
    schedule_single_block_loop,
    single_sink_transform,
    single_source_transform,
)
from repro.core.loops import DUMMY
from repro.ir import LoopTrace, block_from_graph, graph_from_edges, loop_from_edges
from repro.machine import MachineModel, paper_machine
from repro.sim import (
    simulate_loop_order,
    simulate_loop_trace_orders,
    simulated_initiation_interval,
)
from repro.workloads import (
    FIG3_SCHEDULE2,
    FIG8_SCHEDULE_S2,
    figure3_loop,
    figure8_loop,
    random_loop,
    random_loop_trace,
)


class TestTransforms:
    def test_source_transform_structure(self):
        loop = figure8_loop()
        g = single_source_transform(loop, "1")
        assert DUMMY in g
        assert g.is_acyclic()
        # every real node feeds the dummy; carried 3->1 redirected to dummy.
        assert all(DUMMY in g.successors(n) for n in loop.nodes)
        assert g.latency("3", DUMMY) == 1

    def test_sink_transform_structure(self):
        loop = figure8_loop()
        g = single_sink_transform(loop, "3")
        assert g.is_acyclic()
        assert all(n in g.successors(DUMMY) for n in loop.nodes)
        assert g.latency(DUMMY, "1") == 1

    def test_unknown_pivot(self):
        loop = figure8_loop()
        with pytest.raises(KeyError):
            single_source_transform(loop, "zzz")
        with pytest.raises(KeyError):
            single_sink_transform(loop, "zzz")

    def test_transform_drops_other_carried_edges(self):
        loop = loop_from_edges(
            [("a", "b", 1, 0), ("b", "a", 1, 1), ("b", "b", 2, 1)]
        )
        g = single_source_transform(loop, "a")
        # b->b self carried edge targets b, not the pivot a: dropped.
        assert g.latency("b", DUMMY) == 1  # from b->a carried
        assert ("b", "b") not in [(u, v) for u, v, _ in g.edges()]


class TestFigure3:
    def test_finds_schedule2(self):
        """§5.2.3 must discover the steady-state-optimal order L4 ST M C4 BT
        (the paper's Schedule 2) despite its worse single-iteration time."""
        res = schedule_single_block_loop(figure3_loop(), paper_machine(1))
        assert tuple(res.order) == FIG3_SCHEDULE2
        assert res.best.single_iteration_makespan == 6

    def test_candidates_include_block_optimal(self):
        res = schedule_single_block_loop(figure3_loop(), paper_machine(1))
        one_iter = [c.single_iteration_makespan for c in res.candidates]
        assert min(one_iter) == 5  # Schedule 1's single-iteration optimum

    def test_restrict_candidates_flag(self):
        res = schedule_single_block_loop(
            figure3_loop(), paper_machine(1), restrict_candidates=True
        )
        # G_li sources are L4 and ST (ST's predecessors are all carried), so
        # only they survive as §5.2.1 pivots; no carried-edge source is a
        # G_li sink, so no §5.2.2 candidates remain.
        assert {(c.kind, c.pivot) for c in res.candidates} == {
            ("source", "L4"),
            ("source", "ST"),
        }
        # The restriction keeps the winning candidate here.
        assert tuple(res.order) == FIG3_SCHEDULE2


class TestFigure8:
    def test_general_algorithm_picks_dual(self):
        res = schedule_single_block_loop(figure8_loop(), paper_machine(1))
        assert tuple(res.order) == FIG8_SCHEDULE_S2
        assert res.best.kind == "sink"
        assert res.best.pivot == "3"

    def test_source_candidate_is_symmetric_trap(self):
        """The single-source-style transform cannot break the 1/2 symmetry
        (paper Fig. 8's point)."""
        res = schedule_single_block_loop(figure8_loop(), paper_machine(1))
        source_cands = [c for c in res.candidates if c.kind == "source"]
        assert source_cands and all(
            c.order == ["1", "2", "3"] for c in source_cands
        )


class TestNoCarriedDeps:
    def test_falls_back_to_block_scheduling(self):
        loop = loop_from_edges([("a", "b", 1, 0)])
        res = schedule_single_block_loop(loop, paper_machine(2))
        assert res.best.kind == "block"
        assert sorted(res.order) == ["a", "b"]


class TestRandomLoops:
    @pytest.mark.parametrize("seed", range(8))
    def test_chosen_order_never_worse_than_program_order(self, seed):
        loop = random_loop(6, seed=seed)
        m = paper_machine(2)
        res = schedule_single_block_loop(loop, m, horizon=8)
        chosen = simulate_loop_order(loop, res.order, 8, m).makespan
        naive = simulate_loop_order(loop, loop.nodes, 8, m).makespan
        # The candidate set is built from optimal block schedules; it should
        # not lose to raw program order (ties allowed).
        assert chosen <= naive or res.best.completion <= naive

    @pytest.mark.parametrize("seed", range(8))
    def test_order_is_dependence_valid(self, seed):
        loop = random_loop(7, seed=100 + seed)
        res = schedule_single_block_loop(loop, paper_machine(2))
        sim = simulate_loop_order(loop, res.order, 3, paper_machine(2))
        sim.schedule.validate()


class TestLoopTrace:
    def make_loop_trace(self):
        g1 = graph_from_edges([("a", "b", 1)], nodes=["a", "b", "c"])
        g2 = graph_from_edges([("d", "e", 1)])
        return LoopTrace(
            [block_from_graph("B1", g1), block_from_graph("B2", g2)],
            cross_edges=[("b", "d", 1)],
            carried_edges=[("e", "a", 2, 1)],
        )

    def test_block_orders_valid(self):
        lt = self.make_loop_trace()
        m = paper_machine(2)
        res = schedule_loop_trace(lt, m)
        assert sorted(res.block_orders[0]) == ["a", "b", "c"]
        assert sorted(res.block_orders[1]) == ["d", "e"]
        sim = simulate_loop_trace_orders(lt, res.block_orders, 4, m)
        sim.schedule.validate()

    def test_not_worse_than_plain_lookahead(self):
        from repro.core import algorithm_lookahead

        lt = self.make_loop_trace()
        m = paper_machine(2)
        res = schedule_loop_trace(lt, m)
        plain = algorithm_lookahead(lt, m)
        n = 6
        with_extra = simulate_loop_trace_orders(lt, res.block_orders, n, m)
        without = simulate_loop_trace_orders(lt, plain.block_orders, n, m)
        assert with_extra.makespan <= without.makespan + 1  # heuristic slack

    def test_single_block_loop_trace_passthrough(self):
        g1 = graph_from_edges([("a", "b", 1)])
        lt = LoopTrace([block_from_graph("B1", g1)], carried_edges=[("b", "a", 1, 1)])
        res = schedule_loop_trace(lt, paper_machine(2))
        assert sorted(res.block_orders[0]) == ["a", "b"]
