"""Coverage for Schedule/graph accessors added during development."""

from repro.core import Schedule
from repro.ir import graph_from_edges
from repro.workloads import figure1_bb1


class TestGlobalIdleTimes:
    def test_single_unit_equals_idle_times(self):
        g = graph_from_edges([], nodes=["a", "b"])
        s = Schedule(g, {"a": 0, "b": 3})
        assert s.global_idle_times() == s.idle_times() == [1, 2]

    def test_multi_unit_global_stall(self):
        g = graph_from_edges([], nodes=["a", "b"])
        s = Schedule(g, {"a": 0, "b": 4}, {"a": ("any", 0), "b": ("any", 1)})
        # Unit 0 idle 1-4, unit 1 idle 0-3; both idle only at 1,2,3.
        assert s.global_idle_times() == [1, 2, 3]

    def test_spanning_instruction_blocks_global_idle(self):
        g = graph_from_edges([], nodes=["a", "b"], exec_times={"a": 4})
        s = Schedule(g, {"a": 0, "b": 5}, {"a": ("any", 0), "b": ("any", 1)})
        assert s.global_idle_times() == [4]


class TestGraphIndexAccessors:
    def test_node_index_matches_program_order(self):
        g = figure1_bb1()
        for i, n in enumerate(g.nodes):
            assert g.node_index(n) == i

    def test_reachability_row(self):
        g = figure1_bb1()
        row = g.reachability_row("x")
        desc = {g.nodes[i] for i in range(len(g)) if row[i]}
        assert desc == {"w", "b", "a", "r"}

    def test_analysis_cache_cleared_on_mutation(self):
        g = figure1_bb1()
        g.analysis_cache["probe"] = 1
        g.add_node("fresh")
        assert "probe" not in g.analysis_cache
