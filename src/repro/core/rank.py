"""The Rank Algorithm (Palem & Simons, TOPLAS'93) and its generalizations.

The Rank Algorithm schedules a dependence DAG with deadlines on a single
functional unit.  It is *optimal* (minimum makespan, and minimum tardiness
under deadlines) for unit execution times and 0/1 latencies; this library also
uses it, per paper §4.2, as a heuristic for longer latencies, non-unit
execution times and multiple functional units.

The algorithm (paper §2.1):

1. compute the *rank* of every node — an upper bound on its completion time
   if the node and all of its descendants are to complete by their deadlines;
2. build a priority list of the nodes in nondecreasing rank order;
3. run greedy list scheduling on that list.

Rank computation (validated against every number in the paper's §2 examples):
process nodes in reverse topological order; for node x, *backward-schedule*
all of x's descendants, placing each descendant y — largest rank first — at
the latest free completion slot ≤ rank(y) (one node per time step per unit;
non-unit execution times occupy ``exec_time`` consecutive slots, the §4.2
"insert whole" variant).  Then::

    rank(x) = min( d(x),
                   min over descendants y of start(y),                 # x precedes all
                   min over immediate successors y of
                       start(y) - latency(x, y) )                      # latency gap

where start(y) is y's start time in the backward schedule.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..ir.depgraph import DependenceGraph
from ..ir.instruction import ANY
from ..machine.model import MachineModel, single_unit_machine
from ..obs import recorder as obs
from .schedule import Schedule, Unit


def default_deadline(graph: DependenceGraph) -> int:
    """A deadline large enough never to constrain any schedule: total work
    plus total latency (an upper bound on any greedy makespan)."""
    total = sum(graph.exec_time(n) for n in graph.nodes)
    total += sum(lat for _, _, lat in graph.edges())
    return max(total, 1)


def fill_deadlines(
    graph: DependenceGraph,
    deadlines: Mapping[str, int] | None = None,
    default: int | None = None,
) -> dict[str, int]:
    """Complete a (possibly partial) deadline map with the artificial large
    deadline for unconstrained nodes (paper: "All nodes are given the same
    very large number as an artificial deadline")."""
    if default is None:
        default = default_deadline(graph)
    out = {n: default for n in graph.nodes}
    if deadlines:
        for n, d in deadlines.items():
            if n in out:
                out[n] = d
    return out


class _BackwardSlots:
    """Latest-fit slot allocator for the backward schedule.

    Tracks occupied completion-time slots per functional-unit class with the
    class capacity from the machine model.  ``ANY`` draws from the total
    capacity pool; typed classes from their own pool (a heuristic in the
    multi-unit case, exact for a single unit).

    The dominant case — capacity 1, unit execution time — uses a
    path-compressed "next free slot" union-find, making each placement
    near-O(1); the general case falls back to a linear latest-fit scan.
    """

    def __init__(self, machine: MachineModel) -> None:
        self._machine = machine
        self._used: dict[str, dict[int, int]] = {}
        #: Per-class map slot -> latest free slot at or below it (union-find
        #: parents), maintained only for capacity-1 pools.
        self._next_free: dict[str, dict[int, int]] = {}
        self._cap_cache: dict[str, int] = {}

    def _capacity(self, fu_class: str) -> int:
        cap = self._cap_cache.get(fu_class)
        if cap is None:
            if fu_class == ANY or self._machine.is_single_unit:
                cap = self._machine.total_units
            else:
                cap = len(self._machine.units_for(fu_class))
            self._cap_cache[fu_class] = cap
        return cap

    def _find_free(self, parent: dict[int, int], slot: int) -> int:
        """Latest free slot ≤ ``slot`` with path compression."""
        root = slot
        while root in parent:
            root = parent[root]
        while slot in parent:
            nxt = parent[slot]
            parent[slot] = root
            slot = nxt
        return root

    def place(self, fu_class: str, exec_time: int, latest: int) -> int:
        """Occupy ``exec_time`` consecutive slots completing no later than
        ``latest``; return the completion time chosen (may be ≤ 0 when the
        instance is infeasible — feasibility is judged later by the forward
        greedy pass)."""
        cap = self._capacity(fu_class)
        if cap == 1:
            parent = self._next_free.setdefault(fu_class, {})
            end = self._find_free(parent, latest)
            # Multi-cycle: every slot in (end-exec_time, end] must be free;
            # on a collision restart below the occupied run.
            while exec_time > 1:
                t = end - 1
                lo = end - exec_time + 1
                clash = None
                while t >= lo:
                    ft = self._find_free(parent, t)
                    if ft != t:
                        clash = ft
                        break
                    t -= 1
                if clash is None:
                    break
                end = clash
            for t in range(end - exec_time + 1, end + 1):
                parent[t] = t - 1
            return end
        used = self._used.setdefault(fu_class, {})
        end = latest
        guard = latest + len(used) * exec_time + exec_time + 1
        while guard > 0:
            window = range(end - exec_time + 1, end + 1)
            if all(used.get(t, 0) < cap for t in window):
                for t in window:
                    used[t] = used.get(t, 0) + 1
                return end
            end -= 1
            guard -= 1
        return end  # pragma: no cover - guard generous enough in practice


def compute_ranks(
    graph: DependenceGraph,
    deadlines: Mapping[str, int] | None = None,
    machine: MachineModel | None = None,
) -> dict[str, int]:
    """Compute the rank of every node (see module docstring).

    ``deadlines`` may be partial; missing nodes get the artificial large
    deadline.  Ranks never exceed deadlines and may go non-positive on
    infeasible instances.

    Two reconstruction subtleties matter for optimality (found by fuzzing
    against the brute-force oracle; see ``tests/core/test_rank_fastpath.py``):

    1. the backward schedule must respect the dependence edges *among* the
       descendants (a descendant must complete before its own successors
       start, minus latency) — not only their ranks;
    2. within a group of interchangeable placements, the latest slots must
       go to x's direct successors with the largest ``latency(x, ·)``, and
       the earliest slots to non-successors (whose only influence on
       rank(x) is through the earliest-start term).
    """
    machine = machine or single_unit_machine()
    with obs.span("rank", nodes=len(graph)):
        d = fill_deadlines(graph, deadlines)
        ranks: dict[str, int] = {}
        order = graph.topological_order()
        for x in reversed(order):
            rank = d[x]
            descendants = graph.descendants(x)
            if descendants:
                slots = _BackwardSlots(machine)
                starts: dict[str, int] = {}
                for y in sorted(descendants, key=lambda n: ranks[n], reverse=True):
                    end = slots.place(graph.fu_class(y), graph.exec_time(y), ranks[y])
                    starts[y] = end - graph.exec_time(y)
                rank = min(rank, min(starts.values()))
                for y, lat in graph.successors(x).items():
                    rank = min(rank, starts[y] - lat)
            ranks[x] = rank
        return ranks


def list_schedule(
    graph: DependenceGraph,
    priority: Sequence[str],
    machine: MachineModel | None = None,
) -> Schedule:
    """Greedy list scheduling: advance time step by step; at each step issue
    ready instructions in priority-list order onto free compatible units (a
    unit is never left idle while a ready instruction could use it — the
    paper's greediness property)."""
    machine = machine or single_unit_machine()
    if sorted(priority) != sorted(graph.nodes):
        raise ValueError("priority list must be a permutation of the graph nodes")
    if not machine.can_execute(graph):
        raise ValueError("machine lacks a functional unit for some instruction")

    npred = {n: len(graph.predecessors(n)) for n in graph.nodes}
    # Earliest start permitted by already-scheduled predecessors.
    est = {n: 0 for n in graph.nodes}
    starts: dict[str, int] = {}
    units: dict[str, Unit] = {}
    unit_free_at: dict[Unit, int] = {u: 0 for u in machine.unit_names()}
    width = machine.issue_width or machine.total_units

    time = 0
    remaining = len(graph)
    while remaining > 0:
        issued = 0
        for n in priority:
            if n in starts or npred[n] > 0 or est[n] > time:
                continue
            unit = next(
                (u for u in machine.units_for(graph.fu_class(n)) if unit_free_at[u] <= time),
                None,
            )
            if unit is None:
                continue
            starts[n] = time
            units[n] = unit
            completion = time + graph.exec_time(n)
            unit_free_at[unit] = completion
            remaining -= 1
            for s, lat in graph.successors(n).items():
                npred[s] -= 1
                est[s] = max(est[s], completion + lat)
            issued += 1
            if issued >= width:
                break
        if remaining == 0:
            break
        # Advance time: to the next dependence-release or unit-free event, or
        # by one cycle if something is ready now but blocked (unit busy /
        # issue width exhausted this cycle).
        blocked_now = any(
            n not in starts and npred[n] == 0 and est[n] <= time for n in graph.nodes
        )
        if blocked_now:
            time += 1
            continue
        events = [est[n] for n in graph.nodes if n not in starts and npred[n] == 0]
        events += [t for t in unit_free_at.values() if t > time]
        future = [t for t in events if t > time]
        if not future:  # pragma: no cover - defensive: no progress possible
            raise RuntimeError("list scheduling stalled (cyclic graph?)")
        time = min(future)
    return Schedule(graph, starts, units)


def rank_priority_list(
    graph: DependenceGraph,
    ranks: Mapping[str, int],
    tie_break: str = "program",
) -> list[str]:
    """Nodes in nondecreasing rank order.

    The paper leaves the order among equal ranks free ("Suppose the
    ordering we choose is ..."), and the exact tie-breaking rule of the
    unpublished tech report [11] is not recoverable.  Two modes:

    - ``"program"`` (default): ties keep program order — this reproduces the
      orderings the paper's §2 walkthroughs pick, but fuzzing shows rare
      (≈0.2% of small random instances) +1-cycle losses where the tie hides
      a latency asymmetry;
    - ``"labels"``: ties broken by Bernstein-Gertner lexicographic labels
      (higher label = more urgent), which encode exactly that latency
      structure; empirically optimal on every fuzzed instance in the
      0/1-latency regime (see ``tests/core/test_tie_breaking.py``).
    """
    if tie_break == "program":
        index = {n: i for i, n in enumerate(graph.nodes)}
        return sorted(graph.nodes, key=lambda n: (ranks[n], index[n]))
    if tie_break == "labels":
        labels = _lexicographic_labels(graph)
        return sorted(graph.nodes, key=lambda n: (ranks[n], -labels[n]))
    raise ValueError(f"unknown tie_break mode {tie_break!r}")


def _lexicographic_labels(graph: DependenceGraph) -> dict[str, int]:
    """Bernstein-Gertner latency-aware lexicographic labels (see
    :mod:`repro.schedulers.bernstein_gertner`), cached per graph revision."""
    cache = graph.analysis_cache
    labels = cache.get("bg_labels")
    if labels is None:
        n = len(graph)
        labels = {}
        index = {v: i for i, v in enumerate(graph.nodes)}
        for label in range(1, n + 1):
            candidates = [
                v
                for v in graph.nodes
                if v not in labels
                and all(s in labels for s in graph.successors(v))
            ]

            def key(v: str) -> tuple:
                seq = sorted(
                    ((labels[s], lat) for s, lat in graph.successors(v).items()),
                    reverse=True,
                )
                return (seq, index[v])

            labels[min(candidates, key=key)] = label
        cache["bg_labels"] = labels
    return labels


def rank_schedule(
    graph: DependenceGraph,
    deadlines: Mapping[str, int] | None = None,
    machine: MachineModel | None = None,
    tie_break: str = "program",
) -> tuple[Schedule | None, dict[str, int]]:
    """The full Rank Algorithm: ranks → priority list → greedy schedule.

    Returns ``(schedule, ranks)``; the schedule is ``None`` when the greedy
    schedule misses a deadline (the paper's "rank_alg cannot meet all
    deadlines ⇒ S = ∅").  In the optimal regime (unit times, 0/1 latencies,
    single unit) the instance is feasible iff the returned schedule is not
    None, and the schedule has minimum makespan among deadline-feasible
    ones.  See :func:`rank_priority_list` for the ``tie_break`` caveat.
    """
    machine = machine or single_unit_machine()
    full = fill_deadlines(graph, deadlines)
    ranks = compute_ranks(graph, full, machine)
    if not graph.nodes:
        return Schedule(graph, {}), ranks
    sched = list_schedule(
        graph, rank_priority_list(graph, ranks, tie_break), machine
    )
    if not sched.is_feasible(full):
        return None, ranks
    return sched, ranks


def minimum_makespan_schedule(
    graph: DependenceGraph, machine: MachineModel | None = None
) -> Schedule:
    """Rank Algorithm with only the artificial deadline — a minimum-makespan
    schedule in the optimal regime, a strong heuristic otherwise."""
    sched, _ = rank_schedule(graph, None, machine)
    assert sched is not None  # unconstrained instances are always feasible
    return sched


def rank_schedule_lenient(
    graph: DependenceGraph,
    deadlines: Mapping[str, int] | None = None,
    machine: MachineModel | None = None,
) -> tuple[Schedule, dict[str, int], bool]:
    """Like :func:`rank_schedule` but always returns the greedy schedule,
    plus a flag telling whether it met every deadline.  Used by heuristic
    callers (paper §4.2) that need a best-effort schedule even when the
    deadline system is unsatisfiable."""
    machine = machine or single_unit_machine()
    full = fill_deadlines(graph, deadlines)
    ranks = compute_ranks(graph, full, machine)
    if not graph.nodes:
        return Schedule(graph, {}), ranks, True
    sched = list_schedule(graph, rank_priority_list(graph, ranks), machine)
    return sched, ranks, sched.is_feasible(full)
