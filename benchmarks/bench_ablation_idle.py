"""E8 — ablation of the paper's key idea: Delay_Idle_Slots on/off.

Runs Algorithm Lookahead with and without the idle-slot delaying step.
On the paper's own Figure 2 the step is exactly what turns 13 cycles into
11; on random traces it helps on a substantial minority of instances and is
asserted never to hurt in geometric mean.  (With latencies > 1 — outside
the optimal regime — individual instances can regress slightly; the table
reports them honestly.)
"""

from common import emit_metrics, emit_table

from repro.analysis import geometric_mean
from repro.core import algorithm_lookahead
from repro.machine import paper_machine
from repro.sim import simulate_trace
from repro.workloads import figure2_trace, random_trace

TRIALS = 20
WINDOWS = (2, 3)


def test_ablation_idle_delay(benchmark):
    rows = []

    # Headline: the paper's example.
    t2 = figure2_trace(with_cross_edge=False)
    m2 = paper_machine(2)
    off2 = simulate_trace(
        t2, algorithm_lookahead(t2, m2, delay_idles=False).block_orders, m2
    ).makespan
    on2 = simulate_trace(
        t2, algorithm_lookahead(t2, m2, delay_idles=True).block_orders, m2
    ).makespan
    assert (off2, on2) == (13, 11)
    rows.append(["figure 2", 2, off2, on2, off2 - on2])

    ratios = []
    improved = regressed = 0
    for w in WINDOWS:
        m = paper_machine(w)
        for seed in range(TRIALS):
            t = random_trace(
                3,
                (4, 7),
                edge_probability=0.3,
                cross_probability=0.05,
                latencies=(0, 1, 2, 4),
                seed=seed,
            )
            off = simulate_trace(
                t, algorithm_lookahead(t, m, delay_idles=False).block_orders, m
            ).makespan
            on = simulate_trace(
                t, algorithm_lookahead(t, m, delay_idles=True).block_orders, m
            ).makespan
            ratios.append(off / on)
            if on < off:
                improved += 1
                rows.append([f"random seed {seed}", w, off, on, off - on])
            elif on > off:
                regressed += 1
                rows.append([f"random seed {seed} (regression)", w, off, on, off - on])

    gain = geometric_mean(ratios)
    rows.append(
        [
            f"geomean over {len(ratios)} random instances "
            f"({improved} improved, {regressed} regressed)",
            "-",
            "-",
            "-",
            f"{gain:.3f}x",
        ]
    )
    emit_table(
        "E8_ablation_idle",
        ["workload", "W", "without Delay_Idle_Slots", "with", "saved"],
        rows,
        title="E8: ablation of Delay_Idle_Slots inside Algorithm Lookahead",
    )
    assert gain >= 1.0 - 1e-9
    assert improved > regressed

    emit_metrics(
        "E8_ablation_idle",
        {
            "fig2_without_delay": off2,
            "fig2_with_delay": on2,
            "random_instances": len(ratios),
            "improved": improved,
            "regressed": regressed,
            "geomean_gain": gain,
        },
        machine=m2,
    )

    t = random_trace(
        3, (4, 7), edge_probability=0.3, cross_probability=0.05,
        latencies=(0, 1, 2, 4), seed=6,
    )
    m = paper_machine(2)
    benchmark(lambda: algorithm_lookahead(t, m, delay_idles=True))
