"""Whole-CFG evaluation: expected completion over control-flow paths.

The paper positions anticipatory scheduling against trace scheduling [7]:
both optimize a hot path, but anticipatory scheduling never moves code off
its block, so cold paths pay no compensation cost — only the (possibly
suboptimal for them) block orders chosen for the hot trace.  This module
makes that comparison measurable: enumerate CFG paths with their
probabilities, execute each path's block sequence with the scheduled orders
(a mispredicted boundary wherever the path leaves the scheduled trace), and
report the expectation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from ..ir.basicblock import Trace
from ..ir.cfg import ControlFlowGraph
from ..machine.model import MachineModel, single_unit_machine
from ..obs import recorder as obs
from .window import simulate_trace


@dataclass(frozen=True)
class PathResult:
    blocks: tuple[str, ...]
    probability: float
    makespan: int


@dataclass
class CFGEvaluation:
    paths: list[PathResult]

    @property
    def expected_makespan(self) -> float:
        return sum(p.probability * p.makespan for p in self.paths)

    @property
    def coverage(self) -> float:
        """Total probability mass of the enumerated paths (1.0 unless the
        enumeration was truncated)."""
        return sum(p.probability for p in self.paths)


def enumerate_paths(
    cfg: ControlFlowGraph,
    start: str | None = None,
    max_depth: int = 8,
    min_probability: float = 1e-6,
) -> list[tuple[list[str], float]]:
    """All simple-ish paths from ``start`` to any sink (no revisits), with
    their probabilities; truncated at ``max_depth`` blocks."""
    start = start or cfg.entry
    if start is None:
        raise ValueError("CFG has no entry block")
    out: list[tuple[list[str], float]] = []

    def walk(path: list[str], prob: float) -> None:
        if prob < min_probability:
            return
        succs = [e for e in cfg.successors(path[-1]) if e.dst not in path]
        if not succs or len(path) >= max_depth:
            out.append((list(path), prob))
            return
        total = sum(e.probability for e in succs)
        if total <= 0:
            out.append((list(path), prob))
            return
        for e in succs:
            walk(path + [e.dst], prob * e.probability / total)

    walk([start], 1.0)
    return out


def evaluate_cfg(
    cfg: ControlFlowGraph,
    block_orders: Mapping[str, Sequence[str]],
    scheduled_trace: Sequence[str],
    cross_edges: Sequence[tuple[str, str, int]] = (),
    machine: MachineModel | None = None,
    misprediction_penalty: int = 2,
    max_depth: int = 8,
) -> CFGEvaluation:
    """Expected completion of the whole CFG under the given per-block orders.

    ``scheduled_trace`` is the block path the scheduler optimized (and the
    static predictor follows).  At each boundary the predictor guesses the
    scheduled trace's successor when the current block lies on it, otherwise
    the most probable CFG successor; a wrong guess flushes the window
    (misprediction barrier + penalty).
    """
    machine = machine or single_unit_machine()
    sched = list(scheduled_trace)
    next_on_trace = {a: b for a, b in zip(sched, sched[1:])}

    def predicted_successor(block: str) -> str | None:
        if block in next_on_trace:
            return next_on_trace[block]
        succs = cfg.successors(block)
        if not succs:
            return None
        return max(succs, key=lambda e: e.probability).dst

    results: list[PathResult] = []
    paths = enumerate_paths(cfg, max_depth=max_depth)
    with obs.span("sim.cfg", paths=len(paths)):
        for path, prob in paths:
            trace = cfg.build_trace(path, list(cross_edges))
            orders = [list(block_orders[name]) for name in path]
            mispredicted = [
                i
                for i in range(1, len(path))
                if predicted_successor(path[i - 1]) != path[i]
            ]
            with obs.span(
                "sim.cfg.path",
                path="->".join(path),
                probability=prob,
                mispredictions=len(mispredicted),
            ):
                sim = simulate_trace(
                    trace,
                    orders,
                    machine,
                    mispredicted_blocks=mispredicted,
                    misprediction_penalty=misprediction_penalty,
                    trace_label="->".join(path),
                )
            results.append(PathResult(tuple(path), prob, sim.makespan))
    return CFGEvaluation(results)
