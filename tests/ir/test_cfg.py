"""Unit tests for the control-flow graph and trace selection."""

import pytest

from repro.ir import ControlFlowGraph, block_from_graph, graph_from_edges


def make_cfg():
    """Diamond CFG: entry -> {hot, cold} -> exit, with hot at p=0.8."""
    cfg = ControlFlowGraph()
    for name in ["entry", "hot", "cold", "exit"]:
        g = graph_from_edges([], nodes=[f"{name}_i0", f"{name}_i1"])
        cfg.add_block(block_from_graph(name, g), entry=(name == "entry"))
    cfg.add_edge("entry", "hot", 0.8)
    cfg.add_edge("entry", "cold", 0.2)
    cfg.add_edge("hot", "exit", 1.0)
    cfg.add_edge("cold", "exit", 1.0)
    return cfg


class TestConstruction:
    def test_entry_defaults_to_first(self):
        cfg = ControlFlowGraph()
        g = graph_from_edges([], nodes=["a"])
        cfg.add_block(block_from_graph("B", g))
        assert cfg.entry == "B"

    def test_duplicate_block_rejected(self):
        cfg = make_cfg()
        g = graph_from_edges([], nodes=["zz"])
        with pytest.raises(ValueError, match="duplicate"):
            cfg.add_block(block_from_graph("entry", g))

    def test_bad_probability(self):
        cfg = make_cfg()
        with pytest.raises(ValueError, match="probability"):
            cfg.add_edge("entry", "exit", 1.5)

    def test_unknown_edge_endpoint(self):
        cfg = make_cfg()
        with pytest.raises(KeyError):
            cfg.add_edge("entry", "nowhere")


class TestTraceSelection:
    def test_follows_most_probable_path(self):
        cfg = make_cfg()
        assert cfg.select_trace_blocks() == ["entry", "hot", "exit"]

    def test_max_blocks(self):
        cfg = make_cfg()
        assert cfg.select_trace_blocks(max_blocks=2) == ["entry", "hot"]

    def test_stops_on_revisit(self):
        cfg = ControlFlowGraph()
        for name in ["a", "b"]:
            g = graph_from_edges([], nodes=[f"{name}0"])
            cfg.add_block(block_from_graph(name, g))
        cfg.add_edge("a", "b", 1.0)
        cfg.add_edge("b", "a", 1.0)  # loop back
        assert cfg.select_trace_blocks("a") == ["a", "b"]

    def test_unknown_start(self):
        with pytest.raises(KeyError):
            make_cfg().select_trace_blocks("nope")

    def test_build_trace_filters_cross_edges(self):
        cfg = make_cfg()
        trace = cfg.build_trace(
            cross_edges=[
                ("entry_i0", "hot_i0", 1),   # internal to the path: kept
                ("entry_i0", "cold_i0", 1),  # leaves the path: dropped
            ]
        )
        assert trace.num_blocks == 3
        assert trace.cross_edges == [("entry_i0", "hot_i0", 1)]
