"""General machine models (paper §4.2): heuristic variants and the top-level
anticipatory-scheduling entry point.

The optimal results hold for unit execution times, 0/1 latencies and a single
functional unit; real machines add typed multiple units, multi-cycle
instructions and longer latencies, for which "there is no hope of obtaining an
optimal polynomial time algorithm" — the paper recommends using Algorithm
Lookahead as a heuristic with the adjustments implemented here:

* **split-rank** (§4.2 "Non-unit execution times", second variant): during
  the backward schedule, a multi-cycle instruction is broken into unit
  pieces placed independently at the latest free slots; the earliest piece's
  start feeds the rank.  This keeps ranks true upper bounds with multiple
  units (:func:`compute_ranks_split`).
* **per-class idle-slot delaying** (§4.2 "Multiple Functional Units"):
  process idle slots unit by unit, most-demanded functional-unit class
  first (:func:`delay_idle_slots_by_demand`).
* :func:`anticipatory_schedule` — one call that dispatches a trace, a loop
  trace or a single-block loop to the right §4/§5 algorithm.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..ir.basicblock import LoopTrace, Trace
from ..ir.depgraph import DependenceGraph
from ..ir.loopgraph import LoopGraph
from ..machine.model import MachineModel, single_unit_machine
from .idle import delay_idle_slots
from .lookahead import LookaheadResult, algorithm_lookahead
from .loops import (
    LoopScheduleResult,
    LoopTraceResult,
    schedule_loop_trace,
    schedule_single_block_loop,
)
from .rank import _BackwardSlots, fill_deadlines
from .schedule import Schedule, Unit


def compute_ranks_split(
    graph: DependenceGraph,
    deadlines: Mapping[str, int] | None = None,
    machine: MachineModel | None = None,
) -> dict[str, int]:
    """Rank computation with multi-cycle instructions split into unit pieces
    in the backward schedule (§4.2's alternative that "maintains the upper
    bound condition on the ranks in the multiple functional unit case").

    Identical to :func:`repro.core.rank.compute_ranks` for unit execution
    times.
    """
    machine = machine or single_unit_machine()
    d = fill_deadlines(graph, deadlines)
    ranks: dict[str, int] = {}
    for x in reversed(graph.topological_order()):
        rank = d[x]
        descendants = graph.descendants(x)
        if descendants:
            slots = _BackwardSlots(machine)
            starts: dict[str, int] = {}
            for y in sorted(descendants, key=lambda n: ranks[n], reverse=True):
                # Place exec_time(y) independent unit pieces; the earliest
                # piece determines the backward start time.
                earliest = ranks[y]
                limit = ranks[y]
                for _ in range(graph.exec_time(y)):
                    end = slots.place(graph.fu_class(y), 1, limit)
                    earliest = min(earliest, end)
                    limit = end - 1
                starts[y] = earliest - 1
            rank = min(rank, min(starts.values()))
            for y, lat in graph.successors(x).items():
                rank = min(rank, starts[y] - lat)
        ranks[x] = rank
    return ranks


def class_demand(graph: DependenceGraph, machine: MachineModel) -> list[str]:
    """Functional-unit classes ordered by demand pressure: total execution
    cycles requested divided by available units, descending."""
    work: dict[str, int] = {}
    for n in graph.nodes:
        work[graph.fu_class(n)] = work.get(graph.fu_class(n), 0) + graph.exec_time(n)
    pressures = []
    for cls, cycles in work.items():
        units = max(1, len(machine.units_for(cls)))
        pressures.append((cycles / units, cls))
    pressures.sort(reverse=True)
    return [cls for _, cls in pressures]


def delay_idle_slots_by_demand(
    schedule: Schedule,
    deadlines: dict[str, int] | None = None,
    machine: MachineModel | None = None,
) -> tuple[Schedule, dict[str, int]]:
    """§4.2 multi-unit heuristic: delay idle slots one unit at a time,
    starting with the units of the most-demanded class ("suppose that some
    type of functional unit is in great demand ... reduce the deadlines of
    nodes only on the specific type of functional unit")."""
    machine = machine or single_unit_machine()
    d = fill_deadlines(schedule.graph, deadlines)
    classes = class_demand(schedule.graph, machine)
    ordered_units: list[Unit] = []
    for cls in classes:
        for u in machine.units_for(cls):
            if u not in ordered_units:
                ordered_units.append(u)
    for u in machine.unit_names():
        if u not in ordered_units:
            ordered_units.append(u)
    for u in ordered_units:
        if any(schedule.units[n] == u for n in schedule.starts):
            schedule, d = delay_idle_slots(schedule, d, machine, unit=u)
    return schedule, d


def anticipatory_schedule(
    program: Trace | LoopTrace | LoopGraph,
    machine: MachineModel | None = None,
) -> LookaheadResult | LoopTraceResult | LoopScheduleResult:
    """Top-level dispatch of anticipatory instruction scheduling.

    - :class:`~repro.ir.basicblock.LoopTrace` → §5.1 loop-trace algorithm;
    - :class:`~repro.ir.loopgraph.LoopGraph` → §5.2 single-block loop
      algorithm;
    - plain :class:`~repro.ir.basicblock.Trace` → §4 Algorithm Lookahead.
    """
    machine = machine or single_unit_machine()
    if isinstance(program, LoopTrace):
        return schedule_loop_trace(program, machine)
    if isinstance(program, LoopGraph):
        return schedule_single_block_loop(program, machine)
    if isinstance(program, Trace):
        return algorithm_lookahead(program, machine)
    raise TypeError(f"cannot schedule object of type {type(program).__name__}")
