"""Dependence-graph construction from instruction operand information.

Implements the classic def-use analysis used by post-pass schedulers
(Hennessy-Gross [9], Gibbons-Muchnick [8], as cited in paper §6): RAW edges
carry the producer's result latency; WAR and WAW edges carry latency 0 (the
consumer only needs to be *ordered* after); memory accesses conflict when
they may touch the same abstract location (a store against any access of the
same location, or of the wildcard ``"*"``); and every non-branch instruction
is control-dependent on the block-terminating branch (latency 0), matching the
control-dependence edges of the paper's Figure 3.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from .basicblock import BasicBlock, Trace
from .depgraph import DependenceGraph
from .instruction import Instruction


def _mem_conflict(a: Iterable[str], b: Iterable[str]) -> bool:
    sa, sb = set(a), set(b)
    if not sa or not sb:
        return False
    return "*" in sa or "*" in sb or bool(sa & sb)


def build_dependence_graph(instructions: Sequence[Instruction]) -> DependenceGraph:
    """Build the intra-block dependence DAG of a straight-line sequence.

    Edges (earlier ``u`` to later ``v`` in program order):

    - RAW: ``v`` reads a register ``u`` writes — latency ``u.latency``;
    - WAW: ``v`` writes a register ``u`` writes — latency 0;
    - WAR: ``v`` writes a register ``u`` reads — latency 0;
    - memory RAW (store then load of a conflicting location) —
      latency ``u.latency``; memory WAR/WAW — latency 0;
    - control: every instruction precedes the block's branch — latency 0.
    """
    g = DependenceGraph()
    for instr in instructions:
        g.add_instruction(instr)
    for j, v in enumerate(instructions):
        for i in range(j):
            u = instructions[i]
            lat: int | None = None
            if set(u.writes) & set(v.reads):
                lat = u.latency  # RAW
            elif set(u.writes) & set(v.writes) or set(u.reads) & set(v.writes):
                lat = 0  # WAW / WAR
            if _mem_conflict(u.stores, v.loads):
                lat = max(lat if lat is not None else 0, u.latency)  # memory RAW
            elif _mem_conflict(u.stores, v.stores) or _mem_conflict(u.loads, v.stores):
                lat = max(lat if lat is not None else 0, 0)  # memory WAW / WAR
            if v.is_branch and lat is None:
                lat = 0  # control dependence
            if lat is not None:
                g.add_edge(u.name, v.name, lat)
    return g


def build_block(name: str, instructions: Sequence[Instruction]) -> BasicBlock:
    """Build a :class:`BasicBlock` with its derived dependence graph."""
    return BasicBlock(
        name=name,
        graph=build_dependence_graph(instructions),
        instructions=list(instructions),
    )


def build_trace(
    named_blocks: Sequence[tuple[str, Sequence[Instruction]]],
) -> Trace:
    """Build a :class:`Trace` from instruction sequences, deriving cross-block
    dependence edges with the same def-use rules applied across blocks.

    Branches only collect control dependences from their *own* block; register
    and memory dependences cross blocks freely (they are what the hardware
    window must respect at runtime).
    """
    blocks = [build_block(name, instrs) for name, instrs in named_blocks]
    flat: list[tuple[int, Instruction]] = []
    for bi, (_, instrs) in enumerate(named_blocks):
        for instr in instrs:
            flat.append((bi, instr))

    cross: list[tuple[str, str, int]] = []
    for j, (bj, v) in enumerate(flat):
        for i in range(j):
            bi, u = flat[i]
            if bi == bj:
                continue  # intra-block edges already built
            lat: int | None = None
            if set(u.writes) & set(v.reads):
                lat = u.latency
            elif set(u.writes) & set(v.writes) or set(u.reads) & set(v.writes):
                lat = 0
            if _mem_conflict(u.stores, v.loads):
                lat = max(lat if lat is not None else 0, u.latency)
            elif _mem_conflict(u.stores, v.stores) or _mem_conflict(u.loads, v.stores):
                lat = max(lat if lat is not None else 0, 0)
            if lat is not None:
                cross.append((u.name, v.name, lat))
    return Trace(blocks, cross_edges=cross)
