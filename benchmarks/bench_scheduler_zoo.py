"""E15 — the full scheduler zoo on one corpus.

Every local scheduler the paper's related-work section discusses, plus the
anticipatory pipeline, on a common set of random traces: the table the §7
prototype study would have led with.  Expected shape (asserted): the
rank-based schedulers (the paper's lineage) are at least as good as every
classic list heuristic in total cycles, and anticipatory scheduling leads
the safe field.
"""

from common import emit_metrics, emit_table

from repro.core import algorithm_lookahead, local_block_orders
from repro.machine import paper_machine
from repro.schedulers import (
    bernstein_gertner_schedule,
    block_orders_with_priority,
    critical_path_priority,
    gibbons_muchnick_schedule,
    global_upper_bound,
    hennessy_gross_schedule,
    source_order_priority,
    warren_schedule,
)
from repro.sim import simulate_trace
from repro.workloads import random_trace

TRIALS = 10
WINDOW = 4


def make_trace(seed: int):
    return random_trace(
        3,
        (5, 8),
        edge_probability=0.3,
        cross_probability=0.08,
        latencies=(0, 1, 2, 4),
        seed=seed,
    )


def per_block(trace, machine, schedule_fn):
    return [schedule_fn(bb.graph, machine).permutation() for bb in trace.blocks]


def test_scheduler_zoo(benchmark):
    machine = paper_machine(WINDOW)
    totals: dict[str, int] = {}
    for seed in range(TRIALS):
        trace = make_trace(seed)
        entries = {
            "source order": block_orders_with_priority(
                trace, source_order_priority, machine
            ),
            "critical path": block_orders_with_priority(
                trace, critical_path_priority, machine
            ),
            "Gibbons-Muchnick [8]": per_block(trace, machine, gibbons_muchnick_schedule),
            "Hennessy-Gross [9]": per_block(trace, machine, hennessy_gross_schedule),
            "Warren [12]": per_block(trace, machine, warren_schedule),
            "Bernstein-Gertner [3]": per_block(
                trace, machine, bernstein_gertner_schedule
            ),
            "Rank Algorithm [10]": local_block_orders(
                trace, machine, delay_idles=False
            ),
            "Rank + idle delay (§3)": local_block_orders(
                trace, machine, delay_idles=True
            ),
            "Anticipatory (§4)": algorithm_lookahead(trace, machine).block_orders,
        }
        for name, orders in entries.items():
            totals[name] = totals.get(name, 0) + simulate_trace(
                trace, orders, machine
            ).makespan
        totals["global bound (unsafe)"] = totals.get(
            "global bound (unsafe)", 0
        ) + global_upper_bound(trace, machine).makespan

    rows = sorted(totals.items(), key=lambda kv: kv[1])
    emit_table(
        "E15_scheduler_zoo",
        ["scheduler", f"total cycles over {TRIALS} traces"],
        rows,
        title=(
            "E15: scheduler zoo — 3-block random traces, latencies 0/1/2/4, "
            f"W={WINDOW}, windowed execution"
        ),
    )

    # Shape: anticipatory leads the safe field; the unsafe global bound is
    # the only thing below it.
    safe = {k: v for k, v in totals.items() if k != "global bound (unsafe)"}
    assert totals["Anticipatory (§4)"] == min(safe.values())
    assert totals["global bound (unsafe)"] <= totals["Anticipatory (§4)"]
    assert totals["Rank Algorithm [10]"] <= totals["source order"]

    emit_metrics(
        "E15_scheduler_zoo",
        {"trials": TRIALS, "total_cycles": dict(sorted(totals.items()))},
        machine=machine,
    )

    trace = make_trace(0)
    benchmark(lambda: algorithm_lookahead(trace, machine))
