"""Metrics, reporting, DOT export and output verification."""

from .dot import graph_to_dot, loop_to_dot, schedule_to_dot, trace_to_dot
from .metrics import (
    IdleStats,
    gap_recovered,
    geometric_mean,
    idle_stats,
    overlap_cycles,
    speedup,
    utilization,
)
from .report import (
    format_markdown_table,
    format_table,
    phase_summary,
    print_table,
    render_report_diff,
    render_run_report,
    stall_attribution_summary,
    trace_summary,
)
from .verify import (
    OutputError,
    check_block_orders,
    check_runtime_legality,
    verify_scheduler_output,
)

__all__ = [
    "IdleStats",
    "OutputError",
    "check_block_orders",
    "check_runtime_legality",
    "format_markdown_table",
    "format_table",
    "gap_recovered",
    "geometric_mean",
    "graph_to_dot",
    "idle_stats",
    "loop_to_dot",
    "overlap_cycles",
    "phase_summary",
    "print_table",
    "render_report_diff",
    "render_run_report",
    "stall_attribution_summary",
    "trace_summary",
    "schedule_to_dot",
    "speedup",
    "trace_to_dot",
    "utilization",
    "verify_scheduler_output",
]
