"""Tests for spilling linear-scan allocation, including a symbolic dataflow
interpreter proving the spill code preserves every value's producer."""

import pytest

from repro.ir import Instruction, build_trace, minimum_registers, rename_registers
from repro.ir.regalloc import allocate_with_spills, spill_count
from repro.workloads import random_program


def flat(program):
    return [i for _, instrs in program for i in instrs]


def entry_state(renamed, allocation):
    """Precolored live-ins: each non-spilled live-in arrives in its
    assigned register (the SpillAllocation contract)."""
    live_ins = set()
    defined = set()
    for inst in renamed:
        for r in inst.reads:
            if r not in defined:
                live_ins.add(r)
        defined.update(inst.writes)
    return {
        allocation.assignment[v]: f"livein:{v}"
        for v in live_ins
        if v in allocation.assignment
    }


def interpret_producers(instructions, entry_regs=None):
    """Symbolically execute a straight-line sequence: map every instruction
    to the producer instruction (or live-in name) of each of its operands.
    Registers and memory are tracked; reload/spill pseudo-ops are resolved
    transparently.  ``entry_regs`` primes the register file with precolored
    live-in values."""
    reg: dict[str, str] = dict(entry_regs or {})
    mem: dict[str, str] = {}
    producers: dict[str, tuple] = {}
    for inst in instructions:
        sources = []
        for r in inst.reads:
            sources.append(reg.get(r, f"livein:{r}"))
        for loc in inst.loads:
            if loc.startswith("stack:"):
                # A spilled live-in's memory home holds the live-in value.
                default = f"livein:{loc[len('stack:'):]}"
            else:
                default = f"initmem:{loc}"
            sources.append(mem.get(loc, default))
        if inst.opcode == "reload":
            # The reload's value is whatever the stack slot holds.
            value = sources[-1]
        elif inst.opcode == "spill":
            value = sources[0]
        else:
            producers[inst.name] = tuple(sources)
            value = inst.name
        for r in inst.writes:
            reg[r] = value
        for loc in inst.stores:
            mem[loc] = value
    return producers


class TestSpillingCorrectness:
    @pytest.mark.parametrize("seed", range(8))
    def test_dataflow_preserved_under_pressure(self, seed):
        program = random_program(2, 9, seed=seed)
        renamed = rename_registers(flat(program))
        order = [i.name for i in renamed]
        reference = interpret_producers(renamed)
        k_min = minimum_registers(renamed, order)
        for k in (3, max(3, k_min // 2), k_min + 2):
            allocation = allocate_with_spills(renamed, order, k)
            got = interpret_producers(
                allocation.instructions, entry_state(renamed, allocation)
            )
            assert got == reference, f"dataflow broken at K={k}"

    def test_no_spills_with_enough_registers(self):
        program = random_program(2, 6, seed=1)
        renamed = rename_registers(flat(program))
        order = [i.name for i in renamed]
        k = minimum_registers(renamed, order) + 2
        allocated = allocate_with_spills(renamed, order, k)
        assert allocated.spill_count() == 0

    def test_spills_appear_under_pressure(self):
        program = random_program(2, 10, seed=2)
        renamed = rename_registers(flat(program))
        order = [i.name for i in renamed]
        allocated = allocate_with_spills(renamed, order, 3)
        assert allocated.spill_count() > 0

    def test_fewer_registers_more_spills(self):
        program = random_program(2, 12, seed=3)
        renamed = rename_registers(flat(program))
        order = [i.name for i in renamed]
        counts = [
            allocate_with_spills(renamed, order, k).spill_count()
            for k in (3, 5, 9, 14)
        ]
        assert counts == sorted(counts, reverse=True)

    def test_register_budget_respected(self):
        program = random_program(2, 10, seed=4)
        renamed = rename_registers(flat(program))
        order = [i.name for i in renamed]
        for k in (3, 4, 6):
            allocated = allocate_with_spills(renamed, order, k)
            regs = {
                r for i in allocated.instructions for r in i.reads + i.writes
                if r.startswith("p")
            }
            assert len(regs) <= k

    def test_minimum_of_three(self):
        with pytest.raises(ValueError, match="at least 3"):
            allocate_with_spills([], [], 2)

    def test_allocated_code_builds_and_schedules(self):
        from repro.core import algorithm_lookahead
        from repro.machine import paper_machine
        from repro.sim import simulate_trace

        program = random_program(2, 8, seed=5)
        renamed = rename_registers(flat(program))
        order = [i.name for i in renamed]
        allocated = allocate_with_spills(renamed, order, 3)
        # Spill code interleaves with its instructions; treat the allocated
        # sequence as one block for the end-to-end check.
        trace = build_trace([("B", allocated.instructions)])
        m = paper_machine(4)
        res = algorithm_lookahead(trace, m)
        sim = simulate_trace(trace, res.block_orders, m)
        sim.schedule.validate()
