"""Unit tests for the fault-injection layer: plan semantics, the
active-plan registry, seeded determinism, and the simulator hooks."""

import pytest

from repro import graph_from_edges, parse_trace
from repro.machine import paper_machine
from repro.robust.faults import (
    FaultPlan,
    FaultState,
    active_plan,
    default_fault_plans,
    fault_state,
    injection,
    perturbed_machine,
    set_plan,
    suspended,
)
from repro.sim import SimulationDeadlock, simulate_trace, simulate_window

TWO_BLOCK = """
block top
  a op=li  defs=r1 lat=1
  b op=li  defs=r2 lat=1
  c op=mul defs=r3 uses=r1,r2 lat=4
block bottom
  d op=add defs=r4 uses=r3 lat=1
"""


class TestFaultPlan:
    def test_default_is_noop(self):
        plan = FaultPlan()
        assert plan.is_noop
        assert not plan.corrupts_stream
        assert not plan.slows_only

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(latency_jitter=-1)
        with pytest.raises(ValueError):
            FaultPlan(window_shrink=-1)
        with pytest.raises(ValueError):
            FaultPlan(mispredict_rate=1.5)
        with pytest.raises(ValueError):
            FaultPlan(deadlock_after=-1)

    def test_slows_only_classification(self):
        assert FaultPlan(latency_jitter=2).slows_only
        assert FaultPlan(window_shrink=1).slows_only
        assert FaultPlan(mispredict_rate=0.5).slows_only
        assert not FaultPlan(window_grow=1).slows_only
        assert not FaultPlan(truncate_stream=True).slows_only
        assert not FaultPlan(deadlock_after=1).slows_only

    def test_corrupts_stream(self):
        assert FaultPlan(truncate_stream=True).corrupts_stream
        assert FaultPlan(duplicate_stream=True).corrupts_stream
        assert not FaultPlan(latency_jitter=3).corrupts_stream

    def test_rng_is_deterministic_and_site_independent(self):
        plan = FaultPlan(seed=7)
        a = [plan.rng("site.a").random() for _ in range(3)]
        b = [plan.rng("site.a").random() for _ in range(3)]
        c = [plan.rng("site.b").random() for _ in range(3)]
        assert a == b
        assert a != c

    def test_reseeded(self):
        plan = FaultPlan(name="jitter", latency_jitter=2, seed=1)
        other = plan.reseeded(9)
        assert other.seed == 9
        assert other.latency_jitter == 2 and other.name == "jitter"

    def test_describe_lists_enabled_fields_only(self):
        text = FaultPlan(name="j", latency_jitter=2).describe()
        assert text == "j(latency_jitter=2)"

    def test_default_suite_covers_every_kind(self):
        plans = {p.name: p for p in default_fault_plans(seed=3)}
        assert plans["noop"].is_noop
        assert plans["latency_jitter"].latency_jitter > 0
        assert plans["window_shrink"].window_shrink > 0
        assert plans["window_grow"].window_grow > 0
        assert plans["mispredict_storm"].mispredict_rate > 0
        assert plans["stream_truncate"].corrupts_stream
        assert plans["stream_duplicate"].corrupts_stream
        assert plans["spurious_deadlock"].deadlock_after is not None
        assert all(p.seed == 3 for p in plans.values())


class TestRegistry:
    def test_off_by_default(self):
        assert active_plan() is None
        assert fault_state(["a"]) is None

    def test_noop_plans_are_never_installed(self):
        previous = set_plan(FaultPlan())
        try:
            assert active_plan() is None
        finally:
            set_plan(previous)

    def test_injection_restores_previous(self):
        plan = FaultPlan(name="j", latency_jitter=1)
        with injection(plan):
            assert active_plan() is plan
            with injection(FaultPlan(name="k", window_shrink=1)) as inner:
                assert active_plan() is inner
            assert active_plan() is plan
        assert active_plan() is None

    def test_suspended_masks_active_plan(self):
        with injection(FaultPlan(name="j", latency_jitter=1)):
            with suspended():
                assert active_plan() is None
            assert active_plan() is not None


class TestFaultState:
    def test_latency_extra_cached_and_bounded(self):
        state = FaultState(FaultPlan(latency_jitter=3, seed=1), ["a", "b"])
        first = state.latency_extra("a", "b")
        assert 0 <= first <= 3
        assert state.latency_extra("a", "b") == first  # one draw per edge

    def test_latency_extra_zero_without_jitter(self):
        state = FaultState(FaultPlan(window_shrink=1), ["a", "b"])
        assert state.latency_extra("a", "b") == 0

    def test_effective_window_clamped_to_one(self):
        state = FaultState(FaultPlan(window_shrink=10, seed=2), ["a"])
        assert all(state.effective_window(2) >= 1 for _ in range(20))

    def test_perturb_stream_truncate_and_duplicate(self):
        trunc = FaultState(FaultPlan(truncate_stream=True), ["a", "b", "c"])
        assert trunc.perturb_stream(["a", "b", "c"]) == ["a", "b"]
        dup = FaultState(FaultPlan(duplicate_stream=True), ["a", "b", "c"])
        out = dup.perturb_stream(["a", "b", "c"])
        assert len(out) == 4 and sorted(set(out)) == ["a", "b", "c"]

    def test_deadlock_due(self):
        state = FaultState(FaultPlan(deadlock_after=2), ["a"])
        assert not state.deadlock_due(1)
        assert state.deadlock_due(2)

    def test_draws_reproducible_per_plan_and_stream(self):
        plan = FaultPlan(latency_jitter=3, window_shrink=1, seed=5)
        s1 = FaultState(plan, ["a", "b", "c"])
        s2 = FaultState(plan, ["a", "b", "c"])
        assert [s1.latency_extra("a", "b"), s1.effective_window(4)] == [
            s2.latency_extra("a", "b"),
            s2.effective_window(4),
        ]


class TestPerturbedMachine:
    def test_noop_returns_same_object(self):
        m = paper_machine(4)
        assert perturbed_machine(m, FaultPlan(latency_jitter=3)) is m

    def test_window_wobble_applied_and_clamped(self):
        m = paper_machine(2)
        out = perturbed_machine(m, FaultPlan(window_shrink=5, seed=1))
        assert out.window_size >= 1


class TestSimulatorHooks:
    """End-to-end behaviour of each fault kind inside the simulator."""

    def _clean(self, machine):
        trace = parse_trace(TWO_BLOCK)
        orders = [["a", "b", "c"], ["d"]]
        return trace, orders, simulate_trace(trace, orders, machine)

    def test_no_plan_and_noop_plan_identical(self):
        machine = paper_machine(2)
        trace, orders, clean = self._clean(machine)
        with injection(FaultPlan()):
            faulted = simulate_trace(trace, orders, machine)
        assert faulted.makespan == clean.makespan
        assert faulted.stall_cycles == clean.stall_cycles

    def test_latency_jitter_slows_and_is_deterministic(self):
        machine = paper_machine(2)
        trace, orders, clean = self._clean(machine)
        plan = FaultPlan(name="j", latency_jitter=3, seed=4)
        with injection(plan):
            one = simulate_trace(trace, orders, machine)
            two = simulate_trace(trace, orders, machine)
        assert one.makespan == two.makespan
        assert one.makespan >= clean.makespan

    def test_window_shrink_never_deadlocks_valid_stream(self):
        # All dependences in a per-block-order stream point backward, so a
        # shrunken window can only slow execution, never wedge it.
        machine = paper_machine(4)
        trace, orders, clean = self._clean(machine)
        with injection(FaultPlan(name="s", window_shrink=3, seed=2)):
            faulted = simulate_trace(trace, orders, machine)
        assert faulted.makespan >= clean.makespan

    def test_truncated_stream_rejected_naming_instruction(self):
        g = graph_from_edges([("a", "b", 1)])
        with injection(FaultPlan(truncate_stream=True)):
            with pytest.raises(ValueError, match="permutation") as info:
                simulate_window(g, ["a", "b"], paper_machine(2))
        assert "b" in str(info.value)

    def test_duplicated_stream_rejected(self):
        g = graph_from_edges([("a", "b", 1)])
        with injection(FaultPlan(duplicate_stream=True, seed=1)):
            with pytest.raises(ValueError, match="permutation"):
                simulate_window(g, ["a", "b"], paper_machine(2))

    def test_injected_deadlock_is_diagnosed(self):
        g = graph_from_edges([("a", "b", 1)])
        with injection(FaultPlan(name="dl", deadlock_after=1, seed=0)):
            with pytest.raises(SimulationDeadlock) as info:
                simulate_window(g, ["a", "b"], paper_machine(2))
        exc = info.value
        assert exc.injected
        assert exc.node is not None
        assert exc.window is not None
        assert "injected" in str(exc)

    def test_forced_mispredicts_slow_multiblock_trace(self):
        machine = paper_machine(2)
        trace, orders, clean = self._clean(machine)
        plan = FaultPlan(
            name="mp", mispredict_rate=1.0, mispredict_penalty=5, seed=0
        )
        with injection(plan):
            faulted = simulate_trace(trace, orders, machine)
        assert faulted.makespan > clean.makespan

    def test_suspended_restores_clean_behaviour(self):
        machine = paper_machine(2)
        trace, orders, clean = self._clean(machine)
        with injection(FaultPlan(truncate_stream=True)):
            with suspended():
                ok = simulate_trace(trace, orders, machine)
        assert ok.makespan == clean.makespan
