"""E3 — paper Figure 3: partial-products loop, Schedule 1 vs Schedule 2.

Regenerates both schedules' single-iteration makespans and steady-state
initiation intervals (5/7 vs 6/6), asserts the §5.2 algorithm discovers
Schedule 2, and benchmarks the single-block loop scheduler.
"""

from common import emit_metrics, emit_table

from repro.core import schedule_single_block_loop
from repro.machine import paper_machine
from repro.sim import (
    in_order_offsets,
    periodic_initiation_interval,
    simulate_loop_order,
    simulated_initiation_interval,
)
from repro.workloads import FIG3_SCHEDULE1, FIG3_SCHEDULE2, figure3_loop


def test_fig3_reproduction(benchmark):
    loop = figure3_loop()
    m1 = paper_machine(1)

    rows = []
    measured = {}
    for name, order, paper_one, paper_ii in (
        ("Schedule 1", FIG3_SCHEDULE1, 5, 7),
        ("Schedule 2", FIG3_SCHEDULE2, 6, 6),
    ):
        one = simulate_loop_order(loop, order, 1, m1).makespan
        off = in_order_offsets(loop, order, m1)
        ii = periodic_initiation_interval(loop, off, m1)
        sim_ii = simulated_initiation_interval(loop, order, m1)
        measured[name] = (one, ii, sim_ii)
        assert one == paper_one
        assert ii == paper_ii
        assert sim_ii == paper_ii
        rows.append(
            [name, " ".join(order), f"{paper_one}/{paper_ii}", f"{one}/{ii}", sim_ii]
        )

    res = schedule_single_block_loop(loop, m1)
    assert tuple(res.order) == FIG3_SCHEDULE2
    rows.append(
        [
            "§5.2 output",
            " ".join(res.order),
            "6/6",
            f"{res.best.single_iteration_makespan}/"
            f"{simulated_initiation_interval(loop, res.order, m1)}",
            simulated_initiation_interval(loop, res.order, m1),
        ]
    )
    emit_table(
        "E3_fig3",
        ["schedule", "order", "paper 1-iter/II", "measured 1-iter/II",
         "simulated II (W=1)"],
        rows,
        title="E3 / Figure 3: partial-products loop steady state",
    )

    # Window sweep: hardware lookahead rescues Schedule 1's trailing idles.
    sweep = []
    for w in (1, 2, 4, 8):
        mw = paper_machine(w)
        sweep.append(
            [
                w,
                simulated_initiation_interval(loop, FIG3_SCHEDULE1, mw),
                simulated_initiation_interval(loop, FIG3_SCHEDULE2, mw),
            ]
        )
    emit_table(
        "E3_fig3_window",
        ["window W", "Schedule 1 II", "Schedule 2 II"],
        sweep,
        title="E3 / Figure 3 follow-up: steady-state II under lookahead",
    )

    emit_metrics(
        "E3_fig3",
        {
            "schedule1_one_iter": measured["Schedule 1"][0],
            "schedule1_ii": measured["Schedule 1"][1],
            "schedule2_one_iter": measured["Schedule 2"][0],
            "schedule2_ii": measured["Schedule 2"][1],
            "chosen_order": " ".join(res.order),
            "window_sweep_ii": {
                str(w): {"schedule1": s1, "schedule2": s2}
                for w, s1, s2 in sweep
            },
        },
        machine=m1,
    )

    benchmark(lambda: schedule_single_block_loop(figure3_loop(), m1))
