"""Random instruction-level programs (operands included).

Unlike :mod:`repro.workloads.random_dag`, which generates bare dependence
graphs, these generators produce :class:`~repro.ir.instruction.Instruction`
sequences with register and memory operands, so the whole front end
(def-use analysis, renaming, register allocation) is exercised.  Used by the
E12 register-pressure benchmark and the CLI tests.
"""

from __future__ import annotations

import numpy as np

from ..ir.basicblock import Trace
from ..ir.builder import build_trace
from ..ir.instruction import Instruction
from .random_dag import _rng

#: (opcode, latency, exec_time) alphabet for generated arithmetic ops.
OP_ALPHABET = (
    ("add", 1, 1),
    ("sub", 1, 1),
    ("mul", 4, 1),
    ("div", 4, 2),
    ("load", 2, 1),
    ("store", 1, 1),
)


def random_program(
    num_blocks: int,
    block_size: int,
    live_ins: int = 4,
    load_fraction: float = 0.2,
    store_fraction: float = 0.1,
    seed: int | np.random.Generator | None = 0,
) -> list[tuple[str, list[Instruction]]]:
    """Generate a straight-line program as named instruction blocks.

    Every instruction reads one or two previously defined values (or
    live-ins ``in0..``) and defines a fresh value ``t<k>`` — i.e. the
    program arrives in *renamed* form with only true dependences; register
    pressure is then applied by :func:`repro.ir.regalloc.allocate_registers`.
    A ``load_fraction`` of instructions are loads (latency 2, distinct
    locations with occasional reuse) and a ``store_fraction`` are stores of
    a previously computed value.
    """
    if num_blocks < 1 or block_size < 1:
        raise ValueError("num_blocks and block_size must be >= 1")
    rng = _rng(seed)
    defined: list[str] = [f"in{i}" for i in range(max(live_ins, 1))]
    blocks: list[tuple[str, list[Instruction]]] = []
    counter = 0
    for b in range(num_blocks):
        instrs: list[Instruction] = []
        for _ in range(block_size):
            roll = rng.random()
            dest = f"t{counter}"
            name = f"i{counter}"
            counter += 1
            if roll < load_fraction:
                loc = f"m{int(rng.integers(0, 6))}"
                instrs.append(
                    Instruction(
                        name=name, opcode="load", writes=(dest,),
                        reads=(str(rng.choice(defined)),),
                        loads=(loc,), latency=2,
                    )
                )
            elif roll < load_fraction + store_fraction and defined:
                loc = f"m{int(rng.integers(0, 6))}"
                instrs.append(
                    Instruction(
                        name=name, opcode="store",
                        reads=(str(rng.choice(defined)),),
                        stores=(loc,), latency=1,
                    )
                )
                continue  # stores define nothing
            else:
                op, lat, et = OP_ALPHABET[int(rng.integers(0, 4))]
                nsrc = 2 if rng.random() < 0.7 else 1
                srcs = tuple(
                    str(rng.choice(defined)) for _ in range(nsrc)
                )
                instrs.append(
                    Instruction(
                        name=name, opcode=op, reads=srcs, writes=(dest,),
                        latency=lat, exec_time=et,
                    )
                )
            defined.append(dest)
        blocks.append((f"B{b}", instrs))
    return blocks


def random_program_trace(
    num_blocks: int,
    block_size: int,
    seed: int | np.random.Generator | None = 0,
    **kwargs,
) -> Trace:
    """Convenience: generate and build the trace in one call."""
    return build_trace(random_program(num_blocks, block_size, seed=seed, **kwargs))
