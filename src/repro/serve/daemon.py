"""Asyncio front-end of the scheduling service: ``repro serve``.

Two transports over one :class:`~repro.serve.service.ScheduleService`:

- **unix socket** (``--socket PATH``): newline-delimited JSON.  Each line
  is either a scheduling request (:mod:`repro.serve.protocol`) or a
  control op — ``{"op": "ping"}``, ``{"op": "stats"}``,
  ``{"op": "metrics"}`` — and receives exactly one response line.
  Multiple requests may be pipelined on one connection; responses come
  back in order.
- **HTTP** (``--port N``): a deliberately minimal HTTP/1.1 subset —
  ``POST /v1/schedule`` (a request document, or ``{"requests": [...]}``
  for an explicit batch), ``GET /metrics`` (Prometheus text exposition of
  the service registry), ``GET /healthz`` and ``GET /stats``.  No
  keep-alive, no chunked bodies; enough for curl, load generators and
  scrapers without pulling in a web framework.

Batching: every schedule request lands in one queue; a collector task
drains it into batches of up to ``batch_max`` requests, waiting at most
``batch_window_s`` after the first arrival so concurrent clients coalesce.
Each batch runs in a **single-thread** executor — the obs recorder is
process-global, so request handling must not interleave in threads; CPU
parallelism comes from the service's worker pool (``--jobs``), not from
threading the daemon.
"""

from __future__ import annotations

import asyncio
import json
import os
import threading
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from ..obs.expo import prometheus_text
from .protocol import error_response
from .service import ScheduleService

#: Default limit on requests coalesced into one batch.
DEFAULT_BATCH_MAX = 16

#: Default coalescing window after the first request of a batch (seconds).
DEFAULT_BATCH_WINDOW_S = 0.002

_MAX_LINE = 32 * 1024 * 1024  # 32 MiB: generous bound for one JSON request


class ScheduleServer:
    """The daemon: transports + batcher around a :class:`ScheduleService`."""

    def __init__(
        self,
        service: ScheduleService,
        socket_path: str | os.PathLike | None = None,
        host: str = "127.0.0.1",
        port: int | None = None,
        batch_max: int = DEFAULT_BATCH_MAX,
        batch_window_s: float = DEFAULT_BATCH_WINDOW_S,
    ) -> None:
        if socket_path is None and port is None:
            raise ValueError("need a unix socket path and/or a TCP port")
        if batch_max < 1:
            raise ValueError(f"batch_max must be >= 1, got {batch_max}")
        self.service = service
        self.socket_path = Path(socket_path) if socket_path is not None else None
        self.host = host
        self.port = port
        self.batch_max = batch_max
        self.batch_window_s = batch_window_s
        self._queue: asyncio.Queue | None = None
        self._servers: list[asyncio.base_events.Server] = []
        self._batcher: asyncio.Task | None = None
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="serve-batch"
        )

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        self._queue = asyncio.Queue()
        self._batcher = asyncio.get_running_loop().create_task(self._batch_loop())
        if self.socket_path is not None:
            self.socket_path.parent.mkdir(parents=True, exist_ok=True)
            if self.socket_path.exists():
                self.socket_path.unlink()
            self._servers.append(
                await asyncio.start_unix_server(
                    self._serve_unix, path=str(self.socket_path), limit=_MAX_LINE
                )
            )
        if self.port is not None:
            server = await asyncio.start_server(
                self._serve_http, host=self.host, port=self.port, limit=_MAX_LINE
            )
            self._servers.append(server)
            # Resolve port 0 to the actual bound port for clients.
            self.port = server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        for server in self._servers:
            server.close()
            await server.wait_closed()
        self._servers.clear()
        if self._batcher is not None:
            self._batcher.cancel()
            try:
                await self._batcher
            except asyncio.CancelledError:
                pass
            self._batcher = None
        self._executor.shutdown(wait=True)
        if self.socket_path is not None and self.socket_path.exists():
            self.socket_path.unlink()

    async def serve_forever(self) -> None:
        if not self._servers:
            await self.start()
        try:
            await asyncio.gather(*(s.serve_forever() for s in self._servers))
        finally:
            await self.stop()

    def endpoints(self) -> list[str]:
        """Human-readable listening endpoints (valid after :meth:`start`)."""
        out = []
        if self.socket_path is not None:
            out.append(f"unix:{self.socket_path}")
        if self.port is not None:
            out.append(f"http://{self.host}:{self.port}")
        return out

    # -- batching ------------------------------------------------------------

    async def _submit(self, doc: dict) -> dict:
        """Enqueue one request document; resolves to its response."""
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        await self._queue.put((doc, future))
        return await future

    async def _batch_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            first = await self._queue.get()
            batch = [first]
            deadline = loop.time() + self.batch_window_s
            while len(batch) < self.batch_max:
                remaining = deadline - loop.time()
                if remaining <= 0:
                    break
                try:
                    batch.append(
                        await asyncio.wait_for(self._queue.get(), remaining)
                    )
                except asyncio.TimeoutError:
                    break
            docs = [doc for doc, _ in batch]
            try:
                responses = await loop.run_in_executor(
                    self._executor, self.service.handle_batch, docs
                )
            except Exception as exc:  # defensive: the service shouldn't raise
                responses = [
                    error_response(
                        doc.get("id") if isinstance(doc, dict) else None,
                        f"internal error: {exc}",
                    )
                    for doc in docs
                ]
            for (_, future), response in zip(batch, responses):
                if not future.done():
                    future.set_result(response)

    # -- unix-socket transport ------------------------------------------------

    def _control(self, doc: dict) -> dict | None:
        op = doc.get("op")
        if op is None:
            return None
        if op == "ping":
            return {"ok": True, "op": "ping"}
        if op == "stats":
            return {"ok": True, "op": "stats", "stats": self.service.stats()}
        if op == "metrics":
            return {
                "ok": True,
                "op": "metrics",
                "text": prometheus_text(self.service.registry),
            }
        return {"ok": False, "error": f"unknown op {op!r}"}

    async def _serve_unix(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    await self._write_line(
                        writer, error_response(None, "request line too long")
                    )
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    doc = json.loads(line)
                except ValueError as exc:
                    await self._write_line(
                        writer, error_response(None, f"bad JSON: {exc}")
                    )
                    continue
                if isinstance(doc, dict) and (control := self._control(doc)):
                    await self._write_line(writer, control)
                    continue
                await self._write_line(writer, await self._submit(doc))
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    @staticmethod
    async def _write_line(writer: asyncio.StreamWriter, doc: dict) -> None:
        writer.write(json.dumps(doc, sort_keys=True).encode() + b"\n")
        await writer.drain()

    # -- HTTP transport --------------------------------------------------------

    async def _serve_http(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            status, content_type, body = await self._http_response(reader)
            head = (
                f"HTTP/1.1 {status}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: close\r\n\r\n"
            )
            writer.write(head.encode() + body)
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _http_response(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, bytes]:
        request_line = (await reader.readline()).decode("latin-1").strip()
        parts = request_line.split()
        if len(parts) < 2:
            return "400 Bad Request", "text/plain", b"bad request line\n"
        method, path = parts[0].upper(), parts[1]
        content_length = 0
        while True:
            header = (await reader.readline()).decode("latin-1").strip()
            if not header:
                break
            key, _, value = header.partition(":")
            if key.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    return "400 Bad Request", "text/plain", b"bad content-length\n"
        if method == "GET" and path == "/healthz":
            return "200 OK", "text/plain", b"ok\n"
        if method == "GET" and path == "/metrics":
            text = prometheus_text(self.service.registry)
            return "200 OK", "text/plain; version=0.0.4", text.encode()
        if method == "GET" and path == "/stats":
            body = json.dumps(self.service.stats(), sort_keys=True) + "\n"
            return "200 OK", "application/json", body.encode()
        if method == "POST" and path == "/v1/schedule":
            if content_length <= 0 or content_length > _MAX_LINE:
                return "400 Bad Request", "text/plain", b"need a JSON body\n"
            raw = await reader.readexactly(content_length)
            try:
                doc = json.loads(raw)
            except ValueError as exc:
                body = json.dumps(error_response(None, f"bad JSON: {exc}")) + "\n"
                return "400 Bad Request", "application/json", body.encode()
            if isinstance(doc, dict) and isinstance(doc.get("requests"), list):
                responses = await asyncio.gather(
                    *(self._submit(d) for d in doc["requests"])
                )
                body = json.dumps({"responses": responses}, sort_keys=True) + "\n"
            else:
                body = json.dumps(await self._submit(doc), sort_keys=True) + "\n"
            return "200 OK", "application/json", body.encode()
        return "404 Not Found", "text/plain", b"not found\n"


class ServerHandle:
    """A daemon running on a background thread (tests, smoke, notebooks).

    ``with ServerHandle(server):`` starts the asyncio loop on a daemon
    thread, waits until the transports are bound, and tears everything
    down on exit.
    """

    def __init__(self, server: ScheduleServer) -> None:
        self.server = server
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._startup_error: BaseException | None = None

    def __enter__(self) -> "ServerHandle":
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        if not self._started.wait(timeout=10):
            raise RuntimeError("schedule server failed to start within 10 s")
        if self._startup_error is not None:
            raise RuntimeError("schedule server failed to start") from (
                self._startup_error
            )
        return self

    def _run(self) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)
        try:
            self._loop.run_until_complete(self.server.start())
        except BaseException as exc:
            self._startup_error = exc
            self._started.set()
            return
        self._started.set()
        try:
            self._loop.run_forever()
        finally:
            self._loop.run_until_complete(self.server.stop())
            self._loop.close()

    def __exit__(self, *exc) -> None:
        if self._loop is not None and self._loop.is_running():
            self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=10)
