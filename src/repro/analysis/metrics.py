"""Schedule and simulation metrics used by the benchmark harness."""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Sequence

from ..core.schedule import Schedule
from ..ir.basicblock import Trace


def speedup(baseline: int | float, improved: int | float) -> float:
    """baseline / improved (>1 means ``improved`` is faster)."""
    if improved <= 0:
        raise ValueError(
            f"improved completion time must be positive, got {improved!r}"
        )
    return baseline / improved


def gap_recovered(local: int, anticipatory: int, global_bound: int) -> float:
    """Fraction of the local→global completion-time gap recovered by
    anticipatory scheduling: (local − anticipatory) / (local − global).
    1.0 = matches the unsafe global bound; 0.0 = no better than local.
    Returns 1.0 when there is no gap to recover."""
    gap = local - global_bound
    if gap <= 0:
        return 1.0
    return (local - anticipatory) / gap


@dataclass
class IdleStats:
    """Idle-slot statistics of a schedule."""

    count: int
    first: int | None
    last: int | None
    mean_position: float | None  # normalized to [0, 1] of the makespan

    def to_dict(self) -> dict:
        """JSON-serializable form, for embedding in RunReports."""
        return asdict(self)


def idle_stats(schedule: Schedule) -> IdleStats:
    slots = schedule.idle_slots()
    times = [s.time for s in slots]
    span = schedule.makespan
    return IdleStats(
        count=len(times),
        first=min(times) if times else None,
        last=max(times) if times else None,
        mean_position=(sum(times) / len(times) / max(span, 1)) if times else None,
    )


def utilization(schedule: Schedule, total_units: int = 1) -> float:
    """Busy unit-cycles divided by makespan × units."""
    span = schedule.makespan
    if span == 0:
        return 1.0
    busy = sum(
        schedule.graph.exec_time(n) for n in schedule.graph.nodes
    )
    return busy / (span * total_units)


def overlap_cycles(
    trace: Trace, schedule: Schedule
) -> int:
    """Number of runtime cycles in which an instruction issued *before* some
    instruction of an earlier block (a direct measure of the cross-block
    overlap that hardware lookahead realized).

    An instruction counts iff some earlier-issued instruction belongs to a
    later block, i.e. iff the running maximum block index over the issue
    prefix exceeds its own block index — one O(n) pass, no rescan.
    """
    count = 0
    max_block = -1
    for node in schedule.permutation():
        block = trace.block_index(node)
        if max_block > block:
            count += 1
        elif block > max_block:
            max_block = block
    return count


def geometric_mean(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("geometric mean of empty sequence")
    prod = 1.0
    for i, v in enumerate(values):
        if v <= 0:
            raise ValueError(
                f"geometric mean needs positive values, got {v!r} at index {i}"
            )
        prod *= v
    return prod ** (1.0 / len(values))
