"""Algorithm Lookahead (paper §4, Fig. 5) — anticipatory instruction
scheduling for a trace of basic blocks.

For each block in trace order the algorithm:

1. **merges** the block's instructions into the uncommitted suffix of the
   schedule built so far (new instructions may only fill idle slots — see
   :mod:`repro.core.merge`);
2. **delays** every idle slot of the merged schedule as late as possible
   (:mod:`repro.core.idle`), maximizing the overlap opportunity with the
   *next* block;
3. **chops** off the committed prefix that can no longer interact with
   future blocks through the W-instruction hardware window
   (:mod:`repro.core.chop`).

The emitted object is *per-basic-block instruction orders*: instructions are
never moved across block boundaries (safety / serviceability).  The predicted
runtime schedule — in which instructions of adjacent blocks overlap — is
realized by the hardware window at runtime and can be measured with
:mod:`repro.sim.window`.

In the Rank-Algorithm regime (unit execution times, 0/1 latencies, single
functional unit) the algorithm is provably optimal (paper §4.1, citing [11]);
for general machines it is the recommended heuristic (§4.2).

Note on long latencies: chop drops the dependence edges from committed nodes
into the retained suffix.  With 0/1 latencies this loses nothing (any edge
from a node completing at or before the committed idle slot t_j is satisfied
by every suffix start time); with longer latencies it makes the *predicted*
schedule slightly optimistic — the simulator remains exact, and this is part
of the §4.2 heuristic territory.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir.basicblock import Trace
from ..machine.model import MachineModel, single_unit_machine
from ..obs import recorder as obs
from .chop import chop
from .idle import delay_idle_slots
from .merge import MergeCarry, MergeResult, merge
from .schedule import Schedule


@dataclass
class LookaheadStep:
    """Diagnostics for one iteration of the main loop (one basic block)."""

    block: str
    merge: MergeResult
    delayed: Schedule
    committed: list[str]
    shift: int


@dataclass
class LookaheadResult:
    """Output of Algorithm Lookahead.

    ``block_orders[i]`` is the emitted instruction order of trace block i —
    the compiler's actual output.  ``priority_list`` is their concatenation
    L = P₁∘P₂∘…∘Pₘ, which Definition 2.3 ties to the runtime behaviour:
    the hardware's window-W greedy execution of L is the predicted schedule.
    ``predicted_makespan`` is the completion time of the final merged
    schedule chain (committed shifts + final suffix makespan).
    """

    trace: Trace
    block_orders: list[list[str]]
    predicted_makespan: int
    steps: list[LookaheadStep] = field(default_factory=list)
    _final_suffix_order: list[str] = field(
        init=False, repr=False, default_factory=list
    )

    @property
    def priority_list(self) -> list[str]:
        return [n for order in self.block_orders for n in order]

    @property
    def schedule_order(self) -> list[str]:
        """The merged (runtime-predicted) order the algorithm constructed,
        i.e. committed prefixes followed by the final suffix."""
        out: list[str] = []
        for step in self.steps:
            out.extend(step.committed)
        out.extend(self._final_suffix_order)
        return out


def algorithm_lookahead(
    trace: Trace,
    machine: MachineModel | None = None,
    delay_idles: bool = True,
    incremental: bool = True,
) -> LookaheadResult:
    """Run Algorithm Lookahead on ``trace`` for ``machine`` (its
    ``window_size`` is the W of the paper).

    ``delay_idles=False`` disables the Delay_Idle_Slots step — an ablation
    switch for measuring the contribution of the paper's key idea (the merge
    deadline discipline remains active).

    ``incremental=False`` disables the :class:`~repro.core.rank.RankEngine`
    fast path everywhere (merge lower bound, merge relaxation loop, idle-slot
    trials), falling back to from-scratch rank computations.  Output is
    bit-identical either way; the flag exists as the oracle for fuzz tests
    and as an escape hatch.
    """
    machine = machine or single_unit_machine()
    window = machine.window_size

    old_nodes: list[str] = []
    old_deadlines: dict[str, int] = {}
    old_makespan = 0
    steps: list[LookaheadStep] = []
    offset = 0
    suffix: Schedule | None = None
    carry = MergeCarry(machine=machine) if incremental else None

    with obs.span("lookahead", blocks=trace.num_blocks, window=window):
        for bb in trace.blocks:
            with obs.span("lookahead.block", block=bb.name):
                new_nodes = bb.node_names
                merged = merge(
                    trace.graph,
                    old_nodes,
                    old_deadlines,
                    old_makespan,
                    new_nodes,
                    machine,
                    carry=carry,
                )
                delayed, deadlines = merged.schedule, merged.deadlines
                if delay_idles:
                    for unit in machine.unit_names():
                        delayed, deadlines = delay_idle_slots(
                            delayed,
                            deadlines,
                            machine,
                            unit=unit,
                            engine=merged.engine,
                            incremental=incremental,
                        )
                result = chop(delayed, deadlines, window)
                if carry is not None:
                    carry.shift = result.shift
                steps.append(
                    LookaheadStep(
                        block=bb.name,
                        merge=merged,
                        delayed=delayed,
                        committed=result.committed,
                        shift=result.shift,
                    )
                )
                offset += result.shift
                suffix = result.suffix
                old_nodes = suffix.graph.nodes
                old_deadlines = result.suffix_deadlines
                old_makespan = suffix.makespan

    assert suffix is not None  # traces have at least one block
    predicted = offset + suffix.makespan
    final_order = suffix.permutation()

    # Emitted per-block orders: sub-permutations (Definition 2.1) of the
    # constructed order — instructions never cross block boundaries in the
    # output.
    constructed: list[str] = []
    for step in steps:
        constructed.extend(step.committed)
    constructed.extend(final_order)
    position = {n: i for i, n in enumerate(constructed)}
    block_orders = [
        sorted(bb.node_names, key=lambda n: position[n]) for bb in trace.blocks
    ]

    result = LookaheadResult(
        trace=trace,
        block_orders=block_orders,
        predicted_makespan=predicted,
        steps=steps,
    )
    result._final_suffix_order = final_order
    return result


def local_block_orders(
    trace: Trace, machine: MachineModel | None = None, delay_idles: bool = True
) -> list[list[str]]:
    """Baseline: schedule each basic block independently with the Rank
    Algorithm (optionally delaying idle slots within the block — the paper's
    "simple application of this idea ... independently in each basic block"),
    ignoring all cross-block edges.  Returns per-block orders."""
    from .idle import schedule_block_with_late_idle_slots
    from .rank import minimum_makespan_schedule

    machine = machine or single_unit_machine()
    orders: list[list[str]] = []
    for bb in trace.blocks:
        if delay_idles:
            sched, _ = schedule_block_with_late_idle_slots(bb.graph, machine)
        else:
            sched = minimum_makespan_schedule(bb.graph, machine)
        orders.append(sched.permutation())
    return orders
