"""End-to-end output verification helpers.

These checks are what a compiler integration would run on the emitted block
orders: every block order must be a permutation of its block and a
topological order of the block's dependence subgraph; the safety property —
no instruction crosses a block boundary — is structural; and the windowed
execution of the emitted orders must be a legal schedule per Definition 2.3.
"""

from __future__ import annotations

from typing import Sequence

from ..core.legality import is_legal_schedule
from ..ir.basicblock import Trace
from ..machine.model import MachineModel, single_unit_machine


class OutputError(AssertionError):
    """Raised when emitted block orders violate a required property."""


def check_block_orders(trace: Trace, block_orders: Sequence[Sequence[str]]) -> None:
    """Structural checks on a scheduler's emitted per-block orders."""
    if len(block_orders) != trace.num_blocks:
        raise OutputError(
            f"expected {trace.num_blocks} block orders, got {len(block_orders)}"
        )
    for i, order in enumerate(block_orders):
        members = trace.block_nodes(i)
        if sorted(order) != sorted(members):
            raise OutputError(
                f"block {i}: order is not a permutation of the block "
                f"(got {list(order)}, expected a permutation of {members})"
            )
        pos = {n: k for k, n in enumerate(order)}
        sub = trace.blocks[i].graph
        for u, v, _ in sub.edges():
            if pos[u] > pos[v]:
                raise OutputError(
                    f"block {i}: order violates intra-block dependence {u}->{v}"
                )


def check_runtime_legality(
    trace: Trace,
    block_orders: Sequence[Sequence[str]],
    machine: MachineModel | None = None,
) -> None:
    """The windowed execution of the emitted orders must satisfy Definition
    2.3.  The emitted orders themselves are the legality witness — the
    priority list the execution was greedily driven by — so the check is
    exact even where the schedule's derived sub-permutations would not
    reproduce it (cross-block overtakes, multi-unit issue ties)."""
    from ..sim.window import simulate_trace

    machine = machine or single_unit_machine()
    sim = simulate_trace(trace, block_orders, machine)
    if not is_legal_schedule(
        trace, sim.schedule, machine, witness_orders=block_orders
    ):
        raise OutputError("windowed execution is not a legal schedule")


def verify_scheduler_output(
    trace: Trace,
    block_orders: Sequence[Sequence[str]],
    machine: MachineModel | None = None,
) -> None:
    """All checks; raises :class:`OutputError` on the first failure."""
    check_block_orders(trace, block_orders)
    check_runtime_legality(trace, block_orders, machine)


def check_sim_result(graph, result) -> None:
    """Internal-consistency checks on a :class:`~repro.sim.window.SimResult`
    — the invariants the fault-injection fuzz driver holds every simulated
    execution to, faulted or not:

    - the issue order is a permutation of the graph's nodes;
    - when a cycle-level trace was collected, its stall count and the
      per-cause :func:`~repro.obs.metrics.stall_attribution` breakdown both
      agree with ``result.stall_cycles`` (every stalled cycle is attributed
      exactly once).
    """
    if sorted(result.issue_order) != sorted(graph.nodes):
        raise OutputError(
            "issue order is not a permutation of the graph nodes "
            f"(got {len(result.issue_order)} of {len(graph)} instructions)"
        )
    if result.trace is not None:
        from ..obs.metrics import stall_attribution

        if result.trace.stall_cycles != result.stall_cycles:
            raise OutputError(
                f"trace counted {result.trace.stall_cycles} stall cycles, "
                f"simulator reported {result.stall_cycles}"
            )
        attribution = stall_attribution(result.trace)
        total = sum(attribution.values())
        if total != result.stall_cycles:
            raise OutputError(
                f"stall attribution sums to {total}, expected "
                f"{result.stall_cycles} ({attribution})"
            )
