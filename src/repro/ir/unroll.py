"""Loop unrolling: turn a single-block loop into an unrolled loop trace.

Unrolling by a factor U replicates the loop body U times inside one new
iteration.  Dependences map as follows (original edge ⟨lat, d⟩ from copy k):

- d = 0 → an intra-block edge in copy k;
- k + d < U → a cross-block edge from copy k to copy k + d;
- otherwise → a loop-carried edge of the *unrolled* loop, from copy k to
  copy (k + d) mod U at distance ⌈(k + d − U + 1) / U⌉… i.e. (k + d) // U.

The result is a :class:`~repro.ir.basicblock.LoopTrace`, which the §5.1
algorithm (``schedule_loop_trace``) can schedule — enabling the classic
comparison between unroll-and-schedule and the paper's §5.2 rolled-loop
scheduling (benchmark E13).
"""

from __future__ import annotations

from .basicblock import BasicBlock, LoopTrace
from .depgraph import DependenceGraph
from .loopgraph import LoopGraph


def unrolled_name(node: str, copy: int) -> str:
    """Name of ``node`` in the ``copy``-th body replica."""
    return f"{node}@{copy}"


def unroll_loop(loop: LoopGraph, factor: int) -> LoopTrace:
    """Unroll ``loop`` by ``factor`` into a loop trace of ``factor`` blocks."""
    if factor < 1:
        raise ValueError("factor must be >= 1")

    block_graphs: list[DependenceGraph] = []
    for k in range(factor):
        g = DependenceGraph()
        for n in loop.nodes:
            g.add_node(unrolled_name(n, k), loop.exec_time(n), loop.fu_class(n))
        block_graphs.append(g)

    cross: list[tuple[str, str, int]] = []
    carried: list[tuple[str, str, int, int]] = []
    for e in loop.edges():
        for k in range(factor):
            tgt = k + e.distance
            if e.distance == 0:
                block_graphs[k].add_edge(
                    unrolled_name(e.src, k), unrolled_name(e.dst, k), e.latency
                )
            elif tgt < factor:
                cross.append(
                    (
                        unrolled_name(e.src, k),
                        unrolled_name(e.dst, tgt),
                        e.latency,
                    )
                )
            else:
                carried.append(
                    (
                        unrolled_name(e.src, k),
                        unrolled_name(e.dst, tgt % factor),
                        e.latency,
                        tgt // factor,
                    )
                )

    blocks = [
        BasicBlock(name=f"unroll{k}", graph=g) for k, g in enumerate(block_graphs)
    ]
    return LoopTrace(blocks, cross_edges=cross, carried_edges=carried)


def reroll_orders(
    loop: LoopGraph, block_orders: list[list[str]]
) -> list[list[str]]:
    """Translate per-copy instruction orders of an unrolled loop back to
    original node names — one order per body copy."""
    out: list[list[str]] = []
    for order in block_orders:
        names = []
        for inst in order:
            base, _, copy = inst.rpartition("@")
            if not base or base not in loop:
                raise ValueError(f"not an unrolled instance name: {inst!r}")
            names.append(base)
        out.append(names)
    return out
