"""Unit tests for the Instruction value type."""

import pytest

from repro.ir import ANY, FIXED, Instruction, make_instructions


class TestConstruction:
    def test_minimal(self):
        i = Instruction(name="a")
        assert i.name == "a"
        assert i.exec_time == 1
        assert i.latency == 1
        assert i.fu_class == ANY
        assert not i.is_branch

    def test_full(self):
        i = Instruction(
            name="mul",
            opcode="M",
            reads=("gr6", "gr0"),
            writes=("gr0",),
            exec_time=2,
            latency=4,
            fu_class=FIXED,
        )
        assert i.reads == ("gr6", "gr0")
        assert i.writes == ("gr0",)
        assert i.exec_time == 2
        assert i.latency == 4

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            Instruction(name="")

    def test_zero_exec_time_rejected(self):
        with pytest.raises(ValueError, match="exec_time"):
            Instruction(name="a", exec_time=0)

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError, match="latency"):
            Instruction(name="a", latency=-1)

    def test_unknown_fu_class_rejected(self):
        with pytest.raises(ValueError, match="fu_class"):
            Instruction(name="a", fu_class="quantum")

    def test_frozen(self):
        i = Instruction(name="a")
        with pytest.raises(AttributeError):
            i.name = "b"  # type: ignore[misc]


class TestHelpers:
    def test_simple_constructor(self):
        i = Instruction.simple("x", latency=0)
        assert i.latency == 0
        assert i.exec_time == 1

    def test_with_name_copies_everything_else(self):
        i = Instruction(name="a", opcode="add", reads=("r1",), latency=3)
        j = i.with_name("a2")
        assert j.name == "a2"
        assert j.opcode == "add"
        assert j.reads == ("r1",)
        assert j.latency == 3

    def test_touches_memory(self):
        assert Instruction(name="l", loads=("x",)).touches_memory()
        assert Instruction(name="s", stores=("y",)).touches_memory()
        assert not Instruction(name="a").touches_memory()

    def test_make_instructions(self):
        instrs = make_instructions(["a", "b", "c"], latency=2)
        assert [i.name for i in instrs] == ["a", "b", "c"]
        assert all(i.latency == 2 for i in instrs)
