"""End-to-end smoke test for the scheduling daemon — ``python -m
repro.serve.smoke``.

Boots a real :class:`~repro.serve.daemon.ScheduleServer` (unix socket +
HTTP on a random port) inside the process, then drives it from concurrent
client threads in two phases over a seeded corpus:

- **cold**: every distinct request once — all must miss the cache and
  return bit-identically to a direct
  :func:`repro.serve.worker.compute_request` call;
- **warm**: every request again, plus an order-preserving *relabeling* of
  each (fresh SSA-style names, same DAG) — all must **hit** the
  canonical-digest cache and still match their own direct computation bit
  for bit.

Hard assertions (exit code 1 on any failure): zero error responses, warm
``serve.cache.hit`` > 0 with the exact expected hit/miss split,
bit-identity of every response, and a live Prometheus exposition on
``GET /metrics``.

With ``--report PATH`` the run writes a
:class:`~repro.obs.runreport.RunReport` whose invariant metrics (request /
hit / miss / error counts, bit-identity tallies) are deterministic for a
fixed seed — CI compares it against ``benchmarks/baselines/serve_smoke
.json`` with ``repro compare``, so the report doubles as a latency-SLO
gate: wall-clock keys are thresholded, everything else must match exactly.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from ..machine.presets import PAPER_CORE, WIDE_VLIW, paper_machine
from ..ir.instruction import FIXED, FLOAT, MEMORY
from ..obs.runreport import RunReport, collect_provenance
from ..workloads.traces import random_trace
from .client import ScheduleClient, http_get, http_schedule
from .daemon import ScheduleServer, ServerHandle
from .canonical import relabel_trace
from .protocol import SCHEDULER_NAMES, ScheduleRequest, machine_to_dict, trace_to_dict
from .service import ScheduleService
from .worker import compute_request

_MACHINES = (PAPER_CORE, paper_machine(2), WIDE_VLIW)


class SmokeFailure(AssertionError):
    """One smoke invariant did not hold."""


def build_corpus(n: int, seed: int) -> list[dict]:
    """``n`` structurally distinct request documents, deterministically
    seeded; schedulers and machines cycle so every request class appears."""
    docs = []
    for i in range(n):
        machine = _MACHINES[i % len(_MACHINES)]
        fu_classes = (
            (FIXED, FLOAT, MEMORY) if machine is WIDE_VLIW else None
        )
        trace = random_trace(
            num_blocks=2 + i % 3,
            block_size=(3, 6),
            cross_probability=0.15,
            latencies=(0, 1, 2),
            seed=seed + i,
            **({"fu_classes": fu_classes} if fu_classes else {}),
        )
        request = ScheduleRequest(
            trace=trace,
            machine=machine,
            scheduler=SCHEDULER_NAMES[i % len(SCHEDULER_NAMES)],
            id=f"cold-{i}",
        )
        docs.append(request.to_dict())
    return docs


def relabeled_doc(doc: dict, tag: str) -> dict:
    """An isomorphic variant of ``doc``: every node renamed (order
    preserved), block names changed, correlation id re-tagged."""
    from .protocol import trace_from_dict

    trace = trace_from_dict(doc["program"])
    mapping = {
        n: f"{tag}_{i}" for i, n in enumerate(trace.graph.nodes)
    }
    renamed = relabel_trace(trace, mapping)
    out = dict(doc)
    program = trace_to_dict(renamed)
    for j, block in enumerate(program["blocks"]):
        block["name"] = f"{tag.upper()}BB{j}"
    out["program"] = program
    out["id"] = tag
    return out


def drive(socket_path: Path, docs: list[dict], clients: int) -> list[dict]:
    """Send ``docs`` through ``clients`` concurrent connections, responses
    in input order (round-robin sharding, pipelined within a client)."""
    shards: list[list[tuple[int, dict]]] = [[] for _ in range(clients)]
    for i, doc in enumerate(docs):
        shards[i % clients].append((i, doc))

    def run_shard(shard: list[tuple[int, dict]]) -> list[tuple[int, dict]]:
        out = []
        with ScheduleClient(socket_path) as client:
            for i, doc in shard:
                out.append((i, client.call(doc)))
        return out

    responses: list[dict | None] = [None] * len(docs)
    with ThreadPoolExecutor(max_workers=clients) as pool:
        for result in pool.map(run_shard, [s for s in shards if s]):
            for i, response in result:
                responses[i] = response
    return responses  # type: ignore[return-value]


def check_phase(
    name: str,
    docs: list[dict],
    responses: list[dict],
    expect_cached: bool,
) -> int:
    """Assert every response is ok, has the expected cache provenance, and
    is bit-identical to a direct (uncached, in-process) computation.
    Returns the number of bit-identical responses (== len(docs))."""
    identical = 0
    for doc, response in zip(docs, responses):
        rid = doc.get("id")
        if not response.get("ok"):
            raise SmokeFailure(
                f"{name}: request {rid!r} failed: {response.get('error')}"
            )
        if response.get("cached") != expect_cached:
            raise SmokeFailure(
                f"{name}: request {rid!r} expected cached={expect_cached}, "
                f"got {response.get('cached')}"
            )
        direct = compute_request(doc)
        for key in ("block_orders", "makespan", "stall_cycles", "schedule_digest"):
            if response[key] != direct[key]:
                raise SmokeFailure(
                    f"{name}: request {rid!r} field {key!r} diverges from "
                    f"direct computation:\n  served: {response[key]!r}\n"
                    f"  direct: {direct[key]!r}"
                )
        identical += 1
    return identical


def check_tracing(
    server: ScheduleServer, seed: int, waterfall_path: str | None
) -> dict:
    """Tracing phase: one forced-slow request with a caller-supplied
    trace id must round-trip the id, land in ``/debug/traces`` with a full
    span tree, populate ``/debug/slow``, and export a replayable waterfall.
    Returns the deterministic tally for the RunReport."""
    trace_id = f"smoke{seed & 0xFFFFFFFF:08x}"
    # A cache miss over a large trace: runs the scheduler, so it lands far
    # above the rolling median of warm hits and must be tail-sampled.
    slow_trace = random_trace(
        num_blocks=4,
        block_size=(10, 14),
        cross_probability=0.2,
        latencies=(0, 1, 2, 3),
        seed=seed + 10_000,
    )
    request = ScheduleRequest(
        trace=slow_trace,
        machine=PAPER_CORE,
        scheduler="anticipatory",
        id="traced-slow",
        trace_id=trace_id,
    )
    with ScheduleClient(server.socket_path) as client:
        response = client.call(request.to_dict())
    if not response.get("ok"):
        raise SmokeFailure(f"traced request failed: {response.get('error')}")
    echoed = (response.get("trace") or {}).get("trace_id")
    if echoed != trace_id:
        raise SmokeFailure(
            f"trace_id did not round-trip: sent {trace_id!r}, got {echoed!r}"
        )
    server_block = response.get("server") or {}
    if "phases" not in server_block or "dispatch_s" not in server_block["phases"]:
        raise SmokeFailure(
            f"response carries no server-side phase timings: {server_block!r}"
        )

    # The same kernel again, over HTTP: a cache hit tagged transport=http.
    doc = dict(request.to_dict(), id="traced-http")
    doc.pop("trace", None)
    status, http_response = http_schedule(server.host, server.port, doc)
    if status != 200 or not http_response.get("ok"):
        raise SmokeFailure(f"HTTP re-request failed: {status}, {http_response}")
    if not http_response.get("cached"):
        raise SmokeFailure("HTTP re-request of the traced kernel missed")

    status, body = http_get(
        server.host, server.port, f"/debug/traces?trace_id={trace_id}"
    )
    if status != 200:
        raise SmokeFailure(f"GET /debug/traces: status {status}")
    retained = json.loads(body)["traces"]
    if not retained:
        raise SmokeFailure(f"/debug/traces retained nothing for {trace_id}")
    spans = retained[-1]["spans"]
    names = {s["name"] for s in spans}
    if "serve.request" not in names or not any(
        n.startswith("serve.worker.") for n in names
    ):
        raise SmokeFailure(
            f"span tree incomplete for {trace_id}: {sorted(names)}"
        )
    wrong = [s for s in spans if s.get("trace_id") != trace_id]
    if wrong:
        raise SmokeFailure(
            f"{len(wrong)} span(s) lost the request trace_id: {wrong[:3]}"
        )

    status, body = http_get(server.host, server.port, "/debug/slow")
    if status != 200 or not json.loads(body)["traces"]:
        raise SmokeFailure("/debug/slow empty after the forced-slow request")

    status, waterfall = http_get(
        server.host,
        server.port,
        f"/debug/traces?trace_id={trace_id}&format=jsonl",
    )
    if status != 200 or not waterfall.strip():
        raise SmokeFailure("waterfall export (format=jsonl) came back empty")
    records = [json.loads(line) for line in waterfall.splitlines() if line]
    wf_spans = sum(1 for r in records if r.get("type") == "span")
    if wf_spans != len(spans):
        raise SmokeFailure(
            f"waterfall exported {wf_spans} spans, ring holds {len(spans)}"
        )
    if waterfall_path:
        Path(waterfall_path).write_bytes(waterfall)
    return {
        "trace_roundtrip": 1,
        "retained_for_id": len(retained),
        "slow_ring_nonempty": 1,
        "waterfall_spans": wf_spans,
    }


def run_smoke(
    requests: int = 12,
    clients: int = 4,
    jobs: int = 1,
    seed: int = 0,
    report_path: str | None = None,
    workdir: str | None = None,
    waterfall_path: str | None = None,
) -> RunReport:
    """Run the full smoke; raises :class:`SmokeFailure` on any violated
    invariant, returns the (optionally written) RunReport otherwise."""
    with tempfile.TemporaryDirectory(dir=workdir) as tmp:
        root = Path(tmp)
        service = ScheduleService(
            jobs=jobs,
            cache_size=4 * requests + 8,
            cache_path=root / "cache.jsonl",
            spool_dir=root / "spool",
        )
        server = ScheduleServer(
            service,
            socket_path=root / "serve.sock",
            port=0,  # bind an ephemeral HTTP port too
        )
        cold_docs = build_corpus(requests, seed)
        warm_docs = [
            dict(doc, id=f"warm-{i}") for i, doc in enumerate(cold_docs)
        ] + [relabeled_doc(doc, f"iso{i}") for i, doc in enumerate(cold_docs)]

        with ServerHandle(server):
            t0 = time.perf_counter()
            cold = drive(server.socket_path, cold_docs, clients)
            t_cold = time.perf_counter() - t0
            cold_ok = check_phase("cold", cold_docs, cold, expect_cached=False)

            t1 = time.perf_counter()
            warm = drive(server.socket_path, warm_docs, clients)
            t_warm = time.perf_counter() - t1
            warm_ok = check_phase("warm", warm_docs, warm, expect_cached=True)

            tracing = check_tracing(server, seed, waterfall_path)

            status, metrics_body = http_get(server.host, server.port, "/metrics")
            if status != 200 or b"serve_cache_hit_total" not in metrics_body:
                raise SmokeFailure(
                    f"GET /metrics: status {status}, cache-hit series missing"
                )
            if b"serve_cache_hit_ratio" not in metrics_body:
                raise SmokeFailure("serve_cache_hit_ratio gauge missing")
            status, _ = http_get(server.host, server.port, "/healthz")
            if status != 200:
                raise SmokeFailure(f"GET /healthz: status {status}")
            stats = service.stats()

    cache = stats["cache"]
    # The tracing phase adds one unix-socket miss and one HTTP hit on top
    # of the cold/warm phases.
    if cache["hits"] != len(warm_docs) + 1:
        raise SmokeFailure(
            f"expected exactly {len(warm_docs) + 1} cache hits "
            f"(every warm request + the HTTP re-request), got {cache['hits']}"
        )
    if cache["misses"] != len(cold_docs) + 1:
        raise SmokeFailure(
            f"expected exactly {len(cold_docs) + 1} cache misses "
            f"(every cold request + the traced request), got {cache['misses']}"
        )
    if stats["errors"]:
        raise SmokeFailure(f"{stats['errors']} error response(s)")
    if stats.get("cache_hit_ratio") is None:
        raise SmokeFailure("/stats carries no cache_hit_ratio")
    # A clean smoke run must never trip the overload/degradation machinery:
    # nothing shed, no deadline misses, no degraded fallbacks, every
    # breaker closed.
    admission = stats.get("admission") or {}
    if admission.get("shed_total", 0):
        raise SmokeFailure(
            f"admission shed {admission['shed_total']} request(s) on a "
            f"clean run"
        )
    if stats.get("degraded", 0) or stats.get("deadline_exceeded", 0):
        raise SmokeFailure(
            f"clean run produced {stats.get('degraded', 0)} degraded and "
            f"{stats.get('deadline_exceeded', 0)} deadline-exceeded "
            f"response(s)"
        )
    open_breakers = {
        name: snap["state"]
        for name, snap in (stats.get("breakers") or {}).items()
        if snap.get("state") != "closed"
    }
    if open_breakers:
        raise SmokeFailure(f"breakers not closed: {open_breakers}")
    if stats.get("transports", {}).get("http", 0) < 1:
        raise SmokeFailure(
            f"per-transport counts missed the HTTP request: "
            f"{stats.get('transports')}"
        )
    unique = len({r["digest"] for r in cold})
    if unique != len(cold_docs):
        raise SmokeFailure(
            f"cold corpus collapsed to {unique} digests, expected "
            f"{len(cold_docs)} distinct"
        )

    report = RunReport(
        name="serve_smoke",
        metrics={
            "requests": stats["requests"],
            "errors": stats["errors"],
            "unique_digests": unique,
            "bit_identical": cold_ok + warm_ok,
            "cache": {
                "hits": cache["hits"],
                "misses": cache["misses"],
                "evictions": cache["evictions"],
            },
            "latency": {
                "cold_wall_s": t_cold,
                "warm_wall_s": t_warm,
                "cold_per_request_s": t_cold / len(cold_docs),
                "warm_per_request_s": t_warm / len(warm_docs),
            },
            "tracing": tracing,
            "transports": dict(sorted(stats["transports"].items())),
        },
        phases={"cold": t_cold, "warm": t_warm},
        provenance=collect_provenance(
            seed=seed, requests=requests, clients=clients, jobs=jobs
        ),
    )
    if report_path:
        report.write(report_path)
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.smoke", description=__doc__.split("\n\n")[0]
    )
    parser.add_argument("--requests", type=int, default=12,
                        help="distinct kernels in the corpus (default 12)")
    parser.add_argument("--clients", type=int, default=4,
                        help="concurrent client connections (default 4)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="service worker processes (default 1: in-process)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--report", default=None, metavar="PATH",
                        help="write the RunReport JSON here")
    parser.add_argument("--waterfall", default=None, metavar="PATH",
                        help="write the traced request's waterfall JSONL "
                             "here (render with 'repro trace PATH')")
    args = parser.parse_args(argv)
    try:
        report = run_smoke(
            requests=args.requests,
            clients=args.clients,
            jobs=args.jobs,
            seed=args.seed,
            report_path=args.report,
            waterfall_path=args.waterfall,
        )
    except SmokeFailure as exc:
        print(f"serve smoke FAILED: {exc}", file=sys.stderr)
        return 1
    metrics = report.metrics
    print(
        "serve smoke OK: "
        f"{metrics['requests']} requests, "
        f"{metrics['cache']['hits']} hits / {metrics['cache']['misses']} misses, "
        f"{metrics['bit_identical']} bit-identical responses "
        f"(cold {report.phases['cold']:.3f}s, warm {report.phases['warm']:.3f}s)"
    )
    if args.report:
        print(f"report written to {args.report}")
    if args.waterfall:
        print(f"request waterfall written to {args.waterfall}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised by CI
    sys.exit(main())
