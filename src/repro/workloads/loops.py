"""Random single-block loop generators (paper §5.2 benchmark family E6)."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..ir.loopgraph import LoopGraph
from .random_dag import _rng


def random_loop(
    n: int,
    edge_probability: float = 0.3,
    carried_probability: float = 0.25,
    latencies: Sequence[int] = (0, 1),
    carried_latencies: Sequence[int] = (1, 2, 4),
    max_distance: int = 1,
    self_loops: bool = True,
    seed: int | np.random.Generator | None = 0,
    prefix: str = "op",
) -> LoopGraph:
    """Random loop body: a random DAG of loop-independent edges plus carried
    edges (any direction, distance 1..max_distance).  At least one carried
    edge is guaranteed so the §5.2 machinery always has work to do."""
    if n < 1:
        raise ValueError("n must be >= 1")
    rng = _rng(seed)
    g = LoopGraph()
    names = [f"{prefix}{i}" for i in range(n)]
    for name in names:
        g.add_node(name)
    lat = list(latencies)
    clat = list(carried_latencies)
    for i in range(n):
        for j in range(i + 1, n):
            if rng.random() < edge_probability:
                g.add_edge(names[i], names[j], int(rng.choice(lat)), 0)
    carried_added = 0
    for i in range(n):
        for j in range(n):
            if i == j and not self_loops:
                continue
            if rng.random() < carried_probability:
                dist = int(rng.integers(1, max_distance + 1))
                g.add_edge(names[i], names[j], int(rng.choice(clat)), dist)
                carried_added += 1
    if carried_added == 0:
        i = int(rng.integers(n))
        j = int(rng.integers(n))
        g.add_edge(names[i], names[j], int(rng.choice(clat)), 1)
    return g


def recurrence_loop(
    chain: int, recurrence_latency: int = 4, prefix: str = "op"
) -> LoopGraph:
    """A chain body whose last node feeds the first of the next iteration
    with a long latency — the shape of Figure 8 scaled up."""
    if chain < 2:
        raise ValueError("chain must be >= 2")
    g = LoopGraph()
    names = [f"{prefix}{i}" for i in range(chain)]
    for name in names:
        g.add_node(name)
    for a, b in zip(names, names[1:]):
        g.add_edge(a, b, 1, 0)
    g.add_edge(names[-1], names[0], recurrence_latency, 1)
    return g
