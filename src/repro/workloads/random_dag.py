"""Seeded random dependence-DAG generators.

The paper's proposed evaluation ("compare their effectiveness with known
local and global scheduling algorithms", §7) needs workloads; since the
prototype study was never published, we generate synthetic basic blocks with
controlled shape parameters: size, edge density, latency mix, execution-time
mix and functional-unit mix.  All generators take a :class:`numpy.random
.Generator` (or a seed) so every experiment is reproducible.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..ir.depgraph import DependenceGraph
from ..ir.instruction import ANY


def _rng(seed_or_rng: int | np.random.Generator | None) -> np.random.Generator:
    if isinstance(seed_or_rng, np.random.Generator):
        return seed_or_rng
    return np.random.default_rng(seed_or_rng)


def random_dag(
    n: int,
    edge_probability: float = 0.25,
    latencies: Sequence[int] = (0, 1),
    latency_weights: Sequence[float] | None = None,
    exec_times: Sequence[int] = (1,),
    fu_classes: Sequence[str] = (ANY,),
    seed: int | np.random.Generator | None = 0,
    prefix: str = "n",
) -> DependenceGraph:
    """Erdős-Rényi-style random DAG: edge (i, j) for i < j with the given
    probability; edge latency / node execution time / FU class sampled from
    the given alphabets.  Node order is the program order."""
    if n < 0:
        raise ValueError("n must be >= 0")
    if not 0.0 <= edge_probability <= 1.0:
        raise ValueError("edge_probability must be in [0, 1]")
    rng = _rng(seed)
    lat = list(latencies)
    weights = None
    if latency_weights is not None:
        w = np.asarray(latency_weights, dtype=float)
        weights = w / w.sum()
    g = DependenceGraph()
    names = [f"{prefix}{i}" for i in range(n)]
    for name in names:
        g.add_node(
            name,
            exec_time=int(rng.choice(list(exec_times))),
            fu_class=str(rng.choice(list(fu_classes))),
        )
    for i in range(n):
        for j in range(i + 1, n):
            if rng.random() < edge_probability:
                g.add_edge(names[i], names[j], int(rng.choice(lat, p=weights)))
    return g


def layered_dag(
    layers: int,
    width: int,
    forward_probability: float = 0.5,
    latencies: Sequence[int] = (0, 1),
    seed: int | np.random.Generator | None = 0,
    prefix: str = "n",
) -> DependenceGraph:
    """Layered DAG (typical expression-tree/pipeline shape): nodes arranged
    in ``layers`` rows of ``width``; edges go from one layer to the next with
    the given probability, plus one guaranteed in-edge per non-root node so
    no layer is disconnected."""
    rng = _rng(seed)
    g = DependenceGraph()
    grid: list[list[str]] = []
    k = 0
    for li in range(layers):
        row = []
        for _ in range(width):
            name = f"{prefix}{k}"
            k += 1
            g.add_node(name)
            row.append(name)
        grid.append(row)
    lat = list(latencies)
    for li in range(1, layers):
        for dst in grid[li]:
            added = False
            for src in grid[li - 1]:
                if rng.random() < forward_probability:
                    g.add_edge(src, dst, int(rng.choice(lat)))
                    added = True
            if not added:
                src = grid[li - 1][int(rng.integers(width))]
                g.add_edge(src, dst, int(rng.choice(lat)))
    return g


def fork_join_dag(
    branches: int,
    branch_length: int,
    latency: int = 1,
    prefix: str = "n",
) -> DependenceGraph:
    """Deterministic fork-join: one source fans out into ``branches`` chains
    of ``branch_length`` that re-join at one sink.  A worst case for greedy
    local scheduling, a best case for idle-slot delaying."""
    g = DependenceGraph()
    src, snk = f"{prefix}src", f"{prefix}snk"
    g.add_node(src)
    chains: list[list[str]] = []
    for b in range(branches):
        chain = []
        for i in range(branch_length):
            name = f"{prefix}b{b}_{i}"
            g.add_node(name)
            chain.append(name)
        chains.append(chain)
    g.add_node(snk)
    for chain in chains:
        g.add_edge(src, chain[0], latency)
        for a, b in zip(chain, chain[1:]):
            g.add_edge(a, b, latency)
        g.add_edge(chain[-1], snk, latency)
    return g


def chain_dag(n: int, latency: int = 1, prefix: str = "n") -> DependenceGraph:
    """A single dependence chain — maximum serialization."""
    g = DependenceGraph()
    names = [f"{prefix}{i}" for i in range(n)]
    for name in names:
        g.add_node(name)
    for a, b in zip(names, names[1:]):
        g.add_edge(a, b, latency)
    return g


def independent_dag(n: int, prefix: str = "n") -> DependenceGraph:
    """n independent instructions — maximum parallelism."""
    g = DependenceGraph()
    for i in range(n):
        g.add_node(f"{prefix}{i}")
    return g
