"""End-to-end request tracing through the service: trace-id propagation,
span trees, server-side timings, tail sampling, SLO accounting — including
the cross-process hop into pool workers (the spool spans must carry the
*request's* trace id, not the worker's own)."""

import pytest

from repro.machine.presets import PAPER_CORE
from repro.obs.pipeline import merge_spools
from repro.serve.protocol import ScheduleRequest, server_timings
from repro.serve.service import ScheduleService
from repro.serve.tracebuf import TraceBuffer
from repro.workloads.traces import random_trace


def _doc(seed=0, rid=None, trace_id=None):
    trace = random_trace(
        2, (3, 5), cross_probability=0.2, latencies=(0, 1, 2), seed=seed
    )
    return ScheduleRequest(
        trace=trace, machine=PAPER_CORE, id=rid, trace_id=trace_id
    ).to_dict()


class TestTraceIdPropagation:
    def test_caller_id_round_trips(self):
        svc = ScheduleService()
        response = svc.handle(_doc(seed=1, trace_id="cafef00d"))
        assert response["ok"]
        assert response["trace"] == {"trace_id": "cafef00d"}

    def test_daemon_mints_id_when_absent(self):
        svc = ScheduleService()
        a = svc.handle(_doc(seed=1))
        b = svc.handle(_doc(seed=2))
        ta, tb = a["trace"]["trace_id"], b["trace"]["trace_id"]
        assert ta and tb and ta != tb

    def test_error_response_carries_trace_id(self):
        svc = ScheduleService()
        response = svc.handle({"scheduler": "nope", "trace": "abad1dea"})
        assert response["ok"] is False
        assert response["trace"]["trace_id"] == "abad1dea"

    def test_cache_hit_keeps_callers_id(self):
        svc = ScheduleService()
        svc.handle(_doc(seed=3, trace_id="aaaa"))
        hit = svc.handle(_doc(seed=3, trace_id="bbbb"))
        assert hit["cached"] is True
        assert hit["trace"]["trace_id"] == "bbbb"


class TestSpanTree:
    def _miss_trace(self, svc, trace_id="cafef00d"):
        svc.handle(_doc(seed=4, trace_id=trace_id))
        return svc.tracebuf.recent()[-1]

    def test_miss_has_full_tree(self):
        svc = ScheduleService()
        t = self._miss_trace(svc)
        names = [s.name for s in t.spans]
        assert names[0] == "serve.request"
        for phase in ("decode", "canonicalize", "cache_probe", "dispatch",
                      "respond"):
            assert f"serve.phase.{phase}" in names
        assert "serve.worker.schedule" in names
        assert "serve.worker.simulate" in names

    def test_every_span_stamped_with_request_id(self):
        svc = ScheduleService()
        t = self._miss_trace(svc, trace_id="0ddba11")
        assert t.spans and all(s.trace_id == "0ddba11" for s in t.spans)

    def test_depths_nest(self):
        svc = ScheduleService()
        t = self._miss_trace(svc)
        depth = {s.name: s.depth for s in t.spans}
        assert depth["serve.request"] == 0
        assert depth["serve.phase.dispatch"] == 1
        assert depth["serve.worker.schedule"] == 2

    def test_hit_has_no_worker_spans(self):
        svc = ScheduleService()
        doc = _doc(seed=5)
        svc.handle(doc)
        svc.handle(doc)
        hit = svc.tracebuf.recent()[-1]
        assert hit.cached is True
        assert not any(
            s.name.startswith("serve.worker.") for s in hit.spans
        )

    def test_worker_spans_fit_inside_dispatch(self):
        svc = ScheduleService()
        t = self._miss_trace(svc)
        spans = {s.name: s for s in t.spans}
        dispatch = spans["serve.phase.dispatch"]
        worker = spans["serve.worker.schedule"]
        assert worker.start_ns >= dispatch.start_ns
        assert (worker.start_ns + worker.duration_ns
                <= dispatch.start_ns + dispatch.duration_ns + 1_000_000)


class TestServerTimings:
    def test_response_carries_phase_timings(self):
        svc = ScheduleService()
        response = svc.handle(_doc(seed=6))
        server = server_timings(response)
        assert server["pid"] > 0 and server["duration_s"] > 0
        for key in ("decode_s", "canonicalize_s", "cache_probe_s",
                    "dispatch_s", "respond_s"):
            assert server["phases"][key] >= 0.0
        assert server["worker"]["phases"]["schedule_s"] > 0.0

    def test_hit_timings_have_no_worker_block(self):
        svc = ScheduleService()
        doc = _doc(seed=7)
        svc.handle(doc)
        hit = svc.handle(doc)
        assert "worker" not in server_timings(hit)


class TestCrossProcessHop:
    def test_worker_spool_spans_carry_request_trace_id(self, tmp_path):
        """The pinned fork-hop invariant: with a real worker pool, the spans
        the workers spool must be stamped with each *request's* trace id
        and the worker's own pid."""
        import os

        svc = ScheduleService(jobs=2, spool_dir=tmp_path / "spool")
        docs = [
            _doc(seed=8, trace_id="feedbeef"),
            _doc(seed=9, trace_id="deadc0de"),
        ]
        responses = svc.handle_batch(docs)
        assert all(r["ok"] for r in responses)
        merge = merge_spools(tmp_path / "spool" / "pool")
        worker_spans = [
            s for s in merge.spans if s.name.startswith("serve.worker.")
        ]
        assert {s.trace_id for s in worker_spans} == {"feedbeef", "deadc0de"}
        assert all(s.pid != os.getpid() for s in worker_spans)
        # And the retained traces report which worker pid served each one.
        by_id = {t.trace_id: t for t in svc.tracebuf.recent()}
        for trace_id in ("feedbeef", "deadc0de"):
            assert by_id[trace_id].worker_pid is not None
            assert by_id[trace_id].worker_pid != os.getpid()

    def test_pool_spool_is_scoped_under_subdir(self, tmp_path):
        """Worker spool clears must not eat the daemon's own per-batch
        spools: the pool spools into ``spool/pool``."""
        svc = ScheduleService(jobs=2, spool_dir=tmp_path / "spool")
        svc.handle(_doc(seed=10))
        svc.handle(_doc(seed=11))
        daemon_cells = merge_spools(tmp_path / "spool").cells
        assert daemon_cells  # per-batch daemon spools survived both batches


class TestTailSampling:
    def test_errors_land_in_error_ring_with_minted_id(self):
        svc = ScheduleService()
        svc.handle({"scheduler": "nope"})
        errors = svc.tracebuf.errors()
        assert len(errors) == 1
        assert errors[0].status == "error" and errors[0].trace_id

    def test_injectable_tracebuf(self):
        buf = TraceBuffer(capacity=2)
        svc = ScheduleService(tracebuf=buf)
        for seed in range(4):
            svc.handle(_doc(seed=20 + seed))
        assert len(buf.recent()) == 2 and buf.added == 4

    def test_batch_span_links_member_trace_ids(self, tmp_path):
        svc = ScheduleService(spool_dir=tmp_path / "spool")
        svc.handle_batch([
            _doc(seed=30, trace_id="aaaa"), _doc(seed=31, trace_id="bbbb"),
        ])
        merge = merge_spools(tmp_path / "spool")
        batch = [s for s in merge.spans if s.name == "serve.batch"]
        assert batch and batch[-1].attrs.get("trace_ids") == ["aaaa", "bbbb"]


class TestSLOAndStats:
    def test_stats_gains_observability_keys(self):
        svc = ScheduleService()
        doc = _doc(seed=40)
        svc.handle(doc)
        svc.handle(doc)
        stats = svc.stats()
        assert stats["uptime_s"] > 0
        assert stats["cache_hit_ratio"] == pytest.approx(0.5)
        assert stats["traces"]["recent"] == 2
        assert stats["slo"]["total"] == 2 and stats["slo"]["bad"] == 0
        assert stats["transports"] == {"unknown": 2}

    def test_transport_tagging(self):
        svc = ScheduleService()
        svc.handle(_doc(seed=41), transport="unix")
        svc.handle_batch([_doc(seed=42)], transports=["http"])
        assert svc.stats()["transports"] == {"http": 1, "unix": 1}
        assert svc.registry.counter("serve.requests.unix").value == 1
        assert svc.registry.counter("serve.requests.http").value == 1

    def test_run_report_slo_block_is_deterministic(self):
        svc = ScheduleService()
        svc.handle(_doc(seed=43))
        svc.handle({"scheduler": "nope"})
        slo = svc.run_report().metrics["slo"]
        assert slo["bad"] == 1
        assert slo["lifetime_burn_rate"] == pytest.approx(
            (1 / 2) / (1 - 0.99)
        )

    def test_latency_slo_breach_counts_bad(self):
        svc = ScheduleService(latency_slo_s=0.0)  # everything breaches
        svc.handle(_doc(seed=44))
        assert svc.stats()["slo"]["bad"] == 1

    def test_cache_hit_ratio_gauge_refreshes(self):
        svc = ScheduleService()
        doc = _doc(seed=45)
        svc.handle(doc)
        svc.handle(doc)
        svc.refresh_gauges()
        out = svc.registry.to_dict()
        assert out["serve.cache.hit_ratio"] == pytest.approx(0.5)
        assert out["serve.uptime_s"] > 0
