"""Generic priority-driven list scheduling with pluggable priorities.

All local baselines in this library are instances of greedy list scheduling
(the engine lives in :func:`repro.core.rank.list_schedule`); they differ only
in how the priority list is computed.  This module provides the common
priority functions and a small registry so benchmarks can sweep schedulers by
name.
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..ir.depgraph import DependenceGraph
from ..machine.model import MachineModel, single_unit_machine
from ..core.rank import list_schedule
from ..core.schedule import Schedule

#: A priority function maps a graph to a priority list (first = issue first).
PriorityFn = Callable[[DependenceGraph], list[str]]


def source_order_priority(graph: DependenceGraph) -> list[str]:
    """Program order — the "no scheduling" baseline."""
    return graph.nodes


def critical_path_priority(graph: DependenceGraph) -> list[str]:
    """Longest remaining path to a sink, descending — the classic highest
    level first heuristic (Gibbons-Muchnick flavour; see §6 of the paper)."""
    dist = graph.path_length_to_sinks()
    index = {n: i for i, n in enumerate(graph.nodes)}
    return sorted(graph.nodes, key=lambda n: (-dist[n], index[n]))


def fan_out_priority(graph: DependenceGraph) -> list[str]:
    """Critical path first, ties broken by descendant count then program
    order — approximates the "uncovering" secondary criteria of production
    schedulers like Warren's [12]."""
    dist = graph.path_length_to_sinks()
    index = {n: i for i, n in enumerate(graph.nodes)}
    return sorted(
        graph.nodes,
        key=lambda n: (-dist[n], -len(graph.descendants(n)), index[n]),
    )


def schedule_with_priority(
    graph: DependenceGraph,
    priority_fn: PriorityFn,
    machine: MachineModel | None = None,
) -> Schedule:
    """Greedy list scheduling of ``graph`` under ``priority_fn``."""
    machine = machine or single_unit_machine()
    return list_schedule(graph, priority_fn(graph), machine)


def block_orders_with_priority(
    trace, priority_fn: PriorityFn, machine: MachineModel | None = None
) -> list[list[str]]:
    """Per-block emitted orders from scheduling each block independently."""
    machine = machine or single_unit_machine()
    return [
        schedule_with_priority(bb.graph, priority_fn, machine).permutation()
        for bb in trace.blocks
    ]
