"""Unit tests for the iterative modulo scheduler."""

import pytest

from repro.ir import loop_from_edges
from repro.machine import MachineModel, paper_machine
from repro.schedulers import modulo_schedule, recurrence_mii, resource_mii
from repro.sim import periodic_initiation_interval
from repro.workloads import dot_product_loop, figure3_loop, random_loop


def check_kernel(loop, result, machine):
    """A modulo kernel is valid iff every edge inequality holds and the
    periodic repetition is resource-feasible at its II."""
    for e in loop.edges():
        need = (
            result.offsets[e.src]
            + loop.exec_time(e.src)
            + e.latency
            - result.initiation_interval * e.distance
        )
        assert result.offsets[e.dst] >= need, f"edge {e} violated"
    ii = periodic_initiation_interval(loop, result.offsets, machine)
    assert ii <= result.initiation_interval


class TestBounds:
    def test_resource_mii_single_unit(self):
        loop = figure3_loop()
        assert resource_mii(loop, paper_machine(1)) == 5  # 5 unit-time ops

    def test_recurrence_mii_figure3(self):
        assert recurrence_mii(figure3_loop()) == 6

    def test_resource_mii_multi_unit(self):
        loop = loop_from_edges(
            [("a", "b", 0, 0)], nodes=["a", "b", "c", "d"]
        )
        m = MachineModel(window_size=1, fu_counts={"any": 2})
        assert resource_mii(loop, m) == 2


class TestFigure3:
    def test_achieves_optimal_ii_6(self):
        loop = figure3_loop()
        m = paper_machine(1)
        res = modulo_schedule(loop, m)
        assert res.initiation_interval == 6
        check_kernel(loop, res, m)

    def test_kernel_order_is_permutation(self):
        res = modulo_schedule(figure3_loop(), paper_machine(1))
        assert sorted(res.kernel_order()) == ["BT", "C4", "L4", "M", "ST"]


class TestRandomLoops:
    @pytest.mark.parametrize("seed", range(10))
    def test_valid_kernels(self, seed):
        loop = random_loop(6, seed=seed)
        m = paper_machine(1)
        res = modulo_schedule(loop, m)
        check_kernel(loop, res, m)
        assert res.initiation_interval >= max(
            resource_mii(loop, m), recurrence_mii(loop)
        )

    @pytest.mark.parametrize("seed", range(5))
    def test_multi_unit_kernels(self, seed):
        loop = random_loop(8, seed=100 + seed)
        m = MachineModel(window_size=1, fu_counts={"any": 2})
        res = modulo_schedule(loop, m)
        check_kernel(loop, res, m)

    def test_offsets_normalized(self):
        res = modulo_schedule(dot_product_loop(), paper_machine(1))
        assert min(res.offsets.values()) == 0


class TestDotProduct:
    def test_ii_bounded_by_recurrence(self):
        loop = dot_product_loop()
        m = paper_machine(1)
        res = modulo_schedule(loop, m)
        # 8 unit-time ops on one unit: resource MII = 8 dominates.
        assert res.initiation_interval >= 8
        check_kernel(loop, res, m)
