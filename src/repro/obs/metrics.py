"""Hardware-counter-style metrics derived from simulator event traces.

A small metrics registry — :class:`Counter`, :class:`Gauge` and fixed-bucket
:class:`Histogram` instruments collected in a :class:`MetricsRegistry` — plus
the derivation that turns a raw :class:`~repro.obs.events.SimTrace` event
stream into the named counters a hardware performance-monitoring unit would
expose: cycles, issued instructions, IPC, a window-occupancy histogram, and a
full **stall attribution** breakdown.

Stall attribution
-----------------

Every distinct stalled cycle of a trace is attributed to exactly one cause:

``dependence``
    The head-of-window instruction waits on a dependence *latency* — its
    producer has issued but the result is still in flight.
``predecessor``
    The head waits on a predecessor that has not even issued yet (typically
    sitting later in the stream, reachable only once the window advances).
``resource``
    An instruction was ready but every compatible functional unit was busy.
``barrier``
    The cycle was spent waiting on a misprediction barrier (window flush).

:func:`stall_attribution` guarantees that the per-cause counts sum exactly
to ``SimTrace.stall_cycles`` (== ``SimResult.stall_cycles`` of the same
execution) — the breakdown is a partition, never an estimate.  This holds on
the deadlock path too: the trace published just before
:class:`~repro.sim.window.SimulationDeadlock` is raised attributes every
stalled cycle up to the point progress stopped.
"""

from __future__ import annotations

import math
from typing import Iterable

from .events import STALL_KINDS, SimEvent, SimTrace

#: The stall-attribution categories, in reporting order.
STALL_CAUSES = ("dependence", "predecessor", "resource", "barrier")

#: Percentiles reported in histogram summaries.
SUMMARY_PERCENTILES = (50, 90, 99)


class Counter:
    """A monotonically increasing named integer."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (n={n})")
        self.value += n

    def to_value(self) -> int:
        return self.value


class Gauge:
    """A named value that records the last observation."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float | int | None = None

    def set(self, value: float | int) -> None:
        self.value = value

    def to_value(self) -> float | int | None:
        return self.value


class Histogram:
    """Fixed-bucket histogram with percentile summaries.

    ``buckets`` are inclusive upper bounds in ascending order; observations
    above the last bound land in an implicit overflow bucket.  Percentiles
    are resolved to bucket bounds (exact when the bounds enumerate every
    possible value, as the window-occupancy histogram's do).
    """

    __slots__ = ("name", "bounds", "counts", "count", "total", "_min", "_max")

    def __init__(self, name: str, buckets: Iterable[float]) -> None:
        self.name = name
        self.bounds = sorted(buckets)
        if not self.bounds:
            raise ValueError(f"histogram {self.name!r} needs at least one bucket")
        self.counts = [0] * (len(self.bounds) + 1)  # + overflow
        self.count = 0
        self.total = 0.0
        self._min: float | None = None
        self._max: float | None = None

    def observe(self, value: float, n: int = 1) -> None:
        if n < 0:
            raise ValueError(
                f"histogram {self.name!r} cannot un-observe (n={n})"
            )
        if n == 0:
            # A zero-weight observation must not touch min/max either —
            # otherwise a later percentile() could report a value that was
            # never actually observed.
            return
        index = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                index = i
                break
        self.counts[index] += n
        self.count += n
        self.total += value * n
        self._min = value if self._min is None else min(self._min, value)
        self._max = value if self._max is None else max(self._max, value)

    @property
    def mean(self) -> float | None:
        return self.total / self.count if self.count else None

    def percentile(self, p: float) -> float | None:
        """The smallest bucket bound covering ``p`` percent of observations.

        Deterministic resolution, never interpolation:

        - an **empty** histogram returns ``None`` for every ``p``;
        - a percentile that lands in the **overflow bucket** (including the
          case where *every* sample is above the last bound) returns the
          true observed maximum — the only deterministic upper edge the
          overflow bucket has;
        - otherwise the inclusive upper bound of the covering bucket is
          returned (exact when the bounds enumerate every possible value,
          as the window-occupancy histogram's do).

        ``p`` must satisfy ``0 < p <= 100``.
        """
        if not 0 < p <= 100:
            raise ValueError(f"percentile p must be in (0, 100], got {p!r}")
        if not self.count:
            return None
        target = max(1, math.ceil(self.count * p / 100.0))
        cumulative = 0
        for bound, n in zip(self.bounds, self.counts):
            cumulative += n
            if cumulative >= target:
                return bound
        return self._max

    def to_value(self) -> dict:
        out: dict = {
            "count": self.count,
            "mean": self.mean,
            "min": self._min,
            "max": self._max,
        }
        for p in SUMMARY_PERCENTILES:
            out[f"p{p}"] = self.percentile(p)
        return out


class MetricsRegistry:
    """A named collection of counters, gauges and histograms.

    Instruments are get-or-create: asking twice for the same name returns
    the same object; asking for an existing name as a different instrument
    kind is an error.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, kind, factory):
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, kind):
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{type(existing).__name__}, not {kind.__name__}"
                )
            return existing
        metric = factory()
        self._metrics[name] = metric
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge, lambda: Gauge(name))

    def histogram(self, name: str, buckets: Iterable[float]) -> Histogram:
        return self._get(name, Histogram, lambda: Histogram(name, buckets))

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __getitem__(self, name: str) -> Counter | Gauge | Histogram:
        return self._metrics[name]

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def to_dict(self) -> dict[str, object]:
        """All instruments as JSON-serializable values, sorted by name
        (histograms become their summary dicts)."""
        return {name: self._metrics[name].to_value() for name in self.names()}


def classify_stall(event: SimEvent) -> str:
    """The attribution category of one stall-kind event.

    Prefers the simulator's structured ``cause`` field; falls back to the
    ``detail`` text for traces recorded before the field existed.
    """
    if event.kind == "barrier_wait":
        return "barrier"
    if event.cause in STALL_CAUSES:
        return event.cause
    detail = event.detail
    if "unissued predecessor" in detail:
        return "predecessor"
    if "no free" in detail:
        return "resource"
    if "barrier" in detail:
        return "barrier"
    return "dependence"


def stall_attribution(trace: SimTrace) -> dict[str, int]:
    """Stalled cycles by cause; the values sum exactly to
    ``trace.stall_cycles``.

    Each distinct stalled cycle is counted once, under the cause of its
    first stall event (the simulator emits one stall event per stalled
    cycle, so ties cannot occur in practice).
    """
    seen: set[int] = set()
    out: dict[str, int] = {cause: 0 for cause in STALL_CAUSES}
    for event in trace.events:
        if event.kind not in STALL_KINDS or event.cycle in seen:
            continue
        seen.add(event.cycle)
        out[classify_stall(event)] += 1
    return out


def sim_metrics(
    trace: SimTrace,
    registry: MetricsRegistry | None = None,
    prefix: str = "sim.",
) -> MetricsRegistry:
    """Derive hardware-style counters from a simulator event trace.

    Populates (and returns) ``registry`` with:

    - ``<prefix>instructions`` / ``<prefix>issued`` — stream length and
      instructions actually issued (they differ only on the deadlock path);
    - ``<prefix>cycles`` — cycles up to and including the last issue (the
      span ``stall_cycles`` is defined over);
    - ``<prefix>stall_cycles`` and ``<prefix>stall.<cause>`` — the stall
      attribution breakdown of :func:`stall_attribution`;
    - ``<prefix>window_advances`` / ``<prefix>barrier_releases``;
    - ``<prefix>ipc`` — issued / cycles (a gauge);
    - ``<prefix>window_size`` — the configured lookahead W (a gauge);
    - ``<prefix>occupancy`` — histogram of the window occupancy per cycle.
    """
    registry = registry if registry is not None else MetricsRegistry()
    counts = trace.counts()
    issue_cycles = [e.cycle for e in trace.events if e.kind == "issue"]
    cycles = max(issue_cycles) + 1 if issue_cycles else 0

    registry.counter(f"{prefix}instructions").inc(trace.num_instructions)
    registry.counter(f"{prefix}issued").inc(counts.get("issue", 0))
    registry.counter(f"{prefix}cycles").inc(cycles)
    registry.counter(f"{prefix}stall_cycles").inc(trace.stall_cycles)
    registry.counter(f"{prefix}window_advances").inc(
        counts.get("window_advance", 0)
    )
    registry.counter(f"{prefix}barrier_releases").inc(
        counts.get("barrier_release", 0)
    )
    for cause, stalled in stall_attribution(trace).items():
        registry.counter(f"{prefix}stall.{cause}").inc(stalled)

    registry.gauge(f"{prefix}window_size").set(trace.window_size)
    registry.gauge(f"{prefix}ipc").set(
        counts.get("issue", 0) / cycles if cycles else 0.0
    )

    occupancy = registry.histogram(
        f"{prefix}occupancy", range(trace.window_size + 1)
    )
    for value in trace.occupancy_by_cycle().values():
        occupancy.observe(value)
    return registry
