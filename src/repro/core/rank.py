"""The Rank Algorithm (Palem & Simons, TOPLAS'93) and its generalizations.

The Rank Algorithm schedules a dependence DAG with deadlines on a single
functional unit.  It is *optimal* (minimum makespan, and minimum tardiness
under deadlines) for unit execution times and 0/1 latencies; this library also
uses it, per paper §4.2, as a heuristic for longer latencies, non-unit
execution times and multiple functional units.

The algorithm (paper §2.1):

1. compute the *rank* of every node — an upper bound on its completion time
   if the node and all of its descendants are to complete by their deadlines;
2. build a priority list of the nodes in nondecreasing rank order;
3. run greedy list scheduling on that list.

Rank computation (validated against every number in the paper's §2 examples):
process nodes in reverse topological order; for node x, *backward-schedule*
all of x's descendants, placing each descendant y — largest rank first — at
the latest free completion slot ≤ rank(y) (one node per time step per unit;
non-unit execution times occupy ``exec_time`` consecutive slots, the §4.2
"insert whole" variant).  Then::

    rank(x) = min( d(x),
                   min over descendants y of start(y),                 # x precedes all
                   min over immediate successors y of
                       start(y) - latency(x, y) )                      # latency gap

where start(y) is y's start time in the backward schedule.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from ..ir.depgraph import DependenceGraph
from ..ir.instruction import ANY
from ..machine.model import MachineModel, single_unit_machine
from ..obs import recorder as obs
from .schedule import Schedule, Unit


def default_deadline(graph: DependenceGraph) -> int:
    """A deadline large enough never to constrain any schedule: total work
    plus total latency (an upper bound on any greedy makespan)."""
    total = sum(graph.exec_time(n) for n in graph.nodes)
    total += sum(lat for _, _, lat in graph.edges())
    return max(total, 1)


def fill_deadlines(
    graph: DependenceGraph,
    deadlines: Mapping[str, int] | None = None,
    default: int | None = None,
) -> dict[str, int]:
    """Complete a (possibly partial) deadline map with the artificial large
    deadline for unconstrained nodes (paper: "All nodes are given the same
    very large number as an artificial deadline").

    Raises :class:`ValueError` when ``deadlines`` names nodes that are not in
    ``graph`` — a typo'd instruction name in a user-supplied deadline map
    must not be silently ignored.
    """
    if default is None:
        default = default_deadline(graph)
    out = {n: default for n in graph.nodes}
    if deadlines:
        unknown = [n for n in deadlines if n not in out]
        if unknown:
            raise ValueError(
                f"deadlines name unknown nodes: {', '.join(sorted(unknown))}"
            )
        for n, d in deadlines.items():
            out[n] = d
    return out


class _BackwardSlots:
    """Latest-fit slot allocator for the backward schedule.

    Tracks occupied completion-time slots per functional-unit class with the
    class capacity from the machine model.  ``ANY`` draws from the total
    capacity pool; typed classes from their own pool (a heuristic in the
    multi-unit case, exact for a single unit).

    The dominant case — capacity 1, unit execution time — uses a
    path-compressed "next free slot" union-find, making each placement
    near-O(1); the general case falls back to a linear latest-fit scan.
    """

    def __init__(self, machine: MachineModel) -> None:
        self._machine = machine
        self._used: dict[str, dict[int, int]] = {}
        #: Per-class map slot -> latest free slot at or below it (union-find
        #: parents), maintained only for capacity-1 pools.
        self._next_free: dict[str, dict[int, int]] = {}
        self._cap_cache: dict[str, int] = {}

    def _capacity(self, fu_class: str) -> int:
        cap = self._cap_cache.get(fu_class)
        if cap is None:
            if fu_class == ANY or self._machine.is_single_unit:
                cap = self._machine.total_units
            else:
                cap = len(self._machine.units_for(fu_class))
            self._cap_cache[fu_class] = cap
        return cap

    def _find_free(self, parent: dict[int, int], slot: int) -> int:
        """Latest free slot ≤ ``slot`` with path compression."""
        root = slot
        while root in parent:
            root = parent[root]
        while slot in parent:
            nxt = parent[slot]
            parent[slot] = root
            slot = nxt
        return root

    def place(self, fu_class: str, exec_time: int, latest: int) -> int:
        """Occupy ``exec_time`` consecutive slots completing no later than
        ``latest``; return the completion time chosen (may be ≤ 0 when the
        instance is infeasible — feasibility is judged later by the forward
        greedy pass)."""
        cap = self._capacity(fu_class)
        if cap == 1:
            parent = self._next_free.setdefault(fu_class, {})
            end = self._find_free(parent, latest)
            # Multi-cycle: every slot in (end-exec_time, end] must be free;
            # on a collision restart below the occupied run.
            while exec_time > 1:
                t = end - 1
                lo = end - exec_time + 1
                clash = None
                while t >= lo:
                    ft = self._find_free(parent, t)
                    if ft != t:
                        clash = ft
                        break
                    t -= 1
                if clash is None:
                    break
                end = clash
            for t in range(end - exec_time + 1, end + 1):
                parent[t] = t - 1
            return end
        used = self._used.setdefault(fu_class, {})
        end = latest
        guard = latest + len(used) * exec_time + exec_time + 1
        while guard > 0:
            window = range(end - exec_time + 1, end + 1)
            if all(used.get(t, 0) < cap for t in window):
                for t in window:
                    used[t] = used.get(t, 0) + 1
                return end
            end -= 1
            guard -= 1
        return end  # pragma: no cover - guard generous enough in practice


def _unit_exec_single_fu(graph: DependenceGraph, machine: MachineModel) -> bool:
    """True when the backward schedule can use the inlined capacity-1
    unit-execution-time fast path (the paper's core regime)."""
    return machine.is_single_unit and all(
        graph.exec_time(n) == 1 for n in graph.nodes
    )


def _node_rank(
    graph: DependenceGraph,
    machine: MachineModel,
    x: str,
    deadline: int,
    ranks: Mapping[str, int],
    fast: bool,
) -> int:
    """Rank of ``x`` given its deadline and the (already final) ranks of all
    of its descendants — the single-node step shared by the from-scratch
    :func:`compute_ranks` sweep and :class:`RankEngine`'s incremental
    recomputation, so the two paths are identical by construction.

    ``fast`` selects the closed-form backward schedule, valid exactly for
    single-unit machines with unit execution times (bit-for-bit the same
    placements as :class:`_BackwardSlots` with capacity 1): placing nodes in
    nonincreasing rank order, the latest free completion slot ≤ rank(y) is
    always ``min(rank(y), previous placement − 1)`` — placements are
    strictly decreasing, and any gap left above the last placement lies
    above every remaining rank, so no search structure is needed."""
    descendants = graph.descendants(x)
    if not descendants:
        return deadline
    rank = deadline
    if fast:
        succ = graph.successors(x)
        comp: int | None = None
        for y in sorted(descendants, key=ranks.__getitem__, reverse=True):
            r_y = ranks[y]
            comp = r_y if comp is None or r_y < comp - 1 else comp - 1
            lat = succ.get(y)
            if lat is not None:
                gap = comp - 1 - lat
                if gap < rank:
                    rank = gap
        earliest = comp - 1
        if earliest < rank:
            rank = earliest
        return rank
    starts: dict[str, int] = {}
    slots = _BackwardSlots(machine)
    for y in sorted(descendants, key=ranks.__getitem__, reverse=True):
        end = slots.place(graph.fu_class(y), graph.exec_time(y), ranks[y])
        starts[y] = end - graph.exec_time(y)
    rank = min(rank, min(starts.values()))
    for y, lat in graph.successors(x).items():
        gap = starts[y] - lat
        if gap < rank:
            rank = gap
    return rank


def compute_ranks(
    graph: DependenceGraph,
    deadlines: Mapping[str, int] | None = None,
    machine: MachineModel | None = None,
) -> dict[str, int]:
    """Compute the rank of every node (see module docstring).

    ``deadlines`` may be partial; missing nodes get the artificial large
    deadline.  Ranks never exceed deadlines and may go non-positive on
    infeasible instances.

    Two reconstruction subtleties matter for optimality (found by fuzzing
    against the brute-force oracle; see ``tests/core/test_rank_fastpath.py``):

    1. the backward schedule must respect the dependence edges *among* the
       descendants (a descendant must complete before its own successors
       start, minus latency) — not only their ranks;
    2. within a group of interchangeable placements, the latest slots must
       go to x's direct successors with the largest ``latency(x, ·)``, and
       the earliest slots to non-successors (whose only influence on
       rank(x) is through the earliest-start term).
    """
    machine = machine or single_unit_machine()
    with obs.span("rank", nodes=len(graph)):
        d = fill_deadlines(graph, deadlines)
        ranks: dict[str, int] = {}
        fast = _unit_exec_single_fu(graph, machine)
        for x in reversed(graph.topological_order()):
            ranks[x] = _node_rank(graph, machine, x, d[x], ranks, fast)
        return ranks


class RankEngine:
    """Incremental rank maintenance over a fixed graph and machine.

    rank(x) is a function of d(x) and of the ranks of x's descendants alone
    (see :func:`_node_rank`), so after a deadline change on a node set S only
    S and its ancestors can change rank — everything else is provably
    untouched.  The engine keeps the current deadline map and rank map and,
    on :meth:`set_deadlines`, re-runs the per-node backward schedule only
    over that affected set, in reverse topological order, additionally
    skipping any affected node none of whose descendants actually changed
    rank.  The result is always bit-identical to a from-scratch
    :func:`compute_ranks` on the current deadlines (fuzzed in
    ``tests/core/test_rank_fastpath.py``).

    Two further fast paths exploit that ranks commute with uniform deadline
    shifts (rank(d + c) = rank(d) + c — the placement algorithm is
    translation invariant): :meth:`shift` adjusts every deadline and rank in
    O(n), and :meth:`carried_into` transplants the engine onto a *larger*
    graph (e.g. Procedure Merge's "old suffix ∪ new block" graph), seeding
    carried nodes with their shifted ranks and sweeping only the new nodes
    and their ancestors.  Carrying is sound only when the carried node set is
    descendant-closed in the source graph (every descendant of a carried
    node was carried too) — true for chop suffixes by construction, since a
    dependence successor never starts earlier.

    Counters (when an :mod:`repro.obs` recorder is active):

    - ``rank.engine.full`` — from-scratch initializations;
    - ``rank.engine.updates`` — incremental update calls;
    - ``rank.engine.reranked`` — nodes whose backward schedule was re-run;
    - ``rank.engine.reused`` — nodes reused without recomputation.
    """

    def __init__(
        self,
        graph: DependenceGraph,
        deadlines: Mapping[str, int] | None = None,
        machine: MachineModel | None = None,
        *,
        ranks: Mapping[str, int] | None = None,
    ) -> None:
        self.graph = graph
        self.machine = machine or single_unit_machine()
        self._deadlines = fill_deadlines(graph, deadlines)
        self._fast = _unit_exec_single_fu(graph, self.machine)
        self._rev_topo = list(reversed(graph.topological_order()))
        self._idx = {n: i for i, n in enumerate(graph.nodes)}
        if ranks is not None:
            # Trusted seed: must equal compute_ranks(graph, deadlines,
            # machine).  Used to make engine construction free when the
            # caller just ran the from-scratch path (or shifted it).
            self._ranks = dict(ranks)
        else:
            self._ranks = compute_ranks(graph, self._deadlines, self.machine)
            obs.count("rank.engine.full")

    @property
    def deadlines(self) -> dict[str, int]:
        """The current deadline map (live — treat as read-only)."""
        return self._deadlines

    @property
    def ranks(self) -> dict[str, int]:
        """The current rank map (live — treat as read-only)."""
        return self._ranks

    def set_deadlines(self, updates: Mapping[str, int]) -> None:
        """Apply deadline changes and incrementally restore rank
        consistency.  ``updates`` may cover any subset of the nodes
        (unchanged entries are ignored); unknown names raise
        :class:`ValueError` as in :func:`fill_deadlines`."""
        unknown = [n for n in updates if n not in self._deadlines]
        if unknown:
            raise ValueError(
                f"deadlines name unknown nodes: {', '.join(sorted(unknown))}"
            )
        dirty = {
            n for n, v in updates.items() if self._deadlines[n] != v
        }
        for n in dirty:
            self._deadlines[n] = updates[n]
        self._update(dirty, frozenset())

    def shift(self, delta: int) -> None:
        """Uniformly shift every deadline (and hence every rank) by
        ``delta`` — O(n), no backward scheduling."""
        if delta == 0:
            return
        for n in self._deadlines:
            self._deadlines[n] += delta
            self._ranks[n] += delta

    def carried_into(
        self,
        graph: DependenceGraph,
        *,
        shift: int = 0,
        fill: int | None = None,
    ) -> "RankEngine":
        """A new engine over ``graph``, seeded from this one.

        Nodes shared with this engine carry their deadline and rank shifted
        by ``shift``; nodes new to ``graph`` get deadline ``fill`` (the
        artificial default when None) and are recomputed along with their
        ancestors.  Nodes of this engine absent from ``graph`` are dropped.
        Sound only when the carried set is descendant-closed in the source
        graph (see class docstring)."""
        if fill is None:
            fill = default_deadline(graph)
        deadlines: dict[str, int] = {}
        seed_ranks: dict[str, int] = {}
        new_nodes: set[str] = set()
        for n in graph.nodes:
            old = self._ranks.get(n)
            if old is not None:
                deadlines[n] = self._deadlines[n] + shift
                seed_ranks[n] = old + shift
            else:
                deadlines[n] = fill
                new_nodes.add(n)
        engine = RankEngine(
            graph, deadlines, self.machine, ranks=seed_ranks
        )
        obs.count("rank.engine.carried")
        engine._update(frozenset(), new_nodes)
        return engine

    def _update(self, dirty: set[str] | frozenset, new_nodes: set[str]) -> None:
        """Recompute ranks for ``dirty ∪ new_nodes`` and their ancestors.

        ``dirty`` nodes changed deadline; ``new_nodes`` have no rank yet and
        are always treated as changed so their ancestors re-rank."""
        seeds = dirty | new_nodes
        if not seeds:
            obs.count("rank.engine.reused", len(self.graph))
            return
        graph = self.graph
        idx = self._idx
        n = len(graph)
        affected = np.zeros(n, dtype=bool)
        for s in seeds:
            affected |= graph.ancestor_row(s)
            affected[idx[s]] = True
        changed = np.zeros(n, dtype=bool)
        reranked = 0
        with obs.span("rank.incremental", nodes=int(affected.sum())):
            for x in self._rev_topo:
                i = idx[x]
                if not affected[i]:
                    continue
                if x not in seeds and not bool(
                    np.any(changed & graph.reachability_row(x))
                ):
                    continue  # deadline and all descendant ranks unchanged
                new_rank = _node_rank(
                    graph, self.machine, x, self._deadlines[x],
                    self._ranks, self._fast,
                )
                reranked += 1
                if x in new_nodes or new_rank != self._ranks.get(x):
                    self._ranks[x] = new_rank
                    changed[i] = True
        obs.count("rank.engine.updates")
        obs.count("rank.engine.reranked", reranked)
        obs.count("rank.engine.reused", n - reranked)


def list_schedule(
    graph: DependenceGraph,
    priority: Sequence[str],
    machine: MachineModel | None = None,
) -> Schedule:
    """Greedy list scheduling: advance time step by step; at each step issue
    ready instructions in priority-list order onto free compatible units (a
    unit is never left idle while a ready instruction could use it — the
    paper's greediness property)."""
    machine = machine or single_unit_machine()
    if sorted(priority) != sorted(graph.nodes):
        raise ValueError("priority list must be a permutation of the graph nodes")
    if not machine.can_execute(graph):
        raise ValueError("machine lacks a functional unit for some instruction")

    npred = {n: len(graph.predecessors(n)) for n in graph.nodes}
    # Earliest start permitted by already-scheduled predecessors.
    est = {n: 0 for n in graph.nodes}
    starts: dict[str, int] = {}
    units: dict[str, Unit] = {}
    unit_free_at: dict[Unit, int] = {u: 0 for u in machine.unit_names()}
    width = machine.issue_width or machine.total_units

    time = 0
    remaining = len(graph)
    while remaining > 0:
        issued = 0
        for n in priority:
            if n in starts or npred[n] > 0 or est[n] > time:
                continue
            unit = next(
                (u for u in machine.units_for(graph.fu_class(n)) if unit_free_at[u] <= time),
                None,
            )
            if unit is None:
                continue
            starts[n] = time
            units[n] = unit
            completion = time + graph.exec_time(n)
            unit_free_at[unit] = completion
            remaining -= 1
            for s, lat in graph.successors(n).items():
                npred[s] -= 1
                est[s] = max(est[s], completion + lat)
            issued += 1
            if issued >= width:
                break
        if remaining == 0:
            break
        # Advance time: to the next dependence-release or unit-free event, or
        # by one cycle if something is ready now but blocked (unit busy /
        # issue width exhausted this cycle).
        blocked_now = any(
            n not in starts and npred[n] == 0 and est[n] <= time for n in graph.nodes
        )
        if blocked_now:
            time += 1
            continue
        events = [est[n] for n in graph.nodes if n not in starts and npred[n] == 0]
        events += [t for t in unit_free_at.values() if t > time]
        future = [t for t in events if t > time]
        if not future:  # pragma: no cover - defensive: no progress possible
            raise RuntimeError("list scheduling stalled (cyclic graph?)")
        time = min(future)
    return Schedule(graph, starts, units)


def rank_priority_list(
    graph: DependenceGraph,
    ranks: Mapping[str, int],
    tie_break: str = "program",
) -> list[str]:
    """Nodes in nondecreasing rank order.

    The paper leaves the order among equal ranks free ("Suppose the
    ordering we choose is ..."), and the exact tie-breaking rule of the
    unpublished tech report [11] is not recoverable.  Two modes:

    - ``"program"`` (default): ties keep program order — this reproduces the
      orderings the paper's §2 walkthroughs pick, but fuzzing shows rare
      (≈0.2% of small random instances) +1-cycle losses where the tie hides
      a latency asymmetry;
    - ``"labels"``: ties broken by Bernstein-Gertner lexicographic labels
      (higher label = more urgent), which encode exactly that latency
      structure; empirically optimal on every fuzzed instance in the
      0/1-latency regime (see ``tests/core/test_tie_breaking.py``).
    """
    if tie_break == "program":
        index = {n: i for i, n in enumerate(graph.nodes)}
        return sorted(graph.nodes, key=lambda n: (ranks[n], index[n]))
    if tie_break == "labels":
        labels = _lexicographic_labels(graph)
        return sorted(graph.nodes, key=lambda n: (ranks[n], -labels[n]))
    raise ValueError(f"unknown tie_break mode {tie_break!r}")


def _lexicographic_labels(graph: DependenceGraph) -> dict[str, int]:
    """Bernstein-Gertner latency-aware lexicographic labels (see
    :mod:`repro.schedulers.bernstein_gertner`), cached per graph revision."""
    cache = graph.analysis_cache
    labels = cache.get("bg_labels")
    if labels is None:
        n = len(graph)
        labels = {}
        index = {v: i for i, v in enumerate(graph.nodes)}
        for label in range(1, n + 1):
            candidates = [
                v
                for v in graph.nodes
                if v not in labels
                and all(s in labels for s in graph.successors(v))
            ]

            def key(v: str) -> tuple:
                seq = sorted(
                    ((labels[s], lat) for s, lat in graph.successors(v).items()),
                    reverse=True,
                )
                return (seq, index[v])

            labels[min(candidates, key=key)] = label
        cache["bg_labels"] = labels
    return labels


def rank_schedule(
    graph: DependenceGraph,
    deadlines: Mapping[str, int] | None = None,
    machine: MachineModel | None = None,
    tie_break: str = "program",
    *,
    ranks: Mapping[str, int] | None = None,
) -> tuple[Schedule | None, dict[str, int]]:
    """The full Rank Algorithm: ranks → priority list → greedy schedule.

    Returns ``(schedule, ranks)``; the schedule is ``None`` when the greedy
    schedule misses a deadline (the paper's "rank_alg cannot meet all
    deadlines ⇒ S = ∅").  In the optimal regime (unit times, 0/1 latencies,
    single unit) the instance is feasible iff the returned schedule is not
    None, and the schedule has minimum makespan among deadline-feasible
    ones.  See :func:`rank_priority_list` for the ``tie_break`` caveat.

    ``ranks`` is the fast path for callers that already hold the ranks of
    the *current* deadline map (typically a :class:`RankEngine`): the rank
    computation is skipped entirely.  The caller is responsible for the
    ranks actually matching ``deadlines`` — a mismatch silently produces a
    schedule for the wrong priority list.
    """
    machine = machine or single_unit_machine()
    full = fill_deadlines(graph, deadlines)
    if ranks is None:
        ranks = compute_ranks(graph, full, machine)
    else:
        ranks = dict(ranks)
    if not graph.nodes:
        return Schedule(graph, {}), ranks
    sched = list_schedule(
        graph, rank_priority_list(graph, ranks, tie_break), machine
    )
    if not sched.is_feasible(full):
        return None, ranks
    return sched, ranks


def minimum_makespan_schedule(
    graph: DependenceGraph, machine: MachineModel | None = None
) -> Schedule:
    """Rank Algorithm with only the artificial deadline — a minimum-makespan
    schedule in the optimal regime, a strong heuristic otherwise."""
    sched, _ = rank_schedule(graph, None, machine)
    assert sched is not None  # unconstrained instances are always feasible
    return sched


def rank_schedule_lenient(
    graph: DependenceGraph,
    deadlines: Mapping[str, int] | None = None,
    machine: MachineModel | None = None,
) -> tuple[Schedule, dict[str, int], bool]:
    """Like :func:`rank_schedule` but always returns the greedy schedule,
    plus a flag telling whether it met every deadline.  Used by heuristic
    callers (paper §4.2) that need a best-effort schedule even when the
    deadline system is unsatisfiable."""
    machine = machine or single_unit_machine()
    full = fill_deadlines(graph, deadlines)
    ranks = compute_ranks(graph, full, machine)
    if not graph.nodes:
        return Schedule(graph, {}), ranks, True
    sched = list_schedule(graph, rank_priority_list(graph, ranks), machine)
    return sched, ranks, sched.is_feasible(full)
