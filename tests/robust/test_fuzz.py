"""Tests for the differential fault-injection fuzz driver."""

from repro.core import local_block_orders
from repro.robust.faults import FaultPlan
from repro.robust.fuzz import CELL_STATUSES, SCHEDULERS, run_fuzz


def _drop_a_block(trace, machine):
    return local_block_orders(trace, machine)[:-1]


class TestRunFuzz:
    def test_small_budget_is_clean(self):
        report = run_fuzz(seeds=2)
        assert report.ok
        assert report.violations == []
        assert report.seeds == 2
        assert report.num_cells > 0

    def test_matrix_covers_zoo_and_fault_suite(self):
        report = run_fuzz(seeds=1)
        schedulers = {c.scheduler for c in report.cells}
        assert set(SCHEDULERS) <= schedulers
        assert "guarded" in schedulers
        faults = {c.fault for c in report.cells}
        assert {"noop", "latency_jitter", "stream_truncate",
                "spurious_deadlock"} <= faults

    def test_corrupt_and_deadlock_faults_detected(self):
        report = run_fuzz(seeds=1)
        by_fault = report.by_fault()
        for fault in ("stream_truncate", "stream_duplicate",
                      "spurious_deadlock"):
            assert by_fault[fault]["violation"] == 0
            assert by_fault[fault]["detected"] > 0
            # The zoo members never execute a corrupted stream.
            assert by_fault[fault]["ok"] == 0

    def test_deterministic_given_seeds(self):
        a = run_fuzz(seeds=2, base_seed=11)
        b = run_fuzz(seeds=2, base_seed=11)
        assert [c.to_dict() for c in a.cells] == [c.to_dict() for c in b.cells]

    def test_time_budget_stops_early(self):
        report = run_fuzz(seeds=500, time_budget_s=0.05)
        assert report.stopped_early
        assert report.seeds < 500

    def test_broken_scheduler_is_caught(self):
        report = run_fuzz(
            seeds=1,
            schedulers={"broken": _drop_a_block},
            include_guarded=False,
        )
        assert not report.ok
        assert any(
            c.scheduler == "broken" and c.fault == "compile"
            and c.status == "violation"
            for c in report.cells
        )

    def test_status_counts_partition_cells(self):
        report = run_fuzz(seeds=2)
        counts = report.status_counts()
        assert set(counts) == set(CELL_STATUSES)
        assert sum(counts.values()) == report.num_cells

    def test_summary_and_to_dict(self):
        report = run_fuzz(seeds=1)
        text = report.summary()
        assert "fault-injection fuzz" in text
        doc = report.to_dict()
        assert doc["ok"] is True
        assert doc["num_cells"] == report.num_cells

    def test_single_plan_override(self):
        plan = FaultPlan(name="only", latency_jitter=1, seed=3)
        report = run_fuzz(seeds=1, plans=[plan], include_guarded=False)
        assert {c.fault for c in report.cells} == {"compile", "only"}
        assert report.ok


class TestCiBudget:
    def test_ci_smoke_budget_reaches_500_cells(self):
        # The chaos-smoke CI step runs 16 seeds; the acceptance floor is
        # >= 500 scheduler x fault cells with zero violations.
        report = run_fuzz(seeds=16)
        assert report.num_cells >= 500
        assert report.ok
