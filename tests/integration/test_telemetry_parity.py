"""Acceptance test for the cross-process telemetry pipeline (ISSUE PR 7):

A fault-injected sweep at ``--jobs 2`` must produce a merged telemetry
picture — aggregate span counts and ``guard.*`` / ``sweep.*`` /
``faults.injected.*`` counters — *identical* to the same sweep at
``--jobs 1``, wall-times excluded.  Workers spool per-cell telemetry to
crash-safe JSONL files; the parent merges them into its recorder; nothing
may be lost or double-counted on the way."""

from collections import Counter as TallyCounter

from repro.obs import recording
from repro.obs.runreport import RunReport, compare_reports
from repro.robust.sweep import guarded_cell, run_sweep_robust

GRID = [(w, s) for w in (3, 4) for s in range(6)]


def _run(jobs, tmp_path):
    d = tmp_path / f"spool-j{jobs}"
    with recording() as rec:
        res = run_sweep_robust(
            guarded_cell, GRID, jobs=jobs, telemetry_dir=d
        )
    return res, rec


class TestSweepTelemetryParity:
    def test_jobs2_matches_jobs1(self, tmp_path):
        res1, rec1 = _run(1, tmp_path)
        res2, rec2 = _run(2, tmp_path)

        # The science is identical: fault plans are seed-deterministic.
        assert res1.results == res2.results
        assert not res1.failures and not res2.failures

        # Aggregate counters are identical — guard.*, faults.injected.*,
        # and everything else the cells emitted.
        assert rec1.counters == rec2.counters
        assert any(k.startswith("guard.") for k in rec1.counters)
        assert any(k.startswith("faults.injected.") for k in rec1.counters)
        assert rec1.counters["guard.schedule"] == len(GRID)

        # Aggregate span counts per name are identical.
        spans1 = TallyCounter(s.name for s in rec1.spans)
        spans2 = TallyCounter(s.name for s in rec2.spans)
        assert spans1 == spans2
        assert spans1["sweep.cell"] == len(GRID)

        # Sim traces all crossed the process boundary.
        assert len(rec1.sim_traces) == len(rec2.sim_traces)

        # The only thing allowed to differ: which pids did the work.
        assert len(res2.telemetry.pids) >= 1
        assert res1.telemetry.counters == res2.telemetry.counters

    def test_merged_telemetry_attached_to_result(self, tmp_path):
        res, _ = _run(2, tmp_path)
        merge = res.telemetry
        assert merge is not None
        assert len(merge.cells) == len(GRID)
        assert all(c.ok for c in merge.cells)
        registry = merge.registry()
        assert registry["cells"].to_value() == len(GRID)
        assert registry["guard.schedule"].to_value() == len(GRID)


class TestRunReportParity:
    """The CLI-level gate: ``repro sweep --faults --report`` at jobs 1 and
    jobs 2, then ``repro compare`` — every invariant metric must match
    exactly; only wall-time keys are thresholded."""

    def _report(self, jobs, tmp_path):
        from repro.cli import main

        out = tmp_path / f"sweep-j{jobs}.json"
        spool = tmp_path / f"spool-j{jobs}"
        rc = main([
            "sweep", "--faults", "--windows", "3,4", "--seeds", "4",
            "--jobs", str(jobs),
            "--spool-dir", str(spool), "--report", str(out),
        ])
        assert rc == 0
        return RunReport.load(out)

    def test_cli_reports_compare_clean(self, tmp_path, capsys):
        base = self._report(1, tmp_path)
        new = self._report(2, tmp_path)
        capsys.readouterr()  # drop the sweep tables

        # Wall-times vary freely between runs; a huge threshold confines
        # the comparison to the invariant (exact-match) metrics.
        diff = compare_reports(base, new, threshold_pct=1e9)
        problems = [d for d in diff.deltas if d.status not in ("ok",)]
        assert diff.ok, f"non-invariant deltas: {problems}"

        # The report carries the counter surface the ISSUE names.
        for prefix in ("guard.", "faults.injected.", "span."):
            assert any(k.startswith(prefix) for k in base.metrics), prefix
        assert base.metrics["cells"] == 8
        assert base.metrics["failures"] == 0

    def test_report_excludes_worker_dependent_keys(self, tmp_path):
        report = self._report(2, tmp_path)
        # Worker count and per-process details must stay out of the
        # metrics section or jobs=1 vs jobs=2 could never compare clean.
        assert "workers" not in report.metrics
        assert report.provenance.get("jobs") == 2
