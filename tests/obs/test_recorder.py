"""Tests for the span/counter recorder and its no-op default."""

import contextlib

from repro.obs import (
    SimTrace,
    TraceRecorder,
    count,
    get_recorder,
    recording,
    set_recorder,
    sim_events_enabled,
    span,
)


class TestOffByDefault:
    def test_no_recorder_installed(self):
        assert get_recorder() is None
        assert not sim_events_enabled()

    def test_span_is_shared_noop_context(self):
        s1 = span("rank", nodes=3)
        s2 = span("merge")
        assert s1 is s2  # shared null context — zero allocation when off
        with s1:
            pass

    def test_count_is_noop(self):
        count("anything", 5)  # must not raise


class TestRecording:
    def test_spans_collected_with_attrs_and_depth(self):
        with recording() as rec:
            with span("outer", blocks=2):
                with span("inner"):
                    pass
        names = [s.name for s in rec.spans]
        assert names == ["inner", "outer"]  # completion order
        inner, outer = rec.spans
        assert outer.depth == 0 and inner.depth == 1
        assert outer.attrs == {"blocks": 2}
        assert outer.duration_ns >= inner.duration_ns >= 0

    def test_counters_accumulate(self):
        with recording() as rec:
            count("x")
            count("x", 4)
            count("y", 2)
        assert rec.counters == {"x": 5, "y": 2}

    def test_previous_recorder_restored(self):
        outer = TraceRecorder()
        set_recorder(outer)
        try:
            with recording() as inner:
                assert get_recorder() is inner
            assert get_recorder() is outer
        finally:
            set_recorder(None)
        assert get_recorder() is None

    def test_restored_even_on_exception(self):
        with contextlib.suppress(ValueError):
            with recording():
                raise ValueError("boom")
        assert get_recorder() is None

    def test_sim_events_toggle(self):
        with recording(TraceRecorder(sim_events=False)):
            assert not sim_events_enabled()
        with recording():
            assert sim_events_enabled()

    def test_phase_walltimes_and_span_stats(self):
        with recording() as rec:
            for _ in range(3):
                with span("rank"):
                    pass
            with span("merge"):
                pass
        stats = rec.span_stats()
        assert stats["rank"][0] == 3 and stats["merge"][0] == 1
        walltimes = rec.phase_walltimes()
        assert set(walltimes) == {"rank", "merge"}
        assert all(v >= 0 for v in walltimes.values())

    def test_sim_trace_collection(self):
        with recording() as rec:
            trace = SimTrace(window_size=4, num_instructions=0)
            rec.add_sim_trace(trace)
        assert rec.sim_traces == [trace]
