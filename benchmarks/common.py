"""Shared helpers for the benchmark harness.

Each benchmark regenerates one of the paper's figures (E1-E4) or one table
of the prospective study the paper proposed in §7 (E5-E11; see DESIGN.md).
Tables are printed and also written to ``benchmarks/results/<name>.txt`` so
EXPERIMENTS.md can quote them.

Benchmarks additionally persist a schema-versioned
:class:`~repro.obs.runreport.RunReport` per run (:func:`emit_metrics`) to
``benchmarks/results/<name>.json`` — makespans, stall cycles, speedups,
per-phase wall times and provenance — so result trajectories
(``BENCH_*.json``) and the CI regression gate (``repro compare``) consume
structured data rather than scraping tables.
"""

from __future__ import annotations

import os
import pathlib
from typing import Callable, Iterable, Mapping, Sequence

from repro.analysis import format_table
from repro.obs import (
    RUNREPORT_SCHEMA_VERSION,
    RunReport,
    TraceRecorder,
    collect_provenance,
    recording,
)
from repro.robust.sweep import SweepError, run_sweep_robust

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

METRICS_SCHEMA_VERSION = RUNREPORT_SCHEMA_VERSION


def emit_table(
    name: str,
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str,
) -> str:
    """Format, print and persist an experiment table."""
    text = format_table(headers, rows, title=title)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)
    return text


def emit_metrics(
    name: str,
    metrics: Mapping[str, object],
    phases: Mapping[str, float] | None = None,
    machine=None,
    seed: int | None = None,
    **provenance_extra,
) -> pathlib.Path:
    """Persist one run as a RunReport at ``results/<name>.json``.

    ``metrics`` should hold JSON-serializable scalars/lists/dicts — typical
    keys: ``makespan``, ``stall_cycles``, ``speedup``, ``wall_s``,
    ``phase_wall_s`` (see :func:`phase_walltimes`).  ``phases`` (per-phase
    wall-clock seconds), ``machine`` (a :class:`MachineModel`) and ``seed``
    land in the report's ``phases``/``provenance`` sections; extra keyword
    arguments are stored as additional provenance.

    The regression gate treats every non-wall-time metric as invariant:
    ``repro compare baseline.json results/<name>.json`` fails on any drift.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    report = RunReport(
        name=name,
        metrics=dict(metrics),
        phases=dict(phases or {}),
        provenance=collect_provenance(
            machine=machine, seed=seed, **provenance_extra
        ),
    )
    path = report.write(RESULTS_DIR / f"{name}.json")
    print(f"metrics: wrote {path}")
    return path


def phase_walltimes(fn) -> dict[str, float]:
    """Run ``fn`` once under a span-only recorder and return total wall-clock
    seconds per pipeline phase (cycle-level sim events disabled to keep the
    measurement cheap)."""
    with recording(TraceRecorder(sim_events=False)) as rec:
        fn()
    return rec.phase_walltimes()


def sweep_jobs() -> int:
    """Worker-process count for :func:`run_sweep`: the ``--jobs`` pytest
    option (exported as ``REPRO_JOBS`` by ``conftest.py``), default 1."""
    try:
        return max(1, int(os.environ.get("REPRO_JOBS", "1")))
    except ValueError:
        return 1


def sweep_telemetry_dir() -> str | None:
    """Spool directory for cross-process sweep telemetry: the
    ``REPRO_SPOOL_DIR`` environment variable, or ``None`` (telemetry off).
    When set, every benchmark sweep spools per-cell worker telemetry there
    (readable live via ``repro top``) and merges it into the active
    recorder at sweep end."""
    return os.environ.get("REPRO_SPOOL_DIR") or None


def run_sweep(
    fn: Callable,
    params: Sequence[object],
    jobs: int | None = None,
    *,
    timeout_s: float | None = None,
    retries: int = 0,
    checkpoint: str | os.PathLike | None = None,
    telemetry_dir: str | os.PathLike | None = None,
) -> list:
    """Map ``fn`` over ``params`` — the independent cells of an experiment
    sweep — returning results in input order.

    Each element of ``params`` is an argument tuple for ``fn`` (bare values
    are treated as 1-tuples).  With ``jobs`` (default :func:`sweep_jobs`)
    greater than one the cells fan out over a fork-based process pool, so
    ``fn`` must be a module-level callable; cells must not depend on shared
    mutable state.

    Built on :func:`repro.robust.sweep.run_sweep_robust`: a worker crash or
    hang no longer aborts the sweep mid-flight — every sibling cell is still
    driven to completion (and checkpointed, when ``checkpoint`` is given)
    before a :class:`repro.robust.sweep.SweepError` listing the failed cells
    is raised.  Shape assertions inside ``fn`` therefore still fail the
    benchmark, just without discarding the surviving results (available on
    the exception's ``.results``).
    """
    if jobs is None:
        jobs = sweep_jobs()
    if telemetry_dir is None:
        telemetry_dir = sweep_telemetry_dir()
    res = run_sweep_robust(
        fn,
        params,
        jobs=jobs,
        timeout_s=timeout_s,
        retries=retries,
        checkpoint=checkpoint,
        telemetry_dir=telemetry_dir,
    )
    if res.failures:
        raise SweepError(res.failures, res.results)
    return res.results
