"""Tail-sampling trace buffer: the daemon's flight recorder.

Head sampling (keep every Nth trace) is the wrong tool for a serving tier:
the traces worth keeping — errors, cache misses that ran the scheduler,
p99 outliers — are precisely the rare ones a uniform sample discards.
:class:`TraceBuffer` samples on the *tail* instead: the keep/drop decision
is made after the request finishes, when its status and duration are
known.  Three bounded rings:

- ``recent`` — the last N requests regardless of outcome (context for the
  interesting ones);
- ``errors`` — every request that answered ``ok: false``;
- ``slow`` — every request at or above the rolling-window p99 duration,
  plus every cache miss slower than the rolling median (a miss ran the
  scheduler; a slow miss is where capacity goes);
- ``degraded`` — every request answered from the guard's verified
  fallback (``degraded: <reason>`` on the response): degradation is the
  serving tier's canary, so it gets its own keep-rule instead of hiding
  in ``recent``.

Each retained :class:`RequestTrace` carries the full span tree the service
recorded for that request — daemon-side phases (decode / canonicalize /
cache_probe / dispatch / respond) and the pool worker's spans, all stamped
with the request's trace id — and exports through the existing JSONL
schema (:mod:`repro.obs.export`), so ``repro trace`` renders a retained
request as a waterfall and ``write_chrome_trace`` ships it to Perfetto.

Thread-safety: ``add`` runs on the daemon's batch-executor thread while
``snapshot`` runs on the asyncio thread answering ``/debug/traces``; a
single lock covers both.
"""

from __future__ import annotations

import bisect
import threading
from collections import deque
from dataclasses import dataclass, field

from ..obs.export import JSONL_FORMAT, JSONL_VERSION
from ..obs.recorder import SpanRecord

#: Meta-record tag marking a JSONL file as one request's span waterfall.
WATERFALL_KIND = "request_waterfall"

#: Default ring sizes.
DEFAULT_CAPACITY = 256
DEFAULT_SLOW_CAPACITY = 64
DEFAULT_ERROR_CAPACITY = 64
DEFAULT_DEGRADED_CAPACITY = 64

#: Rolling duration window used for the p99 / median thresholds.
DEFAULT_SAMPLE_WINDOW = 512


@dataclass
class RequestTrace:
    """One finished request and everything known about where its time went."""

    trace_id: str
    request_id: object
    scheduler: str
    digest: str | None
    cached: bool
    status: str  # "ok" | "error"
    start_ns: int
    duration_ns: int
    batch: int
    transport: str = "unknown"
    worker_pid: int | None = None
    error: str | None = None
    #: Guard degradation reason (``timeout``, ``node_budget``, ...) when the
    #: response was served from the verified fallback; None on the primary
    #: path.
    degraded: str | None = None
    #: Full span tree: ``serve.request`` root at depth 0, daemon phases at
    #: depth 1, worker spans at depth 2+ — every one stamped with
    #: ``trace_id``.
    spans: list[SpanRecord] = field(default_factory=list)

    @property
    def duration_s(self) -> float:
        return self.duration_ns / 1e9

    def to_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "id": self.request_id,
            "scheduler": self.scheduler,
            "digest": self.digest,
            "cached": self.cached,
            "status": self.status,
            "error": self.error,
            "degraded": self.degraded,
            "start_us": self.start_ns // 1000,
            "duration_s": self.duration_s,
            "batch": self.batch,
            "transport": self.transport,
            "worker_pid": self.worker_pid,
            "spans": [s.to_dict() for s in self.spans],
        }

    @classmethod
    def from_dict(cls, d: dict) -> "RequestTrace":
        return cls(
            trace_id=str(d["trace_id"]),
            request_id=d.get("id"),
            scheduler=str(d.get("scheduler", "")),
            digest=d.get("digest"),
            cached=bool(d.get("cached", False)),
            status=str(d.get("status", "ok")),
            error=d.get("error"),
            degraded=d.get("degraded"),
            start_ns=int(d.get("start_us", 0)) * 1000,
            duration_ns=int(float(d.get("duration_s", 0.0)) * 1e9),
            batch=int(d.get("batch", 0)),
            transport=str(d.get("transport", "unknown")),
            worker_pid=d.get("worker_pid"),
            spans=[SpanRecord.from_dict(s) for s in d.get("spans", [])],
        )

    def waterfall_records(self) -> list[dict]:
        """The trace as JSONL records (meta + spans) loadable by
        :func:`repro.obs.export.read_jsonl` — the same schema ``repro
        trace`` replays, tagged ``kind: request_waterfall`` so the CLI
        renders a per-span waterfall instead of aggregate phase tables."""
        meta = {
            "type": "meta",
            "format": JSONL_FORMAT,
            "version": JSONL_VERSION,
            "kind": WATERFALL_KIND,
            "trace_id": self.trace_id,
            "request": {
                "id": self.request_id,
                "scheduler": self.scheduler,
                "digest": self.digest,
                "cached": self.cached,
                "status": self.status,
                "error": self.error,
                "duration_s": self.duration_s,
                "transport": self.transport,
                "worker_pid": self.worker_pid,
            },
            "spans": len(self.spans),
            "sim_traces": 0,
        }
        return [meta] + [s.to_dict() for s in self.spans]


class _DurationWindow:
    """Rolling window of the last N durations with O(log n) percentile
    lookup (a sorted shadow list updated by bisect on insert/evict)."""

    def __init__(self, size: int) -> None:
        self._fifo: deque[int] = deque(maxlen=size)
        self._sorted: list[int] = []

    def add(self, duration_ns: int) -> None:
        if len(self._fifo) == self._fifo.maxlen:
            oldest = self._fifo[0]
            del self._sorted[bisect.bisect_left(self._sorted, oldest)]
        self._fifo.append(duration_ns)
        bisect.insort(self._sorted, duration_ns)

    def percentile(self, p: float) -> int | None:
        """Nearest-rank percentile over the window (None when empty)."""
        if not self._sorted:
            return None
        rank = max(1, -(-int(p * len(self._sorted)) // 100))  # ceil
        return self._sorted[min(rank, len(self._sorted)) - 1]

    def __len__(self) -> int:
        return len(self._fifo)


class TraceBuffer:
    """Bounded tail-sampling rings over finished :class:`RequestTrace`\\ s."""

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        slow_capacity: int = DEFAULT_SLOW_CAPACITY,
        error_capacity: int = DEFAULT_ERROR_CAPACITY,
        sample_window: int = DEFAULT_SAMPLE_WINDOW,
        degraded_capacity: int = DEFAULT_DEGRADED_CAPACITY,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._recent: deque[RequestTrace] = deque(maxlen=capacity)
        self._slow: deque[RequestTrace] = deque(maxlen=slow_capacity)
        self._errors: deque[RequestTrace] = deque(maxlen=error_capacity)
        self._degraded: deque[RequestTrace] = deque(maxlen=degraded_capacity)
        self._window = _DurationWindow(sample_window)
        self._lock = threading.Lock()
        self.added = 0

    # -- writing (batch-executor thread) --------------------------------------

    def add(self, trace: RequestTrace) -> None:
        with self._lock:
            self.added += 1
            self._recent.append(trace)
            if trace.status != "ok":
                self._errors.append(trace)
            if trace.degraded is not None:
                self._degraded.append(trace)
            self._window.add(trace.duration_ns)
            p99 = self._window.percentile(99.0)
            p50 = self._window.percentile(50.0)
            if (p99 is not None and trace.duration_ns >= p99) or (
                not trace.cached
                and trace.status == "ok"
                and p50 is not None
                and trace.duration_ns > p50
            ):
                self._slow.append(trace)

    # -- reading (asyncio thread) ---------------------------------------------

    def _select(
        self,
        ring: deque,
        n: int | None,
        trace_id: str | None,
    ) -> list[RequestTrace]:
        out = [
            t
            for t in ring
            if trace_id is None or t.trace_id == trace_id
        ]
        if n is not None and n >= 0:
            out = out[-n:]
        return out

    def recent(
        self, n: int | None = None, trace_id: str | None = None
    ) -> list[RequestTrace]:
        with self._lock:
            return self._select(self._recent, n, trace_id)

    def slow(
        self, n: int | None = None, trace_id: str | None = None
    ) -> list[RequestTrace]:
        with self._lock:
            return self._select(self._slow, n, trace_id)

    def errors(
        self, n: int | None = None, trace_id: str | None = None
    ) -> list[RequestTrace]:
        with self._lock:
            return self._select(self._errors, n, trace_id)

    def degraded(
        self, n: int | None = None, trace_id: str | None = None
    ) -> list[RequestTrace]:
        with self._lock:
            return self._select(self._degraded, n, trace_id)

    def find(self, trace_id: str) -> RequestTrace | None:
        """The most recent retained trace with this id, from any ring."""
        with self._lock:
            for ring in (
                self._recent,
                self._slow,
                self._errors,
                self._degraded,
            ):
                for trace in reversed(ring):
                    if trace.trace_id == trace_id:
                        return trace
        return None

    def stats(self) -> dict:
        with self._lock:
            return {
                "added": self.added,
                "recent": len(self._recent),
                "slow": len(self._slow),
                "errors": len(self._errors),
                "degraded": len(self._degraded),
                "p50_s": _ns_to_s(self._window.percentile(50.0)),
                "p99_s": _ns_to_s(self._window.percentile(99.0)),
            }


def _ns_to_s(ns: int | None) -> float | None:
    return None if ns is None else ns / 1e9


def waterfall_text(records: list[dict]) -> list[str]:
    """Render waterfall JSONL records as indented text lines — one bar per
    span, offset + duration, worker spans marked with their pid.  Shared by
    ``repro trace`` and the smoke harness."""
    spans = [SpanRecord.from_dict(r) for r in records if r.get("type") == "span"]
    if not spans:
        return ["(no spans)"]
    t0 = min(s.start_ns for s in spans)
    t_end = max(s.start_ns + s.duration_ns for s in spans)
    total = max(t_end - t0, 1)
    width = 32
    lines = []
    for s in sorted(spans, key=lambda s: (s.start_ns, s.depth)):
        left = int((s.start_ns - t0) * width / total)
        bar = int(max(1, (s.duration_ns * width) // total))
        gutter = " " * left + "#" * min(bar, width - left)
        tag = f" [pid {s.pid}]" if s.pid is not None else ""
        lines.append(
            f"{gutter:<{width}}  {'  ' * s.depth}{s.name:<28} "
            f"+{(s.start_ns - t0) / 1e6:8.3f} ms  "
            f"{s.duration_ns / 1e6:8.3f} ms{tag}"
        )
    return lines
