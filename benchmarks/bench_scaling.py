"""E10 — complexity study: polynomial-time claim of §7.

Measures scheduler wall-clock versus trace size and verifies the structural
complexity bounds the paper states: merge's deadline-relaxation loop stays
small (paper: ≤ 2W iterations), and the whole pipeline scales to hundreds of
instructions in well under a second.
"""

import time

from common import emit_metrics, emit_table, phase_walltimes

from repro.core import algorithm_lookahead
from repro.machine import paper_machine
from repro.workloads import random_trace

SIZES = ((2, 10), (4, 10), (8, 10), (4, 20), (4, 40))


def make_trace(blocks: int, block_size: int, seed: int = 0):
    return random_trace(
        blocks,
        block_size,
        edge_probability=0.2,
        cross_probability=0.05,
        latencies=(0, 1, 2),
        seed=seed,
    )


def test_scaling(benchmark):
    m = paper_machine(4)
    rows = []
    runs = []
    for blocks, size in SIZES:
        t = make_trace(blocks, size)
        start = time.perf_counter()
        res = algorithm_lookahead(t, m)
        elapsed = time.perf_counter() - start
        max_relax = max(step.merge.relaxations for step in res.steps)
        rows.append([blocks, size, blocks * size, f"{elapsed * 1e3:.1f} ms", max_relax])
        runs.append(
            {
                "blocks": blocks,
                "instrs_per_block": size,
                "total_instrs": blocks * size,
                "wall_s": elapsed,
                "predicted_makespan": res.predicted_makespan,
                "max_merge_relaxations": max_relax,
            }
        )
        # Paper's bound: the relaxation loop is tiny (<= 2W in the optimal
        # regime; we allow the latency slack of the heuristic regime).
        assert max_relax <= 2 * m.window_size + 4, max_relax
        assert elapsed < 10.0

    emit_table(
        "E10_scaling",
        ["blocks", "instrs/block", "total instrs", "wall clock", "max merge relaxations"],
        rows,
        title="E10: Algorithm Lookahead scaling (W=4, single run per size)",
    )

    t = make_trace(4, 20)
    emit_metrics(
        "E10_scaling",
        {
            "window_size": m.window_size,
            "runs": runs,
            "phase_wall_s": phase_walltimes(lambda: algorithm_lookahead(t, m)),
        },
    )
    benchmark(lambda: algorithm_lookahead(t, m))
