"""E14 — whole-CFG cost: hot-trace anticipation vs. cold-path penalty.

The paper's safety story (§1, §6): unlike trace scheduling, anticipatory
scheduling never moves instructions off their block, so off-trace paths pay
no compensation code — only a window flush at the mispredicted boundary and
block orders tuned for someone else.  This bench builds diamond CFGs,
schedules the hot trace anticipatorily, and measures *expected* completion
over all paths as the hot-path probability sweeps.

Expected shape (asserted): with a biased branch, hot-trace anticipatory
orders win over purely local orders in expectation; as the branch approaches
50/50 the advantage shrinks (and may invert slightly) — the classic
trace-bias tradeoff, but with a bounded downside.
"""

from common import emit_metrics, emit_table

from repro.core import algorithm_lookahead, local_block_orders
from repro.ir import ControlFlowGraph, Trace, block_from_graph
from repro.machine import paper_machine
from repro.sim import evaluate_cfg
from repro.workloads import random_dag

PROBS = (0.95, 0.8, 0.5)
TRIALS = 6
PENALTY = 4


def build_diamond(seed: int):
    rng_blocks = {
        name: random_dag(
            6, edge_probability=0.3, latencies=(0, 1, 2, 4),
            seed=seed * 17 + i, prefix=f"{name}_",
        )
        for i, name in enumerate(["entry", "hot", "cold", "exit"])
    }
    cfg = ControlFlowGraph()
    for name, g in rng_blocks.items():
        cfg.add_block(block_from_graph(name, g), entry=(name == "entry"))
    return cfg, rng_blocks


def orders_for(cfg, blocks, machine, anticipatory: bool):
    hot_trace = Trace(
        [cfg.block(n) for n in ("entry", "hot", "exit")]
    )
    if anticipatory:
        res = algorithm_lookahead(hot_trace, machine)
        orders = dict(zip(("entry", "hot", "exit"), res.block_orders))
        cold_local = local_block_orders(
            Trace([cfg.block("cold")]), machine
        )[0]
        orders["cold"] = cold_local
    else:
        orders = {}
        for name in blocks:
            orders[name] = local_block_orders(
                Trace([cfg.block(name)]), machine
            )[0]
    return orders


def test_cfg_paths(benchmark):
    machine = paper_machine(4)
    rows = []
    advantage_by_prob: dict[float, list[float]] = {p: [] for p in PROBS}
    for p in PROBS:
        for seed in range(TRIALS):
            cfg, blocks = build_diamond(seed)
            cfg.add_edge("entry", "hot", p)
            cfg.add_edge("entry", "cold", 1 - p)
            cfg.add_edge("hot", "exit", 1.0)
            cfg.add_edge("cold", "exit", 1.0)
            ant = evaluate_cfg(
                cfg,
                orders_for(cfg, blocks, machine, True),
                ["entry", "hot", "exit"],
                machine=machine,
                misprediction_penalty=PENALTY,
            ).expected_makespan
            loc = evaluate_cfg(
                cfg,
                orders_for(cfg, blocks, machine, False),
                ["entry", "hot", "exit"],
                machine=machine,
                misprediction_penalty=PENALTY,
            ).expected_makespan
            advantage_by_prob[p].append(loc - ant)
        mean_adv = sum(advantage_by_prob[p]) / TRIALS
        rows.append([p, mean_adv])

    emit_table(
        "E14_cfg_paths",
        ["hot-path probability", "mean expected-cycle gain of hot-trace "
         "anticipation vs local"],
        rows,
        title=(
            "E14: whole-CFG expected completion, diamond CFGs "
            f"(W=4, flush penalty {PENALTY}, mean over {TRIALS} seeds)"
        ),
    )
    # Biased branches: anticipation must help in expectation.
    assert sum(advantage_by_prob[0.95]) > 0
    assert sum(advantage_by_prob[0.8]) >= 0
    # The downside at 50/50 stays bounded (safety: no compensation code).
    assert min(advantage_by_prob[0.5]) > -PENALTY

    emit_metrics(
        "E14_cfg_paths",
        {
            "trials": TRIALS,
            "misprediction_penalty": PENALTY,
            "mean_advantage_by_prob": {
                str(p): sum(advantage_by_prob[p]) / TRIALS for p in PROBS
            },
        },
        machine=machine,
    )

    cfg, blocks = build_diamond(0)
    cfg.add_edge("entry", "hot", 0.9)
    cfg.add_edge("entry", "cold", 0.1)
    cfg.add_edge("hot", "exit", 1.0)
    cfg.add_edge("cold", "exit", 1.0)
    benchmark(
        lambda: evaluate_cfg(
            cfg,
            orders_for(cfg, blocks, machine, True),
            ["entry", "hot", "exit"],
            machine=machine,
            misprediction_penalty=PENALTY,
        )
    )
