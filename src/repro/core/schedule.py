"""Schedule value type shared by every scheduler in the library.

A schedule assigns each instruction an integer start time and a functional
unit (paper §3: "A schedule S assigns each instruction x a start time S(x)
and functional unit on which to run").  With unit execution times a node
started at time t completes at t + 1; in general at t + exec_time.

The helpers here mirror the vocabulary of the paper: makespan, idle slots,
u-set partitions around idle slots, tail nodes, permutations and
sub-permutations (Definition 2.1).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Iterable, Mapping

from ..ir.depgraph import DependenceGraph
from ..ir.instruction import ANY

#: A functional unit identity: (fu_class, index within class).
Unit = tuple[str, int]

SINGLE_UNIT: Unit = (ANY, 0)


class ScheduleError(ValueError):
    """Raised when a schedule violates dependence or resource constraints."""


@dataclass(frozen=True)
class IdleSlot:
    """One idle time step on one unit (time < makespan)."""

    time: int
    unit: Unit


class Schedule:
    """An assignment of start times (and units) to the nodes of a graph."""

    def __init__(
        self,
        graph: DependenceGraph,
        starts: Mapping[str, int],
        units: Mapping[str, Unit] | None = None,
    ) -> None:
        missing = set(graph.nodes) - set(starts)
        extra = set(starts) - set(graph.nodes)
        if missing:
            raise ScheduleError(f"schedule misses nodes {sorted(missing)}")
        if extra:
            raise ScheduleError(f"schedule has unknown nodes {sorted(extra)}")
        for n, t in starts.items():
            if t < 0:
                raise ScheduleError(f"negative start time {t} for {n!r}")
        self.graph = graph
        self.starts: dict[str, int] = dict(starts)
        if units is None:
            units = {n: SINGLE_UNIT for n in starts}
        self.units: dict[str, Unit] = dict(units)
        self._exec = {n: graph.exec_time(n) for n in graph.nodes}

    # Basic accessors ------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.starts)

    def __contains__(self, node: str) -> bool:
        return node in self.starts

    def start(self, node: str) -> int:
        return self.starts[node]

    def completion(self, node: str) -> int:
        return self.starts[node] + self._exec[node]

    def completion_times(self) -> dict[str, int]:
        return {n: self.completion(n) for n in self.starts}

    def unit(self, node: str) -> Unit:
        return self.units[node]

    @property
    def makespan(self) -> int:
        """Completion time of the last instruction (first starts at >= 0)."""
        if not self.starts:
            return 0
        return max(self.completion(n) for n in self.starts)

    # Ordering views ----------------------------------------------------------------

    def permutation(self) -> list[str]:
        """Nodes ordered by (start time, unit) — for a single-unit schedule this
        is exactly the paper's permutation P consistent with S."""
        return sorted(self.starts, key=lambda n: (self.starts[n], self.units[n]))

    def subpermutation(self, members: Iterable[str]) -> list[str]:
        """Definition 2.1: the relative order of ``members`` within P."""
        member_set = set(members)
        return [n for n in self.permutation() if n in member_set]

    # Idle-slot machinery (paper §3) --------------------------------------------------

    def busy_units(self) -> set[Unit]:
        return set(self.units[n] for n in self.starts)

    def idle_slots(self, unit: Unit | None = None) -> list[IdleSlot]:
        """Idle integer time steps strictly before the makespan.

        A unit is idle at time t if it is not starting or running any
        instruction at t (paper §3).  If ``unit`` is given, only that unit's
        slots are reported; otherwise all units that run at least one node
        are scanned (sorted by time then unit).
        """
        span = self.makespan
        units = [unit] if unit is not None else sorted(self.busy_units())
        busy: dict[Unit, set[int]] = {u: set() for u in units}
        for n, t in self.starts.items():
            u = self.units[n]
            if u in busy:
                busy[u].update(range(t, t + self._exec[n]))
        out = [
            IdleSlot(t, u)
            for u in units
            for t in range(span)
            if t not in busy[u]
        ]
        out.sort(key=lambda s: (s.time, s.unit))
        return out

    def idle_times(self, unit: Unit = SINGLE_UNIT) -> list[int]:
        """Start times t₁ < t₂ < … of the idle slots on ``unit``."""
        return [s.time for s in self.idle_slots(unit)]

    def global_idle_times(self) -> list[int]:
        """Times before the makespan at which *every* used unit is idle — a
        whole-machine stall.  Equal to :meth:`idle_times` on a single-unit
        schedule; the conservative generalization chop needs on multi-unit
        machines (no instruction can start at or span a global idle time)."""
        span = self.makespan
        busy: set[int] = set()
        for n, t in self.starts.items():
            busy.update(range(t, t + self._exec[n]))
        return [t for t in range(span) if t not in busy]

    def tail_node(self, idle_time: int, unit: Unit = SINGLE_UNIT) -> str | None:
        """The node scheduled at time ``idle_time − 1`` on ``unit`` — the
        paper's *tail* of the u-set ending at that idle slot.  With non-unit
        execution times, the node *completing* at ``idle_time`` (or running
        into it) is returned; None if the unit is also idle just before."""
        best: str | None = None
        for n, t in self.starts.items():
            if self.units[n] != unit:
                continue
            if t < idle_time <= t + self._exec[n]:
                if best is None or t > self.starts[best]:
                    best = n
        return best

    def u_sets(self, unit: Unit = SINGLE_UNIT) -> list[list[str]]:
        """Partition of the unit's nodes into u-sets U₁,…,U_{j+1} delimited by
        its idle slots (paper §3): U_i holds the nodes scheduled between idle
        slot i−1 (exclusive) and idle slot i; the final set follows the last
        idle slot.  Nodes appear in start-time order."""
        times = self.idle_times(unit)
        nodes = sorted(
            (n for n in self.starts if self.units[n] == unit),
            key=lambda n: self.starts[n],
        )
        bounds = times + [self.makespan + 1]
        sets: list[list[str]] = [[] for _ in bounds]
        for n in nodes:
            t = self.starts[n]
            for i, b in enumerate(bounds):
                if t < b:
                    sets[i].append(n)
                    break
        return sets

    def nodes_before(self, time: int, unit: Unit | None = None) -> list[str]:
        """Nodes starting strictly before ``time`` (optionally on one unit)."""
        return [
            n
            for n, t in self.starts.items()
            if t < time and (unit is None or self.units[n] == unit)
        ]

    # Validation -------------------------------------------------------------------

    def validate(self, check_units: bool = True) -> None:
        """Raise :class:`ScheduleError` on dependence/latency/resource violations."""
        for u, v, lat in self.graph.edges():
            earliest = self.completion(u) + lat
            if self.starts[v] < earliest:
                raise ScheduleError(
                    f"dependence violated: {v!r} starts at {self.starts[v]} but "
                    f"{u!r} completes at {self.completion(u)} with latency {lat}"
                )
        if check_units:
            busy: dict[tuple[Unit, int], str] = {}
            for n, t in self.starts.items():
                u = self.units[n]
                for step in range(t, t + self._exec[n]):
                    if (u, step) in busy:
                        raise ScheduleError(
                            f"unit {u} runs both {busy[(u, step)]!r} and {n!r} "
                            f"at time {step}"
                        )
                    busy[(u, step)] = n

    def is_valid(self) -> bool:
        try:
            self.validate()
            return True
        except ScheduleError:
            return False

    def is_feasible(self, deadlines: Mapping[str, int]) -> bool:
        """All nodes complete by their deadlines (missing keys: unconstrained)."""
        return all(
            self.completion(n) <= deadlines[n] for n in self.starts if n in deadlines
        )

    def tardiness(self, deadlines: Mapping[str, int]) -> int:
        """Maximum lateness max(0, completion − deadline) over all nodes."""
        worst = 0
        for n in self.starts:
            if n in deadlines:
                worst = max(worst, self.completion(n) - deadlines[n])
        return worst

    # Presentation --------------------------------------------------------------------

    def gantt(self) -> str:
        """ASCII timeline in the style of the paper's figures, one row per
        unit: ``| x | e | r | b | w |   | a |``."""
        span = self.makespan
        rows: list[str] = []
        for u in sorted(self.busy_units()):
            cells = [""] * span
            for n, t in self.starts.items():
                if self.units[n] != u:
                    continue
                for step in range(t, t + self._exec[n]):
                    cells[step] = n if step == t else f"({n})"
            width = max([3] + [len(c) for c in cells]) + 2
            row = "|".join(c.center(width) for c in cells)
            label = f"{u[0]}{u[1]}: " if len(self.busy_units()) > 1 else ""
            rows.append(f"{label}|{row}|")
        return "\n".join(rows)

    def copy(self) -> "Schedule":
        return Schedule(self.graph, self.starts, self.units)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Schedule)
            and self.starts == other.starts
            and self.units == other.units
        )

    def __hash__(self) -> int:
        # Must hash everything __eq__ compares: hashing only ``starts``
        # collides multi-FU schedules that differ solely in unit assignment.
        return hash(
            (
                tuple(sorted(self.starts.items())),
                tuple(sorted(self.units.items())),
            )
        )

    def digest(self) -> str:
        """Stable sha256 content digest of the schedule.

        Unlike :func:`hash`, the value is independent of ``PYTHONHASHSEED``
        and identical across processes and sessions, so it can key on-disk
        stores and travel in wire responses (the serve cache reuses it to
        assert bit-identity of cached vs freshly computed schedules).  Two
        schedules are equal iff their digests are equal: the canonical JSON
        covers exactly what :meth:`__eq__` compares — starts and units.
        """
        return schedule_digest(self.starts, self.units)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Schedule(n={len(self)}, makespan={self.makespan})"


def schedule_digest(
    starts: Mapping[str, int], units: Mapping[str, Unit]
) -> str:
    """sha256 content digest of a ``(starts, units)`` assignment.

    Module-level so callers holding raw mappings (e.g. the serve cache
    translating a stored canonical schedule into request names) can digest
    without constructing a graph-validated :class:`Schedule`; the method
    :meth:`Schedule.digest` delegates here, so the two can never disagree.
    """
    payload = {
        "v": 1,
        "starts": [[n, t] for n, t in sorted(starts.items())],
        "units": [[n, list(u)] for n, u in sorted(units.items())],
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()
