"""Observability: pipeline spans, counters, cycle-level simulator event
traces, derived hardware-counter metrics, schema-versioned run reports, and
exporters (JSONL, Chrome trace-event / Perfetto).

See ``docs/OBSERVABILITY.md`` for the event schema and usage guide.
"""

from .events import EVENT_KINDS, STALL_KINDS, SimEvent, SimTrace
from .metrics import (
    STALL_CAUSES,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    classify_stall,
    sim_metrics,
    stall_attribution,
)
from .runreport import (
    RUNREPORT_SCHEMA_VERSION,
    Delta,
    ReportDiff,
    RunReport,
    collect_provenance,
    compare_reports,
    flatten_metrics,
    is_timing_path,
)
from .export import (
    chrome_trace_events,
    chrome_trace_path,
    read_jsonl,
    recorder_records,
    sim_traces_from_records,
    write_chrome_trace,
    write_jsonl,
)
from .recorder import (
    SpanRecord,
    TraceRecorder,
    count,
    get_recorder,
    publish_sim_trace,
    recording,
    set_recorder,
    sim_events_enabled,
    span,
)

__all__ = [
    "Counter",
    "Delta",
    "EVENT_KINDS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RUNREPORT_SCHEMA_VERSION",
    "ReportDiff",
    "RunReport",
    "STALL_CAUSES",
    "STALL_KINDS",
    "SimEvent",
    "SimTrace",
    "SpanRecord",
    "TraceRecorder",
    "classify_stall",
    "collect_provenance",
    "compare_reports",
    "flatten_metrics",
    "is_timing_path",
    "sim_metrics",
    "stall_attribution",
    "chrome_trace_events",
    "chrome_trace_path",
    "count",
    "get_recorder",
    "publish_sim_trace",
    "read_jsonl",
    "recorder_records",
    "recording",
    "set_recorder",
    "sim_events_enabled",
    "sim_traces_from_records",
    "span",
    "write_chrome_trace",
    "write_jsonl",
]
