"""Unit tests for the Coffman-Graham and Bernstein-Gertner label schedulers."""

import pytest

from repro.ir import graph_from_edges
from repro.machine import MachineModel, paper_machine
from repro.schedulers import (
    TWO_PROCESSOR,
    bernstein_gertner_labels,
    bernstein_gertner_schedule,
    coffman_graham_labels,
    coffman_graham_schedule,
    optimal_makespan,
)
from repro.workloads import random_dag


class TestCoffmanGraham:
    def test_labels_are_a_permutation(self):
        g = random_dag(12, edge_probability=0.3, latencies=(0,), seed=1)
        labels = coffman_graham_labels(g)
        assert sorted(labels.values()) == list(range(1, 13))

    def test_sources_get_high_labels(self):
        g = graph_from_edges([("a", "b", 0), ("b", "c", 0)])
        labels = coffman_graham_labels(g)
        assert labels["a"] > labels["b"] > labels["c"]

    @pytest.mark.parametrize("seed", range(10))
    def test_optimal_on_two_processors_zero_latency(self, seed):
        """CG is provably optimal for 2 identical units, unit times, no
        latencies — check against brute force."""
        g = random_dag(9, edge_probability=0.35, latencies=(0,), seed=seed)
        s = coffman_graham_schedule(g, TWO_PROCESSOR)
        s.validate()
        assert s.makespan == optimal_makespan(g, TWO_PROCESSOR)

    def test_schedule_valid_outside_its_regime(self):
        g = random_dag(12, edge_probability=0.25, latencies=(0, 1, 2), seed=3)
        coffman_graham_schedule(g, TWO_PROCESSOR).validate()


class TestBernsteinGertner:
    def test_labels_are_a_permutation(self):
        g = random_dag(12, edge_probability=0.3, latencies=(0, 1), seed=2)
        labels = bernstein_gertner_labels(g)
        assert sorted(labels.values()) == list(range(1, 13))

    def test_latency_successor_more_urgent(self):
        """Two parents of the same sink: the one reaching it through a
        latency-1 edge must be labelled higher (scheduled earlier)."""
        g = graph_from_edges([("slow", "sink", 1), ("fast", "sink", 0)])
        labels = bernstein_gertner_labels(g)
        assert labels["slow"] > labels["fast"]

    @pytest.mark.parametrize("seed", range(15))
    def test_optimal_on_01_latency_instances(self, seed):
        """B-G is optimal for unit times, 0/1 latencies, one pipelined unit;
        our reconstruction is verified against brute force."""
        g = random_dag(9, edge_probability=0.3, latencies=(0, 1), seed=seed)
        s = bernstein_gertner_schedule(g, paper_machine(1))
        s.validate()
        assert s.makespan == optimal_makespan(g, paper_machine(1))

    def test_valid_outside_regime(self):
        g = random_dag(12, edge_probability=0.25, latencies=(0, 1, 3), seed=5)
        bernstein_gertner_schedule(g, paper_machine(1)).validate()
