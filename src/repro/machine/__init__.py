"""Machine model substrate."""

from .model import MachineModel, in_order_machine, single_unit_machine
from .presets import NO_LOOKAHEAD, PAPER_CORE, RS6000_LIKE, WIDE_VLIW, paper_machine

__all__ = [
    "MachineModel",
    "NO_LOOKAHEAD",
    "PAPER_CORE",
    "RS6000_LIKE",
    "WIDE_VLIW",
    "in_order_machine",
    "paper_machine",
    "single_unit_machine",
]
