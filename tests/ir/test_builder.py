"""Unit tests for the def-use dependence builder."""

from repro.ir import Instruction, build_block, build_dependence_graph, build_trace


def instr(name, reads=(), writes=(), loads=(), stores=(), lat=1, branch=False):
    return Instruction(
        name=name,
        reads=tuple(reads),
        writes=tuple(writes),
        loads=tuple(loads),
        stores=tuple(stores),
        latency=lat,
        is_branch=branch,
    )


class TestRegisterDependences:
    def test_raw_uses_producer_latency(self):
        g = build_dependence_graph(
            [instr("a", writes=["r1"], lat=3), instr("b", reads=["r1"])]
        )
        assert g.latency("a", "b") == 3

    def test_waw_zero_latency(self):
        g = build_dependence_graph(
            [instr("a", writes=["r1"], lat=3), instr("b", writes=["r1"])]
        )
        assert g.latency("a", "b") == 0

    def test_war_zero_latency(self):
        g = build_dependence_graph(
            [instr("a", reads=["r1"]), instr("b", writes=["r1"])]
        )
        assert g.latency("a", "b") == 0

    def test_independent_instructions(self):
        g = build_dependence_graph(
            [instr("a", writes=["r1"]), instr("b", writes=["r2"])]
        )
        assert g.num_edges() == 0

    def test_transitive_chain(self):
        g = build_dependence_graph(
            [
                instr("a", writes=["r1"], lat=2),
                instr("b", reads=["r1"], writes=["r2"], lat=1),
                instr("c", reads=["r2"]),
            ]
        )
        assert g.latency("a", "b") == 2
        assert g.latency("b", "c") == 1


class TestMemoryDependences:
    def test_store_load_same_location(self):
        g = build_dependence_graph(
            [instr("s", stores=["x"], lat=2), instr("l", loads=["x"])]
        )
        assert g.latency("s", "l") == 2

    def test_store_load_different_locations(self):
        g = build_dependence_graph(
            [instr("s", stores=["x"]), instr("l", loads=["y"])]
        )
        assert g.num_edges() == 0

    def test_wildcard_conflicts_with_everything(self):
        g = build_dependence_graph(
            [instr("s", stores=["*"]), instr("l", loads=["y"])]
        )
        assert g.num_edges() == 1

    def test_load_store_war(self):
        g = build_dependence_graph(
            [instr("l", loads=["x"]), instr("s", stores=["x"], lat=3)]
        )
        assert g.latency("l", "s") == 0

    def test_store_store_waw(self):
        g = build_dependence_graph(
            [instr("s1", stores=["x"]), instr("s2", stores=["x"])]
        )
        assert g.latency("s1", "s2") == 0

    def test_load_load_no_conflict(self):
        g = build_dependence_graph(
            [instr("l1", loads=["x"]), instr("l2", loads=["x"])]
        )
        assert g.num_edges() == 0


class TestControlDependences:
    def test_branch_collects_all(self):
        g = build_dependence_graph(
            [instr("a"), instr("b"), instr("br", branch=True)]
        )
        assert g.latency("a", "br") == 0
        assert g.latency("b", "br") == 0

    def test_data_dep_to_branch_dominates_control(self):
        g = build_dependence_graph(
            [instr("cmp", writes=["cr0"], lat=1), instr("br", reads=["cr0"], branch=True)]
        )
        assert g.latency("cmp", "br") == 1


class TestTraceBuilding:
    def test_cross_block_raw(self):
        t = build_trace(
            [
                ("B1", [instr("a", writes=["r1"], lat=2)]),
                ("B2", [instr("b", reads=["r1"])]),
            ]
        )
        assert t.graph.latency("a", "b") == 2
        assert t.cross_edges == [("a", "b", 2)]

    def test_branch_does_not_collect_cross_block_control(self):
        t = build_trace(
            [
                ("B1", [instr("a", writes=["r9"])]),
                ("B2", [instr("b"), instr("br", branch=True)]),
            ]
        )
        # No register/memory overlap: 'a' must not be control-attached to
        # the *next* block's branch.
        assert t.graph.num_edges() == 1  # only b -> br inside B2

    def test_cross_block_memory(self):
        t = build_trace(
            [
                ("B1", [instr("s", stores=["m"], lat=1)]),
                ("B2", [instr("l", loads=["m"])]),
            ]
        )
        assert t.graph.latency("s", "l") == 1

    def test_build_block_keeps_instructions(self):
        bb = build_block("B", [instr("a"), instr("b")])
        assert [i.name for i in bb.instructions] == ["a", "b"]
        assert bb.node_names == ["a", "b"]
