"""Observability: pipeline spans, counters, cycle-level simulator event
traces, and exporters (JSONL, Chrome trace-event / Perfetto).

See ``docs/OBSERVABILITY.md`` for the event schema and usage guide.
"""

from .events import EVENT_KINDS, STALL_KINDS, SimEvent, SimTrace
from .export import (
    chrome_trace_events,
    chrome_trace_path,
    read_jsonl,
    recorder_records,
    sim_traces_from_records,
    write_chrome_trace,
    write_jsonl,
)
from .recorder import (
    SpanRecord,
    TraceRecorder,
    count,
    get_recorder,
    publish_sim_trace,
    recording,
    set_recorder,
    sim_events_enabled,
    span,
)

__all__ = [
    "EVENT_KINDS",
    "STALL_KINDS",
    "SimEvent",
    "SimTrace",
    "SpanRecord",
    "TraceRecorder",
    "chrome_trace_events",
    "chrome_trace_path",
    "count",
    "get_recorder",
    "publish_sim_trace",
    "read_jsonl",
    "recorder_records",
    "recording",
    "set_recorder",
    "sim_events_enabled",
    "sim_traces_from_records",
    "span",
    "write_chrome_trace",
    "write_jsonl",
]
