"""Tests for the asyncio daemon: both transports, batching, control ops,
malformed input, debug endpoints, access logging and HTTP error paths."""

import json
import socket

import pytest

from repro.machine.presets import PAPER_CORE
from repro.serve.client import ScheduleClient, http_get, http_schedule
from repro.serve.daemon import ScheduleServer, ServerHandle, _MAX_LINE
from repro.serve.protocol import ScheduleRequest
from repro.serve.service import ScheduleService
from repro.workloads.traces import random_trace


def _doc(seed=0, rid=None, trace_id=None):
    trace = random_trace(2, (3, 4), cross_probability=0.2, seed=seed)
    return ScheduleRequest(
        trace=trace, machine=PAPER_CORE, id=rid, trace_id=trace_id
    ).to_dict()


@pytest.fixture()
def server(tmp_path):
    service = ScheduleService(spool_dir=tmp_path / "spool")
    srv = ScheduleServer(
        service,
        socket_path=tmp_path / "serve.sock",
        port=0,
        batch_window_s=0.001,
    )
    with ServerHandle(srv):
        yield srv


class TestUnixTransport:
    def test_schedule_miss_then_hit(self, server):
        doc = _doc(seed=1, rid="a")
        with ScheduleClient(server.socket_path) as client:
            first = client.call(doc)
            second = client.call(dict(doc, id="b"))
        assert first["ok"] and first["cached"] is False
        assert second["ok"] and second["cached"] is True
        assert first["id"] == "a" and second["id"] == "b"
        assert first["block_orders"] == second["block_orders"]

    def test_control_ops(self, server):
        with ScheduleClient(server.socket_path) as client:
            assert client.ping() == {"ok": True, "op": "ping"}
            client.call(_doc(seed=2))
            stats = client.stats()
            assert stats["requests"] == 1
            assert "serve_cache_miss_total" in client.metrics_text()

    def test_bad_json_line_gets_error_response(self, server):
        with ScheduleClient(server.socket_path) as client:
            client._file.write(b"this is not json\n")
            client._file.flush()
            response = json.loads(client._file.readline())
        assert response["ok"] is False and "bad JSON" in response["error"]

    def test_unknown_op(self, server):
        with ScheduleClient(server.socket_path) as client:
            out = client.call({"op": "frobnicate"})
        assert out["ok"] is False

    def test_pipelined_requests_answered_in_order(self, server):
        docs = [_doc(seed=s, rid=f"r{s}") for s in range(6)]
        with ScheduleClient(server.socket_path) as client:
            for doc in docs:
                client._file.write(json.dumps(doc).encode() + b"\n")
            client._file.flush()
            responses = [json.loads(client._file.readline()) for _ in docs]
        assert [r["id"] for r in responses] == [f"r{s}" for s in range(6)]
        assert all(r["ok"] for r in responses)


class TestHttpTransport:
    def test_healthz(self, server):
        status, body = http_get(server.host, server.port, "/healthz")
        assert status == 200 and body == b"ok\n"

    def test_schedule_and_metrics(self, server):
        status, response = http_schedule(server.host, server.port, _doc(seed=3))
        assert status == 200 and response["ok"]
        status, body = http_get(server.host, server.port, "/metrics")
        assert status == 200
        assert b"repro_serve_requests_total" in body

    def test_batch_post(self, server):
        doc = _doc(seed=4)
        status, out = http_schedule(
            server.host, server.port,
            {"requests": [doc, dict(doc, id="dup")]},
        )
        assert status == 200
        responses = out["responses"]
        assert len(responses) == 2 and all(r["ok"] for r in responses)
        # The pair shares a digest: exactly one computed, one cache-served.
        assert sorted(r["cached"] for r in responses) == [False, True]

    def test_stats_endpoint(self, server):
        http_schedule(server.host, server.port, _doc(seed=5))
        status, body = http_get(server.host, server.port, "/stats")
        assert status == 200
        assert json.loads(body)["requests"] >= 1

    def test_unknown_path_404(self, server):
        status, _ = http_get(server.host, server.port, "/nope")
        assert status == 404


class TestDebugEndpoints:
    def test_debug_traces_round_trip(self, server):
        with ScheduleClient(server.socket_path) as client:
            client.call(_doc(seed=20, trace_id="cafe1234"))
        status, body = http_get(
            server.host, server.port, "/debug/traces?trace_id=cafe1234"
        )
        assert status == 200
        doc = json.loads(body)
        assert doc["ring"] == "recent" and len(doc["traces"]) == 1
        spans = doc["traces"][0]["spans"]
        assert {s["trace_id"] for s in spans} == {"cafe1234"}
        assert any(s["name"].startswith("serve.worker.") for s in spans)

    def test_debug_traces_n_limit(self, server):
        with ScheduleClient(server.socket_path) as client:
            for seed in range(3):
                client.call(_doc(seed=30 + seed))
        status, body = http_get(server.host, server.port, "/debug/traces?n=2")
        assert status == 200 and len(json.loads(body)["traces"]) == 2

    def test_debug_traces_jsonl_waterfall(self, server):
        with ScheduleClient(server.socket_path) as client:
            client.call(_doc(seed=21, trace_id="beef5678"))
        status, body = http_get(
            server.host, server.port,
            "/debug/traces?trace_id=beef5678&format=jsonl",
        )
        assert status == 200
        records = [json.loads(line) for line in body.splitlines() if line]
        assert records[0]["type"] == "meta"
        assert records[0]["kind"] == "request_waterfall"
        assert any(r.get("type") == "span" for r in records)

    def test_debug_errors_ring(self, server):
        status, _ = http_schedule(server.host, server.port,
                                  {"scheduler": "nope"})
        assert status == 200
        status, body = http_get(server.host, server.port, "/debug/errors")
        assert status == 200
        traces = json.loads(body)["traces"]
        assert traces and traces[-1]["status"] == "error"

    def test_debug_top_document(self, server):
        http_schedule(server.host, server.port, _doc(seed=22))
        status, body = http_get(server.host, server.port, "/debug/top")
        assert status == 200
        doc = json.loads(body)
        assert doc["stats"]["requests"] >= 1
        assert "serve.requests" in doc["metrics"]

    def test_debug_slow_endpoint_exists(self, server):
        status, body = http_get(server.host, server.port, "/debug/slow")
        assert status == 200 and json.loads(body)["ring"] == "slow"

    def test_unix_control_ops_traces_and_top(self, server):
        with ScheduleClient(server.socket_path) as client:
            client.call(_doc(seed=23, trace_id="abcd9999"))
            out = client.traces(trace_id="abcd9999")
            assert out["ok"] and len(out["traces"]) == 1
            top = client.top()
            assert top["ok"] and top["stats"]["requests"] == 1

    def test_debug_profile_collapsed(self, server):
        status, body = http_get(
            server.host, server.port,
            "/debug/profile?seconds=0.05&interval_ms=1&format=collapsed",
        )
        assert status == 200

    def test_debug_profile_rejects_bad_params(self, server):
        status, _ = http_get(
            server.host, server.port, "/debug/profile?seconds=banana"
        )
        assert status == 400
        status, _ = http_get(
            server.host, server.port, "/debug/profile?format=svg"
        )
        assert status == 400

    def test_metrics_exposes_burn_rate_gauges(self, server):
        http_schedule(server.host, server.port, _doc(seed=24))
        status, body = http_get(server.host, server.port, "/metrics")
        assert status == 200
        assert b"serve_slo_fast_burn_rate" in body
        assert b"serve_cache_hit_ratio" in body


class TestHttpErrorPaths:
    def _raw(self, server, payload: bytes) -> bytes:
        with socket.create_connection((server.host, server.port),
                                      timeout=10) as sock:
            sock.sendall(payload)
            sock.shutdown(socket.SHUT_WR)
            chunks = []
            while chunk := sock.recv(65536):
                chunks.append(chunk)
        return b"".join(chunks)

    def test_oversized_body_413(self, server):
        huge = _MAX_LINE + 1
        head = (
            f"POST /v1/schedule HTTP/1.1\r\nHost: x\r\n"
            f"Content-Length: {huge}\r\n\r\n"
        ).encode()
        response = self._raw(server, head)
        assert response.startswith(b"HTTP/1.1 413")

    def test_bad_json_400(self, server):
        body = b"{not json"
        head = (
            f"POST /v1/schedule HTTP/1.1\r\nHost: x\r\n"
            f"Content-Length: {len(body)}\r\n\r\n"
        ).encode()
        response = self._raw(server, head + body)
        assert response.startswith(b"HTTP/1.1 400")

    def test_unknown_endpoint_404(self, server):
        status, _ = http_get(server.host, server.port, "/debug/nope")
        assert status == 404

    def test_mid_body_disconnect_does_not_poison_daemon(self, server):
        head = (
            "POST /v1/schedule HTTP/1.1\r\nHost: x\r\n"
            "Content-Length: 1000\r\n\r\n"
        ).encode()
        with socket.create_connection((server.host, server.port),
                                      timeout=10) as sock:
            sock.sendall(head + b'{"partial')  # then hang up mid-body
        # The daemon must shrug it off: both transports stay healthy.
        status, response = http_schedule(server.host, server.port,
                                         _doc(seed=25))
        assert status == 200 and response["ok"]
        with ScheduleClient(server.socket_path) as client:
            assert client.ping()["ok"]

    def test_error_path_does_not_poison_batch(self, server):
        good = _doc(seed=26, rid="good")
        status, out = http_schedule(
            server.host, server.port,
            {"requests": [{"scheduler": "nope", "id": "bad"}, good]},
        )
        assert status == 200
        bad_r, good_r = out["responses"]
        assert bad_r["ok"] is False and good_r["ok"] is True


class TestAccessLog:
    def test_one_line_per_request(self, tmp_path):
        log = tmp_path / "access.jsonl"
        service = ScheduleService(spool_dir=tmp_path / "spool")
        srv = ScheduleServer(
            service,
            socket_path=tmp_path / "serve.sock",
            port=0,
            batch_window_s=0.001,
            access_log=log,
        )
        with ServerHandle(srv):
            with ScheduleClient(srv.socket_path) as client:
                client.call(_doc(seed=27, rid="r1", trace_id="feed0001"))
                client.call(_doc(seed=27, rid="r2"))
            http_schedule(srv.host, srv.port, {"scheduler": "nope"})
        lines = [json.loads(l) for l in log.read_text().splitlines()]
        assert len(lines) == 3
        first = lines[0]
        assert first["trace_id"] == "feed0001" and first["id"] == "r1"
        assert first["status"] == "ok" and first["cached"] is False
        assert first["transport"] == "unix"
        assert first["duration_ms"] >= 0
        assert lines[1]["cached"] is True
        assert lines[2]["status"] == "error"
        assert lines[2]["transport"] == "http"

    def test_no_log_without_flag(self, tmp_path, server):
        with ScheduleClient(server.socket_path) as client:
            client.call(_doc(seed=28))
        assert not list(tmp_path.glob("*.jsonl"))


class TestClientRetry:
    def test_connect_retries_until_daemon_appears(self, tmp_path):
        import threading
        import time as _time

        path = tmp_path / "late.sock"
        service = ScheduleService()
        srv = ScheduleServer(service, socket_path=path)

        result = {}

        def dial():
            with ScheduleClient(path, connect_attempts=20) as client:
                result["ping"] = client.ping()
                result["attempts"] = client.connect_attempts

        t = threading.Thread(target=dial)
        t.start()
        _time.sleep(0.15)  # let a few ENOENT attempts fail first
        with ServerHandle(srv):
            t.join(timeout=30)
        assert not t.is_alive()
        assert result["ping"]["ok"] and result["attempts"] > 1

    def test_fail_fast_with_single_attempt(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            ScheduleClient(tmp_path / "absent.sock", connect_attempts=1)

    def test_refused_socket_retries_then_raises(self, tmp_path):
        stale = tmp_path / "stale.sock"
        # A bound-but-unaccepted socket file: connects are refused.
        holder = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        holder.bind(str(stale))
        holder.close()
        with pytest.raises((ConnectionRefusedError, OSError)):
            ScheduleClient(stale, connect_attempts=2)

    def test_attempts_validation(self, tmp_path):
        with pytest.raises(ValueError, match="connect_attempts"):
            ScheduleClient(tmp_path / "x.sock", connect_attempts=0)


class TestLifecycle:
    def test_requires_some_transport(self):
        with pytest.raises(ValueError, match="socket path and/or a TCP port"):
            ScheduleServer(ScheduleService())

    def test_socket_file_removed_on_stop(self, tmp_path):
        path = tmp_path / "s.sock"
        srv = ScheduleServer(ScheduleService(), socket_path=path)
        with ServerHandle(srv):
            assert path.exists()
        assert not path.exists()
