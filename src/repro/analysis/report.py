"""Plain-text table rendering for the benchmark harness.

Each benchmark prints the rows the paper (or our prospective-study design in
DESIGN.md) reports, in a stable ASCII format so EXPERIMENTS.md can quote them
verbatim.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render a fixed-width table with a header rule."""
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)


def print_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> None:
    print()
    print(format_table(headers, rows, title))
    print()


def trace_summary(trace) -> str:
    """Stall/occupancy summary of a :class:`~repro.obs.events.SimTrace`:
    issue and stall totals, stall causes, and window-occupancy statistics."""
    counts = trace.counts()
    occupancy = list(trace.occupancy_by_cycle().values())
    rows = [
        ["instructions", trace.num_instructions],
        ["window size", trace.window_size],
        ["cycles traced", trace.max_cycle + 1 if trace.events else 0],
        ["issues", counts.get("issue", 0)],
        ["stall cycles", trace.stall_cycles],
        ["  dependence/resource stalls", trace.stall_cycles - trace.barrier_stall_cycles],
        ["  barrier-wait stalls", trace.barrier_stall_cycles],
        ["window advances", counts.get("window_advance", 0)],
        ["barrier releases", counts.get("barrier_release", 0)],
    ]
    if occupancy:
        rows.append(
            ["mean window occupancy", sum(occupancy) / len(occupancy)]
        )
        rows.append(["max window occupancy", max(occupancy)])
    title = "simulation summary" + (f" — {trace.label}" if trace.label else "")
    return format_table(["metric", "value"], rows, title=title)


def phase_summary(recorder) -> str:
    """Wall-time-per-phase summary of a
    :class:`~repro.obs.recorder.TraceRecorder`'s spans."""
    rows = [
        [name, calls, f"{total * 1e3:.3f}", f"{total * 1e3 / calls:.3f}"]
        for name, (calls, total) in recorder.span_stats().items()
    ]
    return format_table(
        ["phase", "calls", "total ms", "mean ms"],
        rows,
        title="pipeline phase wall time",
    )
