"""The paper's figure graphs: structural sanity pinning the reconstruction."""

from repro.workloads import (
    FIG1_NODES,
    FIG2_NODES,
    FIG3_NODES,
    figure1_bb1,
    figure2_bb2,
    figure2_trace,
    figure3_instructions,
    figure3_loop,
    figure8_loop,
)


class TestFigure1:
    def test_structure(self):
        g = figure1_bb1()
        assert tuple(g.nodes) == FIG1_NODES
        assert g.num_edges() == 7
        assert all(lat == 1 for _, _, lat in g.edges())
        # The paper: "Instruction x has nodes w, b, a, and r as descendants."
        assert set(g.descendants("x")) == {"w", "b", "a", "r"}

    def test_optimal_makespan_is_7(self):
        from repro.schedulers import optimal_makespan

        assert optimal_makespan(figure1_bb1()) == 7


class TestFigure2:
    def test_structure(self):
        g = figure2_bb2()
        assert tuple(g.nodes) == FIG2_NODES
        assert g.sinks() == ["v", "g"]

    def test_trace_with_and_without_edge(self):
        with_edge = figure2_trace(True)
        without = figure2_trace(False)
        assert with_edge.graph.num_edges() == without.graph.num_edges() + 1
        assert with_edge.cross_edges == [("w", "z", 1)]
        assert without.cross_edges == []


class TestFigure3:
    def test_structure(self):
        loop = figure3_loop()
        assert tuple(loop.nodes) == FIG3_NODES
        carried = {(e.src, e.dst) for e in loop.carried_edges()}
        assert ("M", "ST") in carried  # the software-pipeline dependence
        assert ("M", "M") in carried

    def test_latencies(self):
        loop = figure3_loop()
        m_st = next(
            e for e in loop.carried_edges() if (e.src, e.dst) == ("M", "ST")
        )
        assert m_st.latency == 4 and m_st.distance == 1

    def test_parsed_instructions_match(self):
        instrs = figure3_instructions()
        assert [i.name for i in instrs] == list(FIG3_NODES)
        assert next(i for i in instrs if i.name == "M").latency == 4
        assert instrs[-1].is_branch


class TestFigure8:
    def test_structure(self):
        loop = figure8_loop()
        gli = loop.loop_independent_subgraph()
        # Two sources (the paper's symmetric pair) and one sink.
        assert gli.sources() == ["1", "2"]
        assert gli.sinks() == ["3"]
        assert len(loop.carried_edges()) == 1

    def test_symmetry_of_gli(self):
        """Nodes 1 and 2 are interchangeable in G_li (the trap)."""
        gli = figure8_loop().loop_independent_subgraph()
        assert dict(gli.successors("1")) == dict(gli.successors("2"))
