#!/usr/bin/env python
"""Quickstart: the paper's running example, end to end.

Builds Figure 1's basic block and Figure 2's two-block trace, runs the Rank
Algorithm, delays idle slots, runs Algorithm Lookahead, and executes the
emitted per-block orders on the lookahead-window simulator.

Run:  python examples/quickstart.py
"""

from repro import (
    algorithm_lookahead,
    compute_ranks,
    delay_idle_slots,
    paper_machine,
    rank_schedule,
    simulate_trace,
)
from repro.core import makespan_deadlines
from repro.workloads import figure1_bb1, figure2_trace


def main() -> None:
    # --- Step 1: a single basic block (paper Figure 1) ---------------------
    bb1 = figure1_bb1()
    print("Figure 1 basic block:", bb1.nodes, f"({bb1.num_edges()} edges)")

    ranks = compute_ranks(bb1, {n: 100 for n in bb1.nodes})
    print("ranks at artificial deadline 100:", ranks)

    schedule, _ = rank_schedule(bb1)
    print(f"\nRank Algorithm schedule (makespan {schedule.makespan}):")
    print(schedule.gantt())

    # --- Step 2: move the idle slot as late as possible --------------------
    delayed, deadlines = delay_idle_slots(schedule, makespan_deadlines(schedule))
    print(f"\nafter Delay_Idle_Slots (idle slot now at t={delayed.idle_times()[0]}):")
    print(delayed.gantt())
    print(f"derived deadline for x: d(x) = {deadlines['x']}  (paper: 1)")

    # --- Step 3: a trace of two blocks (paper Figure 2) --------------------
    machine = paper_machine(window_size=2)
    for cross in (False, True):
        trace = figure2_trace(with_cross_edge=cross)
        result = algorithm_lookahead(trace, machine)
        sim = simulate_trace(trace, result.block_orders, machine)
        label = "with w->z edge" if cross else "no cross edge"
        print(f"\nFigure 2 trace ({label}):")
        print("  emitted BB1 order:", " ".join(result.block_orders[0]))
        print("  emitted BB2 order:", " ".join(result.block_orders[1]))
        print(f"  predicted completion: {result.predicted_makespan}")
        print(f"  simulated completion (W=2 hardware): {sim.makespan}  (paper: 11)")
        print("  runtime schedule:")
        print("  " + sim.schedule.gantt())


if __name__ == "__main__":
    main()
