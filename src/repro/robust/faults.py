"""Seeded fault injection for the simulator and machine model.

The paper's safety argument (§1, §4) is a graceful-degradation contract:
anticipatory scheduling never moves an instruction across a basic-block
boundary, so any failure degrades to a still-correct per-block schedule.
This module provides the adversity that contract is exercised against: a
:class:`FaultPlan` describes a reproducible perturbation of the runtime
environment, and :func:`injection` installs it for the duration of a block.

Supported fault kinds (each off by default — a default-constructed plan is
a no-op, and with no plan installed the simulator's fast path is untouched):

- **latency perturbation** (``latency_jitter``): every dependence edge the
  issue logic observes gains a seeded extra latency in ``[0, jitter]``,
  modelling cache misses / load-delay variance (cf. Diavastos & Carlson's
  real-time load delay tracking);
- **window wobble** (``window_shrink`` / ``window_grow``): the effective
  lookahead window W is redrawn from ``[W - shrink, W + grow]`` (clamped to
  ≥ 1) at every window advance, modelling a window whose usable size varies
  mid-trace (partial flushes, shared-resource pressure);
- **forced branch mispredicts** (``mispredict_rate`` /
  ``mispredict_penalty``): each block entry of a trace execution is
  independently forced mispredicted, inserting a flush barrier;
- **stream corruption** (``truncate_stream`` / ``duplicate_stream``): the
  dynamic stream loses its last instruction or duplicates a seeded one —
  the simulator must *reject* such a stream, never execute it;
- **spurious deadlock** (``deadlock_after``): after N issues the simulator
  raises an injected :class:`~repro.sim.window.SimulationDeadlock`
  (``exc.injected`` is True), modelling a hardware watchdog / host fault
  that kills a simulation mid-flight.

All randomness is derived from ``FaultPlan.seed`` via :meth:`FaultPlan.rng`
(CRC-salted, independent of ``PYTHONHASHSEED``), so every injected fault is
bit-reproducible from the plan alone.
"""

from __future__ import annotations

import random
import zlib
from contextlib import contextmanager
from dataclasses import dataclass, fields, replace
from typing import Iterator, Sequence

from ..machine.model import MachineModel
from ..obs import recorder as obs


@dataclass(frozen=True)
class FaultPlan:
    """A reproducible description of runtime adversity.

    A default-constructed plan injects nothing (``is_noop`` is True); every
    field enables one fault kind.  Plans are immutable and hashable, so they
    can key result tables in the fuzz driver.
    """

    name: str = "noop"
    seed: int = 0
    #: Extra cycles in [0, latency_jitter] added per dependence edge.
    latency_jitter: int = 0
    #: Effective window may shrink by up to this many slots (clamped to 1).
    window_shrink: int = 0
    #: Effective window may grow by up to this many slots.
    window_grow: int = 0
    #: Probability that each block entry is forced mispredicted.
    mispredict_rate: float = 0.0
    #: Flush penalty (cycles) for forced mispredicts.
    mispredict_penalty: int = 2
    #: Drop the final stream instruction before simulation.
    truncate_stream: bool = False
    #: Duplicate one seeded stream instruction before simulation.
    duplicate_stream: bool = False
    #: Raise an injected SimulationDeadlock after this many issues.
    deadlock_after: int | None = None

    def __post_init__(self) -> None:
        if self.latency_jitter < 0:
            raise ValueError("latency_jitter must be >= 0")
        if self.window_shrink < 0 or self.window_grow < 0:
            raise ValueError("window_shrink/window_grow must be >= 0")
        if not 0.0 <= self.mispredict_rate <= 1.0:
            raise ValueError("mispredict_rate must be in [0, 1]")
        if self.mispredict_penalty < 0:
            raise ValueError("mispredict_penalty must be >= 0")
        if self.deadlock_after is not None and self.deadlock_after < 0:
            raise ValueError("deadlock_after must be >= 0 or None")

    @property
    def is_noop(self) -> bool:
        """True iff this plan perturbs nothing."""
        return (
            self.latency_jitter == 0
            and self.window_shrink == 0
            and self.window_grow == 0
            and self.mispredict_rate == 0.0
            and not self.truncate_stream
            and not self.duplicate_stream
            and self.deadlock_after is None
        )

    @property
    def corrupts_stream(self) -> bool:
        """True iff the plan makes the stream a non-permutation (the
        simulator must detect and reject it)."""
        return self.truncate_stream or self.duplicate_stream

    @property
    def slows_only(self) -> bool:
        """True iff every enabled fault can only delay execution (extra
        latency, smaller window, flush barriers) — the plans makespan
        monotonicity is checked against."""
        return (
            not self.is_noop
            and self.window_grow == 0
            and not self.corrupts_stream
            and self.deadlock_after is None
        )

    def rng(self, tag: str, salt: int = 0) -> random.Random:
        """A deterministic RNG for one injection site.

        Derivation avoids string hashing (which varies with
        ``PYTHONHASHSEED``): the site ``tag`` is CRC-mixed into the plan
        seed, so distinct sites draw independent, reproducible streams.
        """
        mix = zlib.crc32(tag.encode("utf-8"))
        return random.Random((self.seed * 1000003 + salt) ^ mix)

    def reseeded(self, seed: int) -> "FaultPlan":
        """The same fault mix under a different seed."""
        return replace(self, seed=seed)

    def describe(self) -> str:
        """Compact ``name(field=value, ...)`` of the enabled faults."""
        noop = FaultPlan()
        parts = [
            f"{f.name}={getattr(self, f.name)!r}"
            for f in fields(self)
            if f.name not in ("name", "seed")
            and getattr(self, f.name) != getattr(noop, f.name)
        ]
        return f"{self.name}({', '.join(parts)})"


def perturbed_machine(machine: MachineModel, plan: FaultPlan) -> MachineModel:
    """A machine whose *static* window size has the plan's wobble applied —
    for experiments that degrade the machine model itself rather than the
    running simulation.  No-op plans return ``machine`` unchanged."""
    if plan.window_shrink == 0 and plan.window_grow == 0:
        return machine
    rng = plan.rng("machine.window")
    w = machine.window_size + rng.randint(-plan.window_shrink, plan.window_grow)
    return machine.with_window(max(1, w))


# ---------------------------------------------------------------------------
# Active-plan registry (mirrors repro.obs.recorder: module-global slot, None
# by default, installed via context manager).

_active: FaultPlan | None = None


def active_plan() -> FaultPlan | None:
    """The currently injected plan, or ``None`` (fault injection off).
    No-op plans are never installed, so a non-None result means live
    faults."""
    return _active


def set_plan(plan: FaultPlan | None) -> FaultPlan | None:
    """Install ``plan`` globally (``None`` or a no-op plan turns injection
    off); returns the previous plan."""
    global _active
    previous = _active
    _active = None if plan is None or plan.is_noop else plan
    return previous


@contextmanager
def injection(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Install ``plan`` for the duration of the block, restoring the
    previous plan on exit."""
    previous = set_plan(plan)
    try:
        yield plan
    finally:
        set_plan(previous)


@contextmanager
def suspended() -> Iterator[None]:
    """Temporarily disable fault injection (used by
    :class:`~repro.robust.guard.GuardedScheduler` to verify its fallback
    order under clean conditions)."""
    previous = set_plan(None)
    try:
        yield
    finally:
        set_plan(previous)


class FaultState:
    """Per-simulation mutable state derived from a plan.

    ``repro.sim.window.simulate_window`` builds one of these at entry when a
    plan is active; all draws are seeded per (plan, stream) so repeated
    simulations of the same stream under the same plan are bit-identical.
    """

    __slots__ = ("plan", "_lat_rng", "_win_rng", "_lat_extra", "_issue_limit")

    def __init__(self, plan: FaultPlan, stream: Sequence[str]) -> None:
        self.plan = plan
        salt = zlib.crc32(",".join(stream).encode("utf-8"))
        self._lat_rng = plan.rng("sim.latency", salt)
        self._win_rng = plan.rng("sim.window", salt)
        self._lat_extra: dict[tuple[str, str], int] = {}
        self._issue_limit = plan.deadlock_after

    def latency_extra(self, pred: str, node: str) -> int:
        """Seeded extra latency for dependence ``pred -> node`` (drawn once
        per edge per simulation)."""
        if self.plan.latency_jitter == 0:
            return 0
        key = (pred, node)
        extra = self._lat_extra.get(key)
        if extra is None:
            extra = self._lat_rng.randint(0, self.plan.latency_jitter)
            self._lat_extra[key] = extra
            if extra > 0:
                obs.count("faults.injected.latency_jitter")
        return extra

    def effective_window(self, base: int) -> int:
        """The window size to use until the next window advance."""
        if self.plan.window_shrink == 0 and self.plan.window_grow == 0:
            return base
        w = base + self._win_rng.randint(
            -self.plan.window_shrink, self.plan.window_grow
        )
        w = max(1, w)
        if w != base:
            obs.count("faults.injected.window_wobble")
        return w

    def perturb_stream(self, stream: Sequence[str]) -> list[str]:
        """Apply stream truncation/duplication (returns a new list)."""
        out = list(stream)
        if self.plan.truncate_stream and out:
            out.pop()
            obs.count("faults.injected.stream_truncate")
        if self.plan.duplicate_stream and out:
            rng = self.plan.rng("sim.duplicate", len(out))
            out.insert(rng.randrange(len(out) + 1), out[rng.randrange(len(out))])
            obs.count("faults.injected.stream_duplicate")
        return out

    def deadlock_due(self, issues: int) -> bool:
        """True once the injected-deadlock budget is exhausted."""
        due = self._issue_limit is not None and issues >= self._issue_limit
        if due:
            obs.count("faults.injected.deadlock")
        return due

    def guard_slack(self, num_edges: int) -> int:
        """Extra convergence-guard budget the injected faults may consume."""
        return num_edges * self.plan.latency_jitter


def fault_state(stream: Sequence[str]) -> FaultState | None:
    """The per-simulation fault state for the active plan, or ``None``."""
    plan = _active
    if plan is None:
        return None
    return FaultState(plan, stream)


def default_fault_plans(seed: int = 0) -> list[FaultPlan]:
    """The standard suite: one plan per fault kind plus a combined storm.

    Every fuzz seed runs every scheduler under every one of these; the
    ``noop`` member pins that an installed-but-empty plan never changes
    behaviour.
    """
    return [
        FaultPlan(name="noop", seed=seed),
        FaultPlan(name="latency_jitter", seed=seed, latency_jitter=3),
        FaultPlan(name="window_shrink", seed=seed, window_shrink=2),
        FaultPlan(name="window_grow", seed=seed, window_grow=3),
        FaultPlan(
            name="mispredict_storm",
            seed=seed,
            mispredict_rate=0.7,
            mispredict_penalty=3,
        ),
        FaultPlan(name="stream_truncate", seed=seed, truncate_stream=True),
        FaultPlan(name="stream_duplicate", seed=seed, duplicate_stream=True),
        FaultPlan(name="spurious_deadlock", seed=seed, deadlock_after=3),
        FaultPlan(
            name="storm",
            seed=seed,
            latency_jitter=2,
            window_shrink=1,
            mispredict_rate=0.3,
        ),
    ]
