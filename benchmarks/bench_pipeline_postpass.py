"""E11 — §2.4/§5.2 complement: anticipatory scheduling as a post-pass to
software pipelining.

Figure 3's loop body arrives *already* software-pipelined (the store belongs
to the previous iteration).  This bench runs the full complementary pipeline
on the shipped kernels: modulo scheduling produces a kernel, its linearized
order is refined by the §5.2 anticipatory loop scheduler, and both are
executed on the window hardware.  Expected shape (asserted): the combined
pipeline matches or beats the raw program order and never loses to the
modulo kernel order by more than one cycle of II.
"""

from common import emit_metrics, emit_table

from repro.core import schedule_single_block_loop
from repro.machine import paper_machine
from repro.schedulers import modulo_schedule, recurrence_mii, resource_mii
from repro.sim import simulated_initiation_interval
from repro.workloads import dot_product_loop, figure3_loop, random_loop


def test_pipeline_postpass(benchmark):
    m = paper_machine(2)
    rows = []
    cases = [("figure 3", figure3_loop()), ("dot product", dot_product_loop())]
    cases += [(f"random {seed}", random_loop(6, seed=seed)) for seed in range(6)]

    for name, loop in cases:
        mii = max(resource_mii(loop, m), recurrence_mii(loop))
        kernel = modulo_schedule(loop, m)
        kernel_ii = simulated_initiation_interval(loop, kernel.kernel_order(), m)
        res = schedule_single_block_loop(loop, m)
        ours_ii = simulated_initiation_interval(loop, res.order, m)
        naive_ii = simulated_initiation_interval(loop, loop.nodes, m)
        rows.append(
            [name, mii, kernel.initiation_interval, kernel_ii, ours_ii, naive_ii]
        )
        assert ours_ii <= naive_ii
        assert ours_ii <= kernel_ii + 1

    emit_table(
        "E11_postpass",
        ["loop", "MII bound", "modulo II (kernel)",
         "modulo order II (simulated)", "anticipatory II (simulated)",
         "program order II"],
        rows,
        title=(
            "E11: software pipelining + anticipatory post-pass "
            "(single FU, W=2, simulated steady state)"
        ),
    )

    emit_metrics(
        "E11_postpass",
        {
            "loops": [
                {
                    "loop": name,
                    "mii": mii,
                    "modulo_kernel_ii": kernel_ii_sched,
                    "modulo_order_ii": kernel_ii,
                    "anticipatory_ii": ours_ii,
                    "program_order_ii": naive_ii,
                }
                for name, mii, kernel_ii_sched, kernel_ii, ours_ii, naive_ii in rows
            ],
        },
        machine=m,
    )

    loop = figure3_loop()
    benchmark(lambda: (modulo_schedule(loop, m), schedule_single_block_loop(loop, m)))
