"""Unit tests for loop execution and steady-state analysis — pinned to the
paper's Figure 3 and Figure 8 numbers."""

import pytest

from repro.ir import loop_from_edges
from repro.machine import MachineModel, paper_machine
from repro.sim import (
    in_order_offsets,
    iteration_completions,
    loop_stream,
    periodic_initiation_interval,
    simulate_loop_order,
    simulated_initiation_interval,
)
from repro.workloads import (
    FIG3_SCHEDULE1,
    FIG3_SCHEDULE2,
    FIG8_SCHEDULE_S1,
    FIG8_SCHEDULE_S2,
    figure3_loop,
    figure8_loop,
)


class TestFigure3SteadyState:
    def test_schedule1_periodic_ii_7(self):
        """Paper: Schedule 1 "executes one iteration every 7 cycles"."""
        loop = figure3_loop()
        off = in_order_offsets(loop, FIG3_SCHEDULE1, paper_machine(1))
        assert periodic_initiation_interval(loop, off, paper_machine(1)) == 7

    def test_schedule2_periodic_ii_6(self):
        """Paper: Schedule 2 "executes one iteration every 6 cycles"."""
        loop = figure3_loop()
        off = in_order_offsets(loop, FIG3_SCHEDULE2, paper_machine(1))
        assert periodic_initiation_interval(loop, off, paper_machine(1)) == 6

    def test_single_iteration_makespans(self):
        """Paper: Schedule 1 completes one iteration in 5 cycles, Schedule 2
        in 6 cycles."""
        loop = figure3_loop()
        m = paper_machine(1)
        assert simulate_loop_order(loop, FIG3_SCHEDULE1, 1, m).makespan == 5
        assert simulate_loop_order(loop, FIG3_SCHEDULE2, 1, m).makespan == 6

    def test_simulated_ii_matches_periodic_in_order(self):
        loop = figure3_loop()
        m = paper_machine(1)
        assert simulated_initiation_interval(loop, FIG3_SCHEDULE1, m) == 7
        assert simulated_initiation_interval(loop, FIG3_SCHEDULE2, m) == 6

    def test_lookahead_narrows_the_gap(self):
        """With a hardware window the block-optimal Schedule 1 recovers: the
        window pulls next-iteration instructions into the trailing idle
        slots, cutting its steady state below the in-order 7."""
        loop = figure3_loop()
        ii_w1 = simulated_initiation_interval(loop, FIG3_SCHEDULE1, paper_machine(1))
        ii_w4 = simulated_initiation_interval(loop, FIG3_SCHEDULE1, paper_machine(4))
        assert ii_w1 == 7
        assert ii_w4 <= 6


class TestFigure8Completions:
    @pytest.mark.parametrize("n", [1, 2, 3, 5, 8])
    def test_s1_completion_5n_minus_1(self, n):
        loop = figure8_loop()
        sim = simulate_loop_order(loop, FIG8_SCHEDULE_S1, n, paper_machine(1))
        assert sim.makespan == (5 * n - 1 if n > 1 else 4)

    @pytest.mark.parametrize("n", [2, 3, 5, 8])
    def test_s2_completion_4n(self, n):
        loop = figure8_loop()
        sim = simulate_loop_order(loop, FIG8_SCHEDULE_S2, n, paper_machine(1))
        assert sim.makespan == 4 * n


class TestMechanics:
    def test_loop_stream(self):
        assert loop_stream(["a", "b"], 2) == ["a[0]", "b[0]", "a[1]", "b[1]"]

    def test_order_must_cover_body(self):
        loop = figure8_loop()
        with pytest.raises(ValueError, match="permutation"):
            simulate_loop_order(loop, ["1", "2"], 2, paper_machine(1))

    def test_iteration_completions_monotone(self):
        loop = figure3_loop()
        sim = simulate_loop_order(loop, FIG3_SCHEDULE1, 5, paper_machine(1))
        comps = iteration_completions(sim, FIG3_SCHEDULE1, 5)
        assert comps == sorted(comps)
        assert len(comps) == 5

    def test_simulated_ii_needs_iterations(self):
        with pytest.raises(ValueError):
            simulated_initiation_interval(
                figure8_loop(), FIG8_SCHEDULE_S1, paper_machine(1), iterations=2
            )

    def test_periodic_ii_offsets_validated(self):
        loop = figure8_loop()
        with pytest.raises(ValueError, match="cover"):
            periodic_initiation_interval(loop, {"1": 0}, paper_machine(1))

    def test_periodic_ii_resource_bound(self):
        """Without carried constraints the II is still bounded below by the
        modulo resource table (single FU: distinct offsets mod II)."""
        loop = loop_from_edges([("a", "b", 0, 0)], nodes=["a", "b", "c"])
        off = {"a": 0, "b": 1, "c": 2}
        ii = periodic_initiation_interval(loop, off, paper_machine(1))
        assert ii == 3

    def test_periodic_ii_can_overlap_iterations(self):
        """II may be smaller than the single-iteration makespan when the
        pattern interleaves cleanly (software-pipelining effect)."""
        loop = loop_from_edges([("a", "b", 2, 0)], nodes=["a", "b"])
        off = {"a": 0, "b": 3}  # makespan 4, but offsets 0,3 repeat at II=2
        ii = periodic_initiation_interval(loop, off, paper_machine(1))
        assert ii == 2
