"""E5 — Table A of the §7 prospective study: anticipatory vs. local vs.
global scheduling on random traces, sweeping window size and cross-edge
density.

Expected shape (asserted): anticipatory never loses to local scheduling in
geometric mean; its advantage is largest at small windows; the unsafe global
bound is a lower envelope on every completion time.
"""

import pytest
from common import emit_metrics, emit_table, run_sweep

from repro.analysis import gap_recovered, geometric_mean
from repro.core import algorithm_lookahead, local_block_orders
from repro.machine import paper_machine
from repro.schedulers import (
    block_orders_with_priority,
    global_upper_bound,
    source_order_priority,
)
from repro.sim import simulate_trace
from repro.workloads import random_trace

TRIALS = 10
WINDOWS = (1, 2, 4, 8)
CROSS = (0.0, 0.1)


def make_trace(seed: int, cross: float):
    return random_trace(
        4,
        (4, 7),
        edge_probability=0.3,
        cross_probability=cross,
        latencies=(0, 1, 2, 4),
        seed=seed,
    )


def run_cell(window: int, cross: float):
    src_s, local_s, ant_s, recs = [], [], [], []
    m = paper_machine(window)
    for seed in range(TRIALS):
        t = make_trace(seed, cross)
        src = simulate_trace(
            t, block_orders_with_priority(t, source_order_priority, m), m
        ).makespan
        local = simulate_trace(
            t, local_block_orders(t, m, delay_idles=False), m
        ).makespan
        ant = simulate_trace(t, algorithm_lookahead(t, m).block_orders, m).makespan
        bound = global_upper_bound(t, m).makespan
        assert bound <= min(src, local, ant)
        src_s.append(src)
        local_s.append(local)
        ant_s.append(ant)
        recs.append(gap_recovered(local, ant, bound))
    return src_s, local_s, ant_s, recs


def test_trace_sweep(benchmark):
    rows = []
    ant_advantage_by_window = {}
    grid = [(w, cross) for w in WINDOWS for cross in CROSS]
    for (w, cross), cell in zip(grid, run_sweep(run_cell, grid)):
        src_s, local_s, ant_s, recs = cell
        local_speed = geometric_mean([s / l for s, l in zip(src_s, local_s)])
        ant_speed = geometric_mean([s / a for s, a in zip(src_s, ant_s)])
        rows.append(
            [w, cross, local_speed, ant_speed, sum(recs) / len(recs)]
        )
        ant_advantage_by_window.setdefault(w, []).append(ant_speed / local_speed)

    emit_table(
        "E5_trace_sweep",
        ["W", "cross p", "local speedup", "anticipatory speedup",
         "gap recovered vs unsafe global"],
        rows,
        title=(
            "E5 / Table A: random traces (4 blocks × 4-7 instrs, latencies "
            f"0/1/2/4, geomean over {TRIALS} seeds, speedup vs source order)"
        ),
    )

    # Shape assertion: wherever lookahead hardware exists (W >= 2),
    # anticipatory scheduling never loses to local scheduling in geomean.
    # (At W = 1 there is no window, the overlap the merge anticipates cannot
    # materialize, and anticipation may mis-optimize — see EXPERIMENTS.md.)
    for row in rows:
        if row[0] >= 2:
            assert row[3] >= row[2] - 1e-9, f"anticipatory lost at {row}"
    assert all(adv >= 1.0 for adv in ant_advantage_by_window[2])

    emit_metrics(
        "E5_trace_sweep",
        {
            "trials": TRIALS,
            "cells": [
                {
                    "window": w,
                    "cross_probability": cross,
                    "local_speedup": local_speed,
                    "anticipatory_speedup": ant_speed,
                    "gap_recovered": gap,
                }
                for w, cross, local_speed, ant_speed, gap in rows
            ],
        },
    )

    m = paper_machine(4)
    t = make_trace(0, 0.1)
    benchmark(lambda: algorithm_lookahead(t, m))
