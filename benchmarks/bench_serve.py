"""E13 — scheduling-as-a-service: cold vs warm cache throughput.

Drives the in-process :class:`~repro.serve.service.ScheduleService` (no
socket hop, so the numbers isolate canonicalization + cache + scheduler
cost) over a seeded corpus three ways:

- **direct**: the library call a client would otherwise make per request;
- **cold**: every request misses — serve overhead = canonical digest +
  cache bookkeeping on top of direct;
- **warm**: every request hits — a canonical-form translation *replaces*
  the scheduler and simulator entirely.

The interesting invariants: warm responses are bit-identical to cold ones,
hit/miss counts are exact, and the warm path never invokes the worker.
The interesting measurement: warm speedup over direct, i.e. what the
content-addressed cache buys a million-user serving tier on repetitive
kernels.
"""

import time

from common import emit_metrics, emit_table

from repro.machine import paper_machine
from repro.serve.protocol import ScheduleRequest
from repro.serve.service import ScheduleService
from repro.serve.worker import compute_request
from repro.workloads import random_trace

CORPUS = 24
MACHINE = paper_machine(4)
IDENTITY_KEYS = ("block_orders", "makespan", "stall_cycles", "schedule_digest")


def _corpus():
    docs = []
    for i in range(CORPUS):
        trace = random_trace(
            2 + i % 3, (4, 8), cross_probability=0.15,
            latencies=(0, 1, 2), seed=1000 + i,
        )
        docs.append(
            ScheduleRequest(
                trace=trace,
                machine=MACHINE,
                scheduler=("anticipatory", "local")[i % 2],
            ).to_dict()
        )
    return docs


def test_serve_cold_vs_warm(benchmark):
    docs = _corpus()

    t0 = time.perf_counter()
    direct = [compute_request(doc) for doc in docs]
    direct_s = time.perf_counter() - t0

    service = ScheduleService()
    t0 = time.perf_counter()
    cold = [service.handle(doc) for doc in docs]
    cold_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    warm = [service.handle(doc) for doc in docs]
    warm_s = time.perf_counter() - t0

    # Correctness invariants: exact hit/miss split, bit-identical payloads.
    assert [r["cached"] for r in cold] == [False] * CORPUS
    assert [r["cached"] for r in warm] == [True] * CORPUS
    assert service.cache.stats()["misses"] == CORPUS
    assert service.cache.stats()["hits"] == CORPUS
    for d, c, w in zip(direct, cold, warm):
        for key in IDENTITY_KEYS:
            assert c[key] == d[key]
            assert w[key] == c[key]

    # The benchmarked quantity: steady-state (warm) request handling.
    warm_service = ScheduleService()
    for doc in docs:
        warm_service.handle(doc)
    benchmark(lambda: [warm_service.handle(doc) for doc in docs])

    emit_table(
        "E13_serve_throughput",
        ["path", "wall s", "requests/s"],
        [
            ["direct library call", f"{direct_s:.4f}", f"{CORPUS / direct_s:.0f}"],
            ["serve cold (all miss)", f"{cold_s:.4f}", f"{CORPUS / cold_s:.0f}"],
            ["serve warm (all hit)", f"{warm_s:.4f}", f"{CORPUS / warm_s:.0f}"],
        ],
        title=f"E13: serving throughput, {CORPUS}-request corpus "
              f"(warm speedup over direct: {direct_s / warm_s:.1f}x)",
    )
    emit_metrics(
        "E13_serve",
        {
            "requests": CORPUS,
            "cache_hits": service.cache.stats()["hits"],
            "cache_misses": service.cache.stats()["misses"],
            "bit_identical": CORPUS,
            "direct_wall_s": direct_s,
            "cold_wall_s": cold_s,
            "warm_wall_s": warm_s,
            # "wall" in the name marks the ratio as a thresholded timing
            # metric for `repro compare`, like the raw walls above.
            "warm_speedup_wall_ratio": direct_s / warm_s,
        },
        machine=MACHINE,
        seed=1000,
        corpus=CORPUS,
    )
