"""Tests for capped/jittered retry backoff and the execution-pool API."""

import pytest

from repro.robust.backoff import (
    DEFAULT_BACKOFF_CAP_S,
    DEFAULT_BACKOFF_JITTER,
    RetryPolicy,
)
from repro.robust.pool import ExecutionPool, PoolConfig
from repro.robust.sweep import SweepError, SweepFailure


class TestRetryPolicy:
    def test_grows_exponentially_until_cap(self):
        policy = RetryPolicy(base_s=0.1, cap_s=1.0, jitter=0.0)
        delays = [policy.delay_s(a) for a in range(1, 8)]
        assert delays[:4] == [0.1, 0.2, 0.4, 0.8]
        assert delays[4:] == [1.0, 1.0, 1.0]  # clamped, never minutes

    def test_huge_attempt_numbers_stay_capped(self):
        policy = RetryPolicy(base_s=0.05, cap_s=5.0, jitter=0.0)
        assert policy.delay_s(10_000) == 5.0

    def test_jitter_shaves_at_most_the_configured_fraction(self):
        policy = RetryPolicy(base_s=1.0, cap_s=1.0, jitter=0.5)
        rng = policy.rng(seed=123)
        for _ in range(200):
            d = policy.delay_s(5, rng)
            assert 0.5 <= d <= 1.0

    def test_jitter_is_deterministic_per_seed(self):
        policy = RetryPolicy(base_s=0.05, cap_s=5.0, jitter=0.5)
        a = [policy.delay_s(i, policy.rng(7)) for i in range(1, 10)]
        b = [policy.delay_s(i, policy.rng(7)) for i in range(1, 10)]
        c = [policy.delay_s(i, policy.rng(8)) for i in range(1, 10)]
        assert a == b
        assert a != c

    def test_no_rng_means_no_jitter(self):
        policy = RetryPolicy(base_s=0.2, cap_s=5.0, jitter=0.9)
        assert policy.delay_s(1) == 0.2

    def test_zero_base_never_sleeps(self):
        policy = RetryPolicy(base_s=0.0)
        assert policy.delay_s(50, policy.rng(0)) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError, match="base_s"):
            RetryPolicy(base_s=-1)
        with pytest.raises(ValueError, match="cap_s"):
            RetryPolicy(cap_s=-0.1)
        with pytest.raises(ValueError, match="jitter"):
            RetryPolicy(jitter=1.5)

    def test_defaults_are_sane(self):
        policy = RetryPolicy()
        assert policy.cap_s == DEFAULT_BACKOFF_CAP_S
        assert policy.jitter == DEFAULT_BACKOFF_JITTER


def _square(x):
    return x * x


def _explode_on_three(x):
    if x == 3:
        raise RuntimeError("boom")
    return x


class TestExecutionPool:
    def test_map_in_process(self):
        pool = ExecutionPool(_square)
        assert pool.map([1, 2, 3]) == [1, 4, 9]
        assert pool.batches == 1

    def test_run_isolates_failures_in_order(self):
        pool = ExecutionPool(_explode_on_three, PoolConfig(retries=0))
        result = pool.run([1, 2, 3, 4])
        assert result.results[0] == 1 and result.results[3] == 4
        assert isinstance(result.results[2], SweepFailure)
        assert result.failures[0].index == 2

    def test_map_raises_on_failure(self):
        pool = ExecutionPool(_explode_on_three, PoolConfig(retries=0))
        with pytest.raises(SweepError, match="boom"):
            pool.map([3])

    def test_forked_workers(self):
        pool = ExecutionPool(_square, PoolConfig(jobs=2))
        assert pool.map(list(range(8))) == [x * x for x in range(8)]

    def test_stats_accumulate_across_batches(self):
        pool = ExecutionPool(_square)
        pool.run([1])
        pool.run([2, 3])
        assert pool.batches == 2
        assert pool.attempts >= 3

    def test_config_validation(self):
        with pytest.raises(ValueError, match="jobs"):
            PoolConfig(jobs=0)
        with pytest.raises(ValueError, match="retries"):
            PoolConfig(retries=-1)


class TestSweepIntegration:
    def test_results_independent_of_jitter_seed(self):
        from repro.robust.sweep import run_sweep_robust

        a = run_sweep_robust(
            _square, [1, 2, 3], retries=1, backoff_s=0.001,
            backoff_cap_s=0.002, backoff_seed=1,
        )
        b = run_sweep_robust(
            _square, [1, 2, 3], retries=1, backoff_s=0.001,
            backoff_cap_s=0.002, backoff_seed=99,
        )
        assert a.results == b.results == [1, 4, 9]
