#!/usr/bin/env python
"""Diagnose *why* a schedule stalls, and evaluate a whole CFG.

Demonstrates the analysis tooling on top of the core algorithms:

1. stall attribution (`repro.sim.explain`) — each stalled cycle is traced to
   a dependence latency, a window limit, or a resource conflict; the
   window-limited stalls are exactly what anticipatory scheduling targets;
2. the cycle-by-cycle event log;
3. whole-CFG expected completion (`repro.sim.evaluate_cfg`) — the
   trace-scheduling contrast: hot-path anticipation with a bounded cold-path
   cost.

Run:  python examples/stall_analysis.py
"""

from repro import algorithm_lookahead, paper_machine
from repro.analysis import format_table
from repro.core import local_block_orders
from repro.ir import ControlFlowGraph, Trace, block_from_graph
from repro.sim import evaluate_cfg, event_log, explain_stalls, simulate_trace
from repro.workloads import figure2_trace, random_dag


def stall_study() -> None:
    trace = figure2_trace(with_cross_edge=False)
    for label, orders_fn in (
        ("local (no idle delaying)", lambda m: local_block_orders(trace, m, delay_idles=False)),
        ("anticipatory", lambda m: algorithm_lookahead(trace, m).block_orders),
    ):
        machine = paper_machine(2)
        orders = orders_fn(machine)
        sim = simulate_trace(trace, orders, machine)
        stream = [n for order in orders for n in order]
        report = explain_stalls(trace.graph, stream, sim, machine)
        print(f"\n=== {label}: completion {sim.makespan} cycles ===")
        print(report.summary())
        for line in event_log(trace.graph, stream, sim, machine):
            print(" ", line)


def cfg_study() -> None:
    machine = paper_machine(4)
    cfg = ControlFlowGraph()
    graphs = {
        name: random_dag(
            6, edge_probability=0.3, latencies=(0, 1, 2, 4),
            seed=i * 7, prefix=f"{name}_",
        )
        for i, name in enumerate(["entry", "hot", "cold", "exit"])
    }
    for name, g in graphs.items():
        cfg.add_block(block_from_graph(name, g), entry=(name == "entry"))
    cfg.add_edge("entry", "hot", 0.85)
    cfg.add_edge("entry", "cold", 0.15)
    cfg.add_edge("hot", "exit", 1.0)
    cfg.add_edge("cold", "exit", 1.0)

    hot_trace = Trace([cfg.block(n) for n in ("entry", "hot", "exit")])
    res = algorithm_lookahead(hot_trace, machine)
    orders = dict(zip(("entry", "hot", "exit"), res.block_orders))
    orders["cold"] = local_block_orders(Trace([cfg.block("cold")]), machine)[0]

    ev = evaluate_cfg(
        cfg, orders, ["entry", "hot", "exit"], machine=machine,
        misprediction_penalty=4,
    )
    print("\n=== whole-CFG evaluation (hot path p=0.85, flush penalty 4) ===")
    rows = [
        [" -> ".join(p.blocks), f"{p.probability:.3f}", p.makespan]
        for p in ev.paths
    ]
    print(format_table(["path", "probability", "completion"], rows))
    print(f"expected completion: {ev.expected_makespan:.2f} cycles "
          f"(coverage {ev.coverage:.3f})")


def main() -> None:
    stall_study()
    cfg_study()


if __name__ == "__main__":
    main()
