"""Tests for the tail-sampling trace buffer and waterfall export."""

import pytest

from repro.obs.export import read_jsonl
from repro.obs.recorder import SpanRecord
from repro.serve.tracebuf import (
    RequestTrace,
    TraceBuffer,
    WATERFALL_KIND,
    _DurationWindow,
    waterfall_text,
)


def _trace(
    trace_id="t1",
    duration_ms=1.0,
    status="ok",
    cached=False,
    spans=(),
    **kw,
):
    return RequestTrace(
        trace_id=trace_id,
        request_id=kw.pop("request_id", None),
        scheduler="anticipatory",
        digest="d" * 16,
        cached=cached,
        status=status,
        start_ns=kw.pop("start_ns", 0),
        duration_ns=int(duration_ms * 1e6),
        batch=1,
        spans=list(spans),
        **kw,
    )


def _span(name, start_ns=0, dur_ns=1000, depth=0, pid=1, trace_id="t1"):
    return SpanRecord(
        name=name,
        start_ns=start_ns,
        duration_ns=dur_ns,
        depth=depth,
        attrs={},
        pid=pid,
        trace_id=trace_id,
    )


class TestDurationWindow:
    def test_nearest_rank_percentiles(self):
        w = _DurationWindow(size=100)
        for v in range(1, 101):
            w.add(v)
        assert w.percentile(50.0) == 50
        assert w.percentile(99.0) == 99
        assert w.percentile(100.0) == 100

    def test_eviction_keeps_shadow_sorted(self):
        w = _DurationWindow(size=3)
        for v in (10, 1, 5, 7):  # evicts 10
            w.add(v)
        assert w.percentile(100.0) == 7
        assert len(w) == 3

    def test_empty_window(self):
        assert _DurationWindow(4).percentile(99.0) is None


class TestTraceBufferSampling:
    def test_recent_ring_keeps_everything_bounded(self):
        buf = TraceBuffer(capacity=4)
        for i in range(10):
            buf.add(_trace(trace_id=f"t{i}"))
        assert [t.trace_id for t in buf.recent()] == ["t6", "t7", "t8", "t9"]
        assert buf.stats()["added"] == 10

    def test_errors_always_retained(self):
        buf = TraceBuffer()
        buf.add(_trace(trace_id="ok1"))
        buf.add(_trace(trace_id="bad", status="error"))
        assert [t.trace_id for t in buf.errors()] == ["bad"]

    def test_slow_retains_p99_outlier(self):
        buf = TraceBuffer()
        for i in range(100):
            buf.add(_trace(trace_id=f"fast{i}", duration_ms=1.0, cached=True))
        buf.add(_trace(trace_id="whale", duration_ms=50.0, cached=True))
        assert any(t.trace_id == "whale" for t in buf.slow())

    def test_slow_retains_uncached_above_median(self):
        buf = TraceBuffer()
        for i in range(50):
            buf.add(_trace(trace_id=f"hit{i}", duration_ms=1.0, cached=True))
        buf.add(_trace(trace_id="miss", duration_ms=2.0, cached=False))
        assert any(t.trace_id == "miss" for t in buf.slow())

    def test_fast_cached_ok_not_in_slow_ring(self):
        buf = TraceBuffer()
        for i in range(50):
            buf.add(_trace(trace_id=f"w{i}", duration_ms=5.0, cached=True))
        buf.add(_trace(trace_id="quick", duration_ms=0.01, cached=True))
        assert all(t.trace_id != "quick" for t in buf.slow())

    def test_find_and_filtering(self):
        buf = TraceBuffer()
        for i in range(5):
            buf.add(_trace(trace_id=f"t{i}"))
        assert buf.find("t3").trace_id == "t3"
        assert buf.find("nope") is None
        assert len(buf.recent(n=2)) == 2
        assert [t.trace_id for t in buf.recent(trace_id="t1")] == ["t1"]

    def test_capacity_validation(self):
        with pytest.raises(ValueError, match="capacity"):
            TraceBuffer(capacity=0)

    def test_stats_shape(self):
        buf = TraceBuffer()
        buf.add(_trace(duration_ms=2.0))
        stats = buf.stats()
        assert stats["recent"] == 1
        assert stats["p50_s"] == pytest.approx(0.002)


class TestWaterfall:
    def _spans(self):
        return [
            _span("serve.request", 0, 10_000, depth=0),
            _span("serve.phase.dispatch", 2_000, 7_000, depth=1),
            _span("serve.worker.schedule", 3_000, 5_000, depth=2, pid=99),
        ]

    def test_roundtrip_dict(self):
        t = _trace(spans=self._spans(), worker_pid=99)
        back = RequestTrace.from_dict(t.to_dict())
        assert back.trace_id == t.trace_id
        assert [s.name for s in back.spans] == [s.name for s in t.spans]
        assert back.spans[2].pid == 99

    def test_waterfall_records_are_jsonl_schema(self, tmp_path):
        t = _trace(spans=self._spans())
        records = t.waterfall_records()
        meta = records[0]
        assert meta["type"] == "meta" and meta["kind"] == WATERFALL_KIND
        assert meta["trace_id"] == "t1" and meta["spans"] == 3
        path = tmp_path / "wf.jsonl"
        import json

        path.write_text("\n".join(json.dumps(r) for r in records) + "\n")
        assert [r.get("type") for r in read_jsonl(path)] == [
            "meta", "span", "span", "span",
        ]

    def test_waterfall_text_renders_every_span(self):
        lines = waterfall_text(_trace(spans=self._spans()).waterfall_records())
        assert len(lines) == 3
        assert "serve.request" in lines[0]
        assert "[pid 99]" in lines[2]
        # Deeper spans are indented further right than their parents.
        assert lines[2].index("serve.worker") > lines[0].index("serve.request")

    def test_waterfall_text_empty(self):
        assert waterfall_text([]) == ["(no spans)"]
