"""Procedure Chop (paper Fig. 6).

After merging and idle-slot delaying, the prefix of the schedule that can no
longer interact with future basic blocks is *committed* (emitted) and removed
from further consideration: only instructions within W−1 positions of the
last useful idle slot can still be overlapped with later instructions through
the hardware window.

Chop finds the latest idle slot t_j with at least W−1 nodes after it, commits
the prefix S⁻ up to t_j (the idle slot itself becomes a permanently idle
cycle), keeps the suffix S⁺, and shifts the suffix's start times and
deadlines down by t_j + 1.  If the schedule has no idle slot, has fewer than
W nodes, or no idle slot has W−1 nodes after it, nothing is committed
(S⁻ = ∅, S⁺ = S) — latency edges into future blocks could still create
fillable idle time at the seam.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..obs import recorder as obs
from .schedule import Schedule


@dataclass
class ChopResult:
    """Committed prefix (as an ordered node list), retained suffix schedule,
    and the suffix deadlines shifted into the suffix's local time frame."""

    committed: list[str]
    suffix: Schedule
    suffix_deadlines: dict[str, int]
    #: Time shift applied to the suffix (t_j + 1), i.e. the number of cycles
    #: the committed prefix consumes — 0 when nothing was committed.
    shift: int


def chop(
    schedule: Schedule,
    deadlines: Mapping[str, int],
    window_size: int,
) -> ChopResult:
    """Run Procedure Chop with lookahead window ``window_size``.

    Idle slots are *global* (every used unit idle): on the paper's
    single-unit machine this is the ordinary idle-slot notion, and on
    multi-unit machines it is the conservative generalization that keeps the
    committed/retained split well defined (no instruction can start at or
    straddle a global idle time).
    """
    if window_size < 1:
        raise ValueError(f"window_size must be >= 1, got {window_size}")
    with obs.span("chop", nodes=len(schedule.graph), window=window_size):
        result = _chop(schedule, deadlines, window_size)
    obs.count("chop.committed", len(result.committed))
    return result


def _chop(
    schedule: Schedule,
    deadlines: Mapping[str, int],
    window_size: int,
) -> ChopResult:
    graph = schedule.graph
    no_chop = ChopResult(
        [],
        schedule,
        {n: deadlines[n] for n in graph.nodes},
        0,
    )
    idle_times = schedule.global_idle_times()
    if not idle_times or len(graph) < window_size:
        return no_chop

    order = schedule.permutation()
    position = {n: i for i, n in enumerate(order)}

    # Commit up to the last idle slot the window can no longer reach.  An
    # idle slot at time t with k nodes following it can be filled by a
    # later-block instruction iff k <= W-1 (the window spans the k remaining
    # old instructions plus W-k new ones); so the last *unfillable* slot is
    # the largest t_j with at least W nodes after it, and every slot before
    # it is unfillable too.
    t_j: int | None = None
    for t in reversed(idle_times):
        after = sum(1 for n in order if schedule.start(n) > t)
        if after >= window_size:
            t_j = t
            break
    if t_j is None:
        return no_chop

    committed = [n for n in order if schedule.start(n) < t_j]
    committed.sort(key=lambda n: position[n])
    suffix_nodes = [n for n in order if schedule.start(n) > t_j]
    shift = t_j + 1

    sub = graph.subgraph(suffix_nodes)
    suffix = Schedule(
        sub,
        {n: schedule.start(n) - shift for n in suffix_nodes},
        {n: schedule.unit(n) for n in suffix_nodes},
    )
    suffix_deadlines = {n: deadlines[n] - shift for n in suffix_nodes}
    return ChopResult(committed, suffix, suffix_deadlines, shift)
