"""Stall attribution and cycle-by-cycle event logs for window executions.

Given a finished :class:`~repro.sim.window.SimResult`, these helpers answer
the questions a compiler engineer asks when a schedule is slower than
expected: *which* dependence latency caused each stall cycle, and — the
anticipatory-scheduling signal — was some instruction actually **ready** but
unreachable because it sat outside the lookahead window behind a stalled
head?  Those window-limited stalls are exactly the cycles that a better
intra-block order (idle slots later!) or a bigger window would recover.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..ir.depgraph import DependenceGraph
from ..machine.model import MachineModel, single_unit_machine
from .window import SimResult


@dataclass(frozen=True)
class Stall:
    """One stalled cycle with its attributed cause."""

    cycle: int
    #: "dependence" — every window instruction waited on an unmet latency;
    #: "window" — some instruction outside the window was ready (the
    #: lookahead was too small / the order left the idle slot unreachable);
    #: "resource" — a window instruction was ready but all compatible
    #: functional units were busy.
    kind: str
    #: The instruction whose readiness resolves the stall soonest.
    waiting: str
    #: For dependence stalls: the producer (and latency) being waited on;
    #: for window stalls: the stalled head pinning the window.
    blocker: str | None
    detail: str


@dataclass
class StallReport:
    stalls: list[Stall]

    @property
    def dependence_cycles(self) -> int:
        return sum(1 for s in self.stalls if s.kind == "dependence")

    @property
    def window_cycles(self) -> int:
        return sum(1 for s in self.stalls if s.kind == "window")

    @property
    def resource_cycles(self) -> int:
        return sum(1 for s in self.stalls if s.kind == "resource")

    def summary(self) -> str:
        return (
            f"{len(self.stalls)} stall cycles: "
            f"{self.dependence_cycles} dependence, "
            f"{self.window_cycles} window-limited, "
            f"{self.resource_cycles} resource"
        )


def explain_stalls(
    graph: DependenceGraph,
    stream: Sequence[str],
    result: SimResult,
    machine: MachineModel | None = None,
) -> StallReport:
    """Attribute every stalled cycle of ``result`` (an execution of
    ``stream``) to a dependence, window, or resource cause."""
    machine = machine or single_unit_machine()
    w = machine.window_size
    starts = result.schedule.starts
    completion = {n: result.schedule.completion(n) for n in starts}

    def ready_time(node: str) -> int:
        return max(
            (completion[p] + lat for p, lat in graph.predecessors(node).items()),
            default=0,
        )

    position = {n: i for i, n in enumerate(stream)}
    issue_cycles = {}
    for n, t in starts.items():
        issue_cycles.setdefault(t, []).append(n)
    last_issue = max(starts.values(), default=0)

    stalls: list[Stall] = []
    for t in range(last_issue + 1):
        if t in issue_cycles:
            continue
        # Reconstruct the window at cycle t: head = first stream index not
        # yet issued at t.
        head = next(
            (i for i, n in enumerate(stream) if starts[n] > t), len(stream)
        )
        window = [stream[i] for i in range(head, min(head + w, len(stream)))]
        unissued = [n for n in window if starts[n] > t]
        ready_now = [n for n in unissued if ready_time(n) <= t]
        if ready_now:
            # A window member was ready but did not issue: unit conflict.
            n = ready_now[0]
            stalls.append(
                Stall(
                    cycle=t,
                    kind="resource",
                    waiting=n,
                    blocker=None,
                    detail=f"{n} ready but no free {graph.fu_class(n)} unit",
                )
            )
            continue
        # Was anything *outside* the window ready?  That is a window stall.
        outside_ready = [
            n
            for n in stream[head + w :]
            if starts[n] > t and ready_time(n) <= t
        ]
        if outside_ready:
            head_node = stream[head] if head < len(stream) else None
            stalls.append(
                Stall(
                    cycle=t,
                    kind="window",
                    waiting=outside_ready[0],
                    blocker=head_node,
                    detail=(
                        f"{outside_ready[0]} ready at stream position "
                        f"{position[outside_ready[0]]} but window "
                        f"[{head}, {head + w}) is pinned by {head_node}"
                    ),
                )
            )
            continue
        # Pure dependence stall: report the soonest-ready window member and
        # the edge binding it.
        if unissued:
            n = min(unissued, key=ready_time)
            binding = max(
                graph.predecessors(n).items(),
                key=lambda kv: completion[kv[0]] + kv[1],
                default=(None, 0),
            )
            blocker = binding[0]
            stalls.append(
                Stall(
                    cycle=t,
                    kind="dependence",
                    waiting=n,
                    blocker=blocker,
                    detail=(
                        f"{n} waits for {blocker} "
                        f"(completes {completion.get(blocker, '?')}, "
                        f"latency {binding[1]})"
                        if blocker
                        else f"{n} not ready"
                    ),
                )
            )
    return StallReport(stalls)


def event_log(
    graph: DependenceGraph,
    stream: Sequence[str],
    result: SimResult,
    machine: MachineModel | None = None,
) -> list[str]:
    """Human-readable cycle-by-cycle log: issues, completions, stalls."""
    machine = machine or single_unit_machine()
    report = explain_stalls(graph, stream, result, machine)
    stall_by_cycle = {s.cycle: s for s in report.stalls}
    by_issue: dict[int, list[str]] = {}
    by_completion: dict[int, list[str]] = {}
    for n, t in result.schedule.starts.items():
        by_issue.setdefault(t, []).append(n)
        by_completion.setdefault(result.schedule.completion(n), []).append(n)
    lines: list[str] = []
    for t in range(result.makespan + 1):
        parts: list[str] = []
        if t in by_completion:
            parts.append("complete " + ", ".join(sorted(by_completion[t])))
        if t in by_issue:
            parts.append("issue " + ", ".join(sorted(by_issue[t])))
        if t in stall_by_cycle:
            s = stall_by_cycle[t]
            parts.append(f"STALL ({s.kind}): {s.detail}")
        if parts:
            lines.append(f"cycle {t:>4}: " + "; ".join(parts))
    return lines
