"""E1 — paper Figure 1: Rank Algorithm schedule of BB1 and idle-slot delay.

Regenerates the figure's two schedules and rank values, asserts the paper's
numbers, and benchmarks the Rank-Algorithm + Delay_Idle_Slots pipeline.
"""

from common import emit_metrics, emit_table

from repro.core import (
    compute_ranks,
    delay_idle_slots,
    makespan_deadlines,
    rank_schedule,
    schedule_block_with_late_idle_slots,
)
from repro.workloads import figure1_bb1


def run_figure1():
    g = figure1_bb1()
    ranks100 = compute_ranks(g, {n: 100 for n in g.nodes})
    initial, _ = rank_schedule(g)
    delayed, deadlines = delay_idle_slots(initial, makespan_deadlines(initial))
    return g, ranks100, initial, delayed, deadlines


def test_fig1_reproduction(benchmark):
    g, ranks100, initial, delayed, deadlines = run_figure1()

    # Paper claims.
    assert ranks100 == {"a": 100, "r": 100, "w": 98, "b": 98, "x": 95, "e": 95}
    assert initial.permutation() == ["e", "x", "b", "w", "r", "a"]
    assert initial.makespan == 7 and initial.idle_times() == [2]
    assert delayed.permutation() == ["x", "e", "r", "b", "w", "a"]
    assert delayed.makespan == 7 and delayed.idle_times() == [5]
    assert deadlines["x"] == 1

    emit_table(
        "E1_fig1",
        ["quantity", "paper", "measured"],
        [
            ["rank(a), rank(r) @ D=100", "100", f"{ranks100['a']}, {ranks100['r']}"],
            ["rank(w), rank(b) @ D=100", "98", f"{ranks100['w']}, {ranks100['b']}"],
            ["rank(x), rank(e) @ D=100", "95", f"{ranks100['x']}, {ranks100['e']}"],
            ["Rank-Algorithm schedule", "e x _ b w r a", " ".join(initial.permutation())],
            ["makespan", 7, initial.makespan],
            ["idle slot (initial)", 2, initial.idle_times()[0]],
            ["schedule after delay", "x e r b w _ a", " ".join(delayed.permutation())],
            ["idle slot (delayed)", 5, delayed.idle_times()[0]],
            ["derived d(x)", 1, deadlines["x"]],
        ],
        title="E1 / Figure 1: basic-block scheduling and idle-slot delaying",
    )

    emit_metrics(
        "E1_fig1",
        {
            "ranks_at_d100": ranks100,
            "initial_permutation": " ".join(initial.permutation()),
            "initial_makespan": initial.makespan,
            "initial_idle_slot": initial.idle_times()[0],
            "delayed_permutation": " ".join(delayed.permutation()),
            "delayed_makespan": delayed.makespan,
            "delayed_idle_slot": delayed.idle_times()[0],
            "derived_deadline_x": deadlines["x"],
        },
    )

    benchmark(lambda: schedule_block_with_late_idle_slots(figure1_bb1()))
