"""Tests for the metrics registry and the SimTrace-derived counters.

The load-bearing property: :func:`stall_attribution` is a *partition* of the
simulator's stalled cycles — the per-cause counts sum exactly to
``SimResult.stall_cycles`` on every execution, including mispredicted
barriers and the deadlock path.
"""

import pytest

from repro.core import algorithm_lookahead
from repro.ir import graph_from_edges
from repro.machine import paper_machine
from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    STALL_CAUSES,
    TraceRecorder,
    classify_stall,
    recording,
    sim_metrics,
    stall_attribution,
)
from repro.obs.events import SimEvent
from repro.sim import SimulationDeadlock, simulate_trace, simulate_window
from repro.workloads import random_trace


class TestInstruments:
    def test_counter_increments(self):
        c = Counter("x")
        c.inc()
        c.inc(4)
        assert c.to_value() == 5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError, match="cannot decrease"):
            Counter("x").inc(-1)

    def test_gauge_keeps_last(self):
        g = Gauge("x")
        assert g.to_value() is None
        g.set(3)
        g.set(1.5)
        assert g.to_value() == 1.5

    def test_histogram_buckets_and_percentiles(self):
        h = Histogram("occ", buckets=[0, 1, 2, 3])
        for v in (0, 1, 1, 2, 3):
            h.observe(v)
        assert h.count == 5
        assert h.mean == pytest.approx(7 / 5)
        assert h.percentile(50) == 1
        assert h.percentile(99) == 3
        assert h.to_value()["p90"] == 3
        assert h.to_value()["min"] == 0 and h.to_value()["max"] == 3

    def test_histogram_overflow_reports_true_max(self):
        h = Histogram("lat", buckets=[1, 2])
        h.observe(10)
        assert h.percentile(99) == 10

    def test_histogram_needs_buckets(self):
        with pytest.raises(ValueError):
            Histogram("empty", buckets=[])

    def test_histogram_empty_summaries(self):
        h = Histogram("x", buckets=[1])
        assert h.mean is None and h.percentile(50) is None


class TestRegistry:
    def test_get_or_create(self):
        r = MetricsRegistry()
        assert r.counter("a") is r.counter("a")
        assert "a" in r and r["a"].to_value() == 0

    def test_kind_collision_is_an_error(self):
        r = MetricsRegistry()
        r.counter("a")
        with pytest.raises(ValueError, match="already registered"):
            r.gauge("a")

    def test_to_dict_sorted_and_serializable(self):
        import json

        r = MetricsRegistry()
        r.counter("b").inc(2)
        r.gauge("a").set(1.5)
        r.histogram("c", [1, 2]).observe(1)
        d = r.to_dict()
        assert list(d) == ["a", "b", "c"]
        json.dumps(d)  # must be JSON-serializable


class TestClassifyStall:
    def test_structured_cause_wins(self):
        e = SimEvent(cycle=0, kind="stall", detail="whatever", cause="resource")
        assert classify_stall(e) == "resource"

    def test_barrier_wait_kind(self):
        e = SimEvent(cycle=0, kind="barrier_wait", detail="")
        assert classify_stall(e) == "barrier"

    def test_detail_fallback_for_old_traces(self):
        mk = lambda d: SimEvent(cycle=0, kind="stall", detail=d)
        assert classify_stall(mk("head x waits on unissued predecessor y")) \
            == "predecessor"
        assert classify_stall(mk("x ready but no free fixed unit")) == "resource"
        assert classify_stall(mk("x waits on y (latency)")) == "dependence"


class TestSimMetricsKnownChain:
    """a -> b with latency 2 at W=2: issue a@0, stall 1-2, issue b@3."""

    def setup_method(self):
        g = graph_from_edges([("a", "b", 2)])
        self.res = simulate_window(
            g, ["a", "b"], paper_machine(2), collect_trace=True
        )

    def test_counters(self):
        m = sim_metrics(self.res.trace).to_dict()
        assert m["sim.instructions"] == 2
        assert m["sim.issued"] == 2
        assert m["sim.cycles"] == 4
        assert m["sim.stall_cycles"] == 2
        assert m["sim.ipc"] == pytest.approx(0.5)
        assert m["sim.window_size"] == 2

    def test_attribution_all_dependence(self):
        att = stall_attribution(self.res.trace)
        assert att == {
            "dependence": 2, "predecessor": 0, "resource": 0, "barrier": 0,
        }

    def test_stall_counters_match_attribution(self):
        m = sim_metrics(self.res.trace).to_dict()
        assert sum(m[f"sim.stall.{c}"] for c in STALL_CAUSES) \
            == m["sim.stall_cycles"] == self.res.stall_cycles

    def test_occupancy_histogram_bounded_by_window(self):
        m = sim_metrics(self.res.trace).to_dict()
        occ = m["sim.occupancy"]
        assert occ["count"] == 4
        assert occ["max"] <= 2


class TestAttributionInvariant:
    """sum(stall_attribution) == SimResult.stall_cycles, always."""

    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("window", [1, 2, 4])
    def test_random_traces(self, seed, window):
        m = paper_machine(window)
        t = random_trace(
            3, (4, 7), edge_probability=0.3, cross_probability=0.08,
            latencies=(0, 1, 2, 4), seed=seed,
        )
        res = simulate_trace(
            t, algorithm_lookahead(t, m).block_orders, m, collect_trace=True
        )
        att = stall_attribution(res.trace)
        assert sum(att.values()) == res.stall_cycles
        assert res.trace.stall_cycles == res.stall_cycles

    @pytest.mark.parametrize("seed", range(4))
    def test_with_misprediction_barriers(self, seed):
        m = paper_machine(4)
        t = random_trace(
            4, (4, 7), edge_probability=0.3, cross_probability=0.05,
            latencies=(0, 1, 2, 4), seed=seed,
        )
        res = simulate_trace(
            t,
            algorithm_lookahead(t, m).block_orders,
            m,
            mispredicted_blocks=[1, 3],
            collect_trace=True,
        )
        att = stall_attribution(res.trace)
        assert sum(att.values()) == res.stall_cycles
        # A flushed window must spend at least one cycle on the barrier.
        assert att["barrier"] > 0

    def test_deadlock_path(self):
        # z depends on w, one position later than W=1 can ever see.
        g = graph_from_edges([("x", "y", 3), ("w", "z", 0)])
        rec = TraceRecorder()
        with recording(rec):
            with pytest.raises(SimulationDeadlock):
                simulate_window(g, ["x", "y", "z", "w"], paper_machine(1))
        trace = rec.sim_traces[-1]
        att = stall_attribution(trace)
        assert sum(att.values()) == trace.stall_cycles > 0
        # The published partial trace still feeds sim_metrics.
        m = sim_metrics(trace).to_dict()
        assert m["sim.issued"] < m["sim.instructions"]


class TestSimMetricsRegistryReuse:
    def test_prefix_isolates_multiple_traces(self):
        g = graph_from_edges([("a", "b", 2)])
        res = simulate_window(g, ["a", "b"], paper_machine(2),
                              collect_trace=True)
        r = MetricsRegistry()
        sim_metrics(res.trace, r, prefix="sim.0.")
        sim_metrics(res.trace, r, prefix="sim.1.")
        d = r.to_dict()
        assert d["sim.0.cycles"] == d["sim.1.cycles"] == 4


class TestHistogramProperties:
    """Property tests (hypothesis) for the percentile edge-case contract:
    empty histograms answer None, all-overflow answers the true observed
    maximum, and in between the answer is a deterministic bucket bound that
    is monotone in p and bounds the observations."""

    from hypothesis import given, settings
    from hypothesis import strategies as st

    bounds_st = st.lists(
        st.integers(min_value=0, max_value=50), min_size=1, max_size=6,
        unique=True,
    )
    values_st = st.lists(
        st.integers(min_value=0, max_value=100), min_size=0, max_size=40
    )
    p_st = st.floats(
        min_value=0.001, max_value=100.0,
        allow_nan=False, allow_infinity=False,
    )

    @staticmethod
    def _build(bounds, values):
        h = Histogram("h", bounds)
        for v in values:
            h.observe(v)
        return h

    @settings(max_examples=80)
    @given(bounds=bounds_st, values=values_st, p=p_st)
    def test_percentile_total_and_deterministic(self, bounds, values, p):
        h = self._build(bounds, values)
        q = h.percentile(p)
        if not values:
            assert q is None
        else:
            # Always answers, from a closed set: a bucket bound or the max.
            assert q in set(h.bounds) | {max(values)}
            assert h.percentile(p) == q  # repeatable

    @settings(max_examples=60)
    @given(bounds=bounds_st, values=values_st)
    def test_percentile_monotone_in_p(self, bounds, values):
        h = self._build(bounds, values)
        qs = [h.percentile(p) for p in (1, 25, 50, 75, 90, 99, 100)]
        if values:
            assert all(a <= b for a, b in zip(qs, qs[1:]))
        else:
            assert qs == [None] * len(qs)

    @settings(max_examples=60)
    @given(bounds=bounds_st, values=values_st.filter(bool))
    def test_p100_bounds_every_observation(self, bounds, values):
        h = self._build(bounds, values)
        assert h.percentile(100) >= max(values)

    @settings(max_examples=60)
    @given(bounds=bounds_st, extra=st.lists(
        st.integers(min_value=1, max_value=100), min_size=1, max_size=10))
    def test_all_overflow_answers_observed_max(self, bounds, extra):
        # Every observation strictly above the last bound → overflow bucket.
        top = max(bounds)
        values = [top + e for e in extra]
        h = self._build(bounds, values)
        for p in (1, 50, 100):
            assert h.percentile(p) == max(values)

    @settings(max_examples=40)
    @given(bounds=bounds_st, values=values_st)
    def test_zero_weight_observation_is_invisible(self, bounds, values):
        h = self._build(bounds, values)
        before = h.to_value()
        h.observe(12345, n=0)
        assert h.to_value() == before

    @settings(max_examples=40)
    @given(bounds=bounds_st, p=st.one_of(
        st.just(0), st.just(-5.0), st.just(100.001), st.just(101)))
    def test_p_out_of_range_rejected(self, bounds, p):
        h = self._build(bounds, [1])
        with pytest.raises(ValueError, match="percentile"):
            h.percentile(p)
