"""Graphviz DOT export for dependence graphs, loop graphs and schedules.

Pure text generation (no graphviz dependency): paste the output into any DOT
renderer.  Used by the CLI's ``--dot`` flag and handy when debugging why a
schedule came out the way it did.
"""

from __future__ import annotations

from ..core.schedule import Schedule
from ..ir.basicblock import Trace
from ..ir.depgraph import DependenceGraph
from ..ir.loopgraph import LoopGraph


def _quote(s: str) -> str:
    return '"' + s.replace('"', '\\"') + '"'


def graph_to_dot(graph: DependenceGraph, name: str = "deps") -> str:
    """DOT for a plain dependence DAG; edges labelled with latencies."""
    lines = [f"digraph {_quote(name)} {{", "  rankdir=TB;", "  node [shape=box];"]
    for n in graph.nodes:
        extra = ""
        if graph.exec_time(n) != 1:
            extra += f"\\n({graph.exec_time(n)} cyc)"
        if graph.fu_class(n) != "any":
            extra += f"\\n[{graph.fu_class(n)}]"
        lines.append(f"  {_quote(n)} [label={_quote(n + extra)}];")
    for u, v, lat in graph.edges():
        style = ' style=dashed' if lat == 0 else ""
        lines.append(f"  {_quote(u)} -> {_quote(v)} [label={_quote(str(lat))}{style}];")
    lines.append("}")
    return "\n".join(lines)


def loop_to_dot(loop: LoopGraph, name: str = "loop") -> str:
    """DOT for a loop graph; carried edges drawn bold with ⟨lat, dist⟩."""
    lines = [f"digraph {_quote(name)} {{", "  rankdir=TB;", "  node [shape=box];"]
    for n in loop.nodes:
        lines.append(f"  {_quote(n)};")
    for e in loop.edges():
        if e.distance == 0:
            label = str(e.latency)
            attr = f"label={_quote(label)}"
        else:
            label = f"<{e.latency},{e.distance}>"
            attr = f"label={_quote(label)} style=bold color=red"
        lines.append(f"  {_quote(e.src)} -> {_quote(e.dst)} [{attr}];")
    lines.append("}")
    return "\n".join(lines)


def trace_to_dot(trace: Trace, name: str = "trace") -> str:
    """DOT for a trace: one cluster per basic block, cross edges between."""
    lines = [f"digraph {_quote(name)} {{", "  rankdir=TB;", "  node [shape=box];"]
    for i, bb in enumerate(trace.blocks):
        lines.append(f"  subgraph cluster_{i} {{")
        lines.append(f"    label={_quote(bb.name)};")
        for n in bb.node_names:
            lines.append(f"    {_quote(n)};")
        for u, v, lat in bb.graph.edges():
            lines.append(
                f"    {_quote(u)} -> {_quote(v)} [label={_quote(str(lat))}];"
            )
        lines.append("  }")
    for u, v, lat in trace.cross_edges:
        lines.append(
            f"  {_quote(u)} -> {_quote(v)} "
            f"[label={_quote(str(lat))} color=blue style=bold];"
        )
    lines.append("}")
    return "\n".join(lines)


def schedule_to_dot(schedule: Schedule, name: str = "schedule") -> str:
    """DOT of the dependence graph with nodes annotated by start time and
    ranked by time step (a poor man's Gantt)."""
    graph = schedule.graph
    lines = [f"digraph {_quote(name)} {{", "  rankdir=TB;", "  node [shape=box];"]
    by_time: dict[int, list[str]] = {}
    for n in graph.nodes:
        t = schedule.start(n)
        by_time.setdefault(t, []).append(n)
        lines.append(f"  {_quote(n)} [label={_quote(f'{n}@{t}')}];")
    for t in sorted(by_time):
        members = " ".join(_quote(n) for n in by_time[t])
        lines.append(f"  {{ rank=same; {members} }}")
    for u, v, lat in graph.edges():
        lines.append(f"  {_quote(u)} -> {_quote(v)} [label={_quote(str(lat))}];")
    lines.append("}")
    return "\n".join(lines)
