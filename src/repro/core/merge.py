"""Procedure Merge (paper Fig. 7).

Merges the uncommitted suffix of the schedule built so far (``old``) with the
instructions of the next basic block (``new``), producing a schedule of
``old ∪ new`` in which new instructions may only *fill idle slots* between old
instructions — they never displace them.  This is enforced with deadlines:

1. a first Rank-Algorithm pass with the artificial large deadline gives a
   lower bound T on the merged makespan;
2. old nodes keep ``d(w) := min(d(w), T_old)`` (T_old = makespan of the old
   suffix schedule), so the old instructions still finish in their own
   window; new nodes get ``d(w) := T``;
3. if the deadline system is infeasible, all *new* deadlines are increased by
   one until a feasible schedule exists (paper: at most 2W iterations in the
   optimal regime — we bound the loop by a provable fallback deadline and
   fall back to a best-effort lenient schedule in heuristic regimes).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from ..ir.depgraph import DependenceGraph
from ..machine.model import MachineModel, single_unit_machine
from ..obs import recorder as obs
from .rank import (
    RankEngine,
    default_deadline,
    list_schedule,
    minimum_makespan_schedule,
    rank_priority_list,
    rank_schedule,
    rank_schedule_lenient,
)
from .schedule import Schedule


@dataclass
class MergeCarry:
    """Incremental rank state threaded across Algorithm Lookahead's block
    loop (owned and mutated by :func:`merge`).

    Two engine chains survive from one merged graph to the next, both
    justified by the suffix being descendant-closed (chop only ever commits
    a prefix — no retained node depends on a committed one) and by ranks
    commuting with uniform deadline shifts:

    - ``uniform`` — ranks under the uniform artificial deadline
      ``uniform_value``, used for the merge lower-bound pass; on carry, old
      nodes shift by the difference of the artificial deadlines and only the
      new block's nodes (plus their ancestors through cross edges) re-rank;
    - ``constrained`` — ranks under the working deadline map as left by
      Delay_Idle_Slots; on carry, old nodes shift by the chop ``shift``.
    """

    machine: MachineModel
    uniform: RankEngine | None = None
    uniform_value: int = 0
    constrained: RankEngine | None = None
    #: Chop shift accumulated since the constrained engine's state (set by
    #: the caller between merges, consumed by the next merge).
    shift: int = 0


@dataclass
class MergeResult:
    """Schedule of ``old ∪ new`` plus the deadline map that produced it."""

    schedule: Schedule
    deadlines: dict[str, int]
    #: Lower bound T on the merged makespan (first, unconstrained pass).
    lower_bound: int
    #: Number of +1 deadline relaxations needed (0 in the optimal regime when
    #: the lower bound is achievable).
    relaxations: int
    #: False when even the fallback deadline failed and a lenient best-effort
    #: schedule was accepted (only possible in heuristic machine models).
    feasible: bool
    #: Rank engine whose state matches ``deadlines`` over the merged graph —
    #: populated when a :class:`MergeCarry` was supplied, for reuse by the
    #: idle-slot delaying that follows.
    engine: RankEngine | None = field(default=None, repr=False, compare=False)


def merge(
    trace_graph: DependenceGraph,
    old_nodes: Iterable[str],
    old_deadlines: Mapping[str, int],
    old_makespan: int,
    new_nodes: Iterable[str],
    machine: MachineModel | None = None,
    carry: MergeCarry | None = None,
) -> MergeResult:
    """Run Procedure Merge on ``old ∪ new`` within ``trace_graph``.

    ``trace_graph`` supplies the dependence edges (including the cross-block
    edges from old to new); ``old_deadlines`` are the deadlines carried by the
    old suffix (already shifted by chop); ``old_makespan`` is T_old.

    ``carry`` enables the incremental fast path: rank state is reused from
    the previous merge (see :class:`MergeCarry`) and updated in place for
    the next one; results are bit-identical with and without it.
    """
    machine = machine or single_unit_machine()
    old_list = list(old_nodes)
    new_list = list(new_nodes)
    overlap = set(old_list) & set(new_list)
    if overlap:
        raise ValueError(f"old and new overlap: {sorted(overlap)}")
    with obs.span("merge", old=len(old_list), new=len(new_list)):
        result = _merge(trace_graph, old_list, new_list, old_deadlines,
                        old_makespan, machine, carry)
    obs.count("merge.relaxations", result.relaxations)
    return result


def _merge(
    trace_graph: DependenceGraph,
    old_list: list[str],
    new_list: list[str],
    old_deadlines: Mapping[str, int],
    old_makespan: int,
    machine: MachineModel,
    carry: MergeCarry | None = None,
) -> MergeResult:
    cur = trace_graph.subgraph(old_list + new_list)

    # Pass 1: lower bound with the artificial deadline only.
    if carry is not None:
        artificial = default_deadline(cur)
        if carry.uniform is None:
            carry.uniform = RankEngine(cur, None, machine)
        else:
            carry.uniform = carry.uniform.carried_into(
                cur, shift=artificial - carry.uniform_value, fill=artificial
            )
        carry.uniform_value = artificial
        unconstrained = list_schedule(
            cur, rank_priority_list(cur, carry.uniform.ranks), machine
        )
        lower = unconstrained.makespan
    else:
        lower = minimum_makespan_schedule(cur, machine).makespan

    deadlines: dict[str, int] = {}
    for w in old_list:
        deadlines[w] = min(old_deadlines.get(w, old_makespan), old_makespan)
    new_deadline = lower
    for w in new_list:
        deadlines[w] = new_deadline

    engine: RankEngine | None = None
    if carry is not None:
        if carry.constrained is None:
            engine = RankEngine(cur, deadlines, machine)
        else:
            # Old nodes carry their post-delay deadlines shifted by chop;
            # set_deadlines then applies only the (rare) binding T_old
            # clamps as an incremental diff.
            engine = carry.constrained.carried_into(
                cur, shift=-carry.shift, fill=new_deadline
            )
            engine.set_deadlines(deadlines)
        carry.constrained = engine
        carry.shift = 0

    # A deadline that is always sufficient in the optimal regime: schedule old
    # alone (feasible by construction of its deadlines), then new strictly
    # after, separated by the largest latency in the graph.  Only needed when
    # the first attempt fails, so computed lazily.
    fallback: int | None = None

    relaxations = 0
    while True:
        if engine is not None:
            sched, _ = rank_schedule(cur, deadlines, machine, ranks=engine.ranks)
        else:
            sched, _ = rank_schedule(cur, deadlines, machine)
        if sched is not None:
            return MergeResult(sched, deadlines, lower, relaxations, True,
                               engine=engine)
        if fallback is None:
            max_lat = max((lat for _, _, lat in cur.edges()), default=0)
            new_alone = (
                minimum_makespan_schedule(cur.subgraph(new_list), machine).makespan
                if new_list
                else 0
            )
            fallback = old_makespan + max_lat + new_alone
        if new_deadline >= max(fallback, lower) + len(cur):
            break  # heuristic regime: give up on exact deadline search
        new_deadline += 1
        relaxations += 1
        for w in new_list:
            deadlines[w] = new_deadline
        if engine is not None:
            engine.set_deadlines({w: new_deadline for w in new_list})

    # Best-effort fallback: accept the greedy rank schedule and rewrite the
    # new nodes' deadlines to its completion times so downstream phases see a
    # consistent (self-feasible) state.
    sched, _, _ = rank_schedule_lenient(cur, deadlines, machine)
    for w in new_list:
        deadlines[w] = max(deadlines[w], sched.completion(w))
    for w in old_list:
        deadlines[w] = max(deadlines[w], sched.completion(w))
    if engine is not None:
        engine.set_deadlines(deadlines)  # resync after the rewrite
    return MergeResult(sched, deadlines, lower, relaxations, False,
                       engine=engine)
