"""Unit tests for BasicBlock, Trace and LoopTrace."""

import pytest

from repro.ir import (
    LoopTrace,
    Trace,
    block_from_graph,
    graph_from_edges,
    instance_name,
    single_block_trace,
)


def two_blocks():
    g1 = graph_from_edges([("a", "b", 1)])
    g2 = graph_from_edges([("c", "d", 0)])
    return block_from_graph("B1", g1), block_from_graph("B2", g2)


class TestTrace:
    def test_basic_construction(self):
        b1, b2 = two_blocks()
        t = Trace([b1, b2], cross_edges=[("b", "c", 1)])
        assert t.num_blocks == 2
        assert len(t) == 4
        assert t.block_index("a") == 0
        assert t.block_index("d") == 1
        assert t.graph.latency("b", "c") == 1
        assert t.cross_edges == [("b", "c", 1)]

    def test_program_order(self):
        b1, b2 = two_blocks()
        t = Trace([b1, b2])
        assert t.program_order() == ["a", "b", "c", "d"]

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            Trace([])

    def test_duplicate_node_across_blocks_rejected(self):
        g1 = graph_from_edges([("a", "b", 1)])
        g2 = graph_from_edges([("a", "d", 0)])
        with pytest.raises(ValueError, match="more than one block"):
            Trace([block_from_graph("B1", g1), block_from_graph("B2", g2)])

    def test_backward_cross_edge_rejected(self):
        b1, b2 = two_blocks()
        with pytest.raises(ValueError, match="later block"):
            Trace([b1, b2], cross_edges=[("c", "b", 1)])

    def test_same_block_cross_edge_rejected(self):
        b1, b2 = two_blocks()
        with pytest.raises(ValueError, match="later block"):
            Trace([b1, b2], cross_edges=[("a", "b", 1)])

    def test_unknown_cross_edge_node(self):
        b1, b2 = two_blocks()
        with pytest.raises(KeyError):
            Trace([b1, b2], cross_edges=[("a", "zzz", 1)])

    def test_single_block_trace_helper(self):
        g = graph_from_edges([("a", "b", 1)])
        t = single_block_trace(g)
        assert t.num_blocks == 1
        assert t.block_nodes(0) == ["a", "b"]


class TestBasicBlockValidation:
    def test_instruction_names_must_match_graph(self):
        from repro.ir import BasicBlock, Instruction

        g = graph_from_edges([("a", "b", 1)])
        with pytest.raises(ValueError, match="do not match"):
            BasicBlock("B", g, [Instruction(name="a"), Instruction(name="zzz")])


class TestLoopTrace:
    def test_carried_edges_validated(self):
        b1, b2 = two_blocks()
        with pytest.raises(ValueError, match="distance"):
            LoopTrace([b1, b2], carried_edges=[("d", "a", 1, 0)])
        with pytest.raises(KeyError):
            LoopTrace([b1, b2], carried_edges=[("zzz", "a", 1, 1)])

    def test_unrolled_graph(self):
        b1, b2 = two_blocks()
        lt = LoopTrace(
            [b1, b2],
            cross_edges=[("b", "c", 1)],
            carried_edges=[("d", "a", 2, 1)],
        )
        u = lt.unrolled_graph(3)
        assert len(u) == 12
        # Intra-iteration cross edge present in every instance.
        assert u.latency(instance_name("b", 1), instance_name("c", 1)) == 1
        # Carried edge wraps to the next iteration only.
        assert u.latency(instance_name("d", 0), instance_name("a", 1)) == 2
        assert (
            instance_name("a", 0)
            not in u.successors(instance_name("d", 2))
        )

    def test_unrolled_invalid_iterations(self):
        b1, b2 = two_blocks()
        lt = LoopTrace([b1, b2])
        with pytest.raises(ValueError):
            lt.unrolled_graph(0)
