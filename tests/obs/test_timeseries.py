"""Tests for the ring-buffer time-series store and burn-rate SLO tracker,
driven by an explicit fake clock."""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import (
    SLOTracker,
    TimeSeriesStore,
    burn_rate_gauges,
)


class FakeClock:
    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


class TestTimeSeriesStore:
    def test_count_total_max_mean(self):
        clock = FakeClock()
        store = TimeSeriesStore(window_s=60, resolution_s=1, clock=clock)
        for v in (1.0, 2.0, 3.0):
            store.record("lat", v)
        assert store.count("lat") == 3
        assert store.total("lat") == 6.0
        assert store.max("lat") == 3.0
        assert store.mean("lat") == 2.0

    def test_window_excludes_old_buckets(self):
        clock = FakeClock()
        store = TimeSeriesStore(window_s=60, resolution_s=1, clock=clock)
        store.record("x")
        clock.advance(10)
        store.record("x")
        assert store.count("x", over_s=5) == 1
        assert store.count("x", over_s=60) == 2

    def test_ring_reuses_slots_beyond_window(self):
        clock = FakeClock()
        store = TimeSeriesStore(window_s=10, resolution_s=1, clock=clock)
        store.record("x", 100.0)
        clock.advance(30)  # far past the ring's coverage
        store.record("x", 1.0)
        # The old observation's slot was lazily reclaimed: only the new
        # value remains visible anywhere in the window.
        assert store.count("x") == 1
        assert store.max("x") == 1.0

    def test_rate_is_per_second(self):
        clock = FakeClock()
        store = TimeSeriesStore(window_s=100, resolution_s=1, clock=clock)
        for _ in range(50):
            store.record("r")
        assert store.rate("r", over_s=10) == pytest.approx(5.0)

    def test_unknown_series_reads_as_empty(self):
        store = TimeSeriesStore(clock=FakeClock())
        assert store.count("nope") == 0.0
        assert store.mean("nope") is None

    def test_snapshot_shape(self):
        clock = FakeClock()
        store = TimeSeriesStore(window_s=60, resolution_s=1, clock=clock)
        store.record("a", 2.0)
        snap = store.snapshot()
        assert set(snap) == {"a"}
        assert snap["a"]["count"] == 1 and snap["a"]["total"] == 2.0

    def test_validation(self):
        with pytest.raises(ValueError, match="resolution_s"):
            TimeSeriesStore(resolution_s=0)
        with pytest.raises(ValueError, match="window_s"):
            TimeSeriesStore(window_s=1, resolution_s=5)


class TestSLOTracker:
    def _tracker(self, clock, objective=0.99, **kw):
        store = TimeSeriesStore(window_s=600, resolution_s=1, clock=clock)
        return SLOTracker(objective=objective, store=store, clock=clock, **kw)

    def test_burn_rate_one_means_budget_pace(self):
        clock = FakeClock()
        slo = self._tracker(clock, objective=0.99)
        for i in range(100):
            slo.record(ok=(i != 0))  # exactly 1% bad
        assert slo.burn_rate(over_s=60) == pytest.approx(1.0)
        assert slo.lifetime_burn_rate == pytest.approx(1.0)

    def test_all_good_burns_nothing(self):
        clock = FakeClock()
        slo = self._tracker(clock)
        for _ in range(10):
            slo.record(ok=True)
        assert slo.burn_rate(over_s=60) == 0.0
        assert slo.lifetime_burn_rate == 0.0

    def test_latency_breach_consumes_budget(self):
        clock = FakeClock()
        slo = self._tracker(clock, latency_slo_s=0.1)
        assert slo.record(ok=True, duration_s=0.5) is True
        assert slo.record(ok=True, duration_s=0.05) is False
        assert slo.bad == 1 and slo.total == 2

    def test_old_errors_age_out_of_windowed_rate(self):
        clock = FakeClock()
        slo = self._tracker(clock)
        slo.record(ok=False)
        clock.advance(120)
        for _ in range(10):
            slo.record(ok=True)
        assert slo.burn_rate(over_s=60) == 0.0
        assert slo.lifetime_burn_rate > 0.0  # lifetime never forgets

    def test_snapshot_page_and_ticket_decisions(self):
        clock = FakeClock()
        slo = self._tracker(clock, objective=0.99)
        for _ in range(10):
            slo.record(ok=False)  # 100% bad: burn rate 100x
        snap = slo.snapshot()
        assert snap["page"] is True and snap["ticket"] is True
        assert snap["fast_burn_rate"] == pytest.approx(100.0)

    def test_no_traffic_snapshot_quiet(self):
        snap = self._tracker(FakeClock()).snapshot()
        assert snap["page"] is False and snap["fast_burn_rate"] == 0.0

    def test_validation(self):
        with pytest.raises(ValueError, match="objective"):
            SLOTracker(objective=1.5)
        with pytest.raises(ValueError, match="fast_window_s"):
            SLOTracker(fast_window_s=100, slow_window_s=10)


class TestBurnRateGauges:
    def test_gauges_reflect_snapshot(self):
        clock = FakeClock()
        store = TimeSeriesStore(window_s=600, resolution_s=1, clock=clock)
        slo = SLOTracker(objective=0.99, store=store, clock=clock)
        slo.record(ok=False)
        registry = MetricsRegistry()
        burn_rate_gauges(slo, registry)
        out = registry.to_dict()
        assert out["serve.slo.objective"] == 0.99
        assert out["serve.slo.bad"] == 1
        assert out["serve.slo.fast_burn_rate"] == pytest.approx(100.0)

    def test_bad_counter_is_monotone_across_refreshes(self):
        clock = FakeClock()
        store = TimeSeriesStore(window_s=600, resolution_s=1, clock=clock)
        slo = SLOTracker(objective=0.99, store=store, clock=clock)
        registry = MetricsRegistry()
        slo.record(ok=False)
        burn_rate_gauges(slo, registry)
        burn_rate_gauges(slo, registry)  # refresh without new traffic
        assert registry.counter("serve.slo.bad").value == 1
        slo.record(ok=False)
        burn_rate_gauges(slo, registry)
        assert registry.counter("serve.slo.bad").value == 2
