"""Unit tests for whole-CFG expected-completion evaluation."""

import pytest

from repro.ir import ControlFlowGraph, block_from_graph, graph_from_edges
from repro.machine import paper_machine
from repro.sim import enumerate_paths, evaluate_cfg


def diamond_cfg(hot_probability=0.8):
    cfg = ControlFlowGraph()
    blocks = {
        "entry": graph_from_edges([("e1", "e2", 2)]),
        "hot": graph_from_edges([("h1", "h2", 1)]),
        "cold": graph_from_edges([], nodes=["c1", "c2"]),
        "exit": graph_from_edges([("x1", "x2", 0)]),
    }
    for name, g in blocks.items():
        cfg.add_block(block_from_graph(name, g), entry=(name == "entry"))
    cfg.add_edge("entry", "hot", hot_probability)
    cfg.add_edge("entry", "cold", 1 - hot_probability)
    cfg.add_edge("hot", "exit", 1.0)
    cfg.add_edge("cold", "exit", 1.0)
    return cfg


ORDERS = {
    "entry": ["e1", "e2"],
    "hot": ["h1", "h2"],
    "cold": ["c1", "c2"],
    "exit": ["x1", "x2"],
}


class TestEnumeratePaths:
    def test_diamond_paths(self):
        paths = enumerate_paths(diamond_cfg())
        as_tuples = {tuple(p): prob for p, prob in paths}
        assert as_tuples[("entry", "hot", "exit")] == pytest.approx(0.8)
        assert as_tuples[("entry", "cold", "exit")] == pytest.approx(0.2)

    def test_probabilities_sum_to_one(self):
        paths = enumerate_paths(diamond_cfg())
        assert sum(p for _, p in paths) == pytest.approx(1.0)

    def test_max_depth_truncates(self):
        paths = enumerate_paths(diamond_cfg(), max_depth=2)
        assert all(len(p) <= 2 for p, _ in paths)


class TestEvaluateCfg:
    def test_expected_between_extremes(self):
        cfg = diamond_cfg()
        m = paper_machine(3)
        ev = evaluate_cfg(cfg, ORDERS, ["entry", "hot", "exit"], machine=m)
        spans = {p.blocks: p.makespan for p in ev.paths}
        lo, hi = min(spans.values()), max(spans.values())
        assert lo <= ev.expected_makespan <= hi
        assert ev.coverage == pytest.approx(1.0)

    def test_off_trace_path_pays_flush(self):
        cfg = diamond_cfg()
        m = paper_machine(3)
        ev = evaluate_cfg(
            cfg, ORDERS, ["entry", "hot", "exit"], machine=m,
            misprediction_penalty=5,
        )
        spans = {p.blocks: p.makespan for p in ev.paths}
        # The cold path leaves the trace at entry->cold: flush there.
        assert spans[("entry", "cold", "exit")] > spans[("entry", "hot", "exit")]

    def test_hot_bias_lowers_expectation(self):
        m = paper_machine(3)
        ev_hot = evaluate_cfg(
            diamond_cfg(0.95), ORDERS, ["entry", "hot", "exit"], machine=m,
            misprediction_penalty=5,
        )
        ev_cold = evaluate_cfg(
            diamond_cfg(0.5), ORDERS, ["entry", "hot", "exit"], machine=m,
            misprediction_penalty=5,
        )
        assert ev_hot.expected_makespan < ev_cold.expected_makespan

    def test_off_trace_blocks_use_static_prediction(self):
        """Blocks not on the scheduled trace predict their most probable
        successor — the cold block's jump to exit is still predicted."""
        cfg = diamond_cfg()
        m = paper_machine(3)
        ev = evaluate_cfg(
            cfg, ORDERS, ["entry", "hot", "exit"], machine=m,
            misprediction_penalty=5,
        )
        cold = next(p for p in ev.paths if "cold" in p.blocks)
        # Only one flush (entry->cold), not two.
        on_trace = next(p for p in ev.paths if "hot" in p.blocks)
        assert cold.makespan <= on_trace.makespan + 5 + 4
