"""Unit and small-scale optimality tests for Algorithm Lookahead (Fig. 5)."""

import pytest

from repro.analysis import verify_scheduler_output
from repro.core import algorithm_lookahead, local_block_orders
from repro.machine import MachineModel, paper_machine
from repro.sim import simulate_trace
from repro.workloads import figure2_trace, random_trace


class TestFigure2:
    def test_completion_11_with_cross_edge(self):
        t = figure2_trace(with_cross_edge=True)
        m = paper_machine(2)
        res = algorithm_lookahead(t, m)
        assert res.predicted_makespan == 11
        sim = simulate_trace(t, res.block_orders, m)
        assert sim.makespan == 11

    def test_emitted_orders_match_paper(self):
        t = figure2_trace(with_cross_edge=True)
        res = algorithm_lookahead(t, paper_machine(2))
        assert res.block_orders[0] == ["x", "e", "r", "w", "b", "a"]
        assert res.block_orders[1] == ["z", "q", "p", "v", "g"]

    def test_without_cross_edge(self):
        t = figure2_trace(with_cross_edge=False)
        res = algorithm_lookahead(t, paper_machine(2))
        assert res.predicted_makespan == 11
        # P1 = x e r b w a, P2 = z q p v g (paper's subpermutations).
        assert res.block_orders[0] == ["x", "e", "r", "b", "w", "a"]
        assert res.block_orders[1] == ["z", "q", "p", "v", "g"]

    def test_priority_list_concatenates_blocks(self):
        t = figure2_trace()
        res = algorithm_lookahead(t, paper_machine(2))
        assert res.priority_list == res.block_orders[0] + res.block_orders[1]

    def test_beats_local_scheduling(self):
        t = figure2_trace(with_cross_edge=True)
        m = paper_machine(2)
        anticipatory = simulate_trace(
            t, algorithm_lookahead(t, m).block_orders, m
        ).makespan
        local = simulate_trace(
            t, local_block_orders(t, m, delay_idles=False), m
        ).makespan
        assert anticipatory <= local


class TestOutputs:
    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("window", [1, 2, 4])
    def test_outputs_verified_on_random_traces(self, seed, window):
        t = random_trace(3, (3, 6), cross_probability=0.1, seed=seed)
        m = paper_machine(window)
        res = algorithm_lookahead(t, m)
        verify_scheduler_output(t, res.block_orders, m)

    def test_predicted_matches_simulated_small_windows(self):
        """In the optimal regime the predicted merged schedule must be
        realizable by the hardware: simulation can only be ≤ predicted."""
        for seed in range(8):
            t = random_trace(3, (3, 6), cross_probability=0.12, seed=seed)
            m = paper_machine(3)
            res = algorithm_lookahead(t, m)
            sim = simulate_trace(t, res.block_orders, m)
            assert sim.makespan <= res.predicted_makespan

    def test_single_block_trace(self):
        t = random_trace(1, 6, seed=1)
        m = paper_machine(4)
        res = algorithm_lookahead(t, m)
        assert len(res.block_orders) == 1
        verify_scheduler_output(t, res.block_orders, m)

    def test_steps_recorded(self):
        t = figure2_trace()
        res = algorithm_lookahead(t, paper_machine(2))
        assert [s.block for s in res.steps] == ["BB1", "BB2"]
        assert res.steps[1].merge.lower_bound == 11


class TestSmallScaleOptimality:
    """On tiny traces, the lookahead output must match the best possible
    per-block orders found by exhaustive search (the paper's optimality
    claim for unit times / 0/1 latencies / single FU)."""

    @pytest.mark.parametrize("seed", range(6))
    def test_matches_exhaustive_order_search(self, seed):
        from repro.schedulers import best_stream_order

        t = random_trace(
            2, 4, cross_probability=0.2, latencies=(0, 1), seed=seed
        )
        m = paper_machine(2)
        res = algorithm_lookahead(t, m)
        sim = simulate_trace(t, res.block_orders, m)
        _, best = best_stream_order(
            t.graph, [t.block_nodes(0), t.block_nodes(1)], m
        )
        assert sim.makespan == best


class TestLocalBaseline:
    def test_local_orders_are_valid(self):
        t = random_trace(4, (3, 6), seed=2)
        for delay in (False, True):
            orders = local_block_orders(t, paper_machine(4), delay_idles=delay)
            verify_scheduler_output(t, orders, paper_machine(4))

    def test_delaying_idles_helps_on_figure2(self):
        t = figure2_trace(with_cross_edge=False)
        m = paper_machine(2)
        plain = simulate_trace(
            t, local_block_orders(t, m, delay_idles=False), m
        ).makespan
        delayed = simulate_trace(
            t, local_block_orders(t, m, delay_idles=True), m
        ).makespan
        assert delayed < plain  # 11 vs 13: the idle slot becomes fillable
