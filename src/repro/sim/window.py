"""Cycle-accurate simulator of hardware instruction lookahead (paper §2.3).

The machine model: at any instant the lookahead window holds W instructions
i_n … i_{n+W−1} that occur *contiguously* in the dynamic instruction stream.
The hardware may issue any window instruction whose operands are ready; it
never skips a ready earlier instruction in favour of a ready later one
(Ordering Constraint), and the window only moves ahead when its first
instruction has been issued.  The greedy window-W execution of the priority
list L = P₁∘P₂∘…∘Pₘ is, by Definition 2.3, exactly the set of *legal*
runtime schedules — so this simulator is the ground truth that every
experiment measures against.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from ..ir.depgraph import DependenceGraph
from ..machine.model import MachineModel, single_unit_machine
from ..core.schedule import Schedule, Unit
from ..obs import recorder as obs
from ..obs.events import SimEvent, SimTrace
from ..robust import faults


class SimulationDeadlock(RuntimeError):
    """The stream can never make progress: some window instruction depends on
    an instruction more than W−1 positions later in the stream.

    Diagnostic attributes (``None`` for the generic convergence guard):
    ``node`` — the blocked window instruction; ``dependence`` — its unmet
    predecessor; ``window`` — the ``(head, head + W)`` stream span the
    window covered when progress stopped; ``window_nodes`` — the unissued
    instructions the window held at that point.  ``injected`` is True when
    the deadlock was raised by an active fault plan
    (:class:`repro.robust.faults.FaultPlan.deadlock_after`) rather than by
    the stream's own dependences.
    """

    def __init__(
        self,
        message: str,
        node: str | None = None,
        dependence: str | None = None,
        window: tuple[int, int] | None = None,
        window_nodes: tuple[str, ...] = (),
        injected: bool = False,
    ) -> None:
        super().__init__(message)
        self.node = node
        self.dependence = dependence
        self.window = window
        self.window_nodes = tuple(window_nodes)
        self.injected = injected


@dataclass
class SimResult:
    """Outcome of one windowed execution."""

    schedule: Schedule
    #: Instructions in issue order (the runtime permutation P).
    issue_order: list[str]
    #: Cycles up to (and excluding) the last issue in which no instruction
    #: was issued — the head-of-window stalls the lookahead failed to hide.
    stall_cycles: int
    #: Cycle-level event stream, populated when tracing was enabled (an
    #: explicit ``collect_trace=True`` or an active recorder wanting sim
    #: events); ``trace.stall_cycles == stall_cycles`` always holds.
    trace: SimTrace | None = field(default=None, repr=False)

    @property
    def makespan(self) -> int:
        return self.schedule.makespan

    def start(self, node: str) -> int:
        return self.schedule.start(node)


def simulate_window(
    graph: DependenceGraph,
    stream: Sequence[str],
    machine: MachineModel | None = None,
    barriers: Mapping[int, int] | None = None,
    collect_trace: bool | None = None,
    trace_label: str = "",
) -> SimResult:
    """Greedily execute ``stream`` on ``machine``'s lookahead hardware.

    ``stream`` must be a permutation of ``graph``'s nodes — the static
    instruction order the compiler emitted (concatenated per-block orders
    for a trace).  ``barriers`` optionally maps stream positions to stall
    penalties: position ``b → p`` forbids any instruction at index ≥ b from
    issuing before every instruction at index < b has *completed*, plus ``p``
    extra cycles — this models a branch misprediction flush at a block
    boundary (the hardware rolls back eagerly executed instructions of the
    wrong path and refills the window).

    ``collect_trace`` controls cycle-level event tracing (see
    :class:`~repro.obs.events.SimTrace`): ``True``/``False`` force it, and
    the default ``None`` collects whenever an active
    :class:`~repro.obs.recorder.TraceRecorder` wants simulator events.  The
    finished trace is attached as ``SimResult.trace`` and published to the
    active recorder.

    Raises :class:`SimulationDeadlock` for streams whose dependences point
    more than W−1 positions forward (cannot occur for streams derived from
    valid per-block schedules of a trace).

    An active :class:`~repro.robust.faults.FaultPlan` (see
    :func:`repro.robust.faults.injection`) perturbs this execution: extra
    dependence latency, a wobbling effective window, corrupted streams
    (rejected by the permutation check below) and injected deadlocks.  With
    no plan installed — the default — none of the fault hooks cost more
    than a ``None`` test.
    """
    machine = machine or single_unit_machine()
    fstate = faults.fault_state(stream)
    if fstate is not None:
        stream = fstate.perturb_stream(stream)
    if sorted(stream) != sorted(graph.nodes):
        nodes = set(graph.nodes)
        missing = sorted(nodes - set(stream))
        unknown = sorted(set(stream) - nodes)
        counts: dict[str, int] = {}
        for s in stream:
            counts[s] = counts.get(s, 0) + 1
        duplicated = sorted(s for s, c in counts.items() if c > 1)
        details = [
            f"{label} {names}"
            for label, names in (
                ("missing", missing),
                ("duplicated", duplicated),
                ("unknown", unknown),
            )
            if names
        ]
        raise ValueError(
            "stream must be a permutation of the graph nodes"
            + (f" ({'; '.join(details)})" if details else "")
        )
    if not machine.can_execute(graph):
        raise ValueError("machine lacks a functional unit for some instruction")
    barriers = dict(barriers or {})

    n = len(stream)
    w = machine.window_size
    # Effective window for the current head position; redrawn at every
    # window advance when a fault plan wobbles it, otherwise constant.
    w_eff = w if fstate is None else fstate.effective_window(w)
    width = machine.issue_width or machine.total_units
    position = {node: i for i, node in enumerate(stream)}

    completion: dict[str, int] = {}
    starts: dict[str, int] = {}
    units: dict[str, Unit] = {}
    issued: list[bool] = [False] * n
    issue_order: list[str] = []
    unit_free_at: dict[Unit, int] = {u: 0 for u in machine.unit_names()}

    # Barrier release times become known once every instruction before the
    # barrier has issued (completion times are then fixed).  Barriers sit at
    # increasing stream positions, so they release in ascending order; the
    # issue logic therefore only ever needs, per stream position, the prefix
    # of barriers at or before it and the running max of (release + penalty)
    # over that prefix — both O(1) lookups instead of a scan over every
    # barrier per window slot per cycle.
    barrier_release: dict[int, int | None] = {b: None for b in barriers}
    barrier_list = sorted(barriers)
    barriers_before: list[int] | None = None
    if barrier_list:
        barriers_before = [0] * n
        k = 0
        for pos in range(n):
            while k < len(barrier_list) and barrier_list[k] <= pos:
                k += 1
            barriers_before[pos] = k
    released = 0
    barrier_constraint: list[int] = []  # running max of release + penalty
    # Max completion time over stream[:i+1], filled as the head passes i —
    # barrier b's release time is prefix_completion_max[b - 1].
    prefix_completion_max: list[int] = [0] * n

    if collect_trace is None:
        collect_trace = obs.sim_events_enabled()
    trace_obj = (
        SimTrace(window_size=w, num_instructions=n, label=trace_label)
        if collect_trace
        else None
    )

    def window_occupancy() -> int:
        """Unissued instructions currently visible to the issue logic."""
        return sum(1 for i in range(head, min(head + w_eff, n)) if not issued[i])

    def ready_time(node: str) -> int | None:
        """Earliest issue time permitted by dependences and barriers, or None
        if a predecessor has not issued yet."""
        t = 0
        for p, lat in graph.predecessors(node).items():
            if p not in completion:
                return None
            if fstate is not None:
                lat += fstate.latency_extra(p, node)
            t = max(t, completion[p] + lat)
        if barriers_before is not None:
            k = barriers_before[position[node]]
            if k:
                if k > released:
                    return None  # some applicable barrier not yet released
                if barrier_constraint[k - 1] > t:
                    t = barrier_constraint[k - 1]
        return t

    def update_barriers() -> None:
        # ``head`` is the first unissued stream index, so "every instruction
        # before b has issued" is exactly ``head >= b``.
        nonlocal released
        while released < len(barrier_list) and head >= barrier_list[released]:
            b = barrier_list[released]
            release = prefix_completion_max[b - 1] if b > 0 else 0
            barrier_release[b] = release
            constraint = release + barriers[b]
            if barrier_constraint and barrier_constraint[-1] > constraint:
                constraint = barrier_constraint[-1]
            barrier_constraint.append(constraint)
            released += 1
            if trace_obj is not None:
                trace_obj.events.append(
                    SimEvent(
                        cycle=release,
                        kind="barrier_release",
                        head=head,
                        detail=(
                            f"barrier at stream position {b} releases at "
                            f"cycle {release} (+{barriers[b]} penalty)"
                        ),
                    )
                )

    head = 0
    time = 0
    update_barriers()
    guard = 0
    max_guard = 4 * (
        sum(graph.exec_time(x) for x in graph.nodes)
        + sum(lat for _, _, lat in graph.edges())
        + sum(barriers.values())
        + n
        + 1
        + (fstate.guard_slack(graph.num_edges()) if fstate is not None else 0)
    )
    while head < n:
        if fstate is not None and fstate.deadlock_due(len(issue_order)):
            exc = SimulationDeadlock(
                f"injected spurious deadlock at cycle {time} after "
                f"{len(issue_order)} issues (fault plan "
                f"{fstate.plan.name!r}); window spans [{head}, "
                f"{head + w_eff})",
                node=stream[head],
                window=(head, head + w_eff),
                window_nodes=tuple(
                    stream[i]
                    for i in range(head, min(head + w_eff, n))
                    if not issued[i]
                ),
                injected=True,
            )
            if trace_obj is not None:
                trace_obj.events.append(
                    SimEvent(
                        cycle=time,
                        kind="deadlock",
                        node=exc.node,
                        head=head,
                        occupancy=window_occupancy(),
                        detail=str(exc),
                    )
                )
                obs.publish_sim_trace(trace_obj)
            raise exc
        issued_this_cycle = 0
        for i in range(head, min(head + w_eff, n)):
            if issued[i]:
                continue
            node = stream[i]
            rt = ready_time(node)
            if rt is None or rt > time:
                continue
            unit = next(
                (
                    u
                    for u in machine.units_for(graph.fu_class(node))
                    if unit_free_at[u] <= time
                ),
                None,
            )
            if unit is None:
                continue
            issued[i] = True
            starts[node] = time
            units[node] = unit
            completion[node] = time + graph.exec_time(node)
            unit_free_at[unit] = completion[node]
            issue_order.append(node)
            issued_this_cycle += 1
            if trace_obj is not None:
                trace_obj.events.append(
                    SimEvent(
                        cycle=time,
                        kind="issue",
                        node=node,
                        unit=f"{unit[0]}{unit[1]}",
                        head=head,
                        occupancy=window_occupancy(),
                    )
                )
            if issued_this_cycle >= width:
                break
        old_head = head
        while head < n and issued[head]:
            c = completion[stream[head]]
            if head > 0 and prefix_completion_max[head - 1] > c:
                c = prefix_completion_max[head - 1]
            prefix_completion_max[head] = c
            head += 1
        if head > old_head and fstate is not None:
            w_eff = fstate.effective_window(w)
        if trace_obj is not None and head > old_head:
            trace_obj.events.append(
                SimEvent(
                    cycle=time,
                    kind="window_advance",
                    head=head,
                    occupancy=window_occupancy(),
                    detail=f"head {old_head} -> {head}",
                )
            )
        update_barriers()
        if head >= n:
            break
        # Advance to the next event: a window instruction becoming ready, a
        # unit freeing up, or simply the next cycle if issue width was the
        # only limiter.
        events: list[int] = []
        blocked_now = False
        for i in range(head, min(head + w_eff, n)):
            if issued[i]:
                continue
            rt = ready_time(stream[i])
            if rt is None:
                continue
            if rt <= time:
                blocked_now = True
            else:
                events.append(rt)
        events.extend(t for t in unit_free_at.values() if t > time)
        if blocked_now:
            next_time = time + 1
        elif events:
            next_time = min(events)
        else:
            exc = _deadlock(
                graph, stream, head, w_eff, n, completion, position, time
            )
            if trace_obj is not None:
                trace_obj.events.append(
                    SimEvent(
                        cycle=time,
                        kind="deadlock",
                        node=exc.node,
                        head=head,
                        occupancy=window_occupancy(),
                        detail=str(exc),
                    )
                )
                obs.publish_sim_trace(trace_obj)
            raise exc
        if trace_obj is not None:
            # Every cycle passed over without an issue is a stall the
            # lookahead failed to hide; classify each against current state.
            first_stall = time + 1 if issued_this_cycle else time
            for c in range(first_stall, next_time):
                trace_obj.events.append(
                    _stall_event(
                        c,
                        stream,
                        head,
                        graph,
                        completion,
                        position,
                        barriers,
                        barrier_release,
                        ready_time,
                        window_occupancy(),
                    )
                )
        time = next_time
        guard += 1
        if guard > max_guard:  # pragma: no cover - defensive
            raise SimulationDeadlock("simulation failed to converge")

    schedule = Schedule(graph, starts, units)
    if starts:
        issue_cycles = set(starts.values())
        stalls = max(starts.values()) + 1 - len(issue_cycles)
    else:
        stalls = 0
    if trace_obj is not None:
        obs.publish_sim_trace(trace_obj)
    return SimResult(
        schedule=schedule,
        issue_order=issue_order,
        stall_cycles=stalls,
        trace=trace_obj,
    )


def _stall_event(
    cycle: int,
    stream: Sequence[str],
    head: int,
    graph: DependenceGraph,
    completion: Mapping[str, int],
    position: Mapping[str, int],
    barriers: Mapping[int, int],
    barrier_release: Mapping[int, int | None],
    ready_time,
    occupancy: int,
) -> SimEvent:
    """Classify one no-issue cycle: barrier wait, dependence latency,
    unissued predecessor, or resource conflict (best-effort attribution
    against the head-of-window instruction; :mod:`repro.sim.explain` does
    exact post-hoc attribution)."""
    node = stream[head]
    pos = position[node]
    for b, penalty in barriers.items():
        if pos < b:
            continue
        release = barrier_release[b]
        if release is None or release + penalty > cycle:
            detail = (
                f"window flushed: {node} waits on barrier at stream "
                f"position {b}"
                + ("" if release is None else f" (releases {release}+{penalty})")
            )
            return SimEvent(
                cycle=cycle,
                kind="barrier_wait",
                node=node,
                head=head,
                occupancy=occupancy,
                detail=detail,
                cause="barrier",
            )
    missing = [p for p in graph.predecessors(node) if p not in completion]
    if missing:
        blocker = max(missing, key=lambda p: position[p])
        detail = f"{node} waits on unissued predecessor {blocker}"
        cause = "predecessor"
    else:
        rt = ready_time(node)
        if rt is not None and rt > cycle:
            blocker, lat = max(
                graph.predecessors(node).items(),
                key=lambda kv: completion[kv[0]] + kv[1],
            )
            detail = (
                f"{node} waits on {blocker} "
                f"(completes {completion[blocker]}, latency {lat})"
            )
            cause = "dependence"
        else:
            detail = f"{node} ready but no free {graph.fu_class(node)} unit"
            cause = "resource"
    return SimEvent(
        cycle=cycle,
        kind="stall",
        node=node,
        head=head,
        occupancy=occupancy,
        detail=detail,
        cause=cause,
    )


def _deadlock(
    graph: DependenceGraph,
    stream: Sequence[str],
    head: int,
    w: int,
    n: int,
    completion: Mapping[str, int],
    position: Mapping[str, int],
    time: int,
) -> SimulationDeadlock:
    """Build a diagnostic deadlock exception naming the blocked head
    instruction, its unmet dependence, and the current window span and
    contents."""
    node = stream[head]
    window_end = min(head + w, n)
    window_nodes = tuple(stream[head:window_end])
    contents = " ".join(window_nodes)
    missing = [p for p in graph.predecessors(node) if p not in completion]
    blocker = max(missing, key=lambda p: position[p]) if missing else None
    if blocker is not None:
        where = (
            "beyond the window"
            if position[blocker] >= window_end
            else "itself blocked inside the window"
        )
        message = (
            f"simulation deadlock at cycle {time}: '{node}' (stream position "
            f"{head}) waits on '{blocker}' (stream position "
            f"{position[blocker]}, {where}); window spans [{head}, "
            f"{head + w}) holding [{contents}] — window too small for the "
            f"stream's dependences"
        )
    else:  # pragma: no cover - unreachable for well-formed streams
        message = (
            f"simulation deadlock at cycle {time}: no instruction in the "
            f"window [{head}, {head + w}) holding [{contents}] can ever "
            f"become ready"
        )
    return SimulationDeadlock(
        message,
        node=node,
        dependence=blocker,
        window=(head, head + w),
        window_nodes=window_nodes,
    )


def simulate_trace(
    trace,
    block_orders: Iterable[Sequence[str]],
    machine: MachineModel | None = None,
    mispredicted_blocks: Iterable[int] = (),
    misprediction_penalty: int = 2,
    collect_trace: bool | None = None,
    trace_label: str = "",
) -> SimResult:
    """Execute a trace given its emitted per-block instruction orders.

    ``mispredicted_blocks`` lists block indices whose *entry* was
    mispredicted: the window cannot overlap instructions across that block's
    leading boundary, and ``misprediction_penalty`` flush cycles are added
    (the paper's safety story: eagerly executed instructions of the wrong
    path are rolled back by hardware).

    An active fault plan with ``mispredict_rate > 0`` forces additional
    block entries mispredicted (seeded, at the plan's own penalty) — the
    load-anomaly scenario the per-block safety contract must survive.
    """
    machine = machine or single_unit_machine()
    orders = [list(o) for o in block_orders]
    if len(orders) != trace.num_blocks:
        raise ValueError("need exactly one order per trace block")
    for i, order in enumerate(orders):
        if sorted(order) != sorted(trace.block_nodes(i)):
            raise ValueError(f"order for block {i} is not a permutation of it")
    stream: list[str] = [n for order in orders for n in order]
    mispredicted = set(mispredicted_blocks)
    penalty_of = {i: misprediction_penalty for i in mispredicted}
    plan = faults.active_plan()
    if plan is not None and plan.mispredict_rate > 0.0:
        rng = plan.rng("trace.mispredict", trace.num_blocks)
        for i in range(1, trace.num_blocks):
            if rng.random() < plan.mispredict_rate and i not in mispredicted:
                mispredicted.add(i)
                penalty_of[i] = plan.mispredict_penalty
                obs.count("faults.injected.mispredict")
    barriers: dict[int, int] = {}
    boundary = 0
    for i, order in enumerate(orders):
        if i > 0 and i in mispredicted:
            barriers[boundary] = penalty_of[i]
        boundary += len(order)
    with obs.span(
        "sim.trace", blocks=trace.num_blocks, instructions=len(stream)
    ):
        return simulate_window(
            trace.graph,
            stream,
            machine,
            barriers,
            collect_trace=collect_trace,
            trace_label=trace_label or "trace execution",
        )
