"""Unit tests for the textual program parser."""

import pytest

from repro.ir import ParseError, parse_program, parse_trace
from repro.workloads.paper_examples import FIG3_TEXT


class TestParseProgram:
    def test_figure3_text(self):
        blocks = parse_program(FIG3_TEXT)
        assert len(blocks) == 1
        name, instrs = blocks[0]
        assert name == "CL.18"
        assert [i.name for i in instrs] == ["L4", "ST", "C4", "M", "BT"]
        m = next(i for i in instrs if i.name == "M")
        assert m.latency == 4
        assert m.reads == ("gr6", "gr0")
        assert m.writes == ("gr0",)
        bt = instrs[-1]
        assert bt.is_branch

    def test_comments_and_blanks(self):
        text = """
        # a comment
        block B1

          a op=add defs=r1  # trailing comment
        """
        blocks = parse_program(text)
        assert blocks[0][1][0].opcode == "add"

    def test_multiple_blocks(self):
        text = """
        block A
          a1 defs=r1
        block B
          b1 uses=r1
        """
        blocks = parse_program(text)
        assert [name for name, _ in blocks] == ["A", "B"]

    def test_exec_time_and_fu(self):
        text = """
        block A
          d op=div defs=r1 time=20 lat=2 fu=float
        """
        i = parse_program(text)[0][1][0]
        assert i.exec_time == 20
        assert i.latency == 2
        assert i.fu_class == "float"


class TestParseErrors:
    def test_instruction_before_block(self):
        with pytest.raises(ParseError, match="before any 'block'"):
            parse_program("a defs=r1")

    def test_duplicate_instruction(self):
        with pytest.raises(ParseError, match="duplicate instruction"):
            parse_program("block A\n a defs=r1\n a defs=r2")

    def test_duplicate_block(self):
        with pytest.raises(ParseError, match="duplicate block"):
            parse_program("block A\n a defs=r1\nblock A\n b defs=r2")

    def test_unknown_attribute(self):
        with pytest.raises(ParseError, match="unknown attribute"):
            parse_program("block A\n a wat=1")

    def test_bad_integer(self):
        with pytest.raises(ParseError, match="integer"):
            parse_program("block A\n a lat=abc")

    def test_missing_equals(self):
        with pytest.raises(ParseError, match="key=value"):
            parse_program("block A\n a defs")

    def test_empty_program(self):
        with pytest.raises(ParseError, match="empty program"):
            parse_program("# nothing\n")

    def test_empty_block(self):
        with pytest.raises(ParseError, match="no instructions"):
            parse_program("block A\nblock B\n b defs=r1")

    def test_bad_fu_class(self):
        with pytest.raises(ParseError, match="fu_class"):
            parse_program("block A\n a fu=warp")

    def test_error_carries_line_number(self):
        try:
            parse_program("block A\n a defs=r1\n b lat=x")
        except ParseError as exc:
            assert exc.lineno == 3
        else:  # pragma: no cover
            raise AssertionError("expected ParseError")


class TestParseErrorColumns:
    """Errors attributable to a token name its 1-based line AND column."""

    @staticmethod
    def _fail(text: str) -> ParseError:
        with pytest.raises(ParseError) as info:
            parse_program(text)
        return info.value

    def test_message_names_line_and_column(self):
        exc = self._fail("block A\n  a defs=r1 wat=1")
        assert "line 2, column 13: unknown attribute 'wat'" in str(exc)
        assert exc.lineno == 2
        assert exc.col == 13

    def test_bad_integer_points_at_value(self):
        # "  b lat=abc" -> the value 'abc' starts at column 9.
        exc = self._fail("block A\n  b lat=abc")
        assert exc.col == 9
        assert "line 2, column 9" in str(exc)

    def test_missing_equals_points_at_token(self):
        exc = self._fail("block A\n  a defs=r1  uses")
        assert exc.col == 14

    def test_duplicate_instruction_points_at_name(self):
        exc = self._fail("block A\n a defs=r1\n    a defs=r2")
        assert exc.lineno == 3
        assert exc.col == 5

    def test_duplicate_block_points_at_name(self):
        exc = self._fail("block A\n a defs=r1\nblock  A\n b defs=r2")
        assert exc.lineno == 3
        assert exc.col == 8

    def test_instruction_before_block_points_at_token(self):
        exc = self._fail("   a defs=r1")
        assert exc.lineno == 1
        assert exc.col == 4

    def test_column_survives_trailing_comment(self):
        exc = self._fail("block A\n  a wat=1  # not the error column")
        assert exc.col == 5

    def test_file_level_errors_have_no_column(self):
        exc = self._fail("# nothing\n")
        assert exc.col is None
        assert str(exc).startswith("empty program") or "line 1:" in str(exc)

    def test_bad_fu_class_points_at_instruction(self):
        exc = self._fail("block A\n  a fu=warp")
        assert exc.lineno == 2
        assert exc.col == 3


class TestParseTrace:
    def test_figure3_dependences_match_manual_graph(self):
        """The parsed Figure 3 text must derive the same loop-independent
        dependences as the hand-written edge list."""
        t = parse_trace(FIG3_TEXT)
        g = t.graph
        assert g.latency("L4", "C4") == 1   # gr6 RAW
        assert g.latency("L4", "M") == 1    # gr6 RAW
        assert g.latency("ST", "M") == 0    # gr0 WAR
        assert g.latency("C4", "BT") == 1   # cr1 RAW
        assert g.latency("M", "BT") == 0    # control
        assert g.latency("L4", "BT") == 0   # control
        assert g.latency("ST", "BT") == 0   # control

    def test_cross_block_edges_derived(self):
        t = parse_trace(
            """
            block A
              a op=add defs=r1 lat=2
            block B
              b op=add uses=r1
            """
        )
        assert t.cross_edges == [("a", "b", 2)]
