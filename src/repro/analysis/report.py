"""Plain-text table rendering for the benchmark harness.

Each benchmark prints the rows the paper (or our prospective-study design in
DESIGN.md) reports, in a stable ASCII format so EXPERIMENTS.md can quote them
verbatim.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render a fixed-width table with a header rule."""
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)


def print_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> None:
    print()
    print(format_table(headers, rows, title))
    print()
