"""Property-based tests (hypothesis) for the core invariants.

These fuzz the theorems the paper states for the optimal regime (unit
execution times, 0/1 latencies, single functional unit) and the structural
invariants that must hold for *every* machine model.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis import verify_scheduler_output
from repro.core import (
    algorithm_lookahead,
    compute_ranks,
    delay_idle_slots,
    list_schedule,
    makespan_deadlines,
    rank_schedule,
)
from repro.core.rank import fill_deadlines
from repro.machine import paper_machine
from repro.schedulers import optimal_makespan
from repro.sim import simulate_window
from repro.workloads import random_dag, random_trace

COMMON = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def small_dag(draw, max_nodes=9, latencies=(0, 1)):
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    p = draw(st.sampled_from([0.1, 0.25, 0.4, 0.6]))
    return random_dag(n, edge_probability=p, latencies=latencies, seed=seed)


@st.composite
def medium_dag(draw, max_nodes=20, latencies=(0, 1, 2, 4)):
    n = draw(st.integers(min_value=1, max_value=max_nodes))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    return random_dag(n, edge_probability=0.25, latencies=latencies, seed=seed)


class TestRankOptimality:
    @settings(max_examples=60, **COMMON)
    @given(small_dag())
    def test_rank_schedule_is_optimal_in_the_proven_regime(self, g):
        """With label tie-breaking the Rank Algorithm matches the exact
        optimum on every fuzzed 0/1-latency instance; with the paper-
        faithful program-order ties it is within one cycle (see
        tests/core/test_tie_breaking.py for the pinned counterexample)."""
        s_labels, _ = rank_schedule(g, tie_break="labels")
        assert s_labels is not None
        opt = optimal_makespan(g)
        assert s_labels.makespan == opt
        s_prog, _ = rank_schedule(g)
        assert s_prog is not None
        assert s_prog.makespan <= opt + 1

    @settings(max_examples=40, **COMMON)
    @given(small_dag())
    def test_feasibility_matches_bruteforce_oracle(self, g):
        """rank_schedule (label ties) returns None iff the instance is truly
        infeasible — deadlines set one below the optimum must be infeasible,
        at the optimum feasible."""
        opt = optimal_makespan(g)
        s_ok, _ = rank_schedule(g, {n: opt for n in g.nodes}, tie_break="labels")
        assert s_ok is not None and s_ok.makespan == opt
        if opt > len(g.nodes):  # only when a real idle exists to squeeze
            s_bad, _ = rank_schedule(
                g, {n: opt - 1 for n in g.nodes}, tie_break="labels"
            )
            assert s_bad is None


class TestScheduleValidity:
    @settings(max_examples=40, **COMMON)
    @given(medium_dag())
    def test_rank_schedules_always_valid(self, g):
        s, _ = rank_schedule(g)
        assert s is not None
        s.validate()

    @settings(max_examples=40, **COMMON)
    @given(medium_dag(), st.integers(min_value=1, max_value=8))
    def test_simulation_always_valid_and_complete(self, g, w):
        sim = simulate_window(g, g.nodes, paper_machine(w))
        sim.schedule.validate()
        assert len(sim.issue_order) == len(g)


class TestIdleDelayInvariants:
    @settings(max_examples=40, **COMMON)
    @given(small_dag(max_nodes=12))
    def test_makespan_preserved_and_slots_monotone(self, g):
        s, _ = rank_schedule(g)
        assert s is not None
        before = s.idle_times()
        s2, _ = delay_idle_slots(s, makespan_deadlines(s))
        s2.validate()
        # Delaying idle slots never hurts, and can occasionally *improve* the
        # makespan: rank_schedule's program-order tie-breaking is +1-cycle
        # suboptimal on rare instances (see rank.py), and re-timing a slot can
        # recover that cycle.
        assert s2.makespan <= s.makespan
        if s2.makespan == s.makespan:
            # Same makespan: slots are preserved, each moved later or kept.
            after = s2.idle_times()
            assert len(after) == len(before)
            assert all(a >= b for a, b in zip(after, before))


class TestRankDefinition:
    @settings(max_examples=40, **COMMON)
    @given(small_dag(max_nodes=10))
    def test_rank_is_achievable_completion_bound(self, g):
        """In the optimal regime the rank-list greedy schedule completes
        every node by its rank (ranks are tight upper bounds)."""
        d = fill_deadlines(g)
        ranks = compute_ranks(g, d)
        s, _ = rank_schedule(g, d)
        assert s is not None
        assert all(s.completion(n) <= ranks[n] for n in g.nodes)

    @settings(max_examples=30, **COMMON)
    @given(small_dag(max_nodes=10), st.integers(min_value=1, max_value=30))
    def test_translation_invariance(self, g, shift):
        base = {n: 100 for n in g.nodes}
        shifted = {n: 100 + shift for n in g.nodes}
        r0 = compute_ranks(g, base)
        r1 = compute_ranks(g, shifted)
        assert all(r1[n] - r0[n] == shift for n in g.nodes)


@st.composite
def small_trace(draw):
    blocks = draw(st.integers(min_value=1, max_value=4))
    size = draw(st.integers(min_value=2, max_value=5))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    cross = draw(st.sampled_from([0.0, 0.1, 0.25]))
    return random_trace(
        blocks, size, cross_probability=cross, latencies=(0, 1), seed=seed
    )


class TestLookaheadInvariants:
    @settings(max_examples=40, **COMMON)
    @given(small_trace(), st.integers(min_value=1, max_value=6))
    def test_output_always_safe_and_legal(self, trace, w):
        m = paper_machine(w)
        res = algorithm_lookahead(trace, m)
        verify_scheduler_output(trace, res.block_orders, m)

    @settings(max_examples=30, **COMMON)
    @given(small_trace(), st.integers(min_value=1, max_value=6))
    def test_simulation_never_exceeds_prediction(self, trace, w):
        m = paper_machine(w)
        res = algorithm_lookahead(trace, m)
        from repro.sim import simulate_trace

        sim = simulate_trace(trace, res.block_orders, m)
        assert sim.makespan <= res.predicted_makespan

    def test_anticipatory_beats_source_order_in_aggregate(self):
        """Algorithm Lookahead is a heuristic, not a per-instance dominator:
        on rare instances its anticipatory reordering loses a cycle to plain
        source order even in the 0/1-latency regime (first known
        counterexample: blocks=2, size=4, cross=0.0, seed=219 — 9 vs 8
        cycles; every known loss is exactly +1).  The paper's claim is about
        expected improvement, so the pinned property is aggregate: over a
        deterministic corpus the anticipatory total is strictly better, and
        no single instance loses more than a bounded slack."""
        from repro.sim import simulate_trace

        m = paper_machine(4)
        corpus = [
            (blocks, size, cross, seed)
            for blocks in (1, 2, 3, 4)
            for size in (2, 3, 4, 5)
            for cross in (0.0, 0.1, 0.25)
            for seed in range(12)
        ]
        corpus.append((2, 4, 0.0, 219))  # the known worst case, pinned
        total_ours = total_src = 0
        worst = 0
        for blocks, size, cross, seed in corpus:
            trace = random_trace(
                blocks, size, cross_probability=cross,
                latencies=(0, 1), seed=seed,
            )
            res = algorithm_lookahead(trace, m)
            ours = simulate_trace(trace, res.block_orders, m).makespan
            src = simulate_trace(
                trace,
                [list(trace.block_nodes(i)) for i in range(trace.num_blocks)],
                m,
            ).makespan
            total_ours += ours
            total_src += src
            worst = max(worst, ours - src)
        assert total_ours < total_src
        # Bounded per-instance slack: a loss of 2+ cycles would be a new
        # kind of counterexample worth investigating, not heuristic noise.
        assert worst <= 1


class TestListScheduleGreedy:
    @settings(max_examples=40, **COMMON)
    @given(medium_dag(), st.integers(min_value=0, max_value=1000))
    def test_any_priority_gives_valid_greedy_schedule(self, g, seed):
        rng = np.random.default_rng(seed)
        priority = list(g.nodes)
        rng.shuffle(priority)
        s = list_schedule(g, priority)
        s.validate()
        # Greedy: the single unit is never idle while some node is ready.
        busy = {s.starts[n] for n in g.nodes}
        est = {}
        for n in g.topological_order():
            est[n] = max(
                (s.completion(p) + lat for p, lat in g.predecessors(n).items()),
                default=0,
            )
        for t in range(s.makespan):
            if t in busy:
                continue
            ready_now = [
                n for n in g.nodes if est[n] <= t and s.starts[n] > t
            ]
            assert not ready_now, f"unit idle at {t} while {ready_now} ready"
