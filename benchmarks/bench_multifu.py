"""E7 — Table C: §4.2 heuristics on general machine models.

Multiple typed functional units, non-unit execution times and latencies > 1:
compares the anticipatory heuristic against the production-style local
baselines the paper cites (Warren [12], Gibbons-Muchnick [8]) on the
RS/6000-like machine.  Expected shape (asserted): every scheduler's output
is valid; anticipatory is competitive (within a small factor of the best
local baseline on every instance, better or equal in geomean).
"""

from common import emit_metrics, emit_table, run_sweep

from repro.analysis import geometric_mean
from repro.core import algorithm_lookahead
from repro.machine import MachineModel, RS6000_LIKE
from repro.schedulers import (
    block_orders_with_priority,
    critical_path_priority,
    source_order_priority,
)
from repro.sim import simulate_trace
from repro.workloads import random_trace, reduction_trace

TRIALS = 8
FU_MIX = ("fixed", "float", "memory", "any")


def make_trace(seed: int):
    return random_trace(
        3,
        (5, 8),
        edge_probability=0.3,
        cross_probability=0.08,
        latencies=(0, 1, 2, 4),
        exec_times=(1, 1, 2),
        fu_classes=FU_MIX,
        seed=seed,
    )


def run_seed(seed: int) -> dict:
    m = RS6000_LIKE
    t = make_trace(seed)
    spans = {}
    spans["source"] = simulate_trace(
        t, block_orders_with_priority(t, source_order_priority, m), m
    ).makespan
    spans["crit-path"] = simulate_trace(
        t, block_orders_with_priority(t, critical_path_priority, m), m
    ).makespan
    res = algorithm_lookahead(t, m)
    sim = simulate_trace(t, res.block_orders, m)
    sim.schedule.validate()
    spans["anticipatory"] = sim.makespan
    return spans


def test_multifu_heuristics(benchmark):
    m = RS6000_LIKE
    rows = []
    ratios_vs_cp = []
    for seed, spans in enumerate(run_sweep(run_seed, list(range(TRIALS)))):
        rows.append([seed, spans["source"], spans["crit-path"], spans["anticipatory"]])
        ratios_vs_cp.append(spans["crit-path"] / spans["anticipatory"])
        assert spans["anticipatory"] <= spans["crit-path"] * 1.25

    gm = geometric_mean(ratios_vs_cp)
    rows.append(["geomean crit-path/anticipatory", "-", "-", f"{gm:.3f}"])
    emit_table(
        "E7_multifu",
        ["seed", "source order", "critical path", "anticipatory (§4.2)"],
        rows,
        title=(
            "E7 / Table C: RS/6000-like machine (fixed+float+memory+branch "
            "units, exec times 1-2, latencies 0-4), completion cycles"
        ),
    )
    assert gm >= 0.97  # competitive in geomean (heuristic regime)

    # A structured kernel: the reduction tree must overlap loads and adds.
    red = reduction_trace()
    res = algorithm_lookahead(red, m)
    sim = simulate_trace(red, res.block_orders, m)
    narrow = MachineModel(window_size=6, fu_counts={"fixed": 1, "memory": 1})
    sim_narrow = simulate_trace(
        red, algorithm_lookahead(red, narrow).block_orders, narrow
    )
    emit_table(
        "E7_reduction",
        ["machine", "completion"],
        [
            ["RS/6000-like (4 units)", sim.makespan],
            ["fixed+memory only", sim_narrow.makespan],
        ],
        title="E7 follow-up: reduction-tree kernel across machines",
    )
    assert sim.makespan <= sim_narrow.makespan

    emit_metrics(
        "E7_multifu",
        {
            "trials": TRIALS,
            "geomean_critpath_over_anticipatory": gm,
            "seeds": [
                {
                    "seed": seed,
                    "source": source,
                    "crit_path": crit,
                    "anticipatory": ant,
                }
                for seed, source, crit, ant in rows[:TRIALS]
            ],
            "reduction_makespan_rs6000": sim.makespan,
            "reduction_makespan_narrow": sim_narrow.makespan,
        },
        machine=m,
    )

    t = make_trace(0)
    benchmark(lambda: algorithm_lookahead(t, m))
