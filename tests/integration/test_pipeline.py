"""End-to-end pipeline tests: text → IR → scheduling → simulation."""

import pytest

from repro.analysis import verify_scheduler_output
from repro.core import algorithm_lookahead, local_block_orders
from repro.ir import parse_trace
from repro.machine import MachineModel, RS6000_LIKE, paper_machine
from repro.schedulers import modulo_schedule
from repro.sim import (
    simulate_loop_order,
    simulate_trace,
    simulated_initiation_interval,
)
from repro.workloads import (
    branchy_trace,
    dot_product_loop,
    dot_product_trace,
    reduction_trace,
    saxpy_unrolled_trace,
)


class TestKernelTraces:
    @pytest.mark.parametrize(
        "factory", [dot_product_trace, branchy_trace, saxpy_unrolled_trace, reduction_trace]
    )
    @pytest.mark.parametrize("window", [1, 2, 4, 8])
    def test_full_pipeline(self, factory, window):
        trace = factory()
        m = paper_machine(window)
        res = algorithm_lookahead(trace, m)
        verify_scheduler_output(trace, res.block_orders, m)
        sim = simulate_trace(trace, res.block_orders, m)
        # Completion can never beat the dependence-only critical path.
        assert sim.makespan >= trace.graph.critical_path_length()

    def test_anticipatory_beats_or_ties_local_on_kernels(self):
        m = paper_machine(4)
        for factory in (branchy_trace, saxpy_unrolled_trace):
            trace = factory()
            anticipatory = simulate_trace(
                trace, algorithm_lookahead(trace, m).block_orders, m
            ).makespan
            local = simulate_trace(
                trace, local_block_orders(trace, m, delay_idles=False), m
            ).makespan
            assert anticipatory <= local

    def test_multi_unit_machine_end_to_end(self):
        trace = reduction_trace()
        res = algorithm_lookahead(trace, RS6000_LIKE)
        sim = simulate_trace(trace, res.block_orders, RS6000_LIKE)
        sim.schedule.validate()
        single = simulate_trace(trace, res.block_orders, paper_machine(6))
        assert sim.makespan <= single.makespan  # more units can't be slower


class TestModuloPlusAnticipatory:
    """E11's code path: software pipelining then anticipatory post-pass."""

    def test_kernel_feeds_loop_scheduler(self):
        from repro.core import schedule_single_block_loop

        loop = dot_product_loop()
        m = paper_machine(2)
        kernel = modulo_schedule(loop, m)
        res = schedule_single_block_loop(loop, m)
        ours = simulated_initiation_interval(loop, res.order, m)
        kernel_ii = simulated_initiation_interval(loop, kernel.kernel_order(), m)
        # Anticipatory ordering should be competitive with the modulo
        # kernel's linearized order when both are executed on the window HW.
        assert ours <= kernel_ii + 1


class TestParsedProgram:
    def test_custom_program_roundtrip(self):
        text = """
        block top
          a op=li  defs=r1 lat=1
          b op=li  defs=r2 lat=1
          c op=mul defs=r3 uses=r1,r2 lat=4
        block bottom
          d op=add defs=r4 uses=r3 lat=1
          e op=st  uses=r4 stores=out lat=1
        """
        trace = parse_trace(text)
        m = paper_machine(3)
        res = algorithm_lookahead(trace, m)
        verify_scheduler_output(trace, res.block_orders, m)
        sim = simulate_trace(trace, res.block_orders, m)
        # Both loads serialize on the single unit, so c starts at 3 (second
        # load completes at 2, +1 latency), ends 4; +4 → d at 8, e at 10,
        # makespan 11 — one above the resource-free critical path of 10.
        assert sim.makespan == 11
        assert trace.graph.critical_path_length() == 10
