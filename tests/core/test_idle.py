"""Unit tests for Move_Idle_Slot / Delay_Idle_Slots (paper §3, Figs 4 & 6)."""

import pytest

from repro.core import (
    delay_idle_slots,
    makespan_deadlines,
    move_idle_slot,
    rank_schedule,
    schedule_block_with_late_idle_slots,
)
from repro.core.rank import fill_deadlines
from repro.ir import graph_from_edges
from repro.workloads import figure1_bb1, random_dag


class TestFigure1:
    def test_single_move(self):
        """Paper §2.2: the idle slot at t=2 moves to t=5 with d(x)=1."""
        g = figure1_bb1()
        s, _ = rank_schedule(g)
        d = makespan_deadlines(s)
        result = move_idle_slot(s, d, 0)
        assert result.moved
        assert result.new_time == 5
        assert result.schedule.makespan == 7
        assert result.deadlines["x"] == 1  # the deadline the paper derives

    def test_full_delay_reaches_paper_schedule(self):
        """Paper Fig. 1 bottom: x e r b w _ a."""
        g = figure1_bb1()
        s, _ = rank_schedule(g)
        s2, d2 = delay_idle_slots(s, makespan_deadlines(s))
        assert s2.permutation() == ["x", "e", "r", "b", "w", "a"]
        assert s2.idle_times() == [5]
        assert s2.makespan == 7

    def test_convenience_pipeline(self):
        g = figure1_bb1()
        s, d = schedule_block_with_late_idle_slots(g)
        assert s.idle_times() == [5]
        assert s.makespan == 7


class TestInvariants:
    @pytest.mark.parametrize("seed", range(10))
    def test_makespan_preserved_and_idles_never_earlier(self, seed):
        g = random_dag(12, edge_probability=0.3, latencies=(0, 1), seed=seed)
        s, _ = rank_schedule(g)
        assert s is not None
        before = s.idle_times()
        s2, _ = delay_idle_slots(s, makespan_deadlines(s))
        after = s2.idle_times()
        assert s2.makespan == s.makespan
        assert len(after) == len(before)  # work + makespan fixed => count fixed
        for b, a in zip(before, after):
            assert a >= b
        s2.validate()

    def test_no_idle_slots_noop(self):
        g = graph_from_edges([], nodes=["a", "b", "c"])
        s, _ = rank_schedule(g)
        s2, _ = delay_idle_slots(s, makespan_deadlines(s))
        assert s2.starts == s.starts

    def test_immovable_idle_slot(self):
        """A latency-forced gap in a chain cannot move."""
        g = graph_from_edges([("a", "b", 1)])
        s, _ = rank_schedule(g)
        assert s.idle_times() == [1]
        s2, _ = delay_idle_slots(s, makespan_deadlines(s))
        assert s2.idle_times() == [1]

    def test_failure_returns_input_schedule(self):
        g = graph_from_edges([("a", "b", 1)])
        s, _ = rank_schedule(g)
        d = fill_deadlines(g, makespan_deadlines(s))
        result = move_idle_slot(s, d, 0)
        assert not result.moved
        assert result.schedule.starts == s.starts
        # Tail-node reductions must have been rolled back.
        assert result.deadlines["a"] >= 1

    def test_out_of_range_index(self):
        g = graph_from_edges([], nodes=["a"])
        s, _ = rank_schedule(g)
        d = fill_deadlines(g, makespan_deadlines(s))
        result = move_idle_slot(s, d, 3)
        assert not result.moved

    def test_input_deadlines_not_mutated(self):
        g = figure1_bb1()
        s, _ = rank_schedule(g)
        d = fill_deadlines(g, makespan_deadlines(s))
        snapshot = dict(d)
        move_idle_slot(s, d, 0)
        assert d == snapshot


class TestMultipleIdleSlots:
    def test_two_gaps_chain(self):
        """a ->(2) b ->(2) c: two 2-cycle gaps, all frozen by dependences."""
        g = graph_from_edges([("a", "b", 2), ("b", "c", 2)])
        s, _ = rank_schedule(g)
        assert s.idle_times() == [1, 2, 4, 5]
        s2, _ = delay_idle_slots(s, makespan_deadlines(s))
        assert s2.makespan == s.makespan
        s2.validate()

    def test_fillable_gap_moves_late(self):
        """Chain with latency plus independent fillers: the free instructions
        fill the early gap, pushing idleness to the end."""
        g = graph_from_edges(
            [("a", "b", 3)], nodes=["a", "b", "f1", "f2"]
        )
        s2, _ = schedule_block_with_late_idle_slots(g)
        # Optimal makespan 5: a f1 f2 b fits with gap filled... a@0, b>=4.
        # 4 nodes in 5 slots -> exactly one idle slot, as late as possible.
        assert s2.makespan == 5
        assert s2.idle_times() == [3]
        assert s2.start("a") == 0
