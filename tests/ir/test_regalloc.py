"""Unit tests for register renaming and linear-scan allocation."""

import pytest

from repro.ir import Instruction, build_dependence_graph
from repro.ir.regalloc import (
    AllocationError,
    allocate_registers,
    live_intervals,
    minimum_registers,
    rename_registers,
)


def instr(name, reads=(), writes=(), lat=1):
    return Instruction(
        name=name, reads=tuple(reads), writes=tuple(writes), latency=lat
    )


SEQ = [
    instr("a", writes=["r1"]),
    instr("b", writes=["r1"]),  # WAW with a
    instr("c", reads=["r1"], writes=["r2"]),
    instr("d", writes=["r1"]),  # WAR with c
]


class TestRenaming:
    def test_removes_waw_and_war(self):
        renamed = rename_registers(SEQ)
        g = build_dependence_graph(renamed)
        # Only the true dependence b -> c survives.
        assert g.num_edges() == 1
        assert g.latency("b", "c") == 1

    def test_uses_read_reaching_definition(self):
        renamed = rename_registers(SEQ)
        assert renamed[2].reads == (renamed[1].writes[0],)

    def test_live_in_registers_keep_names(self):
        seq = [instr("u", reads=["rx"], writes=["r1"])]
        renamed = rename_registers(seq)
        assert renamed[0].reads == ("rx",)
        assert renamed[0].writes != ("r1",)

    def test_non_register_fields_preserved(self):
        seq = [
            Instruction(
                name="s", reads=("r1",), stores=("m",), latency=3,
                fu_class="memory",
            )
        ]
        out = rename_registers(seq)[0]
        assert out.stores == ("m",) and out.latency == 3
        assert out.fu_class == "memory"


class TestLiveIntervals:
    def test_basic_ranges(self):
        seq = rename_registers(SEQ)
        order = [i.name for i in seq]
        ivs = {iv.register: iv for iv in live_intervals(seq, order)}
        v1 = seq[1].writes[0]
        assert ivs[v1].start == 1 and ivs[v1].end == 2

    def test_live_in_starts_at_minus_one(self):
        seq = [instr("u", reads=["rx"])]
        ivs = live_intervals(seq, ["u"])
        assert ivs[0].start == -1

    def test_order_validated(self):
        with pytest.raises(ValueError, match="permutation"):
            live_intervals(SEQ, ["a", "b"])


class TestAllocation:
    def test_minimum_registers(self):
        seq = rename_registers(SEQ)
        order = [i.name for i in seq]
        k = minimum_registers(seq, order)
        assert k == 2  # b's value overlaps c's def

    def test_allocation_succeeds_at_minimum(self):
        seq = rename_registers(SEQ)
        order = [i.name for i in seq]
        k = minimum_registers(seq, order)
        allocated = allocate_registers(seq, order, k)
        pregs = {r for i in allocated for r in i.reads + i.writes}
        assert len(pregs) <= k
        assert all(r.startswith("p") for r in pregs)

    def test_allocation_fails_below_minimum(self):
        seq = rename_registers(SEQ)
        order = [i.name for i in seq]
        k = minimum_registers(seq, order)
        with pytest.raises(AllocationError):
            allocate_registers(seq, order, k - 1)

    def test_tight_allocation_reintroduces_false_deps(self):
        """The phase-ordering effect: K = minimum forces register reuse,
        whose WAR/WAW edges reappear in the rebuilt dependence graph."""
        seq = rename_registers(
            [
                instr("a", writes=["x"], lat=4),
                instr("b", reads=["x"], writes=["y"]),
                instr("c", writes=["z"]),
                instr("d", reads=["z"]),
            ]
        )
        order = ["a", "b", "c", "d"]
        free_graph = build_dependence_graph(seq)
        tight = allocate_registers(seq, order, minimum_registers(seq, order))
        tight_graph = build_dependence_graph(tight)
        assert tight_graph.num_edges() >= free_graph.num_edges()

    def test_semantics_preserved_with_plenty_of_registers(self):
        seq = rename_registers(SEQ)
        order = [i.name for i in seq]
        allocated = allocate_registers(seq, order, 16)
        g0 = build_dependence_graph(seq)
        g1 = build_dependence_graph(allocated)
        # With abundant registers no sharing happens: identical edges.
        assert sorted((u, v, l) for u, v, l in g0.edges()) == sorted(
            (u, v, l) for u, v, l in g1.edges()
        )

    def test_invalid_register_count(self):
        with pytest.raises(ValueError):
            allocate_registers(SEQ, [i.name for i in SEQ], 0)
