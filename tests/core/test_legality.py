"""Unit tests for Definitions 2.1–2.3 (legal schedules)."""

import pytest

from repro.core import (
    Schedule,
    algorithm_lookahead,
    block_orders_of,
    inversions,
    is_legal_schedule,
    satisfies_ordering_constraint,
    satisfies_window_constraint,
)
from repro.ir import Trace, block_from_graph, graph_from_edges
from repro.machine import paper_machine
from repro.sim import simulate_trace
from repro.workloads import figure2_trace, random_trace


def tiny_trace():
    g1 = graph_from_edges([], nodes=["a", "b"])
    g2 = graph_from_edges([], nodes=["c", "d"])
    return Trace([block_from_graph("B1", g1), block_from_graph("B2", g2)])


class TestInversions:
    def test_no_inversions_in_block_order(self):
        t = tiny_trace()
        assert inversions(t, ["a", "b", "c", "d"]) == []

    def test_single_inversion(self):
        t = tiny_trace()
        inv = inversions(t, ["a", "c", "b", "d"])
        assert len(inv) == 1
        assert (inv[0].earlier_node, inv[0].later_node) == ("c", "b")
        assert inv[0].span == 2

    def test_span_computation(self):
        t = tiny_trace()
        inv = inversions(t, ["c", "a", "b", "d"])
        spans = sorted(i.span for i in inv)
        assert spans == [2, 3]  # c before a (span 2) and c before b (span 3)


class TestWindowConstraint:
    def test_within_window(self):
        t = tiny_trace()
        assert satisfies_window_constraint(t, ["a", "c", "b", "d"], 2)

    def test_exceeds_window(self):
        t = tiny_trace()
        assert not satisfies_window_constraint(t, ["c", "a", "b", "d"], 2)
        assert satisfies_window_constraint(t, ["c", "a", "b", "d"], 3)

    def test_block_orders_of(self):
        t = tiny_trace()
        assert block_orders_of(t, ["a", "c", "b", "d"]) == [
            ["a", "b"],
            ["c", "d"],
        ]


class TestOrderingConstraint:
    def test_simulated_schedule_is_legal(self):
        t = figure2_trace()
        m = paper_machine(2)
        res = algorithm_lookahead(t, m)
        sim = simulate_trace(t, res.block_orders, m)
        assert is_legal_schedule(t, sim.schedule, m)
        # The Figure 2 runtime schedule also satisfies the paper's literal
        # span-based window constraint.
        assert is_legal_schedule(t, sim.schedule, m, strict=True)

    def test_strict_window_constraint_is_conservative(self):
        """Reproduction finding: the operational window hardware can emit
        permutations whose inversion spans exceed W (two later-block
        instructions overtaking a stalled run) — legal operationally,
        illegal under the literal Definition 2.2 span check."""
        t = random_trace(2, 4, cross_probability=0.0, latencies=(0, 1), seed=11)
        m = paper_machine(4)
        orders = algorithm_lookahead(t, m).block_orders
        sim = simulate_trace(t, orders, m)
        assert is_legal_schedule(t, sim.schedule, m)
        assert not is_legal_schedule(t, sim.schedule, m, strict=True)

    def test_delayed_schedule_violates_ordering(self):
        """A schedule that gratuitously idles while an instruction is ready
        cannot be produced greedily from its own priority list."""
        t = tiny_trace()
        m = paper_machine(2)
        s = Schedule(t.graph, {"a": 0, "b": 2, "c": 3, "d": 4})
        assert not satisfies_ordering_constraint(t, s, m)
        assert not is_legal_schedule(t, s, m)

    def test_invalid_schedule_is_illegal(self):
        g1 = graph_from_edges([("a", "b", 1)])
        g2 = graph_from_edges([], nodes=["c"])
        t = Trace([block_from_graph("B1", g1), block_from_graph("B2", g2)])
        s = Schedule(t.graph, {"a": 0, "b": 1, "c": 2})  # latency violated
        assert not is_legal_schedule(t, s, paper_machine(2))

    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("window", [1, 2, 4])
    def test_every_simulation_is_legal(self, seed, window):
        """By construction the simulator emits exactly the legal schedules."""
        t = random_trace(3, (3, 5), cross_probability=0.1, seed=seed)
        m = paper_machine(window)
        orders = [list(t.block_nodes(i)) for i in range(t.num_blocks)]
        sim = simulate_trace(t, orders, m)
        assert is_legal_schedule(t, sim.schedule, m)

class TestLegalityWitness:
    """Definition 2.3 is existential — "obtainable from *a* priority
    list".  The derived sub-permutation candidate is incomplete: a
    windowed execution may overtake a stalled instruction inside its own
    block, so the issue order's per-block sub-order differs from the list
    that produced it.  Passing the producing orders as ``witness_orders``
    makes the check exact."""

    def _overtake_case(self):
        from repro.core import local_block_orders

        t = random_trace(
            2, (3, 6), cross_probability=0.15, latencies=(0, 1, 2), seed=0
        )
        m = paper_machine(4)
        orders = local_block_orders(t, m)
        sim = simulate_trace(t, orders, m)
        return t, m, orders, sim.schedule

    def test_witness_makes_simulator_output_legal(self):
        t, m, orders, schedule = self._overtake_case()
        assert is_legal_schedule(t, schedule, m, witness_orders=orders)

    def test_canonical_candidate_alone_is_conservative(self):
        # The same schedule fails without the witness: its derived
        # sub-permutations re-execute differently.  This pins the
        # incompleteness the witness parameter exists to fix.
        t, m, orders, schedule = self._overtake_case()
        assert not is_legal_schedule(t, schedule, m)

    def test_wrong_witness_rejected(self):
        t = tiny_trace()
        m = paper_machine(2)
        sim = simulate_trace(t, [["a", "b"], ["c", "d"]], m)
        # A witness that doesn't reproduce the schedule is not accepted.
        delayed = Schedule(
            t.graph, {n: sim.schedule.start(n) + 1 for n in t.graph.nodes}
        )
        assert not is_legal_schedule(
            t, delayed, m, witness_orders=[["a", "b"], ["c", "d"]]
        )
