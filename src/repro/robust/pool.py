"""Reusable execution-pool API over the crash-tolerant sweep driver.

:mod:`repro.robust.sweep` grew per-cell timeouts, bounded capped-backoff
retry, worker-crash isolation with exact blame, and cross-process telemetry
— all of it originally reachable only through the sweep-shaped entry point
``run_sweep_robust(fn, params)``.  :class:`ExecutionPool` promotes that
machinery into a generic execution substrate: bind a picklable callable
once, then feed it batches of work items from anywhere (the serving daemon
dispatches request batches through one, benchmarks and ad-hoc drivers can
too) and get the same survival guarantees per batch.

The pool is deliberately stateless between batches — each :meth:`run` drives
one batch to completion through fresh worker pools, so a poisoned worker
can never leak into the next batch.  For a long-lived daemon this is the
property that matters: one malicious or degenerate request batch cannot
wedge the service.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Sequence

from .backoff import DEFAULT_BACKOFF_CAP_S, DEFAULT_BACKOFF_JITTER
from .sweep import SweepError, SweepResult, run_sweep_robust


@dataclass(frozen=True)
class PoolConfig:
    """Execution knobs shared by every batch a pool runs.

    ``jobs=1`` executes in-process (no forking — exceptions still retried);
    ``jobs>1`` fans out over fork-based worker pools with crash isolation.
    ``timeout_s`` bounds the time a batch tolerates with no item completing
    before declaring the running items hung.  Retry sleeps are capped at
    ``backoff_cap_s`` with seeded jitter (see :mod:`repro.robust.backoff`).
    """

    jobs: int = 1
    timeout_s: float | None = None
    retries: int = 1
    backoff_s: float = 0.05
    backoff_cap_s: float = DEFAULT_BACKOFF_CAP_S
    backoff_jitter: float = DEFAULT_BACKOFF_JITTER
    backoff_seed: int | None = 0

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs}")
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")


class ExecutionPool:
    """A callable bound to the robust execution substrate.

    ``fn`` must be a module-level (picklable) callable when ``jobs > 1``,
    same contract as the sweep driver.  Work items are argument tuples
    (bare values are 1-tuples).
    """

    def __init__(
        self,
        fn: Callable,
        config: PoolConfig | None = None,
        telemetry_dir: str | os.PathLike | None = None,
    ) -> None:
        self.fn = fn
        self.config = config or PoolConfig()
        self.telemetry_dir = telemetry_dir
        #: Aggregate bookkeeping across batches.
        self.batches = 0
        self.attempts = 0
        self.pool_restarts = 0

    def run(
        self,
        items: Sequence[object],
        timeout_s: float | None = None,
    ) -> SweepResult:
        """Drive one batch to completion; failed items appear as
        :class:`~repro.robust.sweep.SweepFailure` entries in input order
        instead of aborting the batch.

        ``timeout_s`` overrides the configured stall timeout for this
        batch only — the serving tier tightens it to the smallest
        remaining request deadline so a batch never outlives the clients
        waiting on it.  ``None`` keeps the config value.
        """
        cfg = self.config
        result = run_sweep_robust(
            self.fn,
            items,
            jobs=cfg.jobs,
            timeout_s=cfg.timeout_s if timeout_s is None else timeout_s,
            retries=cfg.retries,
            backoff_s=cfg.backoff_s,
            backoff_cap_s=cfg.backoff_cap_s,
            backoff_jitter=cfg.backoff_jitter,
            backoff_seed=cfg.backoff_seed,
            telemetry_dir=self.telemetry_dir,
            # The pool's contract is crash isolation per batch: even a
            # single-item batch must keep the fork boundary when jobs > 1,
            # or one crashing request takes the daemon down with it.
            isolate=True,
        )
        self.batches += 1
        self.attempts += result.attempts
        self.pool_restarts += result.pool_restarts
        return result

    def map(self, items: Sequence[object]) -> list:
        """Strict :meth:`run`: plain results in input order, raising
        :class:`~repro.robust.sweep.SweepError` if any item ultimately
        failed (after the whole batch has been driven)."""
        result = self.run(items)
        if result.failures:
            raise SweepError(result.failures, result.results)
        return result.results
