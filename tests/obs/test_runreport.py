"""Tests for RunReport documents, provenance, and the comparison gate."""

import json

import pytest

from repro.machine import paper_machine
from repro.obs import (
    RUNREPORT_SCHEMA_VERSION,
    RunReport,
    collect_provenance,
    compare_reports,
    flatten_metrics,
    is_timing_path,
)
from repro.obs.runreport import iter_report_paths


def make_report(**metrics) -> RunReport:
    base = {"makespan": 11, "stalls": 2, "runs": [{"wall_s": 1.0}]}
    base.update(metrics)
    return RunReport(name="t", metrics=base, phases={"rank": 0.5})


class TestRunReportDocument:
    def test_round_trip_via_file(self, tmp_path):
        r = make_report()
        r.provenance = collect_provenance(machine=paper_machine(2), seed=7)
        path = r.write(tmp_path / "r.json")
        back = RunReport.load(path)
        assert back.to_dict() == r.to_dict()
        assert back.schema_version == RUNREPORT_SCHEMA_VERSION

    def test_from_dict_requires_metrics(self):
        with pytest.raises(ValueError, match="metrics"):
            RunReport.from_dict({"name": "x"})

    def test_from_dict_rejects_future_schema(self):
        doc = make_report().to_dict()
        doc["schema_version"] = RUNREPORT_SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="newer"):
            RunReport.from_dict(doc)

    def test_from_dict_rejects_bad_version(self):
        doc = make_report().to_dict()
        doc["schema_version"] = "two"
        with pytest.raises(ValueError, match="schema_version"):
            RunReport.from_dict(doc)

    def test_v1_documents_still_load(self):
        # v1: the original ad-hoc emit_metrics shape, no phases/provenance.
        r = RunReport.from_dict(
            {"name": "old", "schema_version": 1, "metrics": {"x": 1}}
        )
        assert r.schema_version == 1 and r.phases == {}


class TestProvenance:
    def test_standard_fields(self):
        p = collect_provenance(machine=paper_machine(4), seed=3, smoke=True)
        assert p["machine"]["window_size"] == 4
        assert p["seed"] == 3 and p["smoke"] is True
        assert p["python"].count(".") == 2
        assert "-" in p["platform"]

    def test_git_sha_present_in_repo(self):
        p = collect_provenance()
        assert len(p.get("git_sha", "0" * 40)) == 40


class TestFlattenAndTiming:
    def test_flatten_nested(self):
        flat = flatten_metrics({"a": {"b": [1, {"c": 2}]}, "d": 3})
        assert flat == {"a.b.0": 1, "a.b.1.c": 2, "d": 3}

    def test_timing_paths(self):
        assert is_timing_path("runs.0.wall_s")
        assert is_timing_path("phase_wall_s.rank")
        assert is_timing_path("rank_delay_wall_ns")
        assert not is_timing_path("makespan")
        assert not is_timing_path("stalls")  # ends in s, not _s


class TestCompareReports:
    def test_identical_reports_pass(self):
        diff = compare_reports(make_report(), make_report())
        assert diff.ok and diff.changed() == []

    def test_invariant_drift_fails_both_directions(self):
        for new_makespan in (10, 12):
            diff = compare_reports(
                make_report(), make_report(makespan=new_makespan)
            )
            assert not diff.ok
            assert diff.failures[0].metric == "makespan"
            assert diff.failures[0].status == "drift"

    def test_wall_time_within_threshold_is_noise(self):
        diff = compare_reports(
            make_report(), make_report(runs=[{"wall_s": 1.2}]),
            threshold_pct=25.0,
        )
        assert diff.ok

    def test_wall_time_beyond_threshold_regresses(self):
        diff = compare_reports(
            make_report(), make_report(runs=[{"wall_s": 1.5}]),
            threshold_pct=25.0,
        )
        assert not diff.ok
        assert diff.failures[0].status == "regression"
        assert "threshold" in diff.failures[0].note

    def test_wall_time_improvement_never_fails(self):
        diff = compare_reports(
            make_report(), make_report(runs=[{"wall_s": 0.01}]),
            threshold_pct=25.0,
        )
        assert diff.ok

    def test_phases_are_thresholded_not_invariant(self):
        a, b = make_report(), make_report()
        b.phases = {"rank": 0.55}  # +10% — noise at 25%
        assert compare_reports(a, b).ok
        b.phases = {"rank": 5.0}
        diff = compare_reports(a, b)
        assert not diff.ok and diff.failures[0].metric == "phases.rank"

    def test_removed_metric_fails(self):
        a = make_report(extra=1)
        diff = compare_reports(a, make_report())
        assert not diff.ok
        assert diff.failures[0].status == "removed"

    def test_added_metric_warns_only(self):
        diff = compare_reports(make_report(), make_report(extra=1))
        assert diff.ok
        assert [d.status for d in diff.changed()] == ["added"]

    def test_non_numeric_drift(self):
        diff = compare_reports(
            make_report(order="a b c"), make_report(order="b a c")
        )
        assert not diff.ok and diff.failures[0].status == "drift"


class TestIterReportPaths:
    def test_skips_non_reports(self, tmp_path):
        make_report().write(tmp_path / "good.json")
        (tmp_path / "junk.json").write_text("not json")
        (tmp_path / "other.json").write_text(json.dumps({"no": "metrics"}))
        assert [p.name for p in iter_report_paths(tmp_path)] == ["good.json"]
