"""Blocking clients for the scheduling daemon.

:class:`ScheduleClient` speaks the newline-delimited JSON protocol over
the unix socket; :func:`http_schedule` / :func:`http_get` cover the TCP
transport with nothing but :mod:`http.client`.  Both exist so tests, the
smoke harness and ad-hoc scripts need no third-party HTTP stack.
"""

from __future__ import annotations

import http.client
import json
import os
import socket

from ..ir.basicblock import Trace
from ..machine.model import MachineModel
from .protocol import ScheduleRequest


class ScheduleClient:
    """One blocking unix-socket connection; requests are answered in order,
    so a single client may pipeline freely from one thread."""

    def __init__(
        self, socket_path: str | os.PathLike, timeout_s: float | None = 30.0
    ) -> None:
        self.socket_path = os.fspath(socket_path)
        self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._sock.settimeout(timeout_s)
        self._sock.connect(self.socket_path)
        self._file = self._sock.makefile("rwb")

    # -- raw protocol --------------------------------------------------------

    def call(self, doc: dict) -> dict:
        """Send one JSON document, read one JSON response line."""
        self._file.write(json.dumps(doc).encode() + b"\n")
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return json.loads(line)

    # -- conveniences --------------------------------------------------------

    def schedule(
        self,
        trace: Trace,
        machine: MachineModel,
        scheduler: str = "anticipatory",
        request_id: object = None,
    ) -> dict:
        request = ScheduleRequest(
            trace=trace, machine=machine, scheduler=scheduler, id=request_id
        )
        return self.call(request.to_dict())

    def ping(self) -> dict:
        return self.call({"op": "ping"})

    def stats(self) -> dict:
        return self.call({"op": "stats"})["stats"]

    def metrics_text(self) -> str:
        return self.call({"op": "metrics"})["text"]

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ScheduleClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def http_schedule(
    host: str, port: int, doc: dict, timeout_s: float = 30.0
) -> tuple[int, dict]:
    """POST one request (or ``{"requests": [...]}``) to ``/v1/schedule``."""
    conn = http.client.HTTPConnection(host, port, timeout=timeout_s)
    try:
        body = json.dumps(doc)
        conn.request(
            "POST",
            "/v1/schedule",
            body=body,
            headers={"Content-Type": "application/json"},
        )
        response = conn.getresponse()
        return response.status, json.loads(response.read())
    finally:
        conn.close()


def http_get(
    host: str, port: int, path: str, timeout_s: float = 30.0
) -> tuple[int, bytes]:
    conn = http.client.HTTPConnection(host, port, timeout=timeout_s)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        return response.status, response.read()
    finally:
        conn.close()
