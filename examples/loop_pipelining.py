#!/usr/bin/env python
"""Loop scheduling: Figure 3's partial-products kernel and beyond.

Shows the paper's §5.2 point: the block-optimal schedule (5 cycles per
iteration standalone) is *worse* in steady state (7 cycles/iteration) than a
schedule that looks one cycle slower (6 standalone, 6 steady-state) — and the
anticipatory single-block-loop algorithm finds the right one.  Also runs the
iterative modulo scheduler as the software-pipelining complement (§2.4) and
sweeps the hardware window to show how lookahead interacts with the choice.

Run:  python examples/loop_pipelining.py
"""

from repro import (
    paper_machine,
    schedule_single_block_loop,
    simulate_loop_order,
    simulated_initiation_interval,
)
from repro.analysis import format_table
from repro.schedulers import modulo_schedule, recurrence_mii, resource_mii
from repro.sim import in_order_offsets, periodic_initiation_interval
from repro.workloads import (
    FIG3_SCHEDULE1,
    FIG3_SCHEDULE2,
    dot_product_loop,
    figure3_loop,
)


def main() -> None:
    loop = figure3_loop()
    m1 = paper_machine(1)
    print("Figure 3 loop body:", loop.nodes)
    print("recurrence bound (RecMII):", recurrence_mii(loop), "cycles/iteration")

    rows = []
    for name, order in (("Schedule 1", FIG3_SCHEDULE1), ("Schedule 2", FIG3_SCHEDULE2)):
        one = simulate_loop_order(loop, order, 1, m1).makespan
        off = in_order_offsets(loop, order, m1)
        ii = periodic_initiation_interval(loop, off, m1)
        rows.append([name, " ".join(order), one, ii])
    print()
    print(
        format_table(
            ["schedule", "order", "1-iteration cycles", "steady-state II"],
            rows,
            title="paper Figure 3 (expected: 5/7 and 6/6)",
        )
    )

    res = schedule_single_block_loop(loop, m1)
    print(
        f"\nanticipatory loop scheduling picks: {' '.join(res.order)} "
        f"(via the {res.best.kind} transform on {res.best.pivot})"
    )

    kernel = modulo_schedule(loop, m1)
    print(
        f"modulo scheduling (software pipelining): II={kernel.initiation_interval}, "
        f"kernel offsets={kernel.offsets}"
    )
    print(
        "ResMII =", resource_mii(loop, m1),
        " RecMII =", recurrence_mii(loop),
    )

    # Window interaction: hardware lookahead partially rescues the
    # block-optimal schedule by filling its trailing idle slots with the
    # next iteration's instructions.
    rows = []
    for w in (1, 2, 4, 8):
        mw = paper_machine(w)
        rows.append(
            [
                w,
                simulated_initiation_interval(loop, FIG3_SCHEDULE1, mw),
                simulated_initiation_interval(loop, FIG3_SCHEDULE2, mw),
            ]
        )
    print()
    print(
        format_table(
            ["window W", "Schedule 1 II", "Schedule 2 II"],
            rows,
            title="steady-state cycles/iteration under hardware lookahead",
        )
    )

    # The same machinery on the dot-product kernel.
    dot = dot_product_loop()
    res = schedule_single_block_loop(dot, paper_machine(2))
    ii = simulated_initiation_interval(dot, res.order, paper_machine(2))
    print(
        f"\ndot-product kernel: anticipatory order {' '.join(res.order)}, "
        f"simulated II = {ii} (ResMII {resource_mii(dot, paper_machine(2))}, "
        f"RecMII {recurrence_mii(dot)})"
    )


if __name__ == "__main__":
    main()
