"""Differential fault-injection fuzzing of the scheduler zoo.

Each fuzz *cell* is one (trace seed, scheduler, fault plan) triple: the
scheduler compiles the trace under clean conditions, then the emitted block
orders are executed on the window simulator with the fault plan injected
(:mod:`repro.robust.faults`).  Every cell is held to the invariants the
paper's safety argument promises:

- **compile-time legality** — emitted orders are per-block permutations
  respecting intra-block dependences, and their windowed execution is a
  legal schedule (:func:`~repro.analysis.verify.verify_scheduler_output`);
- **simulation consistency** — the issue order is a permutation and the
  stall-attribution breakdown sums exactly to the reported stall cycles
  (:func:`~repro.analysis.verify.check_sim_result`);
- **makespan sanity** — every completed execution fits between the
  dependence-graph critical path and a generous serialization bound, and
  *slowdown-only* faults (extra latency, shrunken windows, forced
  mispredicts) never beat the clean makespan;
- **fault detection** — corrupted streams are rejected (never executed)
  and injected deadlocks surface as diagnosed
  :class:`~repro.sim.window.SimulationDeadlock`s, not hangs;
- **differential optimality** — in the rank regime (single FU, unit exec,
  0/1 latencies) the anticipatory pipeline is never beaten by any other
  safe scheduler in the zoo (§4.1);
- **guarded degradation** — :class:`~repro.robust.guard.GuardedScheduler`
  run under each killing fault returns a verified fallback rather than an
  error or an unverified order.

Everything is seeded, so a passing (seed budget, corpus) pair passes
forever — the CI ``chaos-smoke`` step runs a fixed budget and fails on the
first violation.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from ..analysis.verify import OutputError, check_sim_result, verify_scheduler_output
from ..core.lookahead import algorithm_lookahead, local_block_orders
from ..ir.basicblock import Trace
from ..machine.model import MachineModel
from ..machine.presets import paper_machine
from ..obs import recorder as obs
from ..schedulers import (
    block_orders_with_priority,
    critical_path_priority,
    source_order_priority,
)
from ..sim.window import SimulationDeadlock, simulate_trace
from ..workloads.traces import random_trace
from .faults import FaultPlan, default_fault_plans, injection
from .guard import GuardedScheduler

SchedulerFn = Callable[[Trace, MachineModel], list[list[str]]]


def _anticipatory(trace: Trace, machine: MachineModel) -> list[list[str]]:
    return algorithm_lookahead(trace, machine).block_orders


def _local_rank(trace: Trace, machine: MachineModel) -> list[list[str]]:
    return local_block_orders(trace, machine)


def _critical_path(trace: Trace, machine: MachineModel) -> list[list[str]]:
    return block_orders_with_priority(trace, critical_path_priority, machine)


def _source_order(trace: Trace, machine: MachineModel) -> list[list[str]]:
    return block_orders_with_priority(trace, source_order_priority, machine)


#: The scheduler-zoo members every fault plan is run against.
SCHEDULERS: dict[str, SchedulerFn] = {
    "anticipatory": _anticipatory,
    "local_rank": _local_rank,
    "critical_path": _critical_path,
    "source_order": _source_order,
}

#: Cell outcomes: ``ok`` — executed, all invariants held; ``detected`` —
#: the fault was caught as designed (rejected stream, diagnosed injected
#: deadlock); ``degraded`` — the guarded pipeline fell back (verified);
#: ``violation`` — an invariant broke.
CELL_STATUSES = ("ok", "detected", "degraded", "violation")


@dataclass
class FuzzCell:
    """Outcome of one scheduler×fault execution."""

    seed: int
    scheduler: str
    fault: str
    status: str
    detail: str = ""
    clean_makespan: int | None = None
    faulted_makespan: int | None = None

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "scheduler": self.scheduler,
            "fault": self.fault,
            "status": self.status,
            "detail": self.detail,
            "clean_makespan": self.clean_makespan,
            "faulted_makespan": self.faulted_makespan,
        }


@dataclass
class FuzzReport:
    """Aggregated fuzz outcome; ``ok`` iff no cell violated an invariant."""

    cells: list[FuzzCell] = field(default_factory=list)
    seeds: int = 0
    elapsed_s: float = 0.0
    stopped_early: bool = False

    @property
    def num_cells(self) -> int:
        return len(self.cells)

    @property
    def violations(self) -> list[FuzzCell]:
        return [c for c in self.cells if c.status == "violation"]

    @property
    def ok(self) -> bool:
        return not self.violations

    def status_counts(self) -> dict[str, int]:
        out = {status: 0 for status in CELL_STATUSES}
        for c in self.cells:
            out[c.status] += 1
        return out

    def by_fault(self) -> dict[str, dict[str, int]]:
        """Per fault-plan name: status → cell count."""
        out: dict[str, dict[str, int]] = {}
        for c in self.cells:
            row = out.setdefault(c.fault, {s: 0 for s in CELL_STATUSES})
            row[c.status] += 1
        return out

    def summary(self) -> str:
        from ..analysis.report import format_table

        rows = [
            [fault] + [counts[s] for s in CELL_STATUSES]
            for fault, counts in sorted(self.by_fault().items())
        ]
        totals = self.status_counts()
        rows.append(["TOTAL"] + [totals[s] for s in CELL_STATUSES])
        table = format_table(
            ["fault plan", *CELL_STATUSES],
            rows,
            title=(
                f"fault-injection fuzz: {self.num_cells} cells, "
                f"{self.seeds} seeds, {self.elapsed_s:.1f}s"
                + (" (budget hit)" if self.stopped_early else "")
            ),
        )
        if self.violations:
            lines = [table, "", "violations:"]
            lines += [
                f"  seed {c.seed} {c.scheduler} × {c.fault}: {c.detail}"
                for c in self.violations
            ]
            return "\n".join(lines)
        return table

    def to_dict(self) -> dict:
        return {
            "seeds": self.seeds,
            "num_cells": self.num_cells,
            "elapsed_s": self.elapsed_s,
            "stopped_early": self.stopped_early,
            "ok": self.ok,
            "status_counts": self.status_counts(),
            "by_fault": self.by_fault(),
            "violations": [c.to_dict() for c in self.violations],
        }


def _is_rank_regime(trace: Trace, machine: MachineModel) -> bool:
    """True in the regime where Algorithm Lookahead is provably optimal
    (§4.1): single FU, unit execution times, 0/1 latencies."""
    g = trace.graph
    return (
        machine.is_single_unit
        and machine.issue_width in (None, 1)
        and all(g.exec_time(n) == 1 for n in g.nodes)
        and all(lat in (0, 1) for _, _, lat in g.edges())
    )


def _serial_bound(trace: Trace, plan: FaultPlan) -> int:
    """A generous sound upper bound on any greedy windowed makespan under
    ``plan`` (doubled for slack; violations indicate runaway time, not a
    tight-schedule miss)."""
    g = trace.graph
    total = sum(g.exec_time(n) for n in g.nodes)
    total += sum(lat for _, _, lat in g.edges())
    total += g.num_edges() * plan.latency_jitter
    total += trace.num_blocks * plan.mispredict_penalty
    return 2 * (total + len(g.nodes) + 1)


def _check_faulted_cell(
    cell: FuzzCell,
    trace: Trace,
    orders: list[list[str]],
    machine: MachineModel,
    plan: FaultPlan,
) -> None:
    """Execute one scheduler's orders under ``plan`` and classify the cell
    (mutating ``cell.status``/``detail``/``faulted_makespan``)."""
    try:
        with injection(plan):
            sim = simulate_trace(
                trace,
                orders,
                machine,
                collect_trace=True,
                trace_label=f"fuzz:{cell.scheduler}:{plan.name}",
            )
    except ValueError as exc:
        if plan.corrupts_stream and "permutation" in str(exc):
            cell.status = "detected"
            cell.detail = f"corrupt stream rejected: {exc}"
        else:
            cell.status = "violation"
            cell.detail = f"unexpected ValueError: {exc}"
        return
    except SimulationDeadlock as exc:
        if plan.deadlock_after is not None and exc.injected:
            missing = [
                name
                for name, value in (
                    ("node", exc.node),
                    ("window", exc.window),
                )
                if value is None
            ]
            if missing:
                cell.status = "violation"
                cell.detail = (
                    f"injected deadlock lacks diagnostics {missing}: {exc}"
                )
            else:
                cell.status = "detected"
                cell.detail = f"injected deadlock diagnosed: {exc}"
        else:
            cell.status = "violation"
            cell.detail = f"unexpected deadlock: {exc}"
        return
    except Exception as exc:  # noqa: BLE001 - fuzz must classify anything
        cell.status = "violation"
        cell.detail = f"unexpected {type(exc).__name__}: {exc}"
        return

    cell.faulted_makespan = sim.makespan
    if plan.corrupts_stream or plan.deadlock_after is not None:
        cell.status = "violation"
        cell.detail = (
            f"fault {plan.name!r} should have been detected but the "
            f"simulation completed (makespan {sim.makespan})"
        )
        return
    try:
        check_sim_result(trace.graph, sim)
    except OutputError as exc:
        cell.status = "violation"
        cell.detail = f"sim-consistency: {exc}"
        return
    lower = trace.graph.critical_path_length()
    upper = _serial_bound(trace, plan)
    if not lower <= sim.makespan <= upper:
        cell.status = "violation"
        cell.detail = (
            f"makespan {sim.makespan} outside sane bounds "
            f"[{lower}, {upper}]"
        )
        return
    if (
        plan.slows_only
        and cell.clean_makespan is not None
        and sim.makespan < cell.clean_makespan
    ):
        cell.status = "violation"
        cell.detail = (
            f"slowdown-only fault improved makespan: "
            f"{sim.makespan} < clean {cell.clean_makespan}"
        )
        return
    cell.status = "ok"


def _guarded_cell(
    seed: int,
    trace: Trace,
    machine: MachineModel,
    plan: FaultPlan,
) -> FuzzCell:
    """Run the guarded pipeline with ``plan`` injected during both
    scheduling and verification; it must come back verified, degrading
    (with a counted reason) whenever the plan kills verification."""
    cell = FuzzCell(
        seed=seed, scheduler="guarded", fault=plan.name, status="ok"
    )
    guard = GuardedScheduler(machine=machine)
    try:
        with injection(plan):
            result = guard.schedule(trace)
    except Exception as exc:  # noqa: BLE001 - fuzz must classify anything
        cell.status = "violation"
        cell.detail = f"guarded pipeline raised {type(exc).__name__}: {exc}"
        return cell
    try:
        verify_scheduler_output(trace, result.block_orders, machine)
    except OutputError as exc:
        cell.status = "violation"
        cell.detail = f"guarded output not legal under clean re-check: {exc}"
        return cell
    kills_verification = plan.corrupts_stream or plan.deadlock_after is not None
    if kills_verification and result.source != "fallback":
        cell.status = "violation"
        cell.detail = (
            f"fault {plan.name!r} kills verification but the guard "
            f"returned the primary path"
        )
    elif result.source == "fallback":
        cell.status = "degraded"
        cell.detail = f"fell back: {result.degraded.reason}"
    return cell


def run_fuzz(
    seeds: int = 8,
    base_seed: int = 0,
    num_blocks: int = 3,
    block_size: tuple[int, int] = (4, 7),
    schedulers: Mapping[str, SchedulerFn] | None = None,
    plans: Sequence[FaultPlan] | None = None,
    machine: MachineModel | None = None,
    include_guarded: bool = True,
    time_budget_s: float | None = None,
) -> FuzzReport:
    """Run the differential fuzz matrix and return a :class:`FuzzReport`.

    ``seeds`` traces are generated (windows cycling over 2/3/4/6 when no
    explicit ``machine`` is given); each is compiled by every scheduler in
    ``schedulers`` (default: the zoo in :data:`SCHEDULERS`) and executed
    under every plan in ``plans`` (default:
    :func:`~repro.robust.faults.default_fault_plans` reseeded per trace).
    ``include_guarded`` adds one :class:`GuardedScheduler` cell per fault
    plan.  ``time_budget_s`` stops the sweep early (the report notes it);
    cells already produced are still checked.
    """
    scheduler_map = dict(schedulers) if schedulers is not None else dict(SCHEDULERS)
    report = FuzzReport(seeds=0)
    started = _time.perf_counter()
    windows = (2, 3, 4, 6)

    with obs.span("fuzz", seeds=seeds):
        for s in range(seeds):
            if (
                time_budget_s is not None
                and _time.perf_counter() - started > time_budget_s
            ):
                report.stopped_early = True
                break
            trace_seed = base_seed + s
            m = machine or paper_machine(windows[s % len(windows)])
            trace = random_trace(
                num_blocks,
                block_size,
                edge_probability=0.3,
                cross_probability=0.1,
                seed=trace_seed,
            )
            cell_plans = (
                list(plans)
                if plans is not None
                else default_fault_plans(seed=trace_seed)
            )
            rank_regime = _is_rank_regime(trace, m)

            compiled: dict[str, list[list[str]] | None] = {}
            clean: dict[str, int | None] = {}
            for name, fn in scheduler_map.items():
                cell = FuzzCell(
                    seed=trace_seed, scheduler=name, fault="compile",
                    status="ok",
                )
                try:
                    orders = fn(trace, m)
                    verify_scheduler_output(trace, orders, m)
                    sim = simulate_trace(
                        trace, orders, m, collect_trace=True,
                        trace_label=f"fuzz:{name}:clean",
                    )
                    check_sim_result(trace.graph, sim)
                    compiled[name] = orders
                    clean[name] = cell.clean_makespan = sim.makespan
                except Exception as exc:  # noqa: BLE001
                    compiled[name] = None
                    clean[name] = None
                    cell.status = "violation"
                    cell.detail = (
                        f"clean compile/verify failed: "
                        f"{type(exc).__name__}: {exc}"
                    )
                report.cells.append(cell)

            # Differential check: §4.1 optimality in the rank regime.
            if (
                rank_regime
                and "anticipatory" in clean
                and clean["anticipatory"] is not None
            ):
                best = clean["anticipatory"]
                for name, makespan in clean.items():
                    if makespan is not None and makespan < best:
                        report.cells.append(
                            FuzzCell(
                                seed=trace_seed,
                                scheduler="anticipatory",
                                fault="differential",
                                status="violation",
                                detail=(
                                    f"{name} beat anticipatory in the rank "
                                    f"regime: {makespan} < {best}"
                                ),
                                clean_makespan=best,
                                faulted_makespan=makespan,
                            )
                        )

            for plan in cell_plans:
                for name, orders in compiled.items():
                    if orders is None:
                        continue  # compile violation already recorded
                    cell = FuzzCell(
                        seed=trace_seed,
                        scheduler=name,
                        fault=plan.name,
                        status="ok",
                        clean_makespan=clean[name],
                    )
                    _check_faulted_cell(cell, trace, orders, m, plan)
                    report.cells.append(cell)
                if include_guarded and not plan.is_noop:
                    report.cells.append(_guarded_cell(trace_seed, trace, m, plan))
            report.seeds += 1

    report.elapsed_s = _time.perf_counter() - started
    obs.count("fuzz.cells", report.num_cells)
    obs.count("fuzz.violations", len(report.violations))
    return report
