"""Hardware lookahead simulation substrate."""

from ..obs.events import SimEvent, SimTrace
from .branch import BranchModel, PredictionStudy, run_with_prediction
from .cfg_runner import CFGEvaluation, PathResult, enumerate_paths, evaluate_cfg
from .explain import Stall, StallReport, event_log, explain_stalls
from .loop_runner import (
    in_order_offsets,
    iteration_completions,
    loop_stream,
    periodic_initiation_interval,
    simulate_loop_order,
    simulate_loop_trace_orders,
    simulated_initiation_interval,
)
from .window import SimResult, SimulationDeadlock, simulate_trace, simulate_window

__all__ = [
    "BranchModel",
    "CFGEvaluation",
    "PathResult",
    "PredictionStudy",
    "SimEvent",
    "SimResult",
    "SimTrace",
    "SimulationDeadlock",
    "Stall",
    "StallReport",
    "enumerate_paths",
    "evaluate_cfg",
    "event_log",
    "explain_stalls",
    "in_order_offsets",
    "iteration_completions",
    "loop_stream",
    "periodic_initiation_interval",
    "run_with_prediction",
    "simulate_loop_order",
    "simulate_loop_trace_orders",
    "simulate_trace",
    "simulate_window",
    "simulated_initiation_interval",
]
