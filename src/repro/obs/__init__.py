"""Observability: pipeline spans, counters, cycle-level simulator event
traces, derived hardware-counter metrics, schema-versioned run reports,
exporters (JSONL, Chrome trace-event / Perfetto), the cross-process
telemetry pipeline (trace contexts + worker spools), a sampling profiler
with flamegraph output, and Prometheus text exposition.

See ``docs/OBSERVABILITY.md`` for the event schema and usage guide.
"""

from .events import EVENT_KINDS, STALL_KINDS, SimEvent, SimTrace
from .metrics import (
    STALL_CAUSES,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    classify_stall,
    sim_metrics,
    stall_attribution,
)
from .runreport import (
    RUNREPORT_SCHEMA_VERSION,
    Delta,
    ReportDiff,
    RunReport,
    collect_provenance,
    compare_reports,
    flatten_metrics,
    is_timing_path,
)
from .export import (
    chrome_trace_events,
    chrome_trace_path,
    read_jsonl,
    recorder_records,
    sim_traces_from_records,
    write_chrome_trace,
    write_jsonl,
)
from .recorder import (
    SpanRecord,
    TraceRecorder,
    count,
    get_recorder,
    publish_sim_trace,
    recording,
    set_recorder,
    sim_events_enabled,
    span,
)
from .pipeline import (
    CellTelemetry,
    SpoolMerge,
    TraceContext,
    clear_spools,
    current_context,
    merge_spools,
    read_spools,
    spool_path,
    spooled_cell,
)
from .profiler import (
    SamplingProfiler,
    collapsed_stacks,
    flamegraph_html,
    parse_collapsed,
    profile,
    profile_overhead,
    write_flamegraph,
)
from .expo import prometheus_text, top_snapshot, watch_spools

__all__ = [
    "CellTelemetry",
    "SamplingProfiler",
    "SpoolMerge",
    "TraceContext",
    "clear_spools",
    "collapsed_stacks",
    "current_context",
    "flamegraph_html",
    "merge_spools",
    "parse_collapsed",
    "profile",
    "profile_overhead",
    "prometheus_text",
    "read_spools",
    "spool_path",
    "spooled_cell",
    "top_snapshot",
    "watch_spools",
    "write_flamegraph",
    "Counter",
    "Delta",
    "EVENT_KINDS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RUNREPORT_SCHEMA_VERSION",
    "ReportDiff",
    "RunReport",
    "STALL_CAUSES",
    "STALL_KINDS",
    "SimEvent",
    "SimTrace",
    "SpanRecord",
    "TraceRecorder",
    "classify_stall",
    "collect_provenance",
    "compare_reports",
    "flatten_metrics",
    "is_timing_path",
    "sim_metrics",
    "stall_attribution",
    "chrome_trace_events",
    "chrome_trace_path",
    "count",
    "get_recorder",
    "publish_sim_trace",
    "read_jsonl",
    "recorder_records",
    "recording",
    "set_recorder",
    "sim_events_enabled",
    "sim_traces_from_records",
    "span",
    "write_chrome_trace",
    "write_jsonl",
]
