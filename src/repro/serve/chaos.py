"""Serve-tier chaos harness: seeded fault plans against a live daemon —
``repro serve-chaos``.

:mod:`repro.robust.faults` injects adversity *inside* the simulator; this
module injects it around the **serving** path, where the failure modes are
operational: workers that die mid-compute (``os._exit``), workers that
hang past the pool's stall timeout, schedulers that run long enough to
blow the guard's budget, clients that disconnect mid-frame or send
malformed / oversized frames, a cache store corrupted on disk, and
request bursts that exceed the admission queue.

A :class:`ChaosPlan` is a frozen, seeded description of that adversity,
installed via the same module-global registry pattern as
:func:`repro.robust.faults.injection` — the daemon's forked pool workers
inherit the installed plan, and every per-request action is drawn from a
CRC-seeded RNG keyed by the request id, so a plan replays bit-identically
and the harness can predict which request suffers what.

:func:`run_chaos` boots a real daemon in-process, drives a seeded mix of
clean and chaotic traffic through it, and asserts the serving tier's core
overload invariant:

    **every accepted request receives exactly one structured response**
    (ok, degraded, or error), shed requests get ``overloaded`` with retry
    guidance, degraded responses carry a verified-legal schedule and are
    never cached, and the daemon serves clean requests after the plan
    ends — no wedge, no leaked workers.

The outcome is a :class:`~repro.obs.runreport.RunReport` whose
``invariants`` block is deterministic booleans (exact-match gated in CI
against ``benchmarks/baselines/serve_chaos.json``); the observed fault
mix — how many crashes, sheds, degradations actually landed — is
timing-dependent and therefore recorded in provenance, which the gate
does not compare.
"""

from __future__ import annotations

import argparse
import json
import random
import socket
import sys
import tempfile
import time
import zlib
from contextlib import contextmanager
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Iterator

#: Worker-side actions a plan can assign to one request.
WORKER_ACTIONS = ("exit", "hang", "slow")

#: Client-side actions (applied by the harness's drive loop, not the
#: worker): break the connection mid-frame, send a non-JSON line, send a
#: line larger than the transport limit.
CLIENT_ACTIONS = ("disconnect", "malformed", "oversized")


@dataclass(frozen=True)
class ChaosPlan:
    """A reproducible description of serve-tier adversity.

    Worker rates are per-request probabilities drawn deterministically
    from ``seed`` and the request id; a default-constructed plan injects
    nothing.  ``hang_s`` must exceed the service's pool stall timeout (so
    a hang is settled by the pool, not by finishing early) and ``slow_s``
    must exceed the worker guard's time budget but stay under the pool
    timeout (so a slow scheduler degrades instead of being declared
    hung).
    """

    name: str = "noop"
    seed: int = 0
    #: Probability one compute calls ``os._exit`` mid-request (needs
    #: ``jobs >= 2``: with in-process compute this would kill the daemon).
    crash_rate: float = 0.0
    #: Probability one compute hangs hard (pool stall timeout settles it;
    #: needs ``jobs >= 2`` for the same reason).
    hang_rate: float = 0.0
    hang_s: float = 30.0
    #: Probability the primary scheduler sleeps ``slow_s`` inside the
    #: guard — degrading to the verified fallback.
    slow_rate: float = 0.0
    slow_s: float = 0.4

    def __post_init__(self) -> None:
        for field_name in ("crash_rate", "hang_rate", "slow_rate"):
            value = getattr(self, field_name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{field_name} must be in [0, 1], got {value}")
        if self.hang_s <= 0 or self.slow_s <= 0:
            raise ValueError("hang_s and slow_s must be > 0")

    @property
    def is_noop(self) -> bool:
        return (
            self.crash_rate == 0.0
            and self.hang_rate == 0.0
            and self.slow_rate == 0.0
        )

    def rng(self, tag: str, salt: int = 0) -> random.Random:
        """A deterministic RNG for one injection site (CRC-mixed so it is
        independent of ``PYTHONHASHSEED``, same derivation as
        :meth:`repro.robust.faults.FaultPlan.rng`)."""
        mix = zlib.crc32(tag.encode("utf-8"))
        return random.Random((self.seed * 1000003 + salt) ^ mix)

    def worker_action(self, request_id: object) -> str | None:
        """The worker-side action this plan assigns to ``request_id`` —
        one of :data:`WORKER_ACTIONS` or ``None``.  Pure function of
        (plan, id): the harness predicts with the same call the worker
        obeys."""
        if not isinstance(request_id, str) or self.is_noop:
            return None
        draw = self.rng(
            "worker.action", zlib.crc32(request_id.encode("utf-8"))
        ).random()
        if draw < self.crash_rate:
            return "exit"
        draw -= self.crash_rate
        if draw < self.hang_rate:
            return "hang"
        draw -= self.hang_rate
        if draw < self.slow_rate:
            return "slow"
        return None

    def for_jobs(self, jobs: int) -> "ChaosPlan":
        """The plan adjusted for the pool size: with in-process compute
        (``jobs < 2``) the process-killing actions are disabled."""
        if jobs >= 2:
            return self
        return replace(self, crash_rate=0.0, hang_rate=0.0)

    def reseeded(self, seed: int) -> "ChaosPlan":
        return replace(self, seed=seed)


#: The standard chaos mix the CI gate runs (crash + hang + slow together).
def default_chaos_plan(seed: int = 0) -> ChaosPlan:
    return ChaosPlan(
        name="storm",
        seed=seed,
        crash_rate=0.10,
        hang_rate=0.05,
        slow_rate=0.12,
    )


# ---------------------------------------------------------------------------
# Active-plan registry (mirrors repro.robust.faults: module-global slot,
# None by default, installed via context manager; forked pool workers
# inherit whatever is installed at fork time).

_active: ChaosPlan | None = None


def active_plan() -> ChaosPlan | None:
    """The installed plan, or ``None`` (chaos off — the hot path)."""
    return _active


def set_plan(plan: ChaosPlan | None) -> ChaosPlan | None:
    """Install ``plan`` globally (``None``/no-op turns chaos off); returns
    the previous plan."""
    global _active
    previous = _active
    _active = None if plan is None or plan.is_noop else plan
    return previous


@contextmanager
def injection(plan: ChaosPlan) -> Iterator[ChaosPlan]:
    """Install ``plan`` for the duration of the block."""
    previous = set_plan(plan)
    try:
        yield plan
    finally:
        set_plan(previous)


# ---------------------------------------------------------------------------
# The harness.


class ChaosFailure(AssertionError):
    """One chaos invariant did not hold."""


def _chaos_doc(i: int, seed: int, request_id: str, **extra) -> dict:
    """One structurally distinct request document (always a cache miss
    within a run, so worker-side chaos actually reaches the worker)."""
    from ..machine.presets import PAPER_CORE, paper_machine
    from ..workloads.traces import random_trace
    from .protocol import SCHEDULER_NAMES, ScheduleRequest

    machine = (PAPER_CORE, paper_machine(2))[i % 2]
    trace = random_trace(
        num_blocks=2 + i % 2,
        block_size=(3, 5),
        cross_probability=0.15,
        latencies=(0, 1, 2),
        seed=seed * 100_003 + i,
    )
    doc = ScheduleRequest(
        trace=trace,
        machine=machine,
        scheduler=SCHEDULER_NAMES[i % len(SCHEDULER_NAMES)],
        id=request_id,
    ).to_dict()
    doc.update(extra)
    return doc


def _raw_unix(socket_path, payload: bytes, read_lines: int) -> list[bytes]:
    """Write raw bytes to the unix transport; read up to ``read_lines``
    response lines (stops early on EOF)."""
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sock.settimeout(30.0)
    lines: list[bytes] = []
    try:
        sock.connect(str(socket_path))
        sock.sendall(payload)
        fh = sock.makefile("rb")
        for _ in range(read_lines):
            line = fh.readline()
            if not line:
                break
            lines.append(line)
    finally:
        sock.close()
    return lines


def _leaked_workers(grace_s: float = 5.0) -> int:
    """Live child processes after a grace period (the pool tears its
    workers down per batch; anything that survives the grace is leaked)."""
    import multiprocessing

    deadline = time.monotonic() + grace_s
    while time.monotonic() < deadline:
        children = [
            p for p in multiprocessing.active_children() if p.is_alive()
        ]
        if not children:
            return 0
        time.sleep(0.05)
    return len([p for p in multiprocessing.active_children() if p.is_alive()])


def run_chaos(
    requests: int = 36,
    burst: int = 48,
    queue_capacity: int = 8,
    jobs: int = 2,
    seed: int = 0,
    report_path: str | None = None,
    workdir: str | None = None,
    plan: ChaosPlan | None = None,
):
    """Drive a seeded chaos plan against a live daemon; raises
    :class:`ChaosFailure` on any violated invariant, returns the
    (optionally written) RunReport otherwise."""
    from concurrent.futures import ThreadPoolExecutor

    from ..analysis.verify import verify_scheduler_output
    from ..obs.runreport import RunReport, collect_provenance
    from .admission import AdmissionConfig
    from .client import ScheduleClient
    from .daemon import ScheduleServer, ServerHandle
    from .protocol import machine_from_dict, trace_from_dict
    from .service import ScheduleService

    plan = (plan or default_chaos_plan(seed)).for_jobs(jobs)
    #: Timing ladder: guard budget < slow_s < pool timeout < hang_s, so a
    #: slow scheduler degrades, a hung worker is settled by the pool, and
    #: nothing waits on the hang itself.
    guard_budget_s = 0.15
    pool_timeout_s = 2.0
    breaker_cooldown_s = 0.3
    violations: list[str] = []
    observed = {
        "crash_errors": 0,
        "hang_errors": 0,
        "degraded": 0,
        "shed_seen": 0,
        "deadline_exceeded_seen": 0,
        "breaker_open_seen": 0,
        "unexpected_exceptions": 0,
    }
    #: Well-formed schedule requests clients actually delivered to the
    #: daemon (frame-level chaos — garbage, oversized, half-frames — does
    #: not count: those never reach admission).
    submitted = 0

    t_start = time.perf_counter()
    with tempfile.TemporaryDirectory(dir=workdir) as tmp:
        root = Path(tmp)
        cache_path = root / "cache.jsonl"
        service = ScheduleService(
            jobs=jobs,
            cache_size=4 * (requests + burst) + 16,
            cache_path=cache_path,
            spool_dir=root / "spool",
            timeout_s=pool_timeout_s,
            retries=0,
            guard_budget_s=guard_budget_s,
            breaker_threshold=3,
            breaker_cooldown_s=breaker_cooldown_s,
        )
        server = ScheduleServer(
            service,
            socket_path=root / "serve.sock",
            port=0,
            admission=AdmissionConfig(
                queue_capacity=queue_capacity,
                inflight_limit=max(4 * burst, 64),
                retry_after_s=0.5,
            ),
            max_line=256 * 1024,
        )

        with ServerHandle(server):
            admission = server.admission
            with injection(plan):
                # -- phase 1: mixed clean/chaotic pipelined traffic --------
                chaos_docs = [
                    _chaos_doc(i, seed, f"c{i}") for i in range(requests)
                ]
                degraded_responses: list[tuple[dict, dict]] = []
                with ScheduleClient(server.socket_path) as client:
                    for doc in chaos_docs:
                        rid = doc["id"]
                        action = plan.worker_action(rid)
                        submitted += 1
                        try:
                            response = client.call(doc)
                        except (ConnectionError, OSError) as exc:
                            violations.append(
                                f"request {rid!r} (action {action}) got no "
                                f"response: {exc}"
                            )
                            observed["unexpected_exceptions"] += 1
                            break
                        if not isinstance(response, dict) or (
                            "ok" not in response
                        ):
                            violations.append(
                                f"request {rid!r} answered a non-structured "
                                f"document: {response!r}"
                            )
                            continue
                        code = response.get("code")
                        if response.get("ok"):
                            if response.get("degraded"):
                                observed["degraded"] += 1
                                degraded_responses.append((doc, response))
                        elif code == "overloaded":
                            observed["shed_seen"] += 1
                        elif code == "breaker_open":
                            observed["breaker_open_seen"] += 1
                        elif action == "exit":
                            observed["crash_errors"] += 1
                        elif action == "hang":
                            observed["hang_errors"] += 1
                        elif code not in (
                            "scheduling_failed",
                            "deadline_exceeded",
                        ):
                            violations.append(
                                f"request {rid!r} (action {action}) failed "
                                f"unexpectedly: {response.get('error')!r} "
                                f"(code {code!r})"
                            )

                # -- phase 2: frame-level client chaos ---------------------
                # Malformed line between two valid pipelined requests: the
                # garbage gets its own error, neither neighbour is harmed.
                # The neighbours get chaos-free ids — this phase tests
                # frame handling, not worker adversity.
                def _clean_id(prefix: str) -> str:
                    return next(
                        f"{prefix}{k}"
                        for k in range(10_000)
                        if plan.worker_action(f"{prefix}{k}") is None
                    )

                good_a = _chaos_doc(requests + 1, seed, _clean_id("frame-a"))
                good_b = _chaos_doc(requests + 2, seed, _clean_id("frame-b"))
                payload = (
                    json.dumps(good_a).encode()
                    + b"\n{not json%%\n"
                    + json.dumps(good_b).encode()
                    + b"\n"
                )
                lines = _raw_unix(server.socket_path, payload, read_lines=3)
                submitted += 2  # good_a and good_b (the garbage line is not
                # a schedule request and never reaches admission)
                frames_ok = len(lines) == 3
                if frames_ok:
                    r_a, r_bad, r_b = (json.loads(line) for line in lines)
                    frames_ok = (
                        bool(r_a.get("ok"))
                        and not r_bad.get("ok")
                        and bool(r_b.get("ok"))
                    )
                if not frames_ok:
                    violations.append(
                        f"malformed frame poisoned the pipeline: "
                        f"{[line[:80] for line in lines]!r}"
                    )
                # Oversized frame: structured error, connection closed,
                # daemon alive.
                big = b"x" * (server.max_line + 1024) + b"\n"
                lines = _raw_unix(server.socket_path, big, read_lines=1)
                if not (
                    len(lines) == 1
                    and not json.loads(lines[0]).get("ok")
                ):
                    violations.append(
                        f"oversized frame not answered with a structured "
                        f"error: {lines!r}"
                    )
                # Disconnect mid-frame: no response owed, daemon alive.
                for k in range(2):
                    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                    sock.connect(str(server.socket_path))
                    sock.sendall(b'{"scheduler": "anticip')
                    sock.close()

                # -- phase 3: overload burst against a busy executor -------
                # Pin the batch executor with one guaranteed-slow request,
                # then fire `burst` concurrent requests at a queue of
                # capacity C: admission must answer every one (ok or shed)
                # and depth must never exceed C.
                blocker_id = next(
                    f"blocker-{k}"
                    for k in range(10_000)
                    if plan.worker_action(f"blocker-{k}")
                    in (("slow",) if jobs < 2 else ("hang", "slow"))
                )
                blocker = _chaos_doc(requests + 3, seed, blocker_id)
                burst_docs = [
                    _chaos_doc(requests + 10 + i, seed, f"burst-{i}")
                    for i in range(burst)
                ]
                # A slice of the burst carries a deadline too short to
                # survive queueing behind the blocker.
                for doc in burst_docs[: max(burst // 6, 1)]:
                    doc["deadline_ms"] = 1

                def fire(doc: dict) -> dict | None:
                    try:
                        with ScheduleClient(server.socket_path) as c:
                            return c.call(doc)
                    except (ConnectionError, OSError):
                        return None

                with ThreadPoolExecutor(max_workers=burst + 1) as pool:
                    blocker_future = pool.submit(fire, blocker)
                    time.sleep(0.05)  # let the blocker occupy the executor
                    burst_responses = list(pool.map(fire, burst_docs))
                    blocker_future.result()
                submitted += 1 + len(burst_docs)
                for doc, response in zip(burst_docs, burst_responses):
                    if response is None or "ok" not in response:
                        violations.append(
                            f"burst request {doc['id']!r} got no structured "
                            f"response: {response!r}"
                        )
                        observed["unexpected_exceptions"] += 1
                        continue
                    code = response.get("code")
                    if code == "overloaded":
                        observed["shed_seen"] += 1
                        if not response.get("retry_after_s"):
                            violations.append(
                                f"shed response for {doc['id']!r} carries "
                                f"no retry_after_s"
                            )
                    elif code == "deadline_exceeded":
                        observed["deadline_exceeded_seen"] += 1
                    elif code == "breaker_open":
                        observed["breaker_open_seen"] += 1
                    elif response.get("ok") and response.get("degraded"):
                        observed["degraded"] += 1
                        degraded_responses.append((doc, response))

                # -- phase 4: corrupt the cache store on disk --------------
                with cache_path.open("a") as fh:
                    fh.write('{"digest": "deadbeef", "entry"')  # torn line

            # -- plan cleared: recovery --------------------------------------
            # Degraded answers must be verified-legal and never cached.
            degraded_legal = True
            degraded_uncached = True
            for doc, response in degraded_responses:
                trace = trace_from_dict(doc["program"])
                machine = machine_from_dict(doc["machine"])
                try:
                    verify_scheduler_output(
                        trace, response["block_orders"], machine
                    )
                except Exception as exc:
                    degraded_legal = False
                    violations.append(
                        f"degraded schedule for {doc['id']!r} is illegal: "
                        f"{exc}"
                    )
                if service.cache.peek(response["digest"]) is not None:
                    degraded_uncached = False
                    violations.append(
                        f"degraded result for {doc['id']!r} was cached"
                    )

            # Every scheduler class must serve a clean, non-degraded miss
            # after the plan ends; open breakers get their half-open probe
            # (the cooldown is short) and must close.
            from .protocol import SCHEDULER_NAMES

            recovered = True
            time.sleep(breaker_cooldown_s + 0.05)
            with ScheduleClient(server.socket_path) as client:
                for j, scheduler in enumerate(SCHEDULER_NAMES):
                    ok = False
                    for attempt in range(25):
                        doc = _chaos_doc(
                            10_000 + 100 * j + attempt,
                            seed,
                            f"recover-{scheduler}-{attempt}",
                        )
                        doc["scheduler"] = scheduler
                        submitted += 1
                        response = client.call(doc)
                        if response.get("ok") and not response.get("degraded"):
                            ok = True
                            break
                        if response.get("code") == "breaker_open":
                            time.sleep(breaker_cooldown_s / 2)
                            continue
                        break  # any other failure is a real violation
                    if not ok:
                        recovered = False
                        violations.append(
                            f"no clean response for scheduler "
                            f"{scheduler!r} after the plan ended: "
                            f"{response!r}"
                        )
            breaker_states = {
                name: snap["state"]
                for name, snap in service.breakers.snapshot().items()
            }
            breakers_closed = all(
                state == "closed" for state in breaker_states.values()
            )
            if not breakers_closed:
                violations.append(
                    f"breakers not closed after recovery: {breaker_states}"
                )

            admission_snap = admission.snapshot()
            stats = service.stats()

        # -- post-shutdown checks ---------------------------------------------
        leaked = _leaked_workers()
        if leaked:
            violations.append(f"{leaked} leaked worker process(es)")
        # The corrupted store must not poison a reload, and compaction
        # must leave a loadable file.
        from .cache import ScheduleCache

        reloaded = ScheduleCache(capacity=64, path=cache_path)
        store_reload_ok = len(reloaded) > 0
        reloaded.compact()
        store_reload_ok = store_reload_ok and len(
            ScheduleCache(capacity=64, path=cache_path)
        ) == len(reloaded)
        if not store_reload_ok:
            violations.append(
                "cache store failed to reload/compact after corruption"
            )

    # -- invariants ------------------------------------------------------------
    accepted, shed = admission_snap["accepted"], admission_snap["shed_total"]
    queue_bounded = admission_snap["peak_depth"] <= queue_capacity
    if not queue_bounded:
        violations.append(
            f"queue depth peaked at {admission_snap['peak_depth']} "
            f"(capacity {queue_capacity})"
        )
    if shed != observed["shed_seen"]:
        violations.append(
            f"admission shed {shed} request(s) but clients saw "
            f"{observed['shed_seen']} overloaded response(s)"
        )
    if accepted + shed != submitted:
        violations.append(
            f"admission accounted {accepted} accepted + {shed} shed, but "
            f"clients delivered {submitted} request(s)"
        )
    invariants = {
        "one_response_per_accepted": int(
            observed["unexpected_exceptions"] == 0
        ),
        "accepted_plus_shed_equals_submitted": int(
            accepted + shed == submitted and submitted > 0
        ),
        "shed_matches_overloaded_responses": int(
            shed == observed["shed_seen"]
        ),
        "queue_depth_bounded": int(queue_bounded),
        "degraded_verified_legal": int(degraded_legal),
        "degraded_never_cached": int(degraded_uncached),
        "frame_chaos_contained": int(frames_ok),
        "recovered_clean": int(recovered),
        "breakers_closed": int(breakers_closed),
        "no_leaked_workers": int(leaked == 0),
        "store_survived_corruption": int(store_reload_ok),
    }
    if violations:
        raise ChaosFailure(
            f"{len(violations)} chaos invariant violation(s):\n  - "
            + "\n  - ".join(violations)
        )

    wall_s = time.perf_counter() - t_start
    report = RunReport(
        name="serve_chaos",
        metrics={
            "invariants": invariants,
            "chaos_wall_s": wall_s,
        },
        phases={"chaos": wall_s},
        provenance=collect_provenance(
            seed=seed,
            requests=requests,
            burst=burst,
            queue_capacity=queue_capacity,
            jobs=jobs,
            plan=plan.name,
            observed=dict(observed),
            admission={
                "accepted": accepted,
                "shed": shed,
                "peak_depth": admission_snap["peak_depth"],
                "brownouts": admission_snap["brownouts"],
            },
            service={
                "requests": stats["requests"],
                "errors": stats["errors"],
                "degraded": stats["degraded"],
                "deadline_exceeded": stats["deadline_exceeded"],
            },
        ),
    )
    if report_path:
        report.write(report_path)
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro serve-chaos",
        description=__doc__.split("\n\n")[0],
    )
    parser.add_argument("--requests", type=int, default=36,
                        help="chaotic pipelined requests (default 36)")
    parser.add_argument("--burst", type=int, default=48,
                        help="concurrent overload-burst requests (default 48)")
    parser.add_argument("--queue-capacity", type=int, default=8,
                        help="admission queue capacity under test (default 8)")
    parser.add_argument("--jobs", type=int, default=2,
                        help="service worker processes (default 2; crash/hang "
                             "chaos needs >= 2)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--report", default=None, metavar="PATH",
                        help="write the RunReport JSON here")
    parser.add_argument("--json", action="store_true",
                        help="print the RunReport to stdout")
    args = parser.parse_args(argv)
    try:
        report = run_chaos(
            requests=args.requests,
            burst=args.burst,
            queue_capacity=args.queue_capacity,
            jobs=args.jobs,
            seed=args.seed,
            report_path=args.report,
        )
    except ChaosFailure as exc:
        print(f"serve chaos FAILED: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        inv = report.metrics["invariants"]
        observed = report.provenance["observed"]
        print(
            "serve chaos OK: "
            f"{sum(inv.values())}/{len(inv)} invariants held "
            f"(shed {observed['shed_seen']}, "
            f"degraded {observed['degraded']}, "
            f"crash errors {observed['crash_errors']}, "
            f"{report.metrics['chaos_wall_s']:.2f}s)"
        )
    if args.report:
        print(f"report written to {args.report}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised by CI
    sys.exit(main())
