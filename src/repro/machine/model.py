"""Machine models: functional units, lookahead window, issue width.

The paper's core results assume a single functional unit with unit execution
times and 0/1 latencies, plus a hardware lookahead window of W instructions
(§2.3).  §4.2 generalizes heuristically to multiple (typed) functional units,
non-unit execution times and longer latencies.  :class:`MachineModel` captures
all of these knobs; schedulers and the simulator consume it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ir.depgraph import DependenceGraph
from ..ir.instruction import ANY


@dataclass(frozen=True)
class MachineModel:
    """A target machine description.

    Parameters
    ----------
    window_size:
        Hardware lookahead window W (number of contiguous dynamic-stream
        instructions the issue logic can inspect).  W = 1 means no lookahead:
        strictly in-order issue.
    fu_counts:
        Mapping functional-unit class -> number of units of that class.  An
        instruction of class ``c`` runs on a unit of class ``c``; instructions
        of class :data:`ANY` may run on any unit.  The default is one
        universal unit, the paper's core model.
    issue_width:
        Maximum number of instructions issued per cycle (across all units).
        ``None`` means limited only by free units.
    """

    window_size: int = 4
    fu_counts: dict[str, int] = field(default_factory=lambda: {ANY: 1})
    issue_width: int | None = None

    def __post_init__(self) -> None:
        if self.window_size < 1:
            raise ValueError(f"window_size must be >= 1, got {self.window_size}")
        if not self.fu_counts:
            raise ValueError("machine needs at least one functional unit")
        for cls, count in self.fu_counts.items():
            if count < 1:
                raise ValueError(f"fu class {cls!r} needs count >= 1, got {count}")
        if self.issue_width is not None and self.issue_width < 1:
            raise ValueError(f"issue_width must be >= 1, got {self.issue_width}")

    @property
    def total_units(self) -> int:
        return sum(self.fu_counts.values())

    @property
    def is_single_unit(self) -> bool:
        return self.total_units == 1

    def unit_names(self) -> list[tuple[str, int]]:
        """Stable list of ``(fu_class, index)`` identifiers for every unit."""
        out: list[tuple[str, int]] = []
        for cls in sorted(self.fu_counts):
            out.extend((cls, i) for i in range(self.fu_counts[cls]))
        return out

    def units_for(self, fu_class: str) -> list[tuple[str, int]]:
        """Units an instruction of ``fu_class`` may execute on.

        :data:`ANY` instructions run anywhere; typed instructions run on
        their own class or on :data:`ANY` (universal) units.
        """
        if fu_class == ANY:
            return self.unit_names()
        out = [(c, i) for (c, i) in self.unit_names() if c == fu_class or c == ANY]
        return out

    def can_execute(self, graph: DependenceGraph) -> bool:
        """True iff every node's fu class has at least one usable unit."""
        return all(self.units_for(graph.fu_class(n)) for n in graph.nodes)

    def with_window(self, window_size: int) -> "MachineModel":
        """A copy of this machine with a different lookahead window.

        Used by fault injection (window wobble, see
        :func:`repro.robust.faults.perturbed_machine`) and by sweeps that
        vary W over a fixed unit mix.
        """
        if window_size == self.window_size:
            return self
        return MachineModel(
            window_size=window_size,
            fu_counts=dict(self.fu_counts),
            issue_width=self.issue_width,
        )


def single_unit_machine(window_size: int = 4) -> MachineModel:
    """The paper's core machine: one universal FU, window W."""
    return MachineModel(window_size=window_size, fu_counts={ANY: 1})


def in_order_machine() -> MachineModel:
    """No lookahead at all (W = 1) — the degenerate comparison point."""
    return MachineModel(window_size=1, fu_counts={ANY: 1})
