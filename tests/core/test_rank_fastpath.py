"""The incremental rank engine and the closed-form backward schedule.

Two fast paths must be bit-identical to the from-scratch reference:

- :class:`repro.core.rank.RankEngine` — after any sequence of deadline
  perturbations (single-node, batched, infeasible, multi-unit, non-unit
  execution times) its rank map must equal ``compute_ranks`` on the same
  deadlines;
- the capacity-1/unit-exec closed form inside ``_node_rank`` — placements in
  nonincreasing rank order are strictly decreasing, so latest-fit needs no
  search structure; fuzzed against the general :class:`_BackwardSlots` path.

Plus the regression the tentpole fixed: ``move_idle_slot`` used to run two
full rank computations per trial; with an engine it must run none (the
engine's single from-scratch initialization per ``delay_idle_slots`` call is
all that remains).
"""

import random

import pytest

import repro.core.rank as rankmod
from repro.core import (
    SINGLE_UNIT,
    LookaheadResult,
    RankEngine,
    algorithm_lookahead,
    compute_ranks,
    delay_idle_slots,
    fill_deadlines,
    makespan_deadlines,
    minimum_makespan_schedule,
)
from repro.machine.model import MachineModel, single_unit_machine
from repro.obs import TraceRecorder, recording
from repro.workloads.random_dag import random_dag
from repro.workloads.traces import random_trace


def random_instance(seed: int):
    """A random (graph, deadlines, machine) triple covering every regime the
    repo models: infeasible (negative) deadlines, multi-unit machines,
    non-unit execution times, latencies > 1."""
    rng = random.Random(seed)
    exec_times = (1,) if seed % 3 else (1, 2, 3)
    graph = random_dag(
        rng.randint(1, 25),
        edge_probability=rng.choice([0.1, 0.3, 0.6]),
        latencies=(0, 1, 2),
        exec_times=exec_times,
        seed=seed,
    )
    deadlines = {
        n: rng.randint(-5, 50) for n in graph.nodes if rng.random() < 0.7
    }
    if seed % 4 == 0:
        machine = MachineModel(
            window_size=4, fu_counts={"any": rng.randint(2, 3)}
        )
    else:
        machine = single_unit_machine()
    return graph, deadlines, machine


class TestEngineOracle:
    @pytest.mark.parametrize("seed", range(40))
    def test_perturbations_match_from_scratch(self, seed):
        graph, deadlines, machine = random_instance(seed)
        rng = random.Random(1000 + seed)
        engine = RankEngine(graph, deadlines, machine)
        current = fill_deadlines(graph, deadlines)
        assert engine.ranks == compute_ranks(graph, current, machine)
        for _ in range(8):
            if rng.random() < 0.5:  # single-node change
                node = rng.choice(graph.nodes)
                updates = {node: rng.randint(-5, 50)}
            else:  # batched change
                updates = {
                    n: rng.randint(-5, 50)
                    for n in graph.nodes
                    if rng.random() < 0.3
                }
            current.update(updates)
            engine.set_deadlines(updates)
            assert engine.deadlines == current
            assert engine.ranks == compute_ranks(graph, current, machine)

    @pytest.mark.parametrize("seed", range(10))
    def test_uniform_shift_commutes(self, seed):
        graph, deadlines, machine = random_instance(seed)
        engine = RankEngine(graph, deadlines, machine)
        engine.shift(7)
        assert engine.ranks == compute_ranks(graph, engine.deadlines, machine)
        engine.shift(-11)
        assert engine.ranks == compute_ranks(graph, engine.deadlines, machine)

    def test_unknown_node_raises(self):
        graph = random_dag(5, seed=0)
        engine = RankEngine(graph, None, single_unit_machine())
        with pytest.raises(ValueError, match="unknown nodes.*zzz"):
            engine.set_deadlines({"zzz": 3})

    @pytest.mark.parametrize("seed", range(10))
    def test_carried_into_larger_graph(self, seed):
        """Seed an engine on a descendant-closed subgraph (the sinks' side),
        carry it into the full graph, and compare against from-scratch."""
        graph, _, machine = random_instance(seed)
        order = graph.topological_order()
        keep = order[len(order) // 2:]  # suffix of topo order: closed under
        sub = graph.subgraph(keep)      # descendants by construction
        rng = random.Random(2000 + seed)
        sub_d = {n: rng.randint(0, 40) for n in sub.nodes}
        engine = RankEngine(sub, sub_d, machine)
        carried = engine.carried_into(graph, shift=3, fill=25)
        expected = {n: sub_d[n] + 3 if n in sub_d else 25 for n in graph.nodes}
        assert carried.deadlines == expected
        assert carried.ranks == compute_ranks(graph, expected, machine)


class TestClosedFormBackwardSchedule:
    @pytest.mark.parametrize("seed", range(40))
    def test_matches_general_allocator(self, seed, monkeypatch):
        """The strictly-decreasing-placements closed form must reproduce the
        union-find/_BackwardSlots latest-fit bit for bit (single unit, unit
        execution times — the regime where the fast path is taken)."""
        rng = random.Random(seed)
        graph = random_dag(
            rng.randint(1, 30),
            edge_probability=rng.choice([0.1, 0.3, 0.6]),
            latencies=(0, 1, 2),
            seed=seed,
        )
        deadlines = {
            n: rng.randint(-5, 40) for n in graph.nodes if rng.random() < 0.7
        }
        machine = single_unit_machine()
        fast = compute_ranks(graph, deadlines, machine)
        monkeypatch.setattr(rankmod, "_unit_exec_single_fu", lambda *a: False)
        slow = compute_ranks(graph, deadlines, machine)
        assert fast == slow


class TestPipelineBitIdentity:
    @pytest.mark.parametrize("seed", range(12))
    def test_lookahead_incremental_matches_oracle(self, seed):
        rng = random.Random(seed)
        kwargs = dict(
            num_blocks=rng.randint(1, 5),
            block_size=rng.randint(1, 10),
            edge_probability=rng.choice([0.2, 0.4]),
            cross_probability=rng.choice([0.0, 0.15]),
            seed=seed,
        )
        if seed % 3 == 0:
            kwargs["latencies"] = (0, 1, 2, 3)
            kwargs["exec_times"] = (1, 2)
        trace = random_trace(**kwargs)
        machine = (
            single_unit_machine(window_size=rng.choice([2, 4]))
            if seed % 2
            else MachineModel(window_size=4, fu_counts={"any": 2}, issue_width=2)
        )
        a = algorithm_lookahead(trace, machine, incremental=True)
        b = algorithm_lookahead(trace, machine, incremental=False)
        assert a.block_orders == b.block_orders
        assert a.predicted_makespan == b.predicted_makespan


class TestRankOncePerDelayCall:
    def find_idle_instance(self):
        """A single-unit schedule with at least one movable idle slot."""
        for seed in range(50):
            graph = random_dag(12, edge_probability=0.35, latencies=(0, 1, 2),
                               seed=seed)
            machine = single_unit_machine()
            sched = minimum_makespan_schedule(graph, machine)
            if sched.idle_times(SINGLE_UNIT):
                return graph, machine, sched
        pytest.skip("no idle instance found")  # pragma: no cover

    def test_at_most_one_full_rank_compute_per_delay_call(self):
        graph, machine, sched = self.find_idle_instance()
        d = makespan_deadlines(sched)
        with recording(TraceRecorder(sim_events=False)) as rec:
            delay_idle_slots(sched, d, machine)
        trials = rec.counters.get("idle.trials", 0)
        full_ranks = rec.span_stats().get("rank", (0, 0.0))[0]
        assert trials >= 1  # the instance actually exercised the loop
        # One from-scratch compute seeds the engine; every trial after that
        # must go through incremental updates only (the old code paid two
        # full computes per trial).
        assert full_ranks <= 1
        assert rec.counters.get("rank.engine.updates", 0) >= trials

    def test_oracle_path_still_recomputes(self):
        graph, machine, sched = self.find_idle_instance()
        d = makespan_deadlines(sched)
        with recording(TraceRecorder(sim_events=False)) as rec:
            delay_idle_slots(sched, d, machine, incremental=False)
        trials = rec.counters.get("idle.trials", 0)
        assert trials >= 1
        assert rec.span_stats().get("rank", (0, 0.0))[0] >= trials


class TestFillDeadlinesValidation:
    def test_unknown_names_raise(self):
        graph = random_dag(4, seed=0)
        with pytest.raises(ValueError, match="unknown nodes"):
            fill_deadlines(graph, {"missing_a": 1, "missing_b": 2})

    def test_known_names_fill(self):
        graph = random_dag(4, seed=0)
        node = graph.nodes[0]
        out = fill_deadlines(graph, {node: 3})
        assert out[node] == 3
        assert set(out) == set(graph.nodes)


class TestLookaheadResultField:
    def test_final_suffix_order_is_internal(self):
        trace = random_trace(2, 4, seed=0)
        result = algorithm_lookahead(trace)
        assert "_final_suffix_order" not in repr(result)
        import inspect

        params = inspect.signature(LookaheadResult.__init__).parameters
        assert "_final_suffix_order" not in params
