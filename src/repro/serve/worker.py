"""The service's compute kernel: schedule one request, ground-truth it in
the window simulator, return plain data.

:func:`compute_request` is deliberately a **module-level function of one
JSON-able argument returning a JSON-able dict** so it satisfies the
picklability contract of :class:`repro.robust.ExecutionPool` — the daemon
can dispatch batches to fork-based worker processes and inherit the sweep
driver's timeout/retry/crash-blame machinery unchanged.  Everything a
response or cache entry needs is in the returned dict; no live objects
cross the process boundary.
"""

from __future__ import annotations

from typing import Mapping

from ..core import algorithm_lookahead, local_block_orders
from ..ir.basicblock import Trace
from ..machine.model import MachineModel
from ..schedulers import (
    block_orders_with_priority,
    critical_path_priority,
    source_order_priority,
)
from ..sim import simulate_trace
from .protocol import ScheduleRequest


def compute_block_orders(
    trace: Trace, machine: MachineModel, scheduler: str
) -> list[list[str]]:
    """Dispatch on scheduler name — the same table ``repro schedule``
    uses, shared so the daemon can never drift from the CLI."""
    if scheduler == "anticipatory":
        return algorithm_lookahead(trace, machine).block_orders
    if scheduler == "local":
        return local_block_orders(trace, machine)
    if scheduler == "critical-path":
        return block_orders_with_priority(trace, critical_path_priority, machine)
    if scheduler == "source":
        return block_orders_with_priority(trace, source_order_priority, machine)
    raise ValueError(f"unknown scheduler {scheduler!r}")


def compute_schedule(request: ScheduleRequest) -> dict:
    """Schedule + simulate one decoded request.

    The returned dict is the full uncached answer: emitted block orders,
    the simulated makespan / stall count, the runtime schedule's start
    times and unit assignments (needed so cache hits can reconstruct the
    response without re-running anything), and the schedule's own content
    digest (:meth:`repro.core.schedule.Schedule.digest`).
    """
    orders = compute_block_orders(request.trace, request.machine, request.scheduler)
    sim = simulate_trace(request.trace, orders, request.machine)
    schedule = sim.schedule
    return {
        "block_orders": [list(o) for o in orders],
        "makespan": sim.makespan,
        "stall_cycles": sim.stall_cycles,
        "starts": dict(schedule.starts),
        "units": {n: list(u) for n, u in schedule.units.items()},
        "schedule_digest": schedule.digest(),
    }


def compute_request(doc: Mapping) -> dict:
    """Picklable pool entry point: wire dict in, result dict out."""
    return compute_schedule(ScheduleRequest.from_dict(doc))
