"""Property tests for the isomorphism-safe canonical digest.

The digest must be *invariant* under everything that cannot change the
schedule (node renaming, program-order permutation of structurally
indistinguishable instructions) and *sensitive* to everything that can
(latencies, exec times, deadlines, machine config, scheduler choice).
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir.basicblock import BasicBlock, Trace
from repro.ir.depgraph import DependenceGraph
from repro.machine.model import MachineModel
from repro.machine.presets import PAPER_CORE, WIDE_VLIW
from repro.serve.canonical import (
    canonical_form,
    canonical_order,
    payload_digest,
    relabel_trace,
)
from repro.serve.worker import compute_block_orders
from repro.workloads.traces import random_trace

SEEDS = st.integers(min_value=0, max_value=10_000)


def _trace(seed: int) -> Trace:
    return random_trace(
        num_blocks=1 + seed % 4,
        block_size=(2, 6),
        cross_probability=0.15,
        latencies=(0, 1, 2),
        exec_times=(1, 2),
        seed=seed,
    )


def _permuted(trace: Trace, seed: int) -> Trace:
    """The same trace with each block's nodes inserted in shuffled program
    order (graph structure untouched)."""
    rng = random.Random(seed)
    blocks = []
    for bb in trace.blocks:
        g = bb.graph
        names = list(g.nodes)
        rng.shuffle(names)
        shuffled = DependenceGraph()
        for n in names:
            shuffled.add_node(n, exec_time=g.exec_time(n), fu_class=g.fu_class(n))
        for u, v, lat in g.edges():
            shuffled.add_edge(u, v, lat)
        blocks.append(BasicBlock(name=bb.name, graph=shuffled))
    return Trace(blocks, cross_edges=list(trace.cross_edges))


class TestInvariance:
    @given(SEEDS)
    @settings(max_examples=40, deadline=None)
    def test_relabeling_preserves_digest(self, seed):
        trace = _trace(seed)
        mapping = {n: f"v{i}_{seed}" for i, n in enumerate(trace.graph.nodes)}
        renamed = relabel_trace(trace, mapping)
        a = canonical_form(trace, PAPER_CORE, "anticipatory")
        b = canonical_form(renamed, PAPER_CORE, "anticipatory")
        assert a.digest == b.digest
        assert a.payload == b.payload

    @given(SEEDS)
    @settings(max_examples=40, deadline=None)
    def test_program_order_permutation_preserves_digest(self, seed):
        trace = _trace(seed)
        shuffled = _permuted(trace, seed + 1)
        a = canonical_form(trace, PAPER_CORE, "anticipatory")
        b = canonical_form(shuffled, PAPER_CORE, "anticipatory")
        assert a.digest == b.digest

    def test_block_boundaries_matter(self):
        # Same five instructions, chained; split 2+3 vs 3+2 across blocks.
        def build(split):
            g1, g2 = DependenceGraph(), DependenceGraph()
            for i in range(split):
                g1.add_node(f"a{i}")
            for i in range(split, 5):
                g2.add_node(f"a{i}")
            for i in range(split - 1):
                g1.add_edge(f"a{i}", f"a{i+1}", 1)
            for i in range(split, 4):
                g2.add_edge(f"a{i}", f"a{i+1}", 1)
            cross = [(f"a{split-1}", f"a{split}", 1)]
            return Trace(
                [BasicBlock("B1", g1), BasicBlock("B2", g2)], cross_edges=cross
            )

        a = canonical_form(build(2), PAPER_CORE, "anticipatory")
        b = canonical_form(build(3), PAPER_CORE, "anticipatory")
        assert a.digest != b.digest


class TestSensitivity:
    def _base(self, seed=11):
        return _trace(seed)

    def test_latency_changes_digest(self):
        def chain(lat):
            g = DependenceGraph()
            g.add_node("a")
            g.add_node("b")
            g.add_edge("a", "b", lat)
            return Trace([BasicBlock("B", g)])

        digests = {
            canonical_form(chain(lat), PAPER_CORE, "anticipatory").digest
            for lat in (0, 1, 2)
        }
        assert len(digests) == 3

    def test_exec_time_changes_digest(self):
        g = DependenceGraph()
        g.add_node("a", exec_time=1)
        g.add_node("b", exec_time=1)
        g.add_edge("a", "b", 1)
        t1 = Trace([BasicBlock("B", g)])
        g2 = DependenceGraph()
        g2.add_node("a", exec_time=2)
        g2.add_node("b", exec_time=1)
        g2.add_edge("a", "b", 1)
        t2 = Trace([BasicBlock("B", g2)])
        assert (
            canonical_form(t1, PAPER_CORE, "anticipatory").digest
            != canonical_form(t2, PAPER_CORE, "anticipatory").digest
        )

    def test_deadlines_change_digest(self):
        trace = self._base()
        node = trace.graph.nodes[0]
        a = canonical_form(trace, PAPER_CORE, "anticipatory")
        b = canonical_form(
            trace, PAPER_CORE, "anticipatory", deadlines={node: 3}
        )
        c = canonical_form(
            trace, PAPER_CORE, "anticipatory", deadlines={node: 4}
        )
        assert len({a.digest, b.digest, c.digest}) == 3

    def test_machine_fields_change_digest(self):
        trace = self._base()
        base = canonical_form(trace, PAPER_CORE, "anticipatory").digest
        wider = MachineModel(
            window_size=PAPER_CORE.window_size + 1,
            fu_counts=dict(PAPER_CORE.fu_counts),
        )
        assert canonical_form(trace, wider, "anticipatory").digest != base
        assert canonical_form(trace, WIDE_VLIW, "anticipatory").digest != base

    def test_scheduler_changes_digest(self):
        trace = self._base()
        digests = {
            canonical_form(trace, PAPER_CORE, s).digest
            for s in ("anticipatory", "local", "critical-path", "source")
        }
        assert len(digests) == 4

    def test_payload_digest_is_stable_sha256(self):
        d = payload_digest({"v": 1, "x": [1, 2]})
        assert d == payload_digest({"x": [1, 2], "v": 1})  # key order free
        assert len(d) == 64 and int(d, 16) >= 0


class TestEquivariance:
    """The cache's correctness keystone: schedulers are equivariant under
    order-preserving relabelings, so translating a cached canonical
    schedule into a relabeled request's names reproduces its direct
    computation exactly."""

    @given(SEEDS, st.sampled_from(["anticipatory", "local", "critical-path", "source"]))
    @settings(max_examples=25, deadline=None)
    def test_scheduler_commutes_with_relabeling(self, seed, scheduler):
        trace = _trace(seed)
        mapping = {n: f"r{i}" for i, n in enumerate(trace.graph.nodes)}
        renamed = relabel_trace(trace, mapping)
        orders = compute_block_orders(trace, PAPER_CORE, scheduler)
        renamed_orders = compute_block_orders(renamed, PAPER_CORE, scheduler)
        assert renamed_orders == [[mapping[n] for n in order] for order in orders]


class TestCanonicalForm:
    def test_order_is_a_bijection(self):
        trace = _trace(5)
        form = canonical_form(trace, PAPER_CORE, "anticipatory")
        assert sorted(form.order) == sorted(trace.graph.nodes)
        ids = form.id_map()
        assert form.names([ids[n] for n in trace.graph.nodes]) == list(
            trace.graph.nodes
        )

    def test_canonical_order_groups_by_structure(self):
        # Two independent identical nodes tie on colour; program order
        # breaks the tie deterministically.
        g = DependenceGraph()
        g.add_node("z")
        g.add_node("a")
        t = Trace([BasicBlock("B", g)])
        assert canonical_order(t) == ["z", "a"]
