"""Daemon-level overload-safety tests: shedding with structured
``overloaded`` errors (HTTP 503 + Retry-After), request deadlines
(``deadline_exceeded`` / HTTP 504), brownout gating of the debug surface,
unix-socket error paths that must not poison pipelined neighbours, and
the ServerHandle shutdown contract."""

import json
import socket
import threading
import time

import pytest

from repro.machine.presets import PAPER_CORE
from repro.serve.admission import AdmissionConfig
from repro.serve.client import ScheduleClient, http_get, http_schedule
from repro.serve.daemon import ScheduleServer, ServerHandle
from repro.serve.protocol import ScheduleRequest
from repro.serve.service import ScheduleService
from repro.workloads.traces import random_trace


def _doc(seed=0, rid=None, **extra):
    trace = random_trace(2, (3, 4), cross_probability=0.2, seed=seed)
    doc = ScheduleRequest(trace=trace, machine=PAPER_CORE, id=rid).to_dict()
    doc.update(extra)
    return doc


def _make_server(tmp_path, **kwargs):
    service = ScheduleService()
    return ScheduleServer(
        service,
        socket_path=tmp_path / "serve.sock",
        port=0,
        batch_window_s=0.001,
        **kwargs,
    )


def _raw_http(server, payload: bytes) -> bytes:
    with socket.create_connection((server.host, server.port),
                                  timeout=10) as sock:
        sock.sendall(payload)
        sock.shutdown(socket.SHUT_WR)
        chunks = []
        while chunk := sock.recv(65536):
            chunks.append(chunk)
    return b"".join(chunks)


def _post(server, doc: dict) -> bytes:
    body = json.dumps(doc).encode()
    head = (
        f"POST /v1/schedule HTTP/1.1\r\nHost: x\r\n"
        f"Content-Length: {len(body)}\r\n\r\n"
    ).encode()
    return _raw_http(server, head + body)


class TestShedding:
    def test_unix_shed_when_queue_full(self, tmp_path):
        srv = _make_server(
            tmp_path, admission=AdmissionConfig(queue_capacity=1)
        )
        with ServerHandle(srv):
            # Fill the ledger out-of-band so the next admission fails
            # deterministically (the batch loop can't drain what was
            # never enqueued).
            assert srv.admission.try_admit("unix") is None
            with ScheduleClient(srv.socket_path) as client:
                response = client.call(_doc(seed=1, rid="shed-me"))
            srv.admission.note_dequeued()
            srv.admission.release("unix")
        assert response["ok"] is False
        assert response["code"] == "overloaded"
        assert response["retry_after_s"] > 0
        assert "queue full" in response["error"]
        snap = srv.admission.snapshot()
        assert snap["shed"] == {"queue_full": 1}

    def test_http_shed_is_503_with_retry_after(self, tmp_path):
        srv = _make_server(
            tmp_path, admission=AdmissionConfig(queue_capacity=1)
        )
        with ServerHandle(srv):
            assert srv.admission.try_admit("unix") is None
            raw = _post(srv, _doc(seed=2))
            srv.admission.note_dequeued()
            srv.admission.release("unix")
        assert raw.startswith(b"HTTP/1.1 503")
        head, _, body = raw.partition(b"\r\n\r\n")
        assert b"Retry-After:" in head
        parsed = json.loads(body)
        assert parsed["code"] == "overloaded"

    def test_accepted_after_release(self, tmp_path):
        srv = _make_server(
            tmp_path, admission=AdmissionConfig(queue_capacity=1)
        )
        with ServerHandle(srv):
            with ScheduleClient(srv.socket_path) as client:
                response = client.call(_doc(seed=3))
            assert response["ok"] is True
            snap = srv.admission.snapshot()
        assert snap["shed_total"] == 0
        assert snap["queue_depth"] == 0 and snap["inflight_total"] == 0


class TestDeadlines:
    def test_expired_deadline_is_structured_error(self, tmp_path):
        srv = _make_server(tmp_path)
        with ServerHandle(srv):
            with ScheduleClient(srv.socket_path) as client:
                # 1 microsecond: dead long before the batch loop runs.
                response = client.call(
                    _doc(seed=4, rid="late", deadline_ms=0.001)
                )
        assert response["ok"] is False
        assert response["code"] == "deadline_exceeded"
        assert response["id"] == "late"
        assert srv.service.deadline_exceeded == 1

    def test_expired_deadline_http_504(self, tmp_path):
        srv = _make_server(tmp_path)
        with ServerHandle(srv):
            raw = _post(srv, _doc(seed=5, deadline_ms=0.001))
        assert raw.startswith(b"HTTP/1.1 504")

    def test_generous_deadline_is_served(self, tmp_path):
        srv = _make_server(tmp_path)
        with ServerHandle(srv):
            with ScheduleClient(srv.socket_path) as client:
                response = client.call(_doc(seed=6, deadline_ms=30_000))
        assert response["ok"] is True

    def test_invalid_deadline_rejected_not_crashed(self, tmp_path):
        srv = _make_server(tmp_path)
        with ServerHandle(srv):
            with ScheduleClient(srv.socket_path) as client:
                response = client.call(_doc(seed=7, deadline_ms=-5))
                assert client.ping()["ok"]
        assert response["ok"] is False

    def test_deadline_counter_in_metrics(self, tmp_path):
        srv = _make_server(tmp_path)
        with ServerHandle(srv):
            with ScheduleClient(srv.socket_path) as client:
                client.call(_doc(seed=8, deadline_ms=0.001))
            status, body = http_get(srv.host, srv.port, "/metrics")
        assert status == 200
        assert b"repro_serve_deadline_exceeded_total 1" in body


class TestBrownout:
    def _brown(self, srv, n):
        admitted = 0
        for _ in range(n):
            if srv.admission.try_admit("unix") is None:
                admitted += 1
        return admitted

    def test_debug_surface_gated_but_health_stays(self, tmp_path):
        srv = _make_server(
            tmp_path,
            admission=AdmissionConfig(
                queue_capacity=4, brownout_fraction=0.75
            ),
        )
        with ServerHandle(srv):
            admitted = self._brown(srv, 3)
            assert srv.admission.brownout
            status, _ = http_get(srv.host, srv.port, "/debug/traces")
            assert status == 503
            status, _ = http_get(srv.host, srv.port, "/healthz")
            assert status == 200
            status, _ = http_get(srv.host, srv.port, "/metrics")
            assert status == 200
            status, body = http_get(srv.host, srv.port, "/stats")
            assert status == 200
            assert json.loads(body)["admission"]["brownout"] is True
            with ScheduleClient(srv.socket_path) as client:
                gated = client.call({"op": "traces"})
                assert gated["ok"] is False and gated["code"] == "overloaded"
                assert client.ping()["ok"]
            srv.admission.note_dequeued(admitted)
            for _ in range(admitted):
                srv.admission.release("unix")
            assert not srv.admission.brownout
            status, _ = http_get(srv.host, srv.port, "/debug/traces")
            assert status == 200


class TestUnixErrorPaths:
    """The unix-socket mirror of the HTTP error-path suite: oversized
    lines, malformed JSON mid-pipeline and disconnects mid-line must
    never poison the connection's other requests or the daemon."""

    def test_oversized_line_answered_then_connection_closed(self, tmp_path):
        srv = _make_server(tmp_path, max_line=2048)
        with ServerHandle(srv):
            with ScheduleClient(srv.socket_path) as client:
                good = _doc(seed=10, rid="before")
                client._file.write(json.dumps(good).encode() + b"\n")
                client._file.write(b"[" + b"1," * 4096 + b"1]\n")
                client._file.flush()
                first = json.loads(client._file.readline())
                second = json.loads(client._file.readline())
                rest = client._file.readline()
            # The pipelined neighbour before the oversized frame is
            # served; the frame itself gets a structured error and the
            # connection closes.
            assert first["ok"] is True and first["id"] == "before"
            assert second["ok"] is False
            assert "too long" in second["error"]
            assert rest == b""
            # The daemon itself is unharmed.
            with ScheduleClient(srv.socket_path) as client:
                assert client.ping()["ok"]

    def test_malformed_json_mid_pipeline_spares_neighbours(self, tmp_path):
        srv = _make_server(tmp_path)
        with ServerHandle(srv):
            with ScheduleClient(srv.socket_path) as client:
                before = _doc(seed=11, rid="ok-before")
                after = _doc(seed=12, rid="ok-after")
                client._file.write(json.dumps(before).encode() + b"\n")
                client._file.write(b"{definitely not json\n")
                client._file.write(json.dumps(after).encode() + b"\n")
                client._file.flush()
                responses = [
                    json.loads(client._file.readline()) for _ in range(3)
                ]
        assert responses[0]["ok"] is True and responses[0]["id"] == "ok-before"
        assert responses[1]["ok"] is False
        assert "bad JSON" in responses[1]["error"]
        assert responses[2]["ok"] is True and responses[2]["id"] == "ok-after"

    def test_disconnect_mid_line_does_not_poison_daemon(self, tmp_path):
        srv = _make_server(tmp_path)
        with ServerHandle(srv):
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.connect(str(srv.socket_path))
            sock.sendall(b'{"scheduler": "anticip')  # no newline — hang up
            sock.close()
            with ScheduleClient(srv.socket_path) as client:
                response = client.call(_doc(seed=13))
                assert response["ok"] is True

    def test_disconnect_after_submit_still_completes_batch(self, tmp_path):
        srv = _make_server(tmp_path)
        with ServerHandle(srv):
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.connect(str(srv.socket_path))
            sock.sendall(json.dumps(_doc(seed=14, rid="orphan")).encode()
                         + b"\n")
            sock.close()  # gone before the response is written
            deadline = time.monotonic() + 10
            while (srv.service.requests < 1
                   and time.monotonic() < deadline):
                time.sleep(0.01)
            assert srv.service.requests == 1
            # Inflight accounting still drains to zero.
            deadline = time.monotonic() + 10
            while (srv.admission.inflight() and
                   time.monotonic() < deadline):
                time.sleep(0.01)
            assert srv.admission.inflight() == 0


class TestServerHandleShutdown:
    def test_stop_raises_when_thread_will_not_join(self, tmp_path):
        srv = _make_server(tmp_path)
        handle = ServerHandle(srv)
        stuck = threading.Thread(target=time.sleep, args=(5,), daemon=True)
        stuck.start()
        handle._thread = stuck
        with pytest.raises(RuntimeError, match="failed to stop"):
            handle.stop(timeout_s=0.05)
        # The handle keeps the thread reference so a later stop can retry.
        assert handle._thread is stuck

    def test_exit_does_not_mask_propagating_exception(self, tmp_path):
        srv = _make_server(tmp_path)
        handle = ServerHandle(srv)
        handle.stop = lambda timeout_s=10.0: (_ for _ in ()).throw(
            RuntimeError("hung")
        )
        try:
            with pytest.warns(RuntimeWarning, match="failed to stop"):
                with pytest.raises(ValueError, match="the real error"):
                    with handle:
                        raise ValueError("the real error")
        finally:
            ServerHandle.stop(handle)  # the real stop, for cleanup

    def test_clean_stop_clears_thread(self, tmp_path):
        srv = _make_server(tmp_path)
        with ServerHandle(srv) as handle:
            pass
        assert handle._thread is None


class TestMaxLineValidation:
    def test_rejects_tiny_limit(self, tmp_path):
        with pytest.raises(ValueError, match="max_line"):
            _make_server(tmp_path, max_line=16)


class TestDegradedRing:
    def test_degraded_ring_reachable_on_both_transports(self, tmp_path):
        service = ScheduleService(guard_budget_s=0.05)
        srv = ScheduleServer(
            service,
            socket_path=tmp_path / "serve.sock",
            port=0,
            batch_window_s=0.001,
        )
        with ServerHandle(srv):
            with ScheduleClient(srv.socket_path) as client:
                # A primary that overruns the 50 ms budget degrades to
                # the verified fallback.
                from repro.serve import chaos

                plan = chaos.ChaosPlan(
                    name="slowpoke", seed=0, slow_rate=1.0, slow_s=0.2
                )
                with chaos.injection(plan):
                    response = client.call(_doc(seed=15, rid="slow-req"))
                assert response["ok"] is True
                assert response["degraded"]["reason"] == "timeout"
                out = client.traces("degraded")
                assert out["ok"] and out["ring"] == "degraded"
                assert [t["id"] for t in out["traces"]] == ["slow-req"]
            status, body = http_get(srv.host, srv.port, "/debug/degraded")
            assert status == 200
            assert json.loads(body)["ring"] == "degraded"
            # Degraded responses are never cached: the same document
            # misses again.
            status, body = http_get(srv.host, srv.port, "/stats")
            assert json.loads(body)["cache"]["hits"] == 0
