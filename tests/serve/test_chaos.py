"""Tests for the serve-tier chaos harness: plan determinism and purity,
the active-plan registry, and a small end-to-end :func:`run_chaos`."""

import pytest

from repro.serve import chaos
from repro.serve.chaos import (
    ChaosPlan,
    active_plan,
    default_chaos_plan,
    injection,
    run_chaos,
    set_plan,
)


class TestChaosPlan:
    def test_noop_by_default(self):
        plan = ChaosPlan()
        assert plan.is_noop
        assert plan.worker_action("anything") is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"crash_rate": -0.1},
            {"crash_rate": 1.1},
            {"hang_s": 0},
            {"slow_s": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ChaosPlan(**kwargs)

    def test_worker_action_is_pure_and_deterministic(self):
        plan = default_chaos_plan(seed=7)
        ids = [f"req-{i}" for i in range(200)]
        first = [plan.worker_action(i) for i in ids]
        second = [plan.worker_action(i) for i in ids]
        assert first == second
        # The storm plan actually injects something at this sample size.
        assert any(a is not None for a in first)
        assert all(a in (None, "exit", "hang", "slow") for a in first)

    def test_different_seeds_draw_different_mixes(self):
        ids = [f"req-{i}" for i in range(200)]
        a = [default_chaos_plan(0).worker_action(i) for i in ids]
        b = [default_chaos_plan(1).worker_action(i) for i in ids]
        assert a != b

    def test_non_string_ids_never_injected(self):
        plan = default_chaos_plan(0)
        assert plan.worker_action(None) is None
        assert plan.worker_action(123) is None

    def test_for_jobs_disables_process_killers_in_process(self):
        plan = default_chaos_plan(0)
        solo = plan.for_jobs(1)
        assert solo.crash_rate == 0.0 and solo.hang_rate == 0.0
        assert solo.slow_rate == plan.slow_rate
        assert plan.for_jobs(2) is plan

    def test_reseeded(self):
        assert default_chaos_plan(0).reseeded(5).seed == 5


class TestActivePlanRegistry:
    def test_injection_installs_and_restores(self):
        assert active_plan() is None
        plan = default_chaos_plan(3)
        with injection(plan):
            assert active_plan() is plan
        assert active_plan() is None

    def test_noop_plan_never_installs(self):
        previous = set_plan(ChaosPlan())
        try:
            assert active_plan() is None
        finally:
            set_plan(previous)

    def test_worker_honours_installed_plan(self):
        # Find an id the plan crashes, then check the worker would act
        # on it (without actually computing).
        plan = default_chaos_plan(0)
        crash_id = next(
            f"x{i}" for i in range(10_000)
            if plan.worker_action(f"x{i}") == "exit"
        )
        with injection(plan):
            assert chaos.active_plan().worker_action(crash_id) == "exit"


class TestRunChaos:
    def test_small_run_holds_all_invariants(self, tmp_path):
        report = run_chaos(
            requests=10,
            burst=12,
            queue_capacity=4,
            jobs=2,
            seed=0,
            report_path=str(tmp_path / "chaos.json"),
        )
        invariants = report.metrics["invariants"]
        assert all(v == 1 for v in invariants.values())
        assert (tmp_path / "chaos.json").exists()
        observed = report.provenance["observed"]
        admission = report.provenance["admission"]
        # The burst must actually overload the tiny queue.
        assert observed["shed_seen"] > 0
        assert admission["peak_depth"] <= 4
        # Every phase-1/burst request is accounted for (the harness also
        # submits frame-handling and recovery probes on top).
        assert (
            admission["accepted"] + admission["shed"]
            >= report.provenance["requests"] + report.provenance["burst"]
        )

    def test_same_seed_same_fault_assignment(self):
        ids = [f"c{i}" for i in range(50)]
        plan_a = default_chaos_plan(9)
        plan_b = default_chaos_plan(9)
        assert [plan_a.worker_action(i) for i in ids] == [
            plan_b.worker_action(i) for i in ids
        ]
