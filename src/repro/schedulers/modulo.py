"""Iterative modulo scheduling (software pipelining substrate).

The paper observes (§2.4, §5.2) that anticipatory instruction scheduling is
*complementary* to software pipelining: Figure 3's loop body was already
software-pipelined by the back end (the store belongs to the previous
iteration), and anticipatory scheduling then orders the pipelined body.  This
module implements the classic iterative modulo scheduler (Rau-style):

1. MII = max(resource MII, recurrence MII);
2. for increasing II, attempt a modulo list schedule: place operations at
   the earliest start satisfying intra- and inter-iteration dependences,
   with a modulo reservation table enforcing per-class capacity; eject and
   retry with a budget when stuck.

The result is a *kernel*: per-iteration start offsets whose repetition every
II cycles is legal.  :func:`kernel_order` linearizes the kernel into a
per-iteration instruction order suitable as input to the §5.2 anticipatory
post-pass (benchmark E11).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..ir.instruction import ANY
from ..ir.loopgraph import LoopGraph
from ..machine.model import MachineModel, single_unit_machine


@dataclass
class ModuloScheduleResult:
    """Kernel offsets and the initiation interval that admits them."""

    initiation_interval: int
    offsets: dict[str, int]

    def kernel_order(self) -> list[str]:
        """Per-iteration instruction order: by start offset (ties by name
        insertion order preserved by dict ordering)."""
        return sorted(self.offsets, key=lambda n: self.offsets[n])


def resource_mii(loop: LoopGraph, machine: MachineModel) -> int:
    """ceil(work per class / units of that class), maximized over classes."""
    work: dict[str, int] = {}
    for n in loop.nodes:
        cls = loop.fu_class(n)
        pool = ANY if (cls == ANY or machine.is_single_unit) else cls
        work[pool] = work.get(pool, 0) + loop.exec_time(n)
    best = 1
    for pool, cycles in work.items():
        cap = (
            machine.total_units if pool == ANY else len(machine.units_for(pool))
        )
        best = max(best, math.ceil(cycles / max(cap, 1)))
    return best


def recurrence_mii(loop: LoopGraph) -> int:
    """Dependence-cycle lower bound (delegates to the loop graph)."""
    return loop.recurrence_bound()


def modulo_schedule(
    loop: LoopGraph,
    machine: MachineModel | None = None,
    max_ii: int | None = None,
    budget_factor: int = 8,
) -> ModuloScheduleResult:
    """Iterative modulo scheduling.  Raises ``RuntimeError`` if no II up to
    ``max_ii`` (default: total work + total latency) admits a schedule —
    cannot happen for sane inputs since II = that bound always succeeds."""
    machine = machine or single_unit_machine()
    total = sum(loop.exec_time(n) for n in loop.nodes) + sum(
        e.latency for e in loop.edges()
    )
    if max_ii is None:
        max_ii = max(total, 1)
    mii = max(resource_mii(loop, machine), recurrence_mii(loop))
    for ii in range(mii, max_ii + 1):
        offsets = _try_ii(loop, machine, ii, budget_factor * len(loop))
        if offsets is not None:
            # Normalize: shifting every offset by a constant preserves both
            # the dependence inequalities and the modulo reservation table.
            base = min(offsets.values())
            return ModuloScheduleResult(
                ii, {n: t - base for n, t in offsets.items()}
            )
    raise RuntimeError(f"no modulo schedule found up to II={max_ii}")


def _try_ii(
    loop: LoopGraph, machine: MachineModel, ii: int, budget: int
) -> dict[str, int] | None:
    """One iterative attempt at initiation interval ``ii``."""
    # Height-based priority: longest latency path to any node (acyclic part).
    gli = loop.loop_independent_subgraph()
    height = gli.path_length_to_sinks()
    order = sorted(loop.nodes, key=lambda n: -height[n])

    offsets: dict[str, int] = {}
    table: dict[str, dict[int, list[str]]] = {}

    def pool_of(node: str) -> str:
        cls = loop.fu_class(node)
        return ANY if (cls == ANY or machine.is_single_unit) else cls

    def capacity(pool: str) -> int:
        return machine.total_units if pool == ANY else len(machine.units_for(pool))

    def reserve(node: str, start: int) -> list[str]:
        """Place node at start, ejecting conflicting nodes; returns ejected."""
        pool = pool_of(node)
        slots = table.setdefault(pool, {})
        ejected: list[str] = []
        for step in range(loop.exec_time(node)):
            slot = (start + step) % ii
            occupants = slots.setdefault(slot, [])
            while len(occupants) >= capacity(pool):
                victim = occupants.pop(0)
                if victim not in ejected:
                    ejected.append(victim)
        for step in range(loop.exec_time(node)):
            slots[(start + step) % ii].append(node)
        for v in ejected:
            _unreserve(v)
        offsets[node] = start
        return ejected

    def _unreserve(node: str) -> None:
        pool = pool_of(node)
        slots = table.get(pool, {})
        for occupants in slots.values():
            while node in occupants:
                occupants.remove(node)
        offsets.pop(node, None)

    def earliest_start(node: str) -> int:
        est = 0
        for e in loop.edges():
            if e.dst != node or e.src not in offsets:
                continue
            est = max(
                est,
                offsets[e.src]
                + loop.exec_time(e.src)
                + e.latency
                - ii * e.distance,
            )
        return max(est, 0)

    worklist = list(order)
    last_try: dict[str, int] = {}
    steps = 0
    while worklist:
        steps += 1
        if steps > budget + len(loop) * ii + 64:
            return None
        node = worklist.pop(0)
        est = earliest_start(node)
        if node in last_try and est <= last_try[node]:
            est = last_try[node] + 1
        placed = False
        for start in range(est, est + ii):
            # Check capacity without ejection first.
            pool = pool_of(node)
            slots = table.setdefault(pool, {})
            ok = all(
                len(slots.get((start + s) % ii, [])) < capacity(pool)
                for s in range(loop.exec_time(node))
            )
            if ok:
                reserve(node, start)
                last_try[node] = start
                placed = True
                break
        if not placed:
            ejected = reserve(node, est)
            last_try[node] = est
            worklist.extend(ejected)
            continue
        # Evict successors whose dependence is now violated.
        for e in loop.edges():
            if e.src == node and e.dst in offsets:
                need = (
                    offsets[node]
                    + loop.exec_time(node)
                    + e.latency
                    - ii * e.distance
                )
                if offsets[e.dst] < need:
                    _unreserve(e.dst)
                    worklist.append(e.dst)
    # Final verification.
    for e in loop.edges():
        need = (
            offsets[e.src] + loop.exec_time(e.src) + e.latency - ii * e.distance
        )
        if offsets[e.dst] < need:
            return None
    return dict(offsets)
