"""Content-addressed schedule cache: bounded LRU over an append-only JSONL
store.

Entries are keyed by the request's **canonical digest**
(:func:`repro.serve.canonical.canonical_form`) and hold the schedule in
*canonical ids*, so every request isomorphic to a cached one — same kernel,
different SSA names — shares a single entry and translates the stored
schedule through its own canonical labeling.

Persistence is an append-only JSONL file: one ``{"digest": ..., "entry":
...}`` line per insertion, flushed immediately.  Loading replays the file
last-wins and tolerates a torn final line (a daemon killed mid-append must
not poison its own restart).  The file is an upper bound on the in-memory
view — the LRU stays within ``capacity`` and warms back up to capacity on
restart.

The store is **size-capped** rather than unbounded: appends never rewrite
the file (a torn rewrite must not lose the cache), but once dead lines —
superseded duplicates plus entries evicted beyond ``capacity`` — exceed
``compact_ratio`` times the resident set, :meth:`compact` rewrites the
store atomically (tmp file + rename) to exactly the live entries.
Compaction also runs at load time when the replayed file carries that much
garbage, so a long-lived daemon's store stays O(capacity) instead of
O(lifetime inserts).

Instrumentation: ``serve.cache.hit`` / ``serve.cache.miss`` /
``serve.cache.evict`` are counted on both the active
:mod:`repro.obs.recorder` (so per-request spool records carry them) and an
optional :class:`~repro.obs.metrics.MetricsRegistry` (so ``GET /metrics``
exposes running totals).
"""

from __future__ import annotations

import json
import os
from collections import OrderedDict
from pathlib import Path

from ..obs import recorder as obs
from ..obs.metrics import MetricsRegistry


class ScheduleCache:
    """Bounded LRU of canonical-form schedule entries, optionally backed by
    an on-disk JSONL store."""

    def __init__(
        self,
        capacity: int = 1024,
        path: str | os.PathLike | None = None,
        registry: MetricsRegistry | None = None,
        compact_ratio: float = 4.0,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if compact_ratio < 1.0:
            raise ValueError(
                f"compact_ratio must be >= 1, got {compact_ratio}"
            )
        self.capacity = capacity
        self.path = Path(path) if path is not None else None
        self.registry = registry
        self.compact_ratio = compact_ratio
        self._entries: "OrderedDict[str, dict]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.compactions = 0
        #: Lines currently in the on-disk store (live + dead); the basis
        #: of the compaction trigger.
        self.store_lines = 0
        if self.path is not None and self.path.exists():
            self._load()

    # -- instrumentation -----------------------------------------------------

    def _count(self, name: str) -> None:
        obs.count(name)
        if self.registry is not None:
            self.registry.counter(name).inc()

    # -- persistence ---------------------------------------------------------

    def _load(self) -> None:
        """Replay the JSONL store: last write per digest wins, bad or torn
        lines are skipped, only the most recent ``capacity`` entries stay
        resident.  A store carrying more than ``compact_ratio`` times the
        resident set in dead lines is compacted on the spot."""
        replay: "OrderedDict[str, dict]" = OrderedDict()
        lines = 0
        try:
            text = self.path.read_text()
        except OSError:
            return
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            lines += 1
            try:
                rec = json.loads(line)
                digest, entry = rec["digest"], rec["entry"]
            except (ValueError, TypeError, KeyError):
                continue  # torn/corrupt line: ignore, keep replaying
            if not isinstance(digest, str) or not isinstance(entry, dict):
                continue
            replay.pop(digest, None)
            replay[digest] = entry
        for digest, entry in list(replay.items())[-self.capacity :]:
            self._entries[digest] = entry
        self.store_lines = lines
        if self._compaction_due():
            self.compact()

    def _append(self, digest: str, entry: dict) -> None:
        if self.path is None:
            return
        line = json.dumps({"digest": digest, "entry": entry}, sort_keys=True)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a") as fh:
            fh.write(line + "\n")
            fh.flush()
        self.store_lines += 1
        if self._compaction_due():
            self.compact()

    def _compaction_due(self) -> bool:
        """True once dead store lines exceed ``compact_ratio`` x the live
        set — the store-size cap: the file never holds more than
        ``(1 + compact_ratio) * max(live, 1)`` lines for long."""
        if self.path is None:
            return False
        live = max(len(self._entries), 1)
        return self.store_lines - len(self._entries) > self.compact_ratio * live

    def compact(self) -> int:
        """Rewrite the store to exactly the resident entries (atomic:
        tmp file + rename, so a crash mid-compact leaves the old store).
        Returns the number of dead lines dropped."""
        if self.path is None:
            return 0
        dropped = self.store_lines - len(self._entries)
        tmp = self.path.with_name(self.path.name + ".tmp")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with tmp.open("w") as fh:
            for digest, entry in self._entries.items():
                fh.write(
                    json.dumps(
                        {"digest": digest, "entry": entry}, sort_keys=True
                    )
                    + "\n"
                )
            fh.flush()
            os.fsync(fh.fileno())
        tmp.replace(self.path)
        self.store_lines = len(self._entries)
        self.compactions += 1
        self._count("serve.cache.compact")
        return max(dropped, 0)

    # -- lookup / insert -----------------------------------------------------

    def get(self, digest: str) -> dict | None:
        """The entry for ``digest`` (refreshing its LRU position), or None.
        Counts ``serve.cache.hit`` / ``serve.cache.miss``."""
        entry = self._entries.get(digest)
        if entry is None:
            self.misses += 1
            self._count("serve.cache.miss")
            return None
        self._entries.move_to_end(digest)
        self.hits += 1
        self._count("serve.cache.hit")
        return entry

    def note_hit(self) -> None:
        """Count a hit that was served without a :meth:`get` — e.g. a
        duplicate digest inside one batch, answered from its sibling's
        in-flight computation."""
        self.hits += 1
        self._count("serve.cache.hit")

    def peek(self, digest: str) -> dict | None:
        """Uninstrumented lookup (no counters, no LRU refresh)."""
        return self._entries.get(digest)

    def put(self, digest: str, entry: dict) -> None:
        """Insert (or refresh) an entry, evicting LRU victims beyond
        ``capacity`` and appending to the on-disk store."""
        known = digest in self._entries
        self._entries.pop(digest, None)
        self._entries[digest] = entry
        if not known:
            self._append(digest, entry)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
            self._count("serve.cache.evict")

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, digest: str) -> bool:
        return digest in self._entries

    @property
    def hit_ratio(self) -> float | None:
        """Lifetime hits / (hits + misses), or None before any lookup."""
        total = self.hits + self.misses
        return self.hits / total if total else None

    def stats(self) -> dict:
        return {
            "size": len(self._entries),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_ratio": self.hit_ratio,
            "store_lines": self.store_lines,
            "compactions": self.compactions,
        }
