"""Minimum-tardiness scheduling with the Rank Algorithm.

Palem & Simons' result (cited in paper §2.1 and §6): besides minimizing
makespan, "the Rank Algorithm constructs a minimum tardiness schedule if the
problem input has deadlines".  Tardiness of a schedule is
``max_v max(0, completion(v) − d(v))``.

The construction: the instance with deadlines ``d + L`` (every deadline
relaxed by L) is feasible iff a schedule with tardiness ≤ L exists, so the
minimum tardiness is the smallest L for which ``rank_schedule`` succeeds —
found here by binary search (the greedy schedule with all deadlines relaxed
bounds L from above).  In the optimal regime (unit execution times, 0/1
latencies, single FU) the result is exactly the minimum-tardiness schedule;
elsewhere it inherits the Rank Algorithm's heuristic status.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..ir.depgraph import DependenceGraph
from ..machine.model import MachineModel, single_unit_machine
from .rank import fill_deadlines, rank_schedule, rank_schedule_lenient
from .schedule import Schedule


@dataclass
class TardinessResult:
    """A schedule together with its achieved maximum tardiness."""

    schedule: Schedule
    tardiness: int
    #: True when the binary search certified optimality via rank-feasibility
    #: (always in the optimal regime; heuristic machines may be lucky too).
    certified: bool


def minimize_tardiness(
    graph: DependenceGraph,
    deadlines: Mapping[str, int],
    machine: MachineModel | None = None,
) -> TardinessResult:
    """Find a schedule minimizing the maximum lateness against ``deadlines``.

    ``deadlines`` may be partial; unconstrained nodes never contribute
    tardiness (they receive the artificial large deadline).
    """
    machine = machine or single_unit_machine()
    base = fill_deadlines(graph, deadlines)
    if not graph.nodes:
        return TardinessResult(Schedule(graph, {}), 0, True)

    # Upper bound: the tardiness of the plain greedy rank schedule.  Its
    # ranks are reused for every probe: ``base + L`` is a uniform shift of
    # ``base``, and ranks commute with uniform deadline shifts, so the search
    # needs exactly one rank computation total.
    lenient, base_ranks, feasible = rank_schedule_lenient(graph, base, machine)
    if feasible:
        return TardinessResult(lenient, 0, True)
    hi = lenient.tardiness(base)
    lo = 0
    best = lenient
    best_l = hi

    def probe(shift: int) -> Schedule | None:
        relaxed = {n: base[n] + shift for n in base}
        shifted = {n: r + shift for n, r in base_ranks.items()}
        sched, _ = rank_schedule(graph, relaxed, machine, ranks=shifted)
        return sched

    while lo < hi:
        mid = (lo + hi) // 2
        sched = probe(mid)
        if sched is not None:
            hi = mid
            best = sched
            best_l = mid
        else:
            lo = mid + 1
    if lo < best_l:
        sched = probe(lo)
        if sched is not None:
            best, best_l = sched, lo
    achieved = best.tardiness(base)
    return TardinessResult(best, achieved, achieved == lo or achieved == best_l)


def max_lateness(schedule: Schedule, deadlines: Mapping[str, int]) -> int:
    """Signed maximum lateness (negative = every node early)."""
    worst: int | None = None
    for n in schedule.starts:
        if n in deadlines:
            late = schedule.completion(n) - deadlines[n]
            worst = late if worst is None else max(worst, late)
    return worst if worst is not None else 0
