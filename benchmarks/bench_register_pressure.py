"""E12 — scheduling vs. register allocation phase ordering (paper §6).

The related work splits on phase order: Gibbons-Muchnick [8] schedule code
that was already allocated (anti-dependence edges in the graph), while the
PL.8 approach [2] schedules renamed code and allocates afterwards.  This
bench quantifies the difference on the anticipatory pipeline:

- **schedule-first** (rename → Algorithm Lookahead → linear-scan allocate
  along the emitted order): allocation adds only forward false dependences
  along the already-chosen order;
- **allocate-first** (linear-scan allocate along *source* order with K
  registers → rebuild dependences → Algorithm Lookahead): small K injects
  WAR/WAW edges that bind the scheduler before it runs.

Expected shape (asserted): with abundant registers both match the
rename-only ideal; as K shrinks, allocate-first degrades while
schedule-first stays at the ideal (geomean assertion), reproducing the
argument for scheduling renamed code.
"""

from common import emit_metrics, emit_table

from repro.analysis import geometric_mean
from repro.core import algorithm_lookahead
from repro.ir import allocate_registers, build_trace, minimum_registers, rename_registers
from repro.machine import paper_machine
from repro.sim import simulate_trace
from repro.workloads import random_program

TRIALS = 8


def split_blocks(named_blocks, flat_instructions):
    out = []
    pos = 0
    for name, instrs in named_blocks:
        out.append((name, flat_instructions[pos : pos + len(instrs)]))
        pos += len(instrs)
    return out


def schedule_first(program, renamed, machine, extra_regs: int):
    """rename → schedule → allocate along the emitted order; execute."""
    trace = build_trace(split_blocks(program, renamed))
    res = algorithm_lookahead(trace, machine)
    order = res.priority_list
    k = minimum_registers(renamed, order) + extra_regs
    allocated = allocate_registers(renamed, order, k)
    by_name = {i.name: i for i in allocated}
    emitted_blocks = [
        (trace.blocks[bi].name, [by_name[n] for n in res.block_orders[bi]])
        for bi in range(trace.num_blocks)
    ]
    alloc_trace = build_trace(emitted_blocks)
    return k, simulate_trace(alloc_trace, res.block_orders, machine).makespan


def allocate_first(program, renamed, machine, extra_regs: int):
    """allocate along source order → rebuild dependences → schedule."""
    source_order = [i.name for i in renamed]
    k = minimum_registers(renamed, source_order) + extra_regs
    allocated = allocate_registers(renamed, source_order, k)
    alloc_trace = build_trace(split_blocks(program, allocated))
    res = algorithm_lookahead(alloc_trace, machine)
    return k, simulate_trace(alloc_trace, res.block_orders, machine).makespan


def allocate_first_with_spills(program, renamed, machine, k: int):
    """Below the live-range minimum: spill code inserted, then schedule.
    The whole spilled sequence is treated as one block (spill code must not
    separate from its instruction)."""
    from repro.ir import allocate_with_spills

    source_order = [i.name for i in renamed]
    allocation = allocate_with_spills(renamed, source_order, k)
    alloc_trace = build_trace([("B", allocation.instructions)])
    res = algorithm_lookahead(alloc_trace, machine)
    span = simulate_trace(alloc_trace, res.block_orders, machine).makespan
    return span, allocation.spill_count()


def rename_only_ideal(program, renamed, machine):
    trace = build_trace(split_blocks(program, renamed))
    res = algorithm_lookahead(trace, machine)
    return simulate_trace(trace, res.block_orders, machine).makespan


def test_register_pressure(benchmark):
    machine = paper_machine(4)
    rows = []
    tight_alloc_first, tight_sched_first, ideals = [], [], []
    for seed in range(TRIALS):
        program = random_program(3, 7, seed=seed)
        flat = [i for _, instrs in program for i in instrs]
        renamed = rename_registers(flat)
        ideal = rename_only_ideal(program, renamed, machine)
        k_s, sf_tight = schedule_first(program, renamed, machine, 0)
        k_a, af_tight = allocate_first(program, renamed, machine, 0)
        _, af_plus2 = allocate_first(program, renamed, machine, 2)
        _, af_loose = allocate_first(program, renamed, machine, 24)
        rows.append(
            [seed, ideal, f"{sf_tight} (K={k_s})", f"{af_tight} (K={k_a})",
             af_plus2, af_loose]
        )
        ideals.append(ideal)
        tight_sched_first.append(sf_tight)
        tight_alloc_first.append(af_tight)
        # Abundant registers: no reuse, identical dependence graph.
        assert af_loose == ideal

    penalty = geometric_mean(
        [a / s for a, s in zip(tight_alloc_first, tight_sched_first)]
    )
    rows.append(
        ["geomean allocate-first / schedule-first at minimal K", "-", "-", "-",
         "-", f"{penalty:.3f}x"]
    )
    emit_table(
        "E12_register_pressure",
        ["seed", "rename-only ideal", "schedule-first (tight K)",
         "allocate-first (tight K)", "allocate-first K+2",
         "allocate-first K+24"],
        rows,
        title=(
            "E12: phase ordering of scheduling and register allocation "
            "(3 blocks × 7 instrs, W=4, completion cycles)"
        ),
    )
    assert penalty >= 1.0 - 1e-9
    assert all(s >= i for s, i in zip(tight_sched_first, ideals))

    # Below the live-range minimum: spilling kicks in, and completion grows
    # as registers shrink (spill code + reload latencies on the critical
    # path).
    spill_rows = []
    spill_data = []
    for seed in range(4):
        program = random_program(3, 7, seed=seed)
        renamed = rename_registers([i for _, instrs in program for i in instrs])
        row = [seed]
        spans = []
        for k in (3, 5, 8):
            span, spills = allocate_first_with_spills(program, renamed, machine, k)
            row.append(f"{span} ({spills} spills)")
            spans.append(span)
            spill_data.append(
                {"seed": seed, "k": k, "makespan": span, "spills": spills}
            )
        spill_rows.append(row)
        assert spans[0] >= spans[-1]  # 3 registers never beat 8
    emit_table(
        "E12_spills",
        ["seed", "K=3", "K=5", "K=8"],
        spill_rows,
        title="E12 follow-up: below-minimum register counts with spill code",
    )

    emit_metrics(
        "E12_register_pressure",
        {
            "trials": TRIALS,
            "geomean_alloc_first_over_sched_first": penalty,
            "seeds": [
                {
                    "seed": seed,
                    "ideal": ideal,
                    "schedule_first_tight": sf,
                    "allocate_first_tight": af,
                    "allocate_first_plus2": row[4],
                    "allocate_first_loose": row[5],
                }
                for seed, (ideal, sf, af, row) in enumerate(
                    zip(ideals, tight_sched_first, tight_alloc_first, rows)
                )
            ],
            "spills": spill_data,
        },
        machine=machine,
    )

    program = random_program(3, 7, seed=0)
    renamed = rename_registers([i for _, instrs in program for i in instrs])
    benchmark(lambda: allocate_first(program, renamed, machine, 0))
