"""Baseline and comparator schedulers (paper §6 related work)."""

from .bernstein_gertner import (
    bernstein_gertner_labels,
    bernstein_gertner_priority,
    bernstein_gertner_schedule,
)
from .bruteforce import (
    best_stream_order,
    is_feasible_instance,
    optimal_makespan,
    optimal_schedule,
)
from .coffman_graham import (
    TWO_PROCESSOR,
    coffman_graham_labels,
    coffman_graham_priority,
    coffman_graham_schedule,
)
from .critical_path import gibbons_muchnick_order, gibbons_muchnick_schedule
from .global_sched import global_upper_bound, speculative_trace
from .hennessy_gross import hennessy_gross_order, hennessy_gross_schedule
from .list_scheduler import (
    block_orders_with_priority,
    critical_path_priority,
    fan_out_priority,
    schedule_with_priority,
    source_order_priority,
)
from .modulo import (
    ModuloScheduleResult,
    modulo_schedule,
    recurrence_mii,
    resource_mii,
)
from .warren import warren_order, warren_priority, warren_schedule

__all__ = [
    "ModuloScheduleResult",
    "TWO_PROCESSOR",
    "bernstein_gertner_labels",
    "bernstein_gertner_priority",
    "bernstein_gertner_schedule",
    "best_stream_order",
    "block_orders_with_priority",
    "coffman_graham_labels",
    "coffman_graham_priority",
    "coffman_graham_schedule",
    "critical_path_priority",
    "fan_out_priority",
    "gibbons_muchnick_order",
    "gibbons_muchnick_schedule",
    "global_upper_bound",
    "hennessy_gross_order",
    "hennessy_gross_schedule",
    "is_feasible_instance",
    "modulo_schedule",
    "optimal_makespan",
    "optimal_schedule",
    "recurrence_mii",
    "resource_mii",
    "schedule_with_priority",
    "source_order_priority",
    "speculative_trace",
    "warren_order",
    "warren_priority",
    "warren_schedule",
]
