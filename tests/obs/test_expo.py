"""Tests for Prometheus-style exposition and the live `repro top` view."""

import io

from repro.obs import recorder as obs
from repro.obs.expo import (
    daemon_snapshot,
    prometheus_text,
    sanitize_metric_name,
    top_snapshot,
    watch_daemon,
    watch_spools,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.pipeline import TraceContext, merge_spools, spooled_cell


class TestSanitize:
    def test_dots_and_dashes_become_underscores(self):
        assert sanitize_metric_name("span.sweep-cell.wall_s") == (
            "span_sweep_cell_wall_s"
        )

    def test_leading_digit_prefixed(self):
        name = sanitize_metric_name("0weird")
        assert not name[0].isdigit()


class TestPrometheusText:
    def _registry(self):
        reg = MetricsRegistry()
        reg.counter("guard.fallback").inc(3)
        reg.gauge("workers").set(2)
        h = reg.histogram(
            "span.sweep.cell.duration_s", buckets=(0.001, 0.01, 0.1)
        )
        h.observe(0.0005)
        h.observe(0.05)
        h.observe(5.0)
        return reg

    def test_counter_gets_total_suffix(self):
        text = prometheus_text(self._registry())
        assert "# TYPE repro_guard_fallback_total counter" in text
        assert "repro_guard_fallback_total 3" in text

    def test_gauge_plain(self):
        text = prometheus_text(self._registry())
        assert "# TYPE repro_workers gauge" in text
        assert "repro_workers 2" in text

    def test_histogram_buckets_cumulative_with_inf(self):
        text = prometheus_text(self._registry())
        prefix = "repro_span_sweep_cell_duration_s"
        assert f'{prefix}_bucket{{le="0.001"}} 1' in text
        assert f'{prefix}_bucket{{le="0.01"}} 1' in text
        assert f'{prefix}_bucket{{le="0.1"}} 2' in text
        assert f'{prefix}_bucket{{le="+Inf"}} 3' in text
        assert f"{prefix}_count 3" in text
        assert f"{prefix}_sum 5.0505" in text

    def test_labels_applied_to_every_sample(self):
        text = prometheus_text(
            self._registry(), labels={"trace_id": "abc123"}
        )
        sample_lines = [
            ln for ln in text.splitlines() if ln and not ln.startswith("#")
        ]
        assert sample_lines
        assert all('trace_id="abc123"' in ln for ln in sample_lines)

    def test_label_values_escape_quotes_backslashes_and_newlines(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        text = prometheus_text(
            reg, labels={"path": 'a"b\\c\nd'}
        )
        # The exposition format requires \n inside label values to be the
        # two-character escape, never a raw newline (which would tear the
        # sample line in half and corrupt the whole scrape).
        sample = [
            ln for ln in text.splitlines()
            if ln and not ln.startswith("#")
        ]
        assert len(sample) == 1
        assert '\\"b' in sample[0]
        assert "\\\\c" in sample[0]
        assert "\\nd" in sample[0]

    def test_namespace_override(self):
        text = prometheus_text(self._registry(), namespace="spaa96")
        assert "spaa96_guard_fallback_total 3" in text
        assert "repro_" not in text

    def test_help_lines_present(self):
        text = prometheus_text(self._registry())
        assert "# HELP repro_guard_fallback_total" in text

    def test_empty_registry(self):
        assert prometheus_text(MetricsRegistry()).strip() == ""


def _make_spool(directory, cells=3):
    ctx = TraceContext.new()
    for i in range(cells):
        with spooled_cell(directory, ctx.child(f"cell-{i}"), i):
            obs.count("guard.schedule")
            with obs.span("rank"):
                pass
    return ctx


class TestTopSnapshot:
    def test_snapshot_shows_phases_and_counters(self, tmp_path):
        _make_spool(tmp_path)
        snap = top_snapshot(merge_spools(tmp_path))
        assert "cells 3 (3 ok)" in snap
        assert "workers 1" in snap
        assert "sweep.cell" in snap and "rank" in snap
        assert "p50 ms" in snap and "p99 ms" in snap
        assert "guard.schedule" in snap

    def test_rates_need_previous_frame(self, tmp_path):
        _make_spool(tmp_path)
        merge = merge_spools(tmp_path)
        no_prev = top_snapshot(merge)
        with_prev = top_snapshot(merge, previous=merge, dt_s=1.0)
        # Without a previous frame the rate column is a dash; with an
        # identical previous frame the delta is zero.
        assert "-" in no_prev
        assert "rate/s" in with_prev

    def test_empty_directory_snapshot(self, tmp_path):
        snap = top_snapshot(merge_spools(tmp_path))
        assert "cells 0" in snap


class TestWatchSpools:
    def test_bounded_iterations_with_fake_clock(self, tmp_path):
        _make_spool(tmp_path)
        out = io.StringIO()
        times = iter(float(i) for i in range(10))
        slept = []
        frames = watch_spools(
            tmp_path,
            interval_s=0.5,
            iterations=3,
            out=out,
            clock=lambda: next(times),
            sleep=slept.append,
        )
        assert frames == 3
        text = out.getvalue()
        assert text.count("repro top") == 3
        assert "frame 3" in text
        # Sleeps between frames, none after the last.
        assert len(slept) == 2

    def test_keyboard_interrupt_exits_cleanly(self, tmp_path):
        _make_spool(tmp_path)
        out = io.StringIO()

        def boom(_):
            raise KeyboardInterrupt

        frames = watch_spools(
            tmp_path, interval_s=0.1, iterations=5, out=out, sleep=boom
        )
        assert frames == 1


class TestDaemonSnapshot:
    def _doc(self):
        return {
            "stats": {
                "requests": 10,
                "errors": 1,
                "batches": 4,
                "uptime_s": 12.5,
                "cache": {"hits": 6, "misses": 4},
                "cache_hit_ratio": 0.6,
                "transports": {"unix": 8, "http": 2},
                "traces": {"added": 10, "recent": 10, "slow": 1, "errors": 1},
                "slo": {
                    "objective": 0.99,
                    "total": 10,
                    "bad": 1,
                    "fast_burn_rate": 10.0,
                    "slow_burn_rate": 10.0,
                    "page": False,
                    "ticket": True,
                },
            },
            "metrics": {
                "serve.requests": 10,
                "serve.request.anticipatory.duration_s": {
                    "count": 10, "mean": 0.002, "min": 0.001, "max": 0.01,
                    "p50": 0.002, "p90": 0.005, "p99": 0.01,
                },
            },
        }

    def test_frame_contains_core_fields(self):
        frame = daemon_snapshot(self._doc())
        assert "requests 10" in frame
        assert "60% hit" in frame
        assert "unix" in frame and "http" in frame
        assert "anticipatory" in frame

    def test_throughput_from_previous_frame(self):
        doc = self._doc()
        prev = {"stats": {"requests": 5}}
        frame = daemon_snapshot(doc, previous=prev, dt_s=1.0, width=120)
        assert "5.0 req/s" in frame

    def test_empty_doc_renders(self):
        assert "requests 0" in daemon_snapshot({})


class TestWatchDaemon:
    def test_renders_requested_frames(self):
        docs = iter([
            {"stats": {"requests": 1}},
            {"stats": {"requests": 2}},
        ])
        out = io.StringIO()
        t = [0.0]

        def clock():
            t[0] += 1.0
            return t[0]

        frames = watch_daemon(
            lambda: next(docs), interval_s=0.01, iterations=2,
            out=out, clock=clock, sleep=lambda s: None, label="test",
        )
        assert frames == 2
        assert "repro top — test" in out.getvalue()
        assert "frame 2" in out.getvalue()
