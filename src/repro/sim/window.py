"""Cycle-accurate simulator of hardware instruction lookahead (paper §2.3).

The machine model: at any instant the lookahead window holds W instructions
i_n … i_{n+W−1} that occur *contiguously* in the dynamic instruction stream.
The hardware may issue any window instruction whose operands are ready; it
never skips a ready earlier instruction in favour of a ready later one
(Ordering Constraint), and the window only moves ahead when its first
instruction has been issued.  The greedy window-W execution of the priority
list L = P₁∘P₂∘…∘Pₘ is, by Definition 2.3, exactly the set of *legal*
runtime schedules — so this simulator is the ground truth that every
experiment measures against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from ..ir.depgraph import DependenceGraph
from ..machine.model import MachineModel, single_unit_machine
from ..core.schedule import Schedule, Unit


class SimulationDeadlock(RuntimeError):
    """The stream can never make progress: some window instruction depends on
    an instruction more than W−1 positions later in the stream."""


@dataclass
class SimResult:
    """Outcome of one windowed execution."""

    schedule: Schedule
    #: Instructions in issue order (the runtime permutation P).
    issue_order: list[str]
    #: Cycles up to (and excluding) the last issue in which no instruction
    #: was issued — the head-of-window stalls the lookahead failed to hide.
    stall_cycles: int

    @property
    def makespan(self) -> int:
        return self.schedule.makespan

    def start(self, node: str) -> int:
        return self.schedule.start(node)


def simulate_window(
    graph: DependenceGraph,
    stream: Sequence[str],
    machine: MachineModel | None = None,
    barriers: Mapping[int, int] | None = None,
) -> SimResult:
    """Greedily execute ``stream`` on ``machine``'s lookahead hardware.

    ``stream`` must be a permutation of ``graph``'s nodes — the static
    instruction order the compiler emitted (concatenated per-block orders
    for a trace).  ``barriers`` optionally maps stream positions to stall
    penalties: position ``b → p`` forbids any instruction at index ≥ b from
    issuing before every instruction at index < b has *completed*, plus ``p``
    extra cycles — this models a branch misprediction flush at a block
    boundary (the hardware rolls back eagerly executed instructions of the
    wrong path and refills the window).

    Raises :class:`SimulationDeadlock` for streams whose dependences point
    more than W−1 positions forward (cannot occur for streams derived from
    valid per-block schedules of a trace).
    """
    machine = machine or single_unit_machine()
    if sorted(stream) != sorted(graph.nodes):
        raise ValueError("stream must be a permutation of the graph nodes")
    if not machine.can_execute(graph):
        raise ValueError("machine lacks a functional unit for some instruction")
    barriers = dict(barriers or {})

    n = len(stream)
    w = machine.window_size
    width = machine.issue_width or machine.total_units
    position = {node: i for i, node in enumerate(stream)}

    completion: dict[str, int] = {}
    starts: dict[str, int] = {}
    units: dict[str, Unit] = {}
    issued: list[bool] = [False] * n
    issue_order: list[str] = []
    unit_free_at: dict[Unit, int] = {u: 0 for u in machine.unit_names()}

    # Barrier release times become known once every instruction before the
    # barrier has issued (completion times are then fixed).
    barrier_release: dict[int, int | None] = {b: None for b in barriers}

    def ready_time(node: str) -> int | None:
        """Earliest issue time permitted by dependences and barriers, or None
        if a predecessor has not issued yet."""
        t = 0
        for p, lat in graph.predecessors(node).items():
            if p not in completion:
                return None
            t = max(t, completion[p] + lat)
        pos = position[node]
        for b, penalty in barriers.items():
            if pos >= b:
                rel = barrier_release[b]
                if rel is None:
                    return None
                t = max(t, rel + penalty)
        return t

    def update_barriers() -> None:
        for b in barriers:
            if barrier_release[b] is None and all(issued[i] for i in range(b)):
                barrier_release[b] = max(
                    (completion[stream[i]] for i in range(b)), default=0
                )

    update_barriers()
    head = 0
    time = 0
    guard = 0
    max_guard = 4 * (
        sum(graph.exec_time(x) for x in graph.nodes)
        + sum(lat for _, _, lat in graph.edges())
        + sum(barriers.values())
        + n
        + 1
    )
    while head < n:
        issued_this_cycle = 0
        for i in range(head, min(head + w, n)):
            if issued[i]:
                continue
            node = stream[i]
            rt = ready_time(node)
            if rt is None or rt > time:
                continue
            unit = next(
                (
                    u
                    for u in machine.units_for(graph.fu_class(node))
                    if unit_free_at[u] <= time
                ),
                None,
            )
            if unit is None:
                continue
            issued[i] = True
            starts[node] = time
            units[node] = unit
            completion[node] = time + graph.exec_time(node)
            unit_free_at[unit] = completion[node]
            issue_order.append(node)
            issued_this_cycle += 1
            if issued_this_cycle >= width:
                break
        while head < n and issued[head]:
            head += 1
        update_barriers()
        if head >= n:
            break
        # Advance to the next event: a window instruction becoming ready, a
        # unit freeing up, or simply the next cycle if issue width was the
        # only limiter.
        events: list[int] = []
        blocked_now = False
        for i in range(head, min(head + w, n)):
            if issued[i]:
                continue
            rt = ready_time(stream[i])
            if rt is None:
                continue
            if rt <= time:
                blocked_now = True
            else:
                events.append(rt)
        events.extend(t for t in unit_free_at.values() if t > time)
        if blocked_now:
            time += 1
        elif events:
            time = min(events)
        else:
            raise SimulationDeadlock(
                f"no instruction in the window [{head}, {head + w}) can ever "
                f"become ready (window too small for the stream's dependences)"
            )
        guard += 1
        if guard > max_guard:  # pragma: no cover - defensive
            raise SimulationDeadlock("simulation failed to converge")

    schedule = Schedule(graph, starts, units)
    if starts:
        issue_cycles = set(starts.values())
        stalls = max(starts.values()) + 1 - len(issue_cycles)
    else:
        stalls = 0
    return SimResult(schedule=schedule, issue_order=issue_order, stall_cycles=stalls)


def simulate_trace(
    trace,
    block_orders: Iterable[Sequence[str]],
    machine: MachineModel | None = None,
    mispredicted_blocks: Iterable[int] = (),
    misprediction_penalty: int = 2,
) -> SimResult:
    """Execute a trace given its emitted per-block instruction orders.

    ``mispredicted_blocks`` lists block indices whose *entry* was
    mispredicted: the window cannot overlap instructions across that block's
    leading boundary, and ``misprediction_penalty`` flush cycles are added
    (the paper's safety story: eagerly executed instructions of the wrong
    path are rolled back by hardware).
    """
    machine = machine or single_unit_machine()
    orders = [list(o) for o in block_orders]
    if len(orders) != trace.num_blocks:
        raise ValueError("need exactly one order per trace block")
    for i, order in enumerate(orders):
        if sorted(order) != sorted(trace.block_nodes(i)):
            raise ValueError(f"order for block {i} is not a permutation of it")
    stream: list[str] = [n for order in orders for n in order]
    barriers: dict[int, int] = {}
    boundary = 0
    for i, order in enumerate(orders):
        if i in set(mispredicted_blocks) and i > 0:
            barriers[boundary] = misprediction_penalty
        boundary += len(order)
    return simulate_window(trace.graph, stream, machine, barriers)
