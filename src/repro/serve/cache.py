"""Content-addressed schedule cache: bounded LRU over an append-only JSONL
store.

Entries are keyed by the request's **canonical digest**
(:func:`repro.serve.canonical.canonical_form`) and hold the schedule in
*canonical ids*, so every request isomorphic to a cached one — same kernel,
different SSA names — shares a single entry and translates the stored
schedule through its own canonical labeling.

Persistence is an append-only JSONL file: one ``{"digest": ..., "entry":
...}`` line per insertion, flushed immediately.  Loading replays the file
last-wins and tolerates a torn final line (a daemon killed mid-append must
not poison its own restart).  The file is an upper bound on the in-memory
view — the LRU stays within ``capacity``; the store keeps everything ever
computed and warms the LRU up to capacity on restart.

Instrumentation: ``serve.cache.hit`` / ``serve.cache.miss`` /
``serve.cache.evict`` are counted on both the active
:mod:`repro.obs.recorder` (so per-request spool records carry them) and an
optional :class:`~repro.obs.metrics.MetricsRegistry` (so ``GET /metrics``
exposes running totals).
"""

from __future__ import annotations

import json
import os
from collections import OrderedDict
from pathlib import Path

from ..obs import recorder as obs
from ..obs.metrics import MetricsRegistry


class ScheduleCache:
    """Bounded LRU of canonical-form schedule entries, optionally backed by
    an on-disk JSONL store."""

    def __init__(
        self,
        capacity: int = 1024,
        path: str | os.PathLike | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.path = Path(path) if path is not None else None
        self.registry = registry
        self._entries: "OrderedDict[str, dict]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        if self.path is not None and self.path.exists():
            self._load()

    # -- instrumentation -----------------------------------------------------

    def _count(self, name: str) -> None:
        obs.count(name)
        if self.registry is not None:
            self.registry.counter(name).inc()

    # -- persistence ---------------------------------------------------------

    def _load(self) -> None:
        """Replay the JSONL store: last write per digest wins, bad or torn
        lines are skipped, only the most recent ``capacity`` entries stay
        resident."""
        replay: "OrderedDict[str, dict]" = OrderedDict()
        try:
            text = self.path.read_text()
        except OSError:
            return
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
                digest, entry = rec["digest"], rec["entry"]
            except (ValueError, TypeError, KeyError):
                continue  # torn/corrupt line: ignore, keep replaying
            if not isinstance(digest, str) or not isinstance(entry, dict):
                continue
            replay.pop(digest, None)
            replay[digest] = entry
        for digest, entry in list(replay.items())[-self.capacity :]:
            self._entries[digest] = entry

    def _append(self, digest: str, entry: dict) -> None:
        if self.path is None:
            return
        line = json.dumps({"digest": digest, "entry": entry}, sort_keys=True)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self.path.open("a") as fh:
            fh.write(line + "\n")
            fh.flush()

    # -- lookup / insert -----------------------------------------------------

    def get(self, digest: str) -> dict | None:
        """The entry for ``digest`` (refreshing its LRU position), or None.
        Counts ``serve.cache.hit`` / ``serve.cache.miss``."""
        entry = self._entries.get(digest)
        if entry is None:
            self.misses += 1
            self._count("serve.cache.miss")
            return None
        self._entries.move_to_end(digest)
        self.hits += 1
        self._count("serve.cache.hit")
        return entry

    def note_hit(self) -> None:
        """Count a hit that was served without a :meth:`get` — e.g. a
        duplicate digest inside one batch, answered from its sibling's
        in-flight computation."""
        self.hits += 1
        self._count("serve.cache.hit")

    def peek(self, digest: str) -> dict | None:
        """Uninstrumented lookup (no counters, no LRU refresh)."""
        return self._entries.get(digest)

    def put(self, digest: str, entry: dict) -> None:
        """Insert (or refresh) an entry, evicting LRU victims beyond
        ``capacity`` and appending to the on-disk store."""
        known = digest in self._entries
        self._entries.pop(digest, None)
        self._entries[digest] = entry
        if not known:
            self._append(digest, entry)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1
            self._count("serve.cache.evict")

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, digest: str) -> bool:
        return digest in self._entries

    @property
    def hit_ratio(self) -> float | None:
        """Lifetime hits / (hits + misses), or None before any lookup."""
        total = self.hits + self.misses
        return self.hits / total if total else None

    def stats(self) -> dict:
        return {
            "size": len(self._entries),
            "capacity": self.capacity,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_ratio": self.hit_ratio,
        }
