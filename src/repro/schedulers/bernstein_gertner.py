"""Bernstein-Gertner scheduling for a pipelined processor with maximal delay
one (paper §6, ref. [3]).

Bernstein & Gertner construct optimal schedules for an arbitrary DAG with
unit processing times and 0/1 latencies on a single pipelined processor by
generalizing Coffman-Graham's two-processor labelling: when comparing the
successor-label sequences, a successor reached through a latency-1 edge is
"more urgent" than the same successor through a latency-0 edge (the latency
consumes the slot that the second processor would in CG).  We encode this by
comparing pairs ``(label, latency)`` lexicographically inside the decreasing
successor sequence.

This is a reconstruction of the published algorithm; the test-suite verifies
its makespans against the exact brute-force oracle on thousands of random
0/1-latency instances, where it matches the Rank Algorithm's optimum.
"""

from __future__ import annotations

from ..ir.depgraph import DependenceGraph
from ..machine.model import MachineModel, single_unit_machine
from ..core.rank import list_schedule
from ..core.schedule import Schedule


def bernstein_gertner_labels(graph: DependenceGraph) -> dict[str, int]:
    """Latency-aware lexicographic labelling (higher label = more urgent)."""
    n = len(graph)
    labels: dict[str, int] = {}
    index = {v: i for i, v in enumerate(graph.nodes)}
    for label in range(1, n + 1):
        candidates = [
            v
            for v in graph.nodes
            if v not in labels and all(s in labels for s in graph.successors(v))
        ]
        if not candidates:  # pragma: no cover - graph is a DAG
            raise RuntimeError("no candidate during labelling")

        def key(v: str) -> tuple:
            seq = sorted(
                ((labels[s], lat) for s, lat in graph.successors(v).items()),
                reverse=True,
            )
            return (seq, index[v])

        chosen = min(candidates, key=key)
        labels[chosen] = label
    return labels


def bernstein_gertner_priority(graph: DependenceGraph) -> list[str]:
    labels = bernstein_gertner_labels(graph)
    return sorted(graph.nodes, key=lambda v: -labels[v])


def bernstein_gertner_schedule(
    graph: DependenceGraph, machine: MachineModel | None = None
) -> Schedule:
    """Greedy list schedule by decreasing Bernstein-Gertner label on a single
    pipelined unit (the regime where the original algorithm is optimal)."""
    machine = machine or single_unit_machine()
    return list_schedule(graph, bernstein_gertner_priority(graph), machine)
