"""Capped, jittered retry backoff.

The original sweep driver slept ``backoff_s * 2**attempt`` between retry
rounds — uncapped and jitter-free.  Two failure modes follow: a high retry
count sleeps for minutes (``0.05 * 2**12`` is already 3½ minutes), and
every worker that failed in the same round retries in lockstep, hammering
whatever shared resource made them fail in the first place.

:class:`RetryPolicy` fixes both: the exponential delay is clamped to
``cap_s`` and then a *seeded* jitter shaves off up to ``jitter`` of it, so
repeated runs remain deterministic (same seed → same sleep sequence) while
synchronized retriers decorrelate.  The policy only shapes *sleeps*; it
never touches results or checkpoint contents, so checkpoint/resume output
stays byte-identical to the uncapped driver.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

#: Default clamp on a single retry sleep, in seconds.
DEFAULT_BACKOFF_CAP_S = 5.0

#: Default fraction of the clamped delay randomized away by jitter.
DEFAULT_BACKOFF_JITTER = 0.5


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with a hard cap and bounded, seeded jitter.

    ``delay_s(attempt)`` for 1-based ``attempt`` (the number of failed
    tries so far) is drawn uniformly from::

        d = min(cap_s, base_s * 2**(attempt - 1))
        [d * (1 - jitter), d]

    ``jitter=0`` makes the policy fully deterministic (the old behaviour,
    but capped).  The random source is supplied per call so one policy
    object can serve many independently seeded retry streams.
    """

    base_s: float = 0.05
    cap_s: float = DEFAULT_BACKOFF_CAP_S
    jitter: float = DEFAULT_BACKOFF_JITTER

    def __post_init__(self) -> None:
        if self.base_s < 0:
            raise ValueError(f"base_s must be >= 0, got {self.base_s}")
        if self.cap_s < 0:
            raise ValueError(f"cap_s must be >= 0, got {self.cap_s}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    def delay_s(self, attempt: int, rng: random.Random | None = None) -> float:
        """The sleep before the next try after ``attempt`` failed tries."""
        exponent = max(0, attempt - 1)
        # Clamp the exponent too: 2**1000 is a harmless Python bignum but
        # there is no point computing it just to min() it away.
        if self.base_s <= 0:
            return 0.0
        delay = self.base_s * (2 ** min(exponent, 63))
        delay = min(self.cap_s, delay)
        if self.jitter > 0 and rng is not None:
            delay *= 1.0 - self.jitter * rng.random()
        return delay

    def rng(self, seed: int | None = 0) -> random.Random:
        """A fresh seeded jitter stream (``None`` draws OS entropy)."""
        return random.Random(seed)
