"""Unit tests for analysis metrics."""

import pytest

from repro.analysis import (
    gap_recovered,
    geometric_mean,
    idle_stats,
    overlap_cycles,
    speedup,
    utilization,
)
from repro.core import Schedule, algorithm_lookahead
from repro.ir import graph_from_edges
from repro.machine import paper_machine
from repro.sim import simulate_trace
from repro.workloads import figure2_trace


class TestScalarMetrics:
    def test_speedup(self):
        assert speedup(10, 5) == 2.0
        with pytest.raises(ValueError):
            speedup(10, 0)

    def test_gap_recovered(self):
        assert gap_recovered(local=13, anticipatory=11, global_bound=11) == 1.0
        assert gap_recovered(local=13, anticipatory=12, global_bound=11) == 0.5
        assert gap_recovered(local=13, anticipatory=13, global_bound=11) == 0.0
        assert gap_recovered(local=10, anticipatory=10, global_bound=10) == 1.0

    def test_geometric_mean(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1.0, -1.0])


class TestScheduleMetrics:
    def test_idle_stats(self):
        g = graph_from_edges([], nodes=["a", "b"])
        s = Schedule(g, {"a": 0, "b": 3})
        st = idle_stats(s)
        assert st.count == 2
        assert st.first == 1 and st.last == 2

    def test_idle_stats_packed(self):
        g = graph_from_edges([], nodes=["a", "b"])
        s = Schedule(g, {"a": 0, "b": 1})
        st = idle_stats(s)
        assert st.count == 0 and st.first is None

    def test_utilization(self):
        g = graph_from_edges([], nodes=["a", "b"])
        s = Schedule(g, {"a": 0, "b": 3})
        assert utilization(s) == pytest.approx(2 / 4)

    def test_overlap_cycles_on_figure2(self):
        t = figure2_trace(with_cross_edge=False)
        m = paper_machine(2)
        res = algorithm_lookahead(t, m)
        sim = simulate_trace(t, res.block_orders, m)
        # z fills BB1's idle slot: at least the trailing BB1 instruction(s)
        # issue after a BB2 instruction.
        assert overlap_cycles(t, sim.schedule) >= 1

    def test_no_overlap_with_window_1(self):
        t = figure2_trace(with_cross_edge=False)
        m = paper_machine(1)
        orders = [list(t.block_nodes(i)) for i in range(2)]
        sim = simulate_trace(t, orders, m)
        assert overlap_cycles(t, sim.schedule) == 0
