"""Benchmark-harness pytest hooks.

Adds ``--jobs N`` so the E5-E11 sweeps fan their independent cells out over
``N`` worker processes (see :func:`common.run_sweep`).  The value is exported
as ``REPRO_JOBS`` so worker helpers and ad-hoc scripts see the same knob.
"""

import os


def pytest_addoption(parser):
    parser.addoption(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for benchmark sweeps (default: REPRO_JOBS or 1)",
    )


def pytest_configure(config):
    jobs = config.getoption("--jobs", default=None)
    if jobs:
        os.environ["REPRO_JOBS"] = str(jobs)
