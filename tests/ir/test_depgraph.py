"""Unit tests for DependenceGraph, cross-checked against networkx."""

import networkx as nx
import pytest

from repro.ir import CycleError, DependenceGraph, graph_from_edges
from repro.workloads import figure1_bb1, random_dag


def diamond() -> DependenceGraph:
    return graph_from_edges(
        [("a", "b", 1), ("a", "c", 0), ("b", "d", 1), ("c", "d", 0)]
    )


class TestConstruction:
    def test_add_node_and_len(self):
        g = DependenceGraph()
        g.add_node("a")
        g.add_node("b", exec_time=3, fu_class="fixed")
        assert len(g) == 2
        assert "a" in g and "b" in g
        assert g.exec_time("b") == 3
        assert g.fu_class("b") == "fixed"

    def test_duplicate_node_rejected(self):
        g = DependenceGraph()
        g.add_node("a")
        with pytest.raises(ValueError, match="duplicate"):
            g.add_node("a")

    def test_bad_exec_time_rejected(self):
        g = DependenceGraph()
        with pytest.raises(ValueError, match="exec_time"):
            g.add_node("a", exec_time=0)

    def test_edge_to_unknown_node(self):
        g = DependenceGraph()
        g.add_node("a")
        with pytest.raises(KeyError):
            g.add_edge("a", "zzz", 0)

    def test_self_edge_rejected(self):
        g = DependenceGraph()
        g.add_node("a")
        with pytest.raises(CycleError):
            g.add_edge("a", "a", 1)

    def test_negative_latency_rejected(self):
        g = graph_from_edges([], nodes=["a", "b"])
        with pytest.raises(ValueError, match="latency"):
            g.add_edge("a", "b", -1)

    def test_parallel_edges_keep_max_latency(self):
        g = graph_from_edges([("a", "b", 0)])
        g.add_edge("a", "b", 2)
        g.add_edge("a", "b", 1)
        assert g.latency("a", "b") == 2
        assert g.num_edges() == 1

    def test_program_order_preserved(self):
        g = graph_from_edges([], nodes=["z", "m", "a"])
        assert g.nodes == ["z", "m", "a"]


class TestTopology:
    def test_topological_order_valid(self):
        g = diamond()
        topo = g.topological_order()
        pos = {n: i for i, n in enumerate(topo)}
        for u, v, _ in g.edges():
            assert pos[u] < pos[v]

    def test_cycle_detected(self):
        g = graph_from_edges([("a", "b", 0), ("b", "c", 0)])
        g.add_edge("c", "a", 0)
        assert not g.is_acyclic()
        with pytest.raises(CycleError):
            g.topological_order()

    def test_descendants_match_networkx(self):
        g = random_dag(30, edge_probability=0.2, seed=11)
        nxg = nx.DiGraph()
        nxg.add_nodes_from(g.nodes)
        nxg.add_edges_from((u, v) for u, v, _ in g.edges())
        for n in g.nodes:
            assert set(g.descendants(n)) == nx.descendants(nxg, n)
            assert set(g.ancestors(n)) == nx.ancestors(nxg, n)

    def test_reaches(self):
        g = diamond()
        assert g.reaches("a", "d")
        assert not g.reaches("d", "a")
        assert not g.reaches("b", "c")

    def test_sources_and_sinks(self):
        g = diamond()
        assert g.sources() == ["a"]
        assert g.sinks() == ["d"]

    def test_figure1_descendants(self):
        g = figure1_bb1()
        assert set(g.descendants("x")) == {"w", "b", "a", "r"}
        assert set(g.descendants("e")) == {"w", "b", "a"}


class TestMetrics:
    def test_critical_path_diamond(self):
        # a(1) -> b latency 1 -> b(1) -> d latency 1 -> d(1) = 5
        assert diamond().critical_path_length() == 5

    def test_critical_path_empty(self):
        assert DependenceGraph().critical_path_length() == 0

    def test_critical_path_with_exec_times(self):
        g = graph_from_edges([("a", "b", 2)], exec_times={"a": 3, "b": 2})
        assert g.critical_path_length() == 3 + 2 + 2

    def test_earliest_start_times(self):
        g = diamond()
        est = g.earliest_start_times()
        assert est["a"] == 0
        assert est["b"] == 2  # completion(a)=1 + latency 1
        assert est["c"] == 1
        assert est["d"] == 4  # completion(b)=3 + latency 1

    def test_path_length_to_sinks(self):
        g = diamond()
        dist = g.path_length_to_sinks()
        assert dist["d"] == 1
        assert dist["b"] == 1 + 1 + 1  # b + latency + d
        assert dist["a"] == 5


class TestTransforms:
    def test_subgraph(self):
        g = diamond()
        sub = g.subgraph(["a", "b", "d"])
        assert sub.nodes == ["a", "b", "d"]
        assert sub.num_edges() == 2
        with pytest.raises(KeyError):
            g.subgraph(["a", "nope"])

    def test_copy_independent(self):
        g = diamond()
        c = g.copy()
        c.add_node("extra")
        assert "extra" not in g

    def test_union_disjoint(self):
        g1 = graph_from_edges([("a", "b", 1)])
        g2 = graph_from_edges([("c", "d", 0)])
        u = g1.union(g2)
        assert set(u.nodes) == {"a", "b", "c", "d"}
        assert u.num_edges() == 2

    def test_union_overlap_rejected(self):
        g1 = graph_from_edges([("a", "b", 1)])
        with pytest.raises(ValueError, match="overlap"):
            g1.union(g1)

    def test_relabeled(self):
        g = diamond()
        r = g.relabeled({"a": "A"})
        assert "A" in r and "a" not in r
        assert r.latency("A", "b") == 1

    def test_graph_from_edges_exec_times(self):
        g = graph_from_edges([("a", "b", 0)], exec_times={"a": 4})
        assert g.exec_time("a") == 4
        assert g.exec_time("b") == 1


class TestCaching:
    def test_reachability_cache_invalidation(self):
        g = graph_from_edges([("a", "b", 0)], nodes=["a", "b", "c"])
        assert g.descendants("a") == ["b"]
        g.add_edge("b", "c", 0)
        assert g.descendants("a") == ["b", "c"]
