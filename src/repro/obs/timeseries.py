"""Ring-buffer time-series store and burn-rate SLO tracking.

The :class:`~repro.obs.metrics.MetricsRegistry` answers "how many since
boot" and "what is the latency distribution since boot" — cumulative
questions.  A live daemon also needs *windowed* questions: what is the
request rate over the last minute, how many errors in the last ten, is the
error budget burning fast enough to page?  :class:`TimeSeriesStore` answers
those with a fixed-memory ring of time buckets per series — O(window /
resolution) floats, no allocation on the hot path, arbitrary process
lifetime — and :class:`SLOTracker` derives multi-window **burn rates** from
it (the Google SRE-workbook alerting style: the ratio of the observed
error rate to the rate that would exactly exhaust the error budget).

Both take an injectable ``clock`` so tests drive time explicitly.
"""

from __future__ import annotations

import time

#: Default ring coverage: 10 minutes at 5-second resolution (120 buckets).
DEFAULT_WINDOW_S = 600.0
DEFAULT_RESOLUTION_S = 5.0


class _Series:
    """One named series: parallel rings of (count, total, max) per bucket.

    ``_epochs[i]`` records which absolute bucket index last wrote slot
    ``i``; a slot whose epoch is stale is logically empty (zeroed lazily on
    the next write, skipped on reads), so advancing time never needs an
    explicit sweep.
    """

    __slots__ = ("counts", "totals", "maxes", "_epochs", "_slots")

    def __init__(self, slots: int) -> None:
        self._slots = slots
        self.counts = [0.0] * slots
        self.totals = [0.0] * slots
        self.maxes = [0.0] * slots
        self._epochs = [-1] * slots

    def record(self, bucket: int, value: float) -> None:
        i = bucket % self._slots
        if self._epochs[i] != bucket:
            self._epochs[i] = bucket
            self.counts[i] = 0.0
            self.totals[i] = 0.0
            self.maxes[i] = 0.0
        self.counts[i] += 1.0
        self.totals[i] += value
        if self.counts[i] == 1.0 or value > self.maxes[i]:
            self.maxes[i] = value

    def window(self, newest_bucket: int, buckets: int) -> tuple[float, float, float]:
        """``(count, total, max)`` over the ``buckets`` most recent buckets
        ending at ``newest_bucket`` inclusive."""
        count = total = 0.0
        peak = 0.0
        for b in range(newest_bucket - buckets + 1, newest_bucket + 1):
            i = b % self._slots
            if self._epochs[i] != b:
                continue
            count += self.counts[i]
            total += self.totals[i]
            if self.maxes[i] > peak:
                peak = self.maxes[i]
        return count, total, peak


class TimeSeriesStore:
    """Named time series over a fixed ring of time buckets.

    ``record(name, value)`` adds one observation to the current bucket;
    queries aggregate over the trailing ``over_s`` seconds (clamped to the
    ring's coverage).  Memory is O(series x window/resolution) and constant
    over time.
    """

    def __init__(
        self,
        window_s: float = DEFAULT_WINDOW_S,
        resolution_s: float = DEFAULT_RESOLUTION_S,
        clock=time.monotonic,
    ) -> None:
        if resolution_s <= 0:
            raise ValueError(f"resolution_s must be > 0, got {resolution_s}")
        if window_s < resolution_s:
            raise ValueError(
                f"window_s ({window_s}) must be >= resolution_s "
                f"({resolution_s})"
            )
        self.window_s = float(window_s)
        self.resolution_s = float(resolution_s)
        self._slots = max(1, int(round(window_s / resolution_s)))
        self._clock = clock
        self._series: dict[str, _Series] = {}

    # -- writing -------------------------------------------------------------

    def _bucket(self, t: float | None = None) -> int:
        return int((self._clock() if t is None else t) / self.resolution_s)

    def record(self, name: str, value: float = 1.0) -> None:
        series = self._series.get(name)
        if series is None:
            series = self._series[name] = _Series(self._slots)
        series.record(self._bucket(), float(value))

    # -- reading -------------------------------------------------------------

    def names(self) -> list[str]:
        return sorted(self._series)

    def _window(self, name: str, over_s: float) -> tuple[float, float, float]:
        series = self._series.get(name)
        if series is None:
            return 0.0, 0.0, 0.0
        over_s = min(max(over_s, self.resolution_s), self.window_s)
        buckets = max(1, int(round(over_s / self.resolution_s)))
        return series.window(self._bucket(), buckets)

    def count(self, name: str, over_s: float | None = None) -> float:
        """Observations of ``name`` in the trailing window (default: the
        whole ring)."""
        return self._window(name, over_s or self.window_s)[0]

    def total(self, name: str, over_s: float | None = None) -> float:
        return self._window(name, over_s or self.window_s)[1]

    def max(self, name: str, over_s: float | None = None) -> float:
        return self._window(name, over_s or self.window_s)[2]

    def mean(self, name: str, over_s: float | None = None) -> float | None:
        count, total, _ = self._window(name, over_s or self.window_s)
        return total / count if count else None

    def rate(self, name: str, over_s: float | None = None) -> float:
        """Observations per second over the trailing window."""
        over_s = min(max(over_s or self.window_s, self.resolution_s),
                     self.window_s)
        return self._window(name, over_s)[0] / over_s

    def snapshot(self, over_s: float | None = None) -> dict[str, dict]:
        """Every series' windowed aggregates as a JSON-able dict."""
        out: dict[str, dict] = {}
        for name in self.names():
            count, total, peak = self._window(name, over_s or self.window_s)
            out[name] = {
                "count": count,
                "total": total,
                "max": peak,
                "mean": total / count if count else None,
                "rate": self.rate(name, over_s),
            }
        return out


#: Multi-window burn-rate alert thresholds, per the SRE-workbook pages:
#: a fast burn of 14.4x consumes 2% of a 30-day budget in an hour; a slow
#: burn of 6x consumes 5% in six hours.
FAST_BURN_ALERT = 14.4
SLOW_BURN_ALERT = 6.0


class SLOTracker:
    """Error-budget burn-rate tracking over two trailing windows.

    ``objective`` is the availability target (0.99 = 99% of requests good).
    ``record(ok, duration_s)`` classifies one request: it is *bad* when it
    errored, or — if ``latency_slo_s`` is set — when it was slower than the
    latency objective.  ``burn_rate(window)`` is::

        (bad / total over the window) / (1 - objective)

    so 1.0 means the budget is being spent exactly at the sustainable pace,
    and e.g. 14.4 means a 30-day budget would be gone in two days.
    ``snapshot()`` reports both windows plus the standard page/ticket alert
    decisions (fast AND slow burning, per the multiwindow rule that filters
    out short blips).
    """

    def __init__(
        self,
        objective: float = 0.99,
        latency_slo_s: float | None = None,
        fast_window_s: float = 60.0,
        slow_window_s: float = DEFAULT_WINDOW_S,
        store: TimeSeriesStore | None = None,
        clock=time.monotonic,
    ) -> None:
        if not 0.0 < objective < 1.0:
            raise ValueError(f"objective must be in (0, 1), got {objective}")
        if fast_window_s > slow_window_s:
            raise ValueError("fast_window_s must be <= slow_window_s")
        self.objective = objective
        self.latency_slo_s = latency_slo_s
        self.fast_window_s = fast_window_s
        self.slow_window_s = slow_window_s
        self.store = store or TimeSeriesStore(
            window_s=slow_window_s, clock=clock
        )
        self.total = 0
        self.bad = 0

    def record(self, ok: bool, duration_s: float | None = None) -> bool:
        """Record one request; returns True when it consumed error budget."""
        breached = (not ok) or (
            self.latency_slo_s is not None
            and duration_s is not None
            and duration_s > self.latency_slo_s
        )
        self.total += 1
        self.store.record("slo.total")
        if breached:
            self.bad += 1
            self.store.record("slo.bad")
        return breached

    def burn_rate(self, over_s: float) -> float:
        total = self.store.count("slo.total", over_s)
        if not total:
            return 0.0
        bad = self.store.count("slo.bad", over_s)
        return (bad / total) / (1.0 - self.objective)

    @property
    def lifetime_burn_rate(self) -> float:
        """Burn rate over every request ever seen — purely count-based, so
        it is deterministic for a deterministic workload (the windowed
        rates depend on wall-clock bucketing) and safe to pin in a
        :class:`~repro.obs.runreport.RunReport` invariant."""
        if not self.total:
            return 0.0
        return (self.bad / self.total) / (1.0 - self.objective)

    def snapshot(self) -> dict:
        fast = self.burn_rate(self.fast_window_s)
        slow = self.burn_rate(self.slow_window_s)
        return {
            "objective": self.objective,
            "latency_slo_s": self.latency_slo_s,
            "total": self.total,
            "bad": self.bad,
            "fast_burn_rate": fast,
            "slow_burn_rate": slow,
            "page": fast >= FAST_BURN_ALERT and slow >= FAST_BURN_ALERT / 2,
            "ticket": fast >= SLOW_BURN_ALERT and slow >= SLOW_BURN_ALERT / 2,
        }


def burn_rate_gauges(tracker: SLOTracker, registry, prefix: str = "serve.slo.") -> None:
    """Refresh ``registry`` gauges from ``tracker`` (called at scrape time,
    so ``/metrics`` always shows current burn rates)."""
    snap = tracker.snapshot()
    registry.gauge(f"{prefix}objective").set(snap["objective"])
    registry.gauge(f"{prefix}fast_burn_rate").set(snap["fast_burn_rate"])
    registry.gauge(f"{prefix}slow_burn_rate").set(snap["slow_burn_rate"])
    registry.counter(f"{prefix}bad").inc(
        max(0, snap["bad"] - registry.counter(f"{prefix}bad").value)
    )
