"""Unit + oracle tests for minimum-tardiness scheduling."""

import pytest

from repro.core.tardiness import max_lateness, minimize_tardiness
from repro.ir import graph_from_edges
from repro.machine import paper_machine
from repro.workloads import figure1_bb1, random_dag


def bruteforce_min_tardiness(graph, deadlines, machine=None):
    """Oracle: smallest L such that deadlines+L admit a feasible schedule."""
    from repro.schedulers import is_feasible_instance

    for level in range(0, 64):
        relaxed = {n: deadlines.get(n, 10**6) + level for n in graph.nodes}
        if is_feasible_instance(graph, relaxed, machine):
            return level
    raise AssertionError("no feasible relaxation found")  # pragma: no cover


class TestBasics:
    def test_feasible_instance_zero_tardiness(self):
        g = figure1_bb1()
        res = minimize_tardiness(g, {n: 7 for n in g.nodes})
        assert res.tardiness == 0
        assert res.schedule.makespan == 7

    def test_impossible_deadline(self):
        g = figure1_bb1()
        res = minimize_tardiness(g, {n: 6 for n in g.nodes})
        assert res.tardiness == 1  # optimal makespan 7, uniform deadline 6
        res.schedule.validate()

    def test_single_tight_node(self):
        g = graph_from_edges([("a", "b", 2)])
        # b cannot complete before 4; deadline 1 -> tardiness 3.
        res = minimize_tardiness(g, {"b": 1})
        assert res.tardiness == 3

    def test_partial_deadlines(self):
        g = graph_from_edges([], nodes=["a", "b", "c"])
        res = minimize_tardiness(g, {"c": 1})
        assert res.tardiness == 0
        assert res.schedule.start("c") == 0

    def test_empty_graph(self):
        from repro.ir import DependenceGraph

        assert minimize_tardiness(DependenceGraph(), {}).tardiness == 0

    def test_max_lateness_signed(self):
        g = graph_from_edges([], nodes=["a"])
        res = minimize_tardiness(g, {"a": 5})
        assert max_lateness(res.schedule, {"a": 5}) == -4


class TestOptimality:
    @pytest.mark.parametrize("seed", range(10))
    def test_matches_bruteforce_oracle(self, seed):
        g = random_dag(7, edge_probability=0.3, latencies=(0, 1), seed=seed)
        # Tight random deadlines to force real tardiness.
        deadlines = {n: 1 + (i % 4) for i, n in enumerate(g.nodes)}
        ours = minimize_tardiness(g, deadlines, paper_machine(1))
        oracle = bruteforce_min_tardiness(g, deadlines, paper_machine(1))
        assert ours.tardiness == oracle
        ours.schedule.validate()

    def test_conflicting_deadlines(self):
        """Two independent unit jobs both due at time 1: one must be late."""
        g = graph_from_edges([], nodes=["a", "b"])
        res = minimize_tardiness(g, {"a": 1, "b": 1})
        assert res.tardiness == 1
