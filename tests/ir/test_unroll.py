"""Unit tests for loop unrolling."""

import pytest

from repro.ir import loop_from_edges, reroll_orders, unroll_loop, unrolled_name
from repro.workloads import figure3_loop, figure8_loop


class TestStructure:
    def test_block_count_and_sizes(self):
        lt = unroll_loop(figure3_loop(), 3)
        assert lt.num_blocks == 3
        assert all(len(lt.block_nodes(i)) == 5 for i in range(3))

    def test_distance_zero_stays_intra_block(self):
        lt = unroll_loop(figure3_loop(), 2)
        g0 = lt.blocks[0].graph
        assert g0.latency(unrolled_name("L4", 0), unrolled_name("C4", 0)) == 1

    def test_distance_one_becomes_cross_edge(self):
        lt = unroll_loop(figure3_loop(), 2)
        # M@0 -> ST@1 with latency 4 crosses the copies.
        assert (
            unrolled_name("M", 0),
            unrolled_name("ST", 1),
            4,
        ) in lt.cross_edges

    def test_wraparound_becomes_carried(self):
        lt = unroll_loop(figure3_loop(), 2)
        carried = {
            (e.src, e.dst): (e.latency, e.distance) for e in lt.carried_edges
        }
        # M@1 (last copy) feeds ST@0 of the *next unrolled iteration*.
        assert carried[(unrolled_name("M", 1), unrolled_name("ST", 0))] == (4, 1)

    def test_distance_beyond_factor(self):
        loop = loop_from_edges([("a", "a", 2, 3)])
        lt = unroll_loop(loop, 2)
        carried = {
            (e.src, e.dst): e.distance for e in lt.carried_edges
        }
        # a@0 + 3 -> copy 3 = iteration 1, copy 1; a@1 + 3 -> iteration 2, copy 0.
        assert carried[(unrolled_name("a", 0), unrolled_name("a", 1))] == 1
        assert carried[(unrolled_name("a", 1), unrolled_name("a", 0))] == 2

    def test_factor_one_is_identity_shape(self):
        loop = figure8_loop()
        lt = unroll_loop(loop, 1)
        assert lt.num_blocks == 1
        assert len(lt.carried_edges) == len(loop.carried_edges())

    def test_invalid_factor(self):
        with pytest.raises(ValueError):
            unroll_loop(figure8_loop(), 0)


class TestSemantics:
    @pytest.mark.parametrize("factor", [1, 2, 3])
    def test_unrolled_equals_rolled_unrolling(self, factor):
        """k iterations of the unrolled loop must execute exactly like
        k*factor iterations of the original loop (same stream, same graph
        modulo names)."""
        from repro.machine import paper_machine
        from repro.sim import simulate_loop_order
        from repro.sim.loop_runner import simulate_loop_trace_orders
        from repro.workloads import FIG3_SCHEDULE1

        loop = figure3_loop()
        lt = unroll_loop(loop, factor)
        m = paper_machine(2)
        k = 3
        orders = [
            [unrolled_name(n, c) for n in FIG3_SCHEDULE1]
            for c in range(factor)
        ]
        unrolled_sim = simulate_loop_trace_orders(lt, orders, k, m)
        rolled_sim = simulate_loop_order(loop, FIG3_SCHEDULE1, k * factor, m)
        assert unrolled_sim.makespan == rolled_sim.makespan

    def test_reroll_orders(self):
        loop = figure3_loop()
        lt = unroll_loop(loop, 2)
        orders = [list(lt.block_nodes(0)), list(lt.block_nodes(1))]
        rerolled = reroll_orders(loop, orders)
        assert all(sorted(o) == sorted(loop.nodes) for o in rerolled)

    def test_reroll_rejects_foreign_names(self):
        loop = figure3_loop()
        with pytest.raises(ValueError, match="unrolled instance"):
            reroll_orders(loop, [["bogus@0"]])
