"""Headline reproduction assertions: every number the paper prints.

One test per claim, named after the figure it pins.  These are the
ground-truth checks that EXPERIMENTS.md reports.
"""

from repro.core import (
    algorithm_lookahead,
    compute_ranks,
    delay_idle_slots,
    makespan_deadlines,
    rank_schedule,
    schedule_single_block_loop,
)
from repro.machine import paper_machine
from repro.sim import (
    in_order_offsets,
    periodic_initiation_interval,
    simulate_loop_order,
    simulate_trace,
)
from repro.workloads import (
    FIG3_SCHEDULE1,
    FIG3_SCHEDULE2,
    FIG8_SCHEDULE_S1,
    FIG8_SCHEDULE_S2,
    figure1_bb1,
    figure2_trace,
    figure3_loop,
    figure8_loop,
)


class TestFigure1:
    """Fig. 1: dependence graph, Rank-Algorithm schedule, delayed idle slot."""

    def test_ranks_at_artificial_deadline_100(self):
        ranks = compute_ranks(figure1_bb1(), {n: 100 for n in "exbwar"})
        assert (ranks["a"], ranks["r"]) == (100, 100)
        assert (ranks["w"], ranks["b"]) == (98, 98)
        assert (ranks["x"], ranks["e"]) == (95, 95)

    def test_rank_algorithm_schedule(self):
        s, _ = rank_schedule(figure1_bb1())
        assert s.permutation() == ["e", "x", "b", "w", "r", "a"]
        assert s.makespan == 7
        assert s.idle_times() == [2]

    def test_schedule_after_delaying_idle_slot(self):
        s, _ = rank_schedule(figure1_bb1())
        s2, d2 = delay_idle_slots(s, makespan_deadlines(s))
        assert s2.permutation() == ["x", "e", "r", "b", "w", "a"]
        assert s2.makespan == 7
        assert s2.idle_times() == [5]
        assert d2["x"] == 1  # "we set its deadline, d(x) = 1"


class TestFigure2:
    """Fig. 2: second basic block, merged ranks, completion 11 at W = 2."""

    def test_merged_ranks(self):
        t = figure2_trace(with_cross_edge=True)
        ranks = compute_ranks(t.graph, {n: 100 for n in t.graph.nodes})
        assert ranks == {
            "g": 100, "v": 100, "a": 100, "r": 100,
            "p": 98, "b": 98, "q": 97, "z": 95,
            "w": 93, "e": 91, "x": 90,
        }

    def test_completion_11_without_cross_edge(self):
        t = figure2_trace(with_cross_edge=False)
        m = paper_machine(2)
        res = algorithm_lookahead(t, m)
        assert simulate_trace(t, res.block_orders, m).makespan == 11
        assert res.block_orders == [
            ["x", "e", "r", "b", "w", "a"],  # P1
            ["z", "q", "p", "v", "g"],       # P2
        ]

    def test_completion_11_with_cross_edge(self):
        t = figure2_trace(with_cross_edge=True)
        m = paper_machine(2)
        res = algorithm_lookahead(t, m)
        assert res.predicted_makespan == 11
        assert simulate_trace(t, res.block_orders, m).makespan == 11
        # The cross edge flips w before b inside BB1's emitted order.
        p1 = res.block_orders[0]
        assert p1.index("w") < p1.index("b")


class TestFigure3:
    """Fig. 3: partial-products loop — 5 vs 7 and 6 vs 6."""

    def test_schedule1_single_iteration_5(self):
        loop = figure3_loop()
        assert simulate_loop_order(loop, FIG3_SCHEDULE1, 1, paper_machine(1)).makespan == 5

    def test_schedule1_steady_state_7(self):
        loop = figure3_loop()
        off = in_order_offsets(loop, FIG3_SCHEDULE1, paper_machine(1))
        assert periodic_initiation_interval(loop, off, paper_machine(1)) == 7

    def test_schedule2_single_iteration_6(self):
        loop = figure3_loop()
        assert simulate_loop_order(loop, FIG3_SCHEDULE2, 1, paper_machine(1)).makespan == 6

    def test_schedule2_steady_state_6(self):
        loop = figure3_loop()
        off = in_order_offsets(loop, FIG3_SCHEDULE2, paper_machine(1))
        assert periodic_initiation_interval(loop, off, paper_machine(1)) == 6

    def test_section_5_2_discovers_schedule2(self):
        res = schedule_single_block_loop(figure3_loop(), paper_machine(1))
        assert tuple(res.order) == FIG3_SCHEDULE2


class TestFigure8:
    """Fig. 8: counter-example — S1 = 5n−1, S2 = 4n; dual transform wins."""

    def test_s1_completion(self):
        loop = figure8_loop()
        for n in (2, 4, 7):
            sim = simulate_loop_order(loop, FIG8_SCHEDULE_S1, n, paper_machine(1))
            assert sim.makespan == 5 * n - 1

    def test_s2_completion(self):
        loop = figure8_loop()
        for n in (2, 4, 7):
            sim = simulate_loop_order(loop, FIG8_SCHEDULE_S2, n, paper_machine(1))
            assert sim.makespan == 4 * n

    def test_general_algorithm_picks_s2(self):
        res = schedule_single_block_loop(figure8_loop(), paper_machine(1))
        assert tuple(res.order) == FIG8_SCHEDULE_S2
        assert res.best.kind == "sink"
