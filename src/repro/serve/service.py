"""Transport-independent brain of the scheduling service.

:class:`ScheduleService` owns the canonical-digest cache, the robust
execution pool and the metrics registry; the asyncio daemon
(:mod:`repro.serve.daemon`) is a thin front-end that decodes bytes and
feeds request batches here.

Batch lifecycle
---------------

1. **decode** every wire document (:class:`~repro.serve.protocol
   .ScheduleRequest`); malformed ones become structured error responses
   without touching the rest of the batch;
2. **canonicalize** each request to its isomorphism-safe digest
   (:func:`~repro.serve.canonical.canonical_form`);
3. **cache lookup** — a hit translates the stored canonical schedule
   through the request's own labeling (no scheduler run, no simulation);
   duplicate digests *within* one batch collapse onto a single compute
   and the duplicates count as hits;
4. **compute misses** through the :class:`~repro.robust.ExecutionPool`
   (fresh crash-isolated workers per batch when ``jobs > 1``) and insert
   the canonical form of each fresh result;
5. **respond** in input order.

Overload safety (the robustness layer threaded through the lifecycle):

- a request whose ``deadline_ms`` budget has expired is answered
  ``deadline_exceeded`` *before* it reaches the pool — during batch
  assembly for requests that waited out their budget in the queue, and
  again at dispatch time for budgets that died during decode; cache hits
  are still served (they are nearly free).  The tightest remaining budget
  in a batch also caps the pool's stall timeout, and each dispatched
  document's ``deadline_ms`` is rewritten to its remaining budget so the
  worker guard inherits it;
- each scheduler class has a :class:`~repro.serve.admission.CircuitBreaker`
  (K consecutive compute failures open it; while open, cache misses for
  that class short-circuit with ``breaker_open`` instead of burning pool
  capacity; a half-open probe after the cooldown closes or re-opens it);
- a worker answer that degraded to the guard's verified fallback is
  served with a ``degraded`` diagnostic and **never cached** — the cache
  holds only primary-path schedules.


Bit-identity contract: a miss is answered with the worker's raw result —
exactly what a direct :func:`repro.serve.worker.compute_request` call
returns — and a hit for an order-preserving relabeling of a cached request
reproduces that result through the canonical translation (the scheduler
tie-breaks by program index, never by name; pinned in
``tests/serve/test_canonical.py``).

Telemetry: every batch runs under a ``serve.batch`` span (spooled to
``spool_dir`` when set, so ``repro metrics`` / ``repro top`` work on a live
daemon's spool directory), each request gets a child ``serve.request``
span, and the registry carries ``serve.requests`` / ``serve.errors``
counters plus per-request-class latency histograms
(``serve.request.<scheduler>.duration_s``).
"""

from __future__ import annotations

import os
import time
import uuid
from pathlib import Path

from ..core.schedule import schedule_digest
from ..obs import recorder as obs
from ..obs.metrics import MetricsRegistry
from ..obs.pipeline import SPAN_DURATION_BUCKETS, TraceContext, spooled_cell
from ..obs.recorder import SpanRecord
from ..obs.runreport import RunReport, collect_provenance
from ..obs.timeseries import SLOTracker, TimeSeriesStore, burn_rate_gauges
from ..robust.pool import ExecutionPool, PoolConfig
from .admission import BreakerBoard
from .cache import ScheduleCache
from .canonical import CanonicalForm, canonical_form
from .protocol import (
    ProtocolError,
    ScheduleRequest,
    deadline_s_from_doc,
    error_response,
    ok_response,
    trace_from_wire,
)
from .tracebuf import RequestTrace, TraceBuffer
from .worker import compute_request, configure_guard

#: Guard degradation reasons that count as *failures* for the circuit
#: breaker.  ``node_budget`` degradations are deterministic policy (the
#: trace was too big, by configuration) and ``output_error`` means the
#: verifier caught a bad schedule once — neither indicates the scheduler
#: class is currently unhealthy the way timeouts/crashes do.
BREAKER_FAILURE_REASONS = ("timeout", "deadlock", "exception")

#: Floor on the pool stall timeout derived from request deadlines: a
#: pool.run() with a microscopic timeout would declare every worker hung.
MIN_POOL_TIMEOUT_S = 0.05


def entry_from_result(form: CanonicalForm, result: dict) -> dict:
    """A freshly computed result, re-expressed in canonical ids for the
    cache."""
    cid = form.id_map()
    return {
        "block_orders": [[cid[n] for n in order] for order in result["block_orders"]],
        "makespan": result["makespan"],
        "stall_cycles": result["stall_cycles"],
        "starts": [[cid[n], t] for n, t in sorted(result["starts"].items())],
        "units": [[cid[n], list(u)] for n, u in sorted(result["units"].items())],
    }


def result_from_entry(form: CanonicalForm, entry: dict) -> dict:
    """A cached canonical entry, translated into the requesting trace's own
    node names — including the translated schedule's content digest."""
    names = form.order
    starts = {names[c]: t for c, t in entry["starts"]}
    units = {names[c]: tuple(u) for c, u in entry["units"]}
    return {
        "block_orders": [[names[c] for c in order] for order in entry["block_orders"]],
        "makespan": entry["makespan"],
        "stall_cycles": entry["stall_cycles"],
        "starts": starts,
        "units": units,
        "schedule_digest": schedule_digest(starts, units),
    }


class ScheduleService:
    """Decode, canonicalize, cache, compute, respond."""

    def __init__(
        self,
        jobs: int = 1,
        cache_size: int = 1024,
        cache_path: str | os.PathLike | None = None,
        spool_dir: str | os.PathLike | None = None,
        timeout_s: float | None = None,
        retries: int = 1,
        registry: MetricsRegistry | None = None,
        tracebuf: TraceBuffer | None = None,
        slo_objective: float = 0.99,
        latency_slo_s: float | None = None,
        guard_budget_s: float | None = 5.0,
        node_budget: int | None = None,
        breaker_threshold: int = 5,
        breaker_cooldown_s: float = 30.0,
    ) -> None:
        self.registry = registry or MetricsRegistry()
        self.cache = ScheduleCache(
            capacity=cache_size, path=cache_path, registry=self.registry
        )
        # The pool spools worker telemetry into its own subdirectory: each
        # batch's run() clears its telemetry dir first, which must never
        # delete the daemon's own per-batch spool files one level up.
        pool_spool = Path(spool_dir) / "pool" if spool_dir is not None else None
        self.pool = ExecutionPool(
            compute_request,
            PoolConfig(jobs=jobs, timeout_s=timeout_s, retries=retries),
            telemetry_dir=pool_spool,
        )
        self.spool_dir = spool_dir
        self.context = TraceContext.new()
        self.tracebuf = tracebuf or TraceBuffer()
        self.timeseries = TimeSeriesStore()
        self.slo = SLOTracker(
            objective=slo_objective,
            latency_slo_s=latency_slo_s,
            store=self.timeseries,
        )
        self.requests = 0
        self.errors = 0
        self.batches = 0
        #: Responses served from the guard's verified fallback.
        self.degraded = 0
        #: Requests dropped before dispatch because their budget expired.
        self.deadline_exceeded = 0
        #: Lifetime request counts per transport ("unix" / "http" / ...).
        self.transports: dict[str, int] = {}
        #: Per-scheduler-class circuit breakers.
        self.breakers = BreakerBoard(
            failure_threshold=breaker_threshold,
            cooldown_s=breaker_cooldown_s,
        )
        #: The daemon's AdmissionController, attached by ScheduleServer so
        #: /stats and /metrics can surface queue depth and shed counts;
        #: None when the service is driven directly (tests, CLI).
        self.admission = None
        # Guard budgets are process-global so fork-based pool workers
        # inherit them (the pool forks fresh per batch).
        configure_guard(
            time_budget_s=guard_budget_s, node_budget=node_budget
        )
        self.started_monotonic = time.monotonic()

    # -- public entry points -------------------------------------------------

    def handle(
        self,
        doc: dict,
        transport: str = "unknown",
        deadline_s: float | None = None,
    ) -> dict:
        """One request through the full batch path."""
        return self.handle_batch(
            [doc], transports=[transport], deadlines=[deadline_s]
        )[0]

    def handle_batch(
        self,
        docs: list,
        transports: list[str] | None = None,
        deadlines: list | None = None,
    ) -> list[dict]:
        """Answer a batch of wire documents, responses in input order.

        ``transports`` (parallel to ``docs``) tags each request with the
        transport it arrived on for per-transport stats and access logs.
        ``deadlines`` (parallel to ``docs``) is each request's **remaining**
        budget in seconds as measured by the daemon at dequeue time (queue
        wait already subtracted); ``None`` entries fall back to the
        document's own ``deadline_ms``.

        Runs synchronously in the calling thread; the daemon serializes
        batches through a single executor thread because the obs recorder
        is process-global.
        """
        self.batches += 1
        if self.spool_dir is not None:
            cell = spooled_cell(
                self.spool_dir,
                self.context.child(f"batch-{self.batches}"),
                cell=self.batches,
                sim_events=False,
            )
            with cell:
                return self._handle_batch(docs, transports, deadlines)
        return self._handle_batch(docs, transports, deadlines)

    # -- internals -----------------------------------------------------------

    def _handle_batch(
        self,
        docs: list,
        transports: list[str] | None = None,
        deadlines: list | None = None,
    ) -> list[dict]:
        t_batch = time.perf_counter()
        responses: list[dict | None] = [None] * len(docs)
        slots: list[dict] = []  # decoded, not yet answered
        with obs.span("serve.batch", size=len(docs), batch=self.batches) as sp:
            # 1/2: decode + canonicalize
            for i, doc in enumerate(docs):
                self.requests += 1
                transport = (
                    transports[i]
                    if transports is not None and i < len(transports)
                    else "unknown"
                )
                self.transports[transport] = self.transports.get(transport, 0) + 1
                self.registry.counter("serve.requests").inc()
                self.registry.counter(f"serve.requests.{transport}").inc()
                t0 = time.perf_counter_ns()
                remaining_s = (
                    deadlines[i]
                    if deadlines is not None and i < len(deadlines)
                    else None
                )
                if remaining_s is None:
                    remaining_s = deadline_s_from_doc(doc)
                if remaining_s is not None and remaining_s <= 0.0:
                    # The budget died in the queue: drop before spending
                    # decode/canonicalize/compute on an answer nobody is
                    # waiting for.
                    responses[i] = self._error(
                        doc,
                        "deadline expired before dispatch",
                        transport=transport,
                        started_ns=t0,
                        code="deadline_exceeded",
                    )
                    continue
                try:
                    request = ScheduleRequest.from_dict(doc)
                except ProtocolError as exc:
                    responses[i] = self._error(
                        doc,
                        str(exc),
                        transport=transport,
                        started_ns=t0,
                        code="bad_request",
                        phases=[("decode", t0, time.perf_counter_ns() - t0)],
                    )
                    continue
                t1 = time.perf_counter_ns()
                if request.trace_id is None:
                    # The daemon mints an id for untraced requests so every
                    # retained trace is addressable via /debug/traces.
                    request.trace_id = uuid.uuid4().hex[:16]
                form = canonical_form(
                    request.trace, request.machine, request.scheduler
                )
                t2 = time.perf_counter_ns()
                slots.append(
                    {
                        "index": i,
                        "request": request,
                        "form": form,
                        "started_ns": t0,
                        "transport": transport,
                        # Absolute expiry on the perf_counter_ns clock; None
                        # when the request carries no deadline.
                        "deadline_ns": (
                            None
                            if remaining_s is None
                            else t0 + int(remaining_s * 1e9)
                        ),
                        "phases": [
                            ("decode", t0, t1 - t0),
                            ("canonicalize", t1, t2 - t1),
                        ],
                    }
                )
            if sp is not None:
                # The batch span links its member requests' trace ids.
                sp.attrs["trace_ids"] = [
                    s["request"].trace_id for s in slots
                ]

            # 3: cache lookup with within-batch dedupe
            pending: dict[str, list[dict]] = {}
            for slot in slots:
                form = slot["form"]
                t_probe = time.perf_counter_ns()
                waiting = pending.get(form.digest)
                if waiting is not None:
                    # Another request in this batch is already computing
                    # this digest: served without a scheduler run == a hit.
                    self.cache.note_hit()
                    slot["cached"] = True
                    slot["phases"].append(
                        ("cache_probe", t_probe, time.perf_counter_ns() - t_probe)
                    )
                    waiting.append(slot)
                    continue
                entry = self.cache.get(form.digest)
                slot["phases"].append(
                    ("cache_probe", t_probe, time.perf_counter_ns() - t_probe)
                )
                if entry is not None:
                    # Hits are served even past their deadline: answering
                    # from cache is cheaper than synthesizing the error.
                    responses[slot["index"]] = self._ok(
                        slot, result_from_entry(form, entry), cached=True
                    )
                    continue
                deadline_ns = slot["deadline_ns"]
                if (
                    deadline_ns is not None
                    and time.perf_counter_ns() >= deadline_ns
                ):
                    # Budget died during decode/canonicalize: still before
                    # dispatch, so no pool capacity is spent on it.
                    responses[slot["index"]] = self._error(
                        slot["request"],
                        "deadline expired before dispatch",
                        decoded=True,
                        slot=slot,
                        code="deadline_exceeded",
                    )
                    continue
                breaker = self.breakers.get(slot["request"].scheduler)
                if not breaker.allow():
                    responses[slot["index"]] = self._error(
                        slot["request"],
                        f"circuit breaker open for scheduler "
                        f"{slot['request'].scheduler!r}",
                        decoded=True,
                        slot=slot,
                        code="breaker_open",
                        retry_after_s=breaker.retry_after_s() or None,
                    )
                    continue
                slot["cached"] = False
                pending[form.digest] = [slot]

            # 4: compute misses through the robust pool
            if pending:
                order = list(pending.values())
                t_dispatch = time.perf_counter_ns()
                items = []
                budgets_s = []
                for group in order:
                    item = group[0]["request"].to_dict()
                    deadline_ns = group[0]["deadline_ns"]
                    if deadline_ns is not None:
                        # Rewrite the wire deadline to the budget actually
                        # left at dispatch, so the worker guard inherits a
                        # deadline that accounts for queueing and decode.
                        left_s = max(
                            (deadline_ns - t_dispatch) / 1e9, 1e-6
                        )
                        item["deadline_ms"] = left_s * 1e3
                        budgets_s.append(left_s)
                    items.append(item)
                # The tightest remaining deadline caps the pool's stall
                # timeout — nobody waits on a compute whose requester has
                # already given up (floored so a near-dead budget doesn't
                # declare every worker hung).
                run_timeout_s = self.pool.config.timeout_s
                if budgets_s:
                    tightest = max(min(budgets_s), MIN_POOL_TIMEOUT_S)
                    run_timeout_s = (
                        tightest
                        if run_timeout_s is None
                        else min(run_timeout_s, tightest)
                    )
                with obs.span("serve.compute", misses=len(order)):
                    outcome = self.pool.run(items, timeout_s=run_timeout_s)
                dispatch_ns = time.perf_counter_ns() - t_dispatch
                for group, result in zip(order, outcome.results):
                    for slot in group:
                        slot["phases"].append(
                            ("dispatch", t_dispatch, dispatch_ns)
                        )
                    first = group[0]
                    breaker = self.breakers.get(first["request"].scheduler)
                    if not isinstance(result, dict):  # a SweepFailure
                        breaker.record_failure()
                        for slot in group:
                            responses[slot["index"]] = self._error(
                                slot["request"],
                                f"scheduling failed: {result}",
                                decoded=True,
                                slot=slot,
                                code="scheduling_failed",
                            )
                        continue
                    degraded = result.get("degraded")
                    if (
                        degraded is not None
                        and degraded.get("reason") in BREAKER_FAILURE_REASONS
                    ):
                        breaker.record_failure()
                    else:
                        breaker.record_success()
                    if degraded is None:
                        # Only primary-path schedules enter the cache: a
                        # degraded answer is legal but not the answer this
                        # digest deserves, and must not outlive the fault.
                        self.cache.put(
                            first["form"].digest,
                            entry_from_result(first["form"], result),
                        )
                    # The computing request gets the worker's raw answer —
                    # bit-identical to an uncached direct call.
                    responses[first["index"]] = self._ok(
                        first, result, cached=False, degraded=degraded
                    )
                    if len(group) > 1:
                        entry = entry_from_result(first["form"], result)
                        for slot in group[1:]:
                            responses[slot["index"]] = self._ok(
                                slot,
                                result_from_entry(slot["form"], entry),
                                cached=True,
                                degraded=degraded,
                            )
        self.registry.histogram(
            "serve.batch.duration_s", SPAN_DURATION_BUCKETS
        ).observe(time.perf_counter() - t_batch)
        return [r for r in responses]  # all filled by construction

    def _span_tree(
        self,
        slot: dict,
        end_ns: int,
        trace_id: str,
        worker: dict | None,
        status: str,
        cached: bool,
    ) -> list[SpanRecord]:
        """The request's span tree: ``serve.request`` root, daemon phases
        at depth 1 (including the trailing ``respond`` phase up to
        ``end_ns``), worker phases at depth 2 — every span stamped with the
        request's trace id."""
        pid = os.getpid()
        started_ns = slot["started_ns"]
        phases = list(slot["phases"])
        last_end = max(t + d for _, t, d in phases) if phases else started_ns
        phases.append(("respond", last_end, max(end_ns - last_end, 0)))
        spans = [
            SpanRecord(
                name="serve.request",
                start_ns=started_ns,
                duration_ns=end_ns - started_ns,
                depth=0,
                attrs={
                    "scheduler": getattr(
                        slot.get("request"), "scheduler", None
                    ),
                    "cached": cached,
                    "status": status,
                    "transport": slot.get("transport", "unknown"),
                    "batch": self.batches,
                },
                pid=pid,
                trace_id=trace_id,
            )
        ]
        for name, start, dur in phases:
            spans.append(
                SpanRecord(
                    name=f"serve.phase.{name}",
                    start_ns=start,
                    duration_ns=dur,
                    depth=1,
                    attrs={},
                    pid=pid,
                    trace_id=trace_id,
                )
            )
        if worker is not None:
            # Fork children share the parent's perf_counter base, so the
            # worker's own timestamps nest correctly under dispatch.
            w_start = int(worker.get("start_ns", started_ns))
            offset = w_start
            for phase, dur in worker.get("phases", {}).items():
                spans.append(
                    SpanRecord(
                        name=f"serve.worker.{phase.removesuffix('_ns')}",
                        start_ns=offset,
                        duration_ns=int(dur),
                        depth=2,
                        attrs={},
                        pid=worker.get("pid"),
                        trace_id=trace_id,
                    )
                )
                offset += int(dur)
        return spans

    def _server_block(
        self, slot: dict, end_ns: int, worker: dict | None
    ) -> dict:
        """The response's ``server`` phase-timing echo."""
        phases = {
            f"{name}_s": dur / 1e9 for name, _, dur in slot["phases"]
        }
        last_end = max(
            (t + d for _, t, d in slot["phases"]), default=slot["started_ns"]
        )
        phases["respond_s"] = max(end_ns - last_end, 0) / 1e9
        server = {
            "pid": os.getpid(),
            "duration_s": (end_ns - slot["started_ns"]) / 1e9,
            "phases": phases,
        }
        if worker is not None:
            server["worker"] = {
                "pid": worker.get("pid"),
                "phases": {
                    f"{name.removesuffix('_ns')}_s": dur / 1e9
                    for name, dur in worker.get("phases", {}).items()
                },
            }
        return server

    def _finish(
        self,
        slot: dict,
        status: str,
        cached: bool,
        worker: dict | None,
        error: str | None = None,
        degraded_reason: str | None = None,
    ) -> tuple[str, dict, float]:
        """Shared request epilogue: retain the trace, feed the SLO tracker
        and the time-series store; returns ``(trace_id, server_block,
        elapsed_s)``."""
        end_ns = time.perf_counter_ns()
        request = slot.get("request")
        trace_id = (
            getattr(request, "trace_id", None) or slot.get("trace_id")
            or uuid.uuid4().hex[:16]
        )
        elapsed = (end_ns - slot["started_ns"]) / 1e9
        server = self._server_block(slot, end_ns, worker)
        self.tracebuf.add(
            RequestTrace(
                trace_id=trace_id,
                request_id=getattr(request, "id", None) or slot.get("id"),
                scheduler=getattr(request, "scheduler", "") or "",
                digest=(
                    slot["form"].digest if slot.get("form") is not None else None
                ),
                cached=cached,
                status=status,
                error=error,
                degraded=degraded_reason,
                start_ns=slot["started_ns"],
                duration_ns=end_ns - slot["started_ns"],
                batch=self.batches,
                transport=slot.get("transport", "unknown"),
                worker_pid=worker.get("pid") if worker else None,
                spans=self._span_tree(
                    slot, end_ns, trace_id, worker, status, cached
                ),
            )
        )
        self.slo.record(status == "ok", elapsed)
        self.timeseries.record("serve.request.duration_s", elapsed)
        if cached:
            self.timeseries.record("serve.cache.hit")
        return trace_id, server, elapsed

    def _ok(
        self,
        slot: dict,
        result: dict,
        cached: bool,
        degraded: dict | None = None,
    ) -> dict:
        request: ScheduleRequest = slot["request"]
        worker = result.get("worker")
        reason = degraded.get("reason", "unknown") if degraded else None
        trace_id, server, elapsed = self._finish(
            slot,
            status="ok",
            cached=cached,
            worker=worker,
            degraded_reason=reason,
        )
        if degraded is not None:
            self.degraded += 1
            self.registry.counter("serve.degraded").inc()
            self.registry.counter(f"serve.degraded.{reason}").inc()
            self.timeseries.record("serve.degraded")
            obs.count("serve.degraded")
        self.registry.counter(f"serve.requests.{request.scheduler}").inc()
        self.registry.histogram(
            f"serve.request.{request.scheduler}.duration_s",
            SPAN_DURATION_BUCKETS,
        ).observe(elapsed)
        with obs.span(
            "serve.request",
            scheduler=request.scheduler,
            digest=slot["form"].digest[:16],
            cached=cached,
            trace_id=trace_id,
        ):
            pass
        return ok_response(
            request.id,
            slot["form"].digest,
            cached,
            result,
            trace_id=trace_id,
            server=server,
            degraded=degraded,
        )

    def _error(
        self,
        doc_or_request,
        message: str,
        decoded: bool = False,
        slot: dict | None = None,
        transport: str = "unknown",
        started_ns: int | None = None,
        phases: list | None = None,
        code: str | None = None,
        retry_after_s: float | None = None,
    ) -> dict:
        self.errors += 1
        self.registry.counter("serve.errors").inc()
        obs.count("serve.error")
        if code is not None:
            self.registry.counter(f"serve.errors.{code}").inc()
            if code == "deadline_exceeded":
                self.deadline_exceeded += 1
                self.registry.counter("serve.deadline_exceeded").inc()
                self.timeseries.record("serve.deadline_exceeded")
        if decoded:
            request_id = doc_or_request.id
        else:
            request_id = (
                doc_or_request.get("id") if isinstance(doc_or_request, dict) else None
            )
        if slot is None:
            # Decode-stage failure: build a minimal slot, recovering the
            # caller's trace id from the raw document when it is valid.
            trace_id = None
            if isinstance(doc_or_request, dict):
                try:
                    wire = trace_from_wire(doc_or_request.get("trace"))
                    trace_id = wire[0] if wire else None
                except ProtocolError:
                    pass
            slot = {
                "started_ns": (
                    started_ns
                    if started_ns is not None
                    else time.perf_counter_ns()
                ),
                "phases": phases or [],
                "transport": transport,
                "trace_id": trace_id,
                "id": request_id,
            }
        trace_id, server, _ = self._finish(
            slot, status="error", cached=False, worker=None, error=message
        )
        return error_response(
            request_id,
            message,
            trace_id=trace_id,
            server=server,
            code=code,
            retry_after_s=retry_after_s,
        )

    # -- introspection -------------------------------------------------------

    @property
    def uptime_s(self) -> float:
        return time.monotonic() - self.started_monotonic

    def refresh_gauges(self) -> None:
        """Push derived values (cache hit ratio, uptime, SLO burn rates)
        into the registry — called at scrape time so ``/metrics`` is always
        current without a background ticker."""
        ratio = self.cache.hit_ratio
        if ratio is not None:
            self.registry.gauge("serve.cache.hit_ratio").set(ratio)
        self.registry.gauge("serve.uptime_s").set(self.uptime_s)
        burn_rate_gauges(self.slo, self.registry)
        self.breakers.publish(self.registry)
        if self.admission is not None:
            self.admission.publish(self.registry)

    def stats(self) -> dict:
        self.refresh_gauges()
        return {
            "requests": self.requests,
            "errors": self.errors,
            "batches": self.batches,
            "degraded": self.degraded,
            "deadline_exceeded": self.deadline_exceeded,
            "uptime_s": self.uptime_s,
            "cache": self.cache.stats(),
            "cache_hit_ratio": self.cache.hit_ratio,
            "transports": dict(sorted(self.transports.items())),
            "traces": self.tracebuf.stats(),
            "slo": self.slo.snapshot(),
            "admission": (
                self.admission.snapshot()
                if self.admission is not None
                else None
            ),
            "breakers": self.breakers.snapshot(),
            "pool": {
                "jobs": self.pool.config.jobs,
                "batches": self.pool.batches,
                "attempts": self.pool.attempts,
                "pool_restarts": self.pool.pool_restarts,
            },
        }

    def run_report(self, name: str = "serve") -> RunReport:
        """The service's lifetime metrics as a comparable RunReport.

        Deterministic facts (request/error/cache counts, the lifetime SLO
        burn rate) live under invariant keys; latency histograms and
        windowed rates live under ``_s``-suffixed paths, which ``repro
        compare`` thresholds instead of pinning — so the report doubles as
        a latency-SLO gate.
        """
        return RunReport(
            name=name,
            metrics={
                "requests": self.requests,
                "errors": self.errors,
                "batches": self.batches,
                "cache": self.cache.stats(),
                "robustness": {
                    # Deterministic robustness counts: all zero on a clean
                    # run, so a baseline pins "no degradation, no sheds".
                    "degraded": self.degraded,
                    "deadline_exceeded": self.deadline_exceeded,
                    "shed": (
                        self.admission.shed_total
                        if self.admission is not None
                        else 0
                    ),
                    "breaker_opened": sum(
                        snap["opened"]
                        for snap in self.breakers.snapshot().values()
                    ),
                },
                "slo": {
                    "objective": self.slo.objective,
                    "bad": self.slo.bad,
                    # Count-based, deterministic — safe to pin (the
                    # windowed burn rates are wall-clock-bucketed and are
                    # exposed via /stats and /metrics instead).
                    "lifetime_burn_rate": self.slo.lifetime_burn_rate,
                },
                "latency": {
                    key: self.registry[key].to_value()
                    for key in self.registry.names()
                    if key.endswith(".duration_s")
                },
            },
            provenance=collect_provenance(jobs=self.pool.config.jobs),
        )
