"""Schedule and simulation metrics used by the benchmark harness."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..core.schedule import Schedule
from ..ir.basicblock import Trace


def speedup(baseline: int | float, improved: int | float) -> float:
    """baseline / improved (>1 means ``improved`` is faster)."""
    if improved <= 0:
        raise ValueError("improved completion time must be positive")
    return baseline / improved


def gap_recovered(local: int, anticipatory: int, global_bound: int) -> float:
    """Fraction of the local→global completion-time gap recovered by
    anticipatory scheduling: (local − anticipatory) / (local − global).
    1.0 = matches the unsafe global bound; 0.0 = no better than local.
    Returns 1.0 when there is no gap to recover."""
    gap = local - global_bound
    if gap <= 0:
        return 1.0
    return (local - anticipatory) / gap


@dataclass
class IdleStats:
    """Idle-slot statistics of a schedule."""

    count: int
    first: int | None
    last: int | None
    mean_position: float | None  # normalized to [0, 1] of the makespan


def idle_stats(schedule: Schedule) -> IdleStats:
    slots = schedule.idle_slots()
    times = [s.time for s in slots]
    span = schedule.makespan
    return IdleStats(
        count=len(times),
        first=min(times) if times else None,
        last=max(times) if times else None,
        mean_position=(sum(times) / len(times) / max(span, 1)) if times else None,
    )


def utilization(schedule: Schedule, total_units: int = 1) -> float:
    """Busy unit-cycles divided by makespan × units."""
    span = schedule.makespan
    if span == 0:
        return 1.0
    busy = sum(
        schedule.graph.exec_time(n) for n in schedule.graph.nodes
    )
    return busy / (span * total_units)


def overlap_cycles(
    trace: Trace, schedule: Schedule
) -> int:
    """Number of runtime cycles in which an instruction issued *before* some
    instruction of an earlier block (a direct measure of the cross-block
    overlap that hardware lookahead realized)."""
    count = 0
    perm = schedule.permutation()
    blocks = [trace.block_index(n) for n in perm]
    for i in range(len(perm)):
        if any(blocks[j] > blocks[i] for j in range(i)):
            count += 1
    return count


def geometric_mean(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("geometric mean of empty sequence")
    prod = 1.0
    for v in values:
        if v <= 0:
            raise ValueError("geometric mean needs positive values")
        prod *= v
    return prod ** (1.0 / len(values))
