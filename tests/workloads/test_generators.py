"""Unit tests for the synthetic workload generators."""

import numpy as np
import pytest

from repro.ir import ANY, FIXED
from repro.workloads import (
    branchy_trace,
    chain_dag,
    chain_of_blocks,
    dot_product_loop,
    dot_product_trace,
    fork_join_dag,
    independent_dag,
    layered_dag,
    partial_products_loop_trace,
    random_dag,
    random_loop,
    random_loop_trace,
    random_trace,
    recurrence_loop,
    reduction_trace,
    saxpy_unrolled_trace,
)


class TestRandomDag:
    def test_size_and_acyclicity(self):
        g = random_dag(40, edge_probability=0.2, seed=0)
        assert len(g) == 40
        assert g.is_acyclic()

    def test_deterministic_by_seed(self):
        g1 = random_dag(20, seed=7)
        g2 = random_dag(20, seed=7)
        assert list(g1.edges()) == list(g2.edges())
        g3 = random_dag(20, seed=8)
        assert list(g1.edges()) != list(g3.edges())

    def test_latency_alphabet_respected(self):
        g = random_dag(30, edge_probability=0.4, latencies=(2, 5), seed=1)
        assert all(lat in (2, 5) for _, _, lat in g.edges())

    def test_exec_and_fu_alphabets(self):
        g = random_dag(
            30, exec_times=(1, 3), fu_classes=(ANY, FIXED), seed=2
        )
        assert {g.exec_time(n) for n in g.nodes} <= {1, 3}
        assert {g.fu_class(n) for n in g.nodes} <= {ANY, FIXED}

    def test_edge_probability_extremes(self):
        assert random_dag(10, edge_probability=0.0, seed=0).num_edges() == 0
        g = random_dag(10, edge_probability=1.0, seed=0)
        assert g.num_edges() == 45

    def test_validation(self):
        with pytest.raises(ValueError):
            random_dag(-1)
        with pytest.raises(ValueError):
            random_dag(5, edge_probability=1.5)

    def test_shared_rng_advances(self):
        rng = np.random.default_rng(0)
        g1 = random_dag(10, seed=rng, prefix="a")
        g2 = random_dag(10, seed=rng, prefix="b")
        assert [e[2] for e in g1.edges()] != [e[2] for e in g2.edges()] or (
            g1.num_edges() != g2.num_edges()
        )


class TestShapedDags:
    def test_layered(self):
        g = layered_dag(4, 3, seed=0)
        assert len(g) == 12
        assert g.is_acyclic()
        # Every non-root node has at least one predecessor.
        roots = g.sources()
        assert all(n in roots or g.predecessors(n) for n in g.nodes)

    def test_fork_join(self):
        g = fork_join_dag(3, 2)
        assert len(g) == 3 * 2 + 2
        assert len(g.sources()) == 1
        assert len(g.sinks()) == 1

    def test_chain_and_independent(self):
        assert chain_dag(5).critical_path_length() == 5 + 4
        assert independent_dag(5).num_edges() == 0


class TestRandomTraces:
    def test_block_structure(self):
        t = random_trace(4, 6, seed=0)
        assert t.num_blocks == 4
        assert all(len(t.block_nodes(i)) == 6 for i in range(4))

    def test_variable_block_sizes(self):
        t = random_trace(5, (2, 9), seed=1)
        sizes = [len(t.block_nodes(i)) for i in range(5)]
        assert all(2 <= s <= 9 for s in sizes)

    def test_cross_edges_go_forward(self):
        t = random_trace(4, 5, cross_probability=0.3, seed=2)
        for u, v, _ in t.cross_edges:
            assert t.block_index(u) < t.block_index(v)

    def test_cross_span_limits_distance(self):
        t = random_trace(6, 4, cross_probability=0.5, cross_span=1, seed=3)
        for u, v, _ in t.cross_edges:
            assert t.block_index(v) - t.block_index(u) == 1

    def test_loop_trace_carried_edges(self):
        lt = random_loop_trace(3, 4, carried_probability=0.2, seed=4)
        assert lt.carried_edges  # at least something carried (probabilistic
        # but seed-pinned)
        assert all(e.distance == 1 for e in lt.carried_edges)

    def test_chain_of_blocks(self):
        graphs = [chain_dag(3, prefix=f"c{i}_") for i in range(3)]
        t = chain_of_blocks(3, graphs, seam_latency=2, seed=0)
        assert t.num_blocks == 3
        assert len(t.cross_edges) == 2
        assert all(lat == 2 for _, _, lat in t.cross_edges)


class TestRandomLoops:
    def test_always_has_carried_edge(self):
        for seed in range(10):
            loop = random_loop(5, carried_probability=0.01, seed=seed)
            assert loop.carried_edges()

    def test_gli_acyclic(self):
        for seed in range(5):
            loop = random_loop(8, seed=seed)
            assert loop.loop_independent_subgraph().is_acyclic()

    def test_recurrence_loop(self):
        loop = recurrence_loop(3, recurrence_latency=4)
        assert loop.recurrence_bound() == 3 + 2 + 4  # chain + latencies


class TestKernels:
    def test_all_kernels_build(self):
        assert len(dot_product_trace()) == 8
        assert len(branchy_trace().graph) == 11
        assert saxpy_unrolled_trace().num_blocks == 2
        assert len(reduction_trace().graph) == 15
        assert len(dot_product_loop()) == 8

    def test_partial_products_loop_trace(self):
        lt = partial_products_loop_trace()
        assert lt.num_blocks == 1
        assert len(lt.carried_edges) == 6

    def test_saxpy_seam_dependences(self):
        t = saxpy_unrolled_trace()
        # The two stores hit the same array: a cross-block memory edge.
        assert any(u == "s0" and v == "s1" for u, v, _ in t.cross_edges)
