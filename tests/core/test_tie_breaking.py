"""Tie-breaking in the rank priority list — a reconstruction finding.

The paper leaves the order among equal ranks free; fuzzing against the
brute-force oracle shows that program-order ties can cost one cycle on rare
instances where two equal-rank roots differ only in the *latencies* of
their out-edges.  Breaking ties with Bernstein-Gertner lexicographic labels
(which encode exactly that structure) is empirically optimal on every
instance we have fuzzed.  These tests pin both the counterexample and the
fix; EXPERIMENTS.md documents the finding.
"""

import pytest

from repro.core import list_schedule, rank_schedule
from repro.core.rank import compute_ranks, fill_deadlines, rank_priority_list
from repro.schedulers import optimal_makespan
from repro.workloads import figure1_bb1, random_dag


def make_counterexample():
    """Seed-86 instance: roots n0, n1 tie at rank 5, but only n1-first is
    optimal (n2 waits on n1's latency-1 edge)."""
    return random_dag(6, edge_probability=0.4, latencies=(0, 1), seed=86)


class TestCounterexample:
    def test_program_order_ties_lose_a_cycle(self):
        g = make_counterexample()
        s, ranks = rank_schedule(g, tie_break="program")
        assert ranks["n0"] == ranks["n1"]  # the tie that hides the latency
        assert s.makespan == optimal_makespan(g) + 1

    def test_label_ties_recover_optimality(self):
        g = make_counterexample()
        s, _ = rank_schedule(g, tie_break="labels")
        assert s.makespan == optimal_makespan(g)

    def test_unknown_mode_rejected(self):
        g = figure1_bb1()
        with pytest.raises(ValueError, match="tie_break"):
            rank_priority_list(g, compute_ranks(g), tie_break="coin-flip")


class TestLabelTieBreakCorpus:
    @pytest.mark.parametrize("seed", range(30))
    @pytest.mark.parametrize("p", [0.25, 0.5])
    def test_labels_optimal_on_01_corpus(self, seed, p):
        g = random_dag(8, edge_probability=p, latencies=(0, 1), seed=seed)
        s, _ = rank_schedule(g, tie_break="labels")
        assert s is not None
        assert s.makespan == optimal_makespan(g)

    @pytest.mark.parametrize("seed", range(15))
    def test_program_ties_within_one_cycle(self, seed):
        g = random_dag(8, edge_probability=0.4, latencies=(0, 1), seed=seed)
        s, _ = rank_schedule(g, tie_break="program")
        assert s is not None
        assert s.makespan <= optimal_makespan(g) + 1


class TestPaperFidelity:
    def test_program_ties_reproduce_paper_ordering(self):
        """The default mode keeps the paper's §2.1 walkthrough order
        (e before x among the rank-95 tie)."""
        g = figure1_bb1()
        s, _ = rank_schedule(g)  # default: program order
        assert s.permutation() == ["e", "x", "b", "w", "r", "a"]

    def test_label_ties_keep_makespan(self):
        g = figure1_bb1()
        s, _ = rank_schedule(g, tie_break="labels")
        assert s.makespan == 7

    def test_label_cache_reused_and_invalidated(self):
        from repro.core.rank import _lexicographic_labels

        g = figure1_bb1()
        l1 = _lexicographic_labels(g)
        assert _lexicographic_labels(g) is l1  # cached
        g.add_node("zz")
        l2 = _lexicographic_labels(g)
        assert l2 is not l1 and "zz" in l2
