"""Unit tests for DOT export."""

from repro.analysis import graph_to_dot, loop_to_dot, schedule_to_dot, trace_to_dot
from repro.core import rank_schedule
from repro.workloads import figure1_bb1, figure2_trace, figure3_loop


class TestGraphDot:
    def test_contains_nodes_and_edges(self):
        dot = graph_to_dot(figure1_bb1())
        assert dot.startswith("digraph")
        assert dot.endswith("}")
        for n in "exbwar":
            assert f'"{n}"' in dot
        assert '"x" -> "w"' in dot

    def test_annotations(self):
        from repro.ir import graph_from_edges

        g = graph_from_edges(
            [("a", "b", 0)], exec_times={"a": 3}, fu_classes={"a": "float"}
        )
        dot = graph_to_dot(g)
        assert "(3 cyc)" in dot
        assert "[float]" in dot
        assert "style=dashed" in dot  # latency-0 edge


class TestLoopDot:
    def test_carried_edges_highlighted(self):
        dot = loop_to_dot(figure3_loop())
        assert "<4,1>" in dot
        assert "color=red" in dot


class TestTraceDot:
    def test_clusters_per_block(self):
        dot = trace_to_dot(figure2_trace(True))
        assert "cluster_0" in dot and "cluster_1" in dot
        assert '"w" -> "z"' in dot
        assert "color=blue" in dot


class TestScheduleDot:
    def test_rank_same_grouping(self):
        s, _ = rank_schedule(figure1_bb1())
        dot = schedule_to_dot(s)
        assert "rank=same" in dot
        assert '"e@0"' in dot  # node annotated with its start time
