"""Blocking clients for the scheduling daemon.

:class:`ScheduleClient` speaks the newline-delimited JSON protocol over
the unix socket; :func:`http_schedule` / :func:`http_get` cover the TCP
transport with nothing but :mod:`http.client`.  Both exist so tests, the
smoke harness and ad-hoc scripts need no third-party HTTP stack.

Connecting races daemon startup in practice (the smoke harness forks the
daemon and dials immediately), so :class:`ScheduleClient` retries
``ECONNREFUSED``/``ENOENT`` connects under a capped, jittered
:class:`~repro.robust.backoff.RetryPolicy` instead of making every caller
hand-roll a poll loop.
"""

from __future__ import annotations

import http.client
import json
import os
import socket
import time

from ..ir.basicblock import Trace
from ..machine.model import MachineModel
from ..robust.backoff import RetryPolicy
from .protocol import ScheduleRequest, server_timings

#: Default connect-retry shape: ~6 tries over roughly two seconds.
DEFAULT_CONNECT_POLICY = RetryPolicy(base_s=0.05, cap_s=1.0, jitter=0.5)

DEFAULT_CONNECT_ATTEMPTS = 6


class ScheduleClient:
    """One blocking unix-socket connection; requests are answered in order,
    so a single client may pipeline freely from one thread.

    The initial connect retries on ``ConnectionRefusedError`` (socket file
    exists, nobody listening yet) and ``FileNotFoundError`` (socket file
    not created yet) up to ``connect_attempts`` times, sleeping per
    ``connect_policy``; pass ``connect_attempts=1`` for the old
    fail-fast behaviour.
    """

    def __init__(
        self,
        socket_path: str | os.PathLike,
        timeout_s: float | None = 30.0,
        connect_attempts: int = DEFAULT_CONNECT_ATTEMPTS,
        connect_policy: RetryPolicy = DEFAULT_CONNECT_POLICY,
        _sleep=time.sleep,
    ) -> None:
        if connect_attempts < 1:
            raise ValueError(
                f"connect_attempts must be >= 1, got {connect_attempts}"
            )
        self.socket_path = os.fspath(socket_path)
        self.connect_attempts = 0  # attempts actually made, for callers/tests
        rng = connect_policy.rng(seed=None)
        for attempt in range(1, connect_attempts + 1):
            self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._sock.settimeout(timeout_s)
            try:
                self._sock.connect(self.socket_path)
                self.connect_attempts = attempt
                break
            except (ConnectionRefusedError, FileNotFoundError):
                self._sock.close()
                self.connect_attempts = attempt
                if attempt == connect_attempts:
                    raise
                _sleep(connect_policy.delay_s(attempt, rng))
        self._file = self._sock.makefile("rwb")

    # -- raw protocol --------------------------------------------------------

    def call(self, doc: dict) -> dict:
        """Send one JSON document, read one JSON response line."""
        self._file.write(json.dumps(doc).encode() + b"\n")
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return json.loads(line)

    # -- conveniences --------------------------------------------------------

    def schedule(
        self,
        trace: Trace,
        machine: MachineModel,
        scheduler: str = "anticipatory",
        request_id: object = None,
        trace_id: str | None = None,
    ) -> dict:
        """Schedule one trace.  A caller-supplied ``trace_id`` is stamped on
        the request and propagates through the daemon's span tree; without
        one, the daemon mints an id and echoes it in ``response["trace"]``.
        """
        request = ScheduleRequest(
            trace=trace,
            machine=machine,
            scheduler=scheduler,
            id=request_id,
            trace_id=trace_id,
        )
        return self.call(request.to_dict())

    def ping(self) -> dict:
        return self.call({"op": "ping"})

    def stats(self) -> dict:
        return self.call({"op": "stats"})["stats"]

    def metrics_text(self) -> str:
        return self.call({"op": "metrics"})["text"]

    def traces(
        self,
        ring: str = "recent",
        n: int | None = None,
        trace_id: str | None = None,
    ) -> dict:
        """Tail-sampled request traces from the daemon's trace buffer.
        ``ring`` is ``recent``/``slow``/``errors``/``degraded``
        (matching the ``/debug/traces``, ``/debug/slow``,
        ``/debug/errors`` and ``/debug/degraded`` HTTP endpoints)."""
        if ring not in ("recent", "slow", "errors", "degraded"):
            raise ValueError(f"unknown trace ring: {ring!r}")
        doc: dict = {"op": "traces" if ring == "recent" else ring}
        if n is not None:
            doc["n"] = n
        if trace_id is not None:
            doc["trace_id"] = trace_id
        return self.call(doc)

    def top(self) -> dict:
        """One self-contained stats+metrics document (``repro top`` feed)."""
        return self.call({"op": "top"})

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ScheduleClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def explain_timings(response: dict) -> str:
    """One human-readable line from a response's ``server`` block — phase
    timings as the daemon measured them (empty string when absent)."""
    server = server_timings(response)
    if not server:
        return ""
    phases = server.get("phases") or {}
    parts = [
        f"{name[:-2]}={value * 1e3:.3f}ms"
        for name, value in phases.items()
        if name.endswith("_s") and isinstance(value, (int, float))
    ]
    worker = server.get("worker") or {}
    for name, value in (worker.get("phases") or {}).items():
        if name.endswith("_s") and isinstance(value, (int, float)):
            parts.append(f"worker.{name[:-2]}={value * 1e3:.3f}ms")
    total = server.get("duration_s")
    head = f"server pid {server.get('pid')}"
    if isinstance(total, (int, float)):
        head += f" total={total * 1e3:.3f}ms"
    return head + (": " + " ".join(parts) if parts else "")


def http_schedule(
    host: str, port: int, doc: dict, timeout_s: float = 30.0
) -> tuple[int, dict]:
    """POST one request (or ``{"requests": [...]}``) to ``/v1/schedule``."""
    conn = http.client.HTTPConnection(host, port, timeout=timeout_s)
    try:
        body = json.dumps(doc)
        conn.request(
            "POST",
            "/v1/schedule",
            body=body,
            headers={"Content-Type": "application/json"},
        )
        response = conn.getresponse()
        return response.status, json.loads(response.read())
    finally:
        conn.close()


def http_get(
    host: str, port: int, path: str, timeout_s: float = 30.0
) -> tuple[int, bytes]:
    conn = http.client.HTTPConnection(host, port, timeout=timeout_s)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        return response.status, response.read()
    finally:
        conn.close()
