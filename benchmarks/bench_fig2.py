"""E2 — paper Figure 2: two-block trace, merged ranks, completion 11 at W=2.

Regenerates the merged rank values and both schedules of §2.3, asserts the
paper's numbers, and benchmarks Algorithm Lookahead on the trace.
"""

from common import emit_metrics, emit_table

from repro.core import algorithm_lookahead, compute_ranks
from repro.machine import paper_machine
from repro.obs import MetricsRegistry, sim_metrics
from repro.sim import simulate_trace
from repro.workloads import figure2_trace

PAPER_RANKS = {
    "g": 100, "v": 100, "a": 100, "r": 100,
    "p": 98, "b": 98, "q": 97, "z": 95,
    "w": 93, "e": 91, "x": 90,
}


def test_fig2_reproduction(benchmark):
    machine = paper_machine(2)

    t_edge = figure2_trace(with_cross_edge=True)
    ranks = compute_ranks(t_edge.graph, {n: 100 for n in t_edge.graph.nodes})
    assert ranks == PAPER_RANKS

    res_edge = algorithm_lookahead(t_edge, machine)
    sim_edge = simulate_trace(
        t_edge, res_edge.block_orders, machine, collect_trace=True
    )
    assert sim_edge.makespan == 11
    p1 = res_edge.block_orders[0]
    assert p1.index("w") < p1.index("b")  # the cross edge reorders BB1

    t_plain = figure2_trace(with_cross_edge=False)
    res_plain = algorithm_lookahead(t_plain, machine)
    sim_plain = simulate_trace(t_plain, res_plain.block_orders, machine)
    assert sim_plain.makespan == 11
    assert res_plain.block_orders == [
        ["x", "e", "r", "b", "w", "a"],
        ["z", "q", "p", "v", "g"],
    ]

    rank_rows = [
        [n, PAPER_RANKS[n], ranks[n]] for n in sorted(PAPER_RANKS, key=PAPER_RANKS.get)
    ]
    emit_table(
        "E2_fig2_ranks",
        ["node", "paper rank @ D=100", "measured"],
        rank_rows,
        title="E2 / Figure 2: merged ranks of BB1 ∪ BB2 with edge w→z (lat 1)",
    )
    emit_table(
        "E2_fig2_schedules",
        ["variant", "P1 (emitted BB1 order)", "P2", "completion (paper: 11)"],
        [
            [
                "no cross edge",
                " ".join(res_plain.block_orders[0]),
                " ".join(res_plain.block_orders[1]),
                sim_plain.makespan,
            ],
            [
                "with w→z edge",
                " ".join(res_edge.block_orders[0]),
                " ".join(res_edge.block_orders[1]),
                sim_edge.makespan,
            ],
        ],
        title="E2 / Figure 2: anticipatory schedules at W = 2",
    )

    # Hardware-counter view of the with-cross-edge execution: IPC, window
    # occupancy and the full stall-attribution breakdown.
    counters = sim_metrics(sim_edge.trace, MetricsRegistry()).to_dict()

    emit_metrics(
        "E2_fig2",
        {
            "window_size": machine.window_size,
            "paper_makespan": 11,
            "makespan_with_cross_edge": sim_edge.makespan,
            "makespan_without_cross_edge": sim_plain.makespan,
            "stall_cycles_with_cross_edge": sim_edge.stall_cycles,
            "stall_cycles_without_cross_edge": sim_plain.stall_cycles,
            "block_orders_with_cross_edge": [
                " ".join(order) for order in res_edge.block_orders
            ],
            "block_orders_without_cross_edge": [
                " ".join(order) for order in res_plain.block_orders
            ],
            **counters,
        },
        machine=machine,
    )
    benchmark(lambda: algorithm_lookahead(figure2_trace(True), machine))
