"""Unit tests for the Rank Algorithm — including every rank value printed in
the paper's §2 examples."""

import pytest

from repro.core import (
    compute_ranks,
    default_deadline,
    fill_deadlines,
    list_schedule,
    minimum_makespan_schedule,
    rank_priority_list,
    rank_schedule,
    rank_schedule_lenient,
)
from repro.ir import ANY, graph_from_edges
from repro.machine import MachineModel
from repro.workloads import figure1_bb1, figure2_trace, random_dag


class TestPaperRanks:
    def test_figure1_ranks_at_deadline_100(self):
        """Paper §2.1: rank(a)=rank(r)=100, rank(w)=rank(b)=98,
        rank(x)=rank(e)=95."""
        g = figure1_bb1()
        ranks = compute_ranks(g, {n: 100 for n in g.nodes})
        assert ranks == {"a": 100, "r": 100, "w": 98, "b": 98, "x": 95, "e": 95}

    def test_figure1_reduced_ranks(self):
        """Paper §2.2: after reducing deadlines to the makespan 7 the ranks
        become x=e=2, w=b=5, a=r=7."""
        g = figure1_bb1()
        ranks = compute_ranks(g, {n: 7 for n in g.nodes})
        assert ranks == {"a": 7, "r": 7, "w": 5, "b": 5, "x": 2, "e": 2}

    def test_figure2_merged_ranks(self):
        """Paper §2.3: with the cross edge w→z and deadline 100 the merged
        ranks are g=v=a=r=100, p=b=98, q=97, z=95, w=93, e=91, x=90."""
        t = figure2_trace(with_cross_edge=True)
        ranks = compute_ranks(t.graph, {n: 100 for n in t.graph.nodes})
        expected = {
            "g": 100, "v": 100, "a": 100, "r": 100,
            "p": 98, "b": 98, "q": 97, "z": 95,
            "w": 93, "e": 91, "x": 90,
        }
        assert ranks == expected

    def test_rank_translation_invariance(self):
        """Shifting all deadlines uniformly shifts all ranks uniformly —
        the property our deadline-only state management relies on."""
        g = figure1_bb1()
        r100 = compute_ranks(g, {n: 100 for n in g.nodes})
        r7 = compute_ranks(g, {n: 7 for n in g.nodes})
        assert all(r100[n] - r7[n] == 93 for n in g.nodes)


class TestRankProperties:
    def test_rank_never_exceeds_deadline(self):
        g = random_dag(25, edge_probability=0.2, seed=5)
        d = {n: 40 for n in g.nodes}
        ranks = compute_ranks(g, d)
        assert all(ranks[n] <= 40 for n in g.nodes)

    def test_rank_respects_successor_gap(self):
        g = graph_from_edges([("a", "b", 1)])
        ranks = compute_ranks(g, {"a": 10, "b": 10})
        # b completes by 10 => starts by 9 => a completes by 8.
        assert ranks["b"] == 10
        assert ranks["a"] == 8

    def test_sink_rank_equals_deadline(self):
        g = figure1_bb1()
        ranks = compute_ranks(g, {n: 42 for n in g.nodes})
        assert ranks["a"] == 42 and ranks["r"] == 42

    def test_partial_deadlines_filled(self):
        g = graph_from_edges([("a", "b", 0)])
        d = fill_deadlines(g, {"b": 3})
        assert d["b"] == 3
        assert d["a"] == default_deadline(g)


class TestListSchedule:
    def test_respects_priority_among_ready(self):
        g = graph_from_edges([], nodes=["a", "b", "c"])
        s = list_schedule(g, ["c", "a", "b"])
        assert s.permutation() == ["c", "a", "b"]

    def test_greedy_no_unnecessary_idle(self):
        g = figure1_bb1()
        s = list_schedule(g, rank_priority_list(g, compute_ranks(g)))
        # Exactly one forced idle slot (makespan 7 for 6 unit-time nodes).
        assert s.makespan == 7
        assert len(s.idle_times()) == 1

    def test_invalid_priority_rejected(self):
        g = graph_from_edges([("a", "b", 0)])
        with pytest.raises(ValueError, match="permutation"):
            list_schedule(g, ["a"])

    def test_schedule_is_valid(self):
        g = random_dag(30, edge_probability=0.15, latencies=(0, 1, 2), seed=9)
        s = list_schedule(g, g.nodes)
        s.validate()

    def test_multi_unit(self):
        g = graph_from_edges([], nodes=["a", "b", "c", "d"])
        m = MachineModel(window_size=1, fu_counts={ANY: 2})
        s = list_schedule(g, g.nodes, m)
        assert s.makespan == 2
        s.validate()

    def test_issue_width_limits(self):
        g = graph_from_edges([], nodes=["a", "b", "c", "d"])
        m = MachineModel(window_size=1, fu_counts={ANY: 4}, issue_width=1)
        s = list_schedule(g, g.nodes, m)
        assert s.makespan == 4

    def test_typed_units(self):
        g = graph_from_edges(
            [], nodes=["f1", "f2", "m1"],
            fu_classes={"f1": "fixed", "f2": "fixed", "m1": "memory"},
        )
        m = MachineModel(window_size=1, fu_counts={"fixed": 1, "memory": 1})
        s = list_schedule(g, g.nodes, m)
        assert s.makespan == 2  # two fixed ops serialize; memory in parallel
        s.validate()

    def test_missing_unit_class_rejected(self):
        g = graph_from_edges([], nodes=["f1"], fu_classes={"f1": "float"})
        m = MachineModel(window_size=1, fu_counts={"fixed": 1})
        with pytest.raises(ValueError, match="lacks"):
            list_schedule(g, g.nodes, m)

    def test_non_unit_exec_times(self):
        g = graph_from_edges([("a", "b", 0)], exec_times={"a": 3})
        s = list_schedule(g, g.nodes)
        assert s.start("b") == 3
        assert s.makespan == 4


class TestRankSchedule:
    def test_figure1_schedule(self):
        """Paper Fig. 1 middle: the Rank Algorithm emits e x _ b w r a."""
        g = figure1_bb1()
        s, ranks = rank_schedule(g)
        assert s is not None
        assert s.permutation() == ["e", "x", "b", "w", "r", "a"]
        assert s.makespan == 7
        assert s.idle_times() == [2]

    def test_feasible_deadline_met(self):
        g = figure1_bb1()
        s, _ = rank_schedule(g, {n: 7 for n in g.nodes})
        assert s is not None and s.makespan == 7

    def test_infeasible_returns_none(self):
        g = figure1_bb1()
        s, _ = rank_schedule(g, {n: 6 for n in g.nodes})
        assert s is None  # optimal makespan is 7

    def test_single_node_deadline_violation(self):
        g = graph_from_edges([("a", "b", 1)])
        s, _ = rank_schedule(g, {"b": 2})  # b can complete at 3 earliest
        assert s is None

    def test_empty_graph(self):
        from repro.ir import DependenceGraph

        s, ranks = rank_schedule(DependenceGraph())
        assert s is not None and s.makespan == 0

    def test_lenient_returns_schedule_and_flag(self):
        g = figure1_bb1()
        s, _, feasible = rank_schedule_lenient(g, {n: 6 for n in g.nodes})
        assert not feasible
        assert s.makespan >= 7
        s.validate()

    def test_minimum_makespan_on_chain(self):
        g = graph_from_edges([("a", "b", 2), ("b", "c", 2)])
        s = minimum_makespan_schedule(g)
        assert s.makespan == 3 * 1 + 2 * 2  # three units + two latency-2 gaps

    def test_deadline_changes_order(self):
        """A tight deadline on a low-priority node must pull it forward."""
        g = graph_from_edges([], nodes=["a", "b", "c"])
        s, _ = rank_schedule(g, {"c": 1})
        assert s is not None
        assert s.start("c") == 0


class TestRankOptimality:
    """The Rank Algorithm is optimal for unit times, 0/1 latencies, 1 FU —
    verified against the brute-force oracle on a fixed corpus (the
    hypothesis suite fuzzes this further)."""

    @pytest.mark.parametrize("seed", range(12))
    def test_matches_bruteforce_makespan(self, seed):
        from repro.schedulers import optimal_makespan

        g = random_dag(
            8, edge_probability=0.3, latencies=(0, 1), seed=seed
        )
        s, _ = rank_schedule(g)
        assert s is not None
        assert s.makespan == optimal_makespan(g)
