"""Tests for the wire codecs: roundtrips and malformed-input errors."""

import pytest

from repro.ir.instruction import ANY
from repro.machine.presets import PAPER_CORE, RS6000_LIKE
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    ScheduleRequest,
    error_response,
    machine_from_dict,
    machine_to_dict,
    ok_response,
    server_timings,
    trace_from_dict,
    trace_from_wire,
    trace_to_dict,
    validate_trace_id,
)
from repro.workloads.traces import random_trace


def _doc(seed=0, **overrides):
    trace = random_trace(2, (3, 4), seed=seed)
    doc = ScheduleRequest(trace=trace, machine=PAPER_CORE).to_dict()
    doc.update(overrides)
    return doc


class TestRoundtrip:
    def test_trace_roundtrip_preserves_everything(self):
        trace = random_trace(
            3, (2, 5), cross_probability=0.3, latencies=(0, 1, 2),
            exec_times=(1, 2), seed=4,
        )
        back = trace_from_dict(trace_to_dict(trace))
        assert [bb.name for bb in back.blocks] == [bb.name for bb in trace.blocks]
        assert list(back.graph.nodes) == list(trace.graph.nodes)
        assert sorted(back.graph.edges()) == sorted(trace.graph.edges())
        for n in trace.graph.nodes:
            assert back.graph.exec_time(n) == trace.graph.exec_time(n)
            assert back.graph.fu_class(n) == trace.graph.fu_class(n)

    def test_machine_roundtrip(self):
        for machine in (PAPER_CORE, RS6000_LIKE):
            back = machine_from_dict(machine_to_dict(machine))
            assert back == machine

    def test_request_roundtrip(self):
        doc = _doc(seed=9)
        request = ScheduleRequest.from_dict(doc)
        assert request.scheduler == "anticipatory"
        assert request.to_dict()["program"] == doc["program"]

    def test_minimal_node_entries(self):
        trace = trace_from_dict(
            {"blocks": [{"nodes": ["a", ["b", 2], ["c", 1, ANY]],
                         "edges": [["a", "b"]]}]}
        )
        assert trace.graph.exec_time("b") == 2
        assert trace.graph.latency("a", "b") == 0


class TestErrors:
    def test_unknown_scheduler(self):
        with pytest.raises(ProtocolError, match="unknown scheduler"):
            ScheduleRequest.from_dict(_doc(scheduler="magic"))

    def test_missing_program(self):
        doc = _doc()
        del doc["program"]
        with pytest.raises(ProtocolError, match="program"):
            ScheduleRequest.from_dict(doc)

    def test_future_protocol_version(self):
        with pytest.raises(ProtocolError, match="version"):
            ScheduleRequest.from_dict(_doc(v=PROTOCOL_VERSION + 1))

    def test_empty_blocks(self):
        with pytest.raises(ProtocolError, match="blocks"):
            trace_from_dict({"blocks": []})

    def test_bad_edge_endpoint(self):
        with pytest.raises(ProtocolError, match="bad edge"):
            trace_from_dict(
                {"blocks": [{"nodes": ["a"], "edges": [["a", "ghost"]]}]}
            )

    def test_non_object_request(self):
        with pytest.raises(ProtocolError, match="object"):
            ScheduleRequest.from_dict([1, 2])

    def test_infeasible_machine_rejected(self):
        doc = _doc()
        # Retype one instruction to a class the machine has no unit for.
        doc["program"]["blocks"][0]["nodes"][0][2] = "vector"
        doc["machine"] = {"window_size": 4, "fu_counts": {"fixed": 1}}
        with pytest.raises(ProtocolError, match="cannot execute"):
            ScheduleRequest.from_dict(doc)


class TestResponses:
    def test_ok_response_shape(self):
        result = {
            "block_orders": [["a", "b"]],
            "makespan": 2,
            "stall_cycles": 0,
            "schedule_digest": "ff" * 32,
        }
        out = ok_response("rq-1", "ab" * 32, True, result)
        assert out["ok"] and out["cached"] and out["id"] == "rq-1"
        assert out["digest"] == "ab" * 32
        assert out["block_orders"] == [["a", "b"]]

    def test_error_response_echoes_id(self):
        out = error_response("rq-2", "boom")
        assert out == {
            "v": PROTOCOL_VERSION, "ok": False, "error": "boom", "id": "rq-2",
        }

    def test_error_response_without_id(self):
        assert "id" not in error_response(None, "boom")

    def test_responses_echo_trace_and_server(self):
        result = {
            "block_orders": [["a"]],
            "makespan": 1,
            "stall_cycles": 0,
            "schedule_digest": "ff" * 32,
        }
        server = {"pid": 42, "duration_s": 0.001, "phases": {"decode_s": 0.0}}
        out = ok_response("r", "ab" * 32, False, result,
                          trace_id="cafe", server=server)
        assert out["trace"] == {"trace_id": "cafe"}
        assert server_timings(out)["pid"] == 42
        err = error_response("r", "boom", trace_id="dead")
        assert err["trace"] == {"trace_id": "dead"}

    def test_worker_block_never_leaks_into_response(self):
        result = {
            "block_orders": [["a"]],
            "makespan": 1,
            "stall_cycles": 0,
            "schedule_digest": "ff" * 32,
            "worker": {"pid": 7, "phases": {}},
        }
        assert "worker" not in ok_response("r", "ab" * 32, False, result)

    def test_server_timings_absent(self):
        assert server_timings({"ok": True}) is None


class TestTraceField:
    def test_trace_id_round_trips_through_request(self):
        doc = _doc(seed=1)
        request = ScheduleRequest.from_dict(doc)
        assert request.trace_id is None
        traced = ScheduleRequest.from_dict(dict(doc, trace="cafef00d"))
        assert traced.trace_id == "cafef00d"
        assert traced.to_dict()["trace"] == {"trace_id": "cafef00d"}

    def test_trace_mapping_with_parent_span(self):
        doc = dict(
            _doc(seed=2),
            trace={"trace_id": "cafef00d", "parent_span_id": "span1"},
        )
        request = ScheduleRequest.from_dict(doc)
        assert request.trace_id == "cafef00d"
        assert request.parent_span_id == "span1"
        assert request.to_dict()["trace"] == {
            "trace_id": "cafef00d", "parent_span_id": "span1",
        }

    def test_trace_from_wire_forms(self):
        assert trace_from_wire(None) is None
        assert trace_from_wire("abc") == ("abc", None)
        assert trace_from_wire({"trace_id": "abc"}) == ("abc", None)
        with pytest.raises(ProtocolError, match="trace"):
            trace_from_wire(123)

    def test_trace_id_validation(self):
        validate_trace_id("a-b_C9")
        for bad in ("", "x" * 65, "has space", "näh"):
            with pytest.raises(ProtocolError, match="trace"):
                validate_trace_id(bad)

    def test_bad_trace_id_rejected_at_decode(self):
        with pytest.raises(ProtocolError, match="trace"):
            ScheduleRequest.from_dict(dict(_doc(seed=3), trace="bad id"))
