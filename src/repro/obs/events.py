"""Structured simulator events and traces.

The cycle-level counterpart of the span recorder: :class:`SimEvent` captures
one thing the lookahead hardware did (or failed to do) in one cycle, and
:class:`SimTrace` is the full event stream of one windowed execution,
attached to :class:`~repro.sim.window.SimResult` when tracing is enabled.

Event kinds
-----------

``issue``
    An instruction left the window and started executing (``node``, ``unit``).
``stall``
    A cycle before the last issue in which nothing issued; ``detail`` names
    the soonest-ready window instruction and what it is waiting on
    (dependence latency, unissued predecessor, or busy functional units).
``barrier_wait``
    A stall cycle spent waiting on a misprediction barrier (window flush):
    the head may not issue until the barrier releases plus its penalty.
``window_advance``
    The window head moved forward (its first instruction had issued).
``barrier_release``
    All instructions before a barrier completed; ``detail`` records the
    release cycle and penalty.
``deadlock``
    The stream can never make progress (emitted just before
    :class:`~repro.sim.window.SimulationDeadlock` is raised).

Every event carries the window ``head`` (stream index) and the window
``occupancy`` — the number of *unissued* instructions currently visible to
the issue logic — so occupancy-over-time can be plotted directly.

``SimTrace.stall_cycles`` counts distinct ``stall`` + ``barrier_wait``
cycles and always equals ``SimResult.stall_cycles`` for the same execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Kinds that represent a cycle in which nothing issued.
STALL_KINDS = ("stall", "barrier_wait")

EVENT_KINDS = (
    "issue",
    "stall",
    "barrier_wait",
    "window_advance",
    "barrier_release",
    "deadlock",
)


@dataclass(frozen=True)
class SimEvent:
    """One cycle-level simulator event (see module docstring for kinds)."""

    cycle: int
    kind: str
    node: str | None = None
    unit: str | None = None
    #: Stream index of the window head when the event fired.
    head: int | None = None
    #: Unissued instructions in the window [head, head+W) at the event.
    occupancy: int | None = None
    detail: str = ""
    #: Structured attribution category for stall-kind events (one of
    #: :data:`~repro.obs.metrics.STALL_CAUSES`); ``None`` for other kinds.
    cause: str | None = None

    def to_dict(self) -> dict:
        out: dict = {"type": "sim", "cycle": self.cycle, "kind": self.kind}
        for key in ("node", "unit", "head", "occupancy", "cause"):
            value = getattr(self, key)
            if value is not None:
                out[key] = value
        if self.detail:
            out["detail"] = self.detail
        return out

    @classmethod
    def from_dict(cls, d: dict) -> "SimEvent":
        return cls(
            cycle=int(d["cycle"]),
            kind=str(d["kind"]),
            node=d.get("node"),
            unit=d.get("unit"),
            head=d.get("head"),
            occupancy=d.get("occupancy"),
            detail=d.get("detail", ""),
            cause=d.get("cause"),
        )


@dataclass
class SimTrace:
    """The full event stream of one windowed execution."""

    window_size: int
    num_instructions: int
    label: str = ""
    events: list[SimEvent] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.events)

    @property
    def stall_cycles(self) -> int:
        """Distinct cycles spent stalled (``stall`` + ``barrier_wait``) —
        equal to ``SimResult.stall_cycles`` of the same execution."""
        return len({e.cycle for e in self.events if e.kind in STALL_KINDS})

    @property
    def issue_count(self) -> int:
        return sum(1 for e in self.events if e.kind == "issue")

    @property
    def window_advances(self) -> int:
        return sum(1 for e in self.events if e.kind == "window_advance")

    @property
    def barrier_stall_cycles(self) -> int:
        return len({e.cycle for e in self.events if e.kind == "barrier_wait"})

    @property
    def max_cycle(self) -> int:
        return max((e.cycle for e in self.events), default=0)

    def events_by_cycle(self) -> dict[int, list[SimEvent]]:
        """Events grouped by cycle, in cycle order."""
        out: dict[int, list[SimEvent]] = {}
        for e in sorted(self.events, key=lambda e: e.cycle):
            out.setdefault(e.cycle, []).append(e)
        return out

    def occupancy_by_cycle(self) -> dict[int, int]:
        """Window occupancy over time (last value recorded in each cycle)."""
        out: dict[int, int] = {}
        for e in self.events:
            if e.occupancy is not None:
                out[e.cycle] = e.occupancy
        return dict(sorted(out.items()))

    def counts(self) -> dict[str, int]:
        """Event counts by kind."""
        out: dict[str, int] = {}
        for e in self.events:
            out[e.kind] = out.get(e.kind, 0) + 1
        return out
