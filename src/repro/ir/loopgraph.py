"""Loop dependence graphs with ⟨latency, distance⟩ edge labels (paper §5).

``distance = 0`` marks a loop-independent dependence (must be acyclic as a
subgraph); ``distance > 0`` marks a loop-carried dependence from iteration
``k`` to iteration ``k + distance``.  Self-edges are legal when carried
(e.g. the induction-variable updates in Figure 3 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

from .depgraph import CycleError, DependenceGraph
from .instruction import ANY


@dataclass(frozen=True)
class LoopEdge:
    """A dependence edge in a loop body graph."""

    src: str
    dst: str
    latency: int
    distance: int

    def __post_init__(self) -> None:
        if self.latency < 0:
            raise ValueError(f"latency must be >= 0, got {self.latency}")
        if self.distance < 0:
            raise ValueError(f"distance must be >= 0, got {self.distance}")
        if self.src == self.dst and self.distance == 0:
            raise CycleError(f"loop-independent self edge on {self.src!r}")


def instance_name(node: str, iteration: int) -> str:
    """Name of the ``iteration``-th instance of ``node`` in an unrolled graph."""
    return f"{node}[{iteration}]"


class LoopGraph:
    """Dependence graph of a single-basic-block loop body."""

    def __init__(self) -> None:
        self._exec_time: dict[str, int] = {}
        self._fu_class: dict[str, str] = {}
        self._order: list[str] = []
        self._edges: list[LoopEdge] = []

    # Construction ---------------------------------------------------------------

    def add_node(self, name: str, exec_time: int = 1, fu_class: str = ANY) -> None:
        if name in self._exec_time:
            raise ValueError(f"duplicate node {name!r}")
        if exec_time < 1:
            raise ValueError(f"exec_time must be >= 1, got {exec_time}")
        self._exec_time[name] = exec_time
        self._fu_class[name] = fu_class
        self._order.append(name)

    def add_edge(self, u: str, v: str, latency: int, distance: int) -> None:
        if u not in self._exec_time or v not in self._exec_time:
            missing = u if u not in self._exec_time else v
            raise KeyError(f"unknown node {missing!r}")
        self._edges.append(LoopEdge(u, v, latency, distance))
        if distance == 0:
            # Eagerly verify the loop-independent subgraph stays acyclic.
            self.loop_independent_subgraph()

    # Queries --------------------------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._exec_time

    def __len__(self) -> int:
        return len(self._order)

    def __iter__(self) -> Iterator[str]:
        return iter(self._order)

    @property
    def nodes(self) -> list[str]:
        return list(self._order)

    def edges(self) -> list[LoopEdge]:
        return list(self._edges)

    def exec_time(self, u: str) -> int:
        return self._exec_time[u]

    def fu_class(self, u: str) -> str:
        return self._fu_class[u]

    def independent_edges(self) -> list[LoopEdge]:
        return [e for e in self._edges if e.distance == 0]

    def carried_edges(self) -> list[LoopEdge]:
        return [e for e in self._edges if e.distance > 0]

    def carried_targets(self) -> list[str]:
        """Targets of non-self loop-carried edges, in program order (dedup)."""
        targets = {e.dst for e in self.carried_edges() if e.src != e.dst}
        return [n for n in self._order if n in targets]

    def carried_sources(self) -> list[str]:
        """Sources of non-self loop-carried edges, in program order (dedup)."""
        sources = {e.src for e in self.carried_edges() if e.src != e.dst}
        return [n for n in self._order if n in sources]

    # Derived graphs ---------------------------------------------------------------

    def loop_independent_subgraph(self) -> DependenceGraph:
        """G_li from paper §5.2: all nodes, only the distance-0 edges."""
        g = DependenceGraph()
        for n in self._order:
            g.add_node(n, self._exec_time[n], self._fu_class[n])
        for e in self.independent_edges():
            g.add_edge(e.src, e.dst, e.latency)
        g.topological_order()  # raises CycleError on an illegal body
        return g

    def unroll(self, iterations: int) -> DependenceGraph:
        """Fully unrolled acyclic graph over ``iterations`` iteration instances.

        Edge ``(u, v, lat, d)`` becomes ``u[k] -> v[k+d]`` for every valid k.
        This models the paper's observation that the completion time of n
        iterations under hardware lookahead equals that of the completely
        unrolled loop (ignoring loop-back branch cost).
        """
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        g = DependenceGraph()
        for k in range(iterations):
            for n in self._order:
                g.add_node(instance_name(n, k), self._exec_time[n], self._fu_class[n])
        for e in self._edges:
            for k in range(iterations - e.distance):
                g.add_edge(
                    instance_name(e.src, k),
                    instance_name(e.dst, k + e.distance),
                    e.latency,
                )
        return g

    def recurrence_bound(self) -> int:
        """Lower bound on the steady-state initiation interval from dependence
        cycles: max over cycles C of ceil(sum(exec + latency) / sum(distance)).

        Computed by iterating a Bellman-Ford-style check over candidate II
        values (II is bounded by total work, so the loop terminates quickly
        for the body sizes this library targets).
        """
        total = sum(self._exec_time[n] for n in self._order) + sum(
            e.latency for e in self._edges
        )
        for ii in range(1, total + 1):
            if self._feasible_ii(ii):
                return ii
        return max(1, total)

    def _feasible_ii(self, ii: int) -> bool:
        """True iff no positive cycle exists for edge weights
        exec(u) + latency - II * distance (longest-path feasibility)."""
        dist = {n: 0 for n in self._order}
        for _ in range(len(self._order)):
            changed = False
            for e in self._edges:
                w = self._exec_time[e.src] + e.latency - ii * e.distance
                if dist[e.src] + w > dist[e.dst]:
                    dist[e.dst] = dist[e.src] + w
                    changed = True
            if not changed:
                return True
        # One more relaxation round detecting a positive cycle.
        for e in self._edges:
            w = self._exec_time[e.src] + e.latency - ii * e.distance
            if dist[e.src] + w > dist[e.dst]:
                return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"LoopGraph(n={len(self)}, e={len(self._edges)})"


def loop_from_edges(
    edges: Iterable[tuple[str, str, int, int]],
    nodes: Iterable[str] = (),
    exec_times: Mapping[str, int] | None = None,
    fu_classes: Mapping[str, str] | None = None,
) -> LoopGraph:
    """Build a :class:`LoopGraph` from ``(src, dst, latency, distance)`` tuples."""
    exec_times = exec_times or {}
    fu_classes = fu_classes or {}
    g = LoopGraph()

    def ensure(n: str) -> None:
        if n not in g:
            g.add_node(n, exec_times.get(n, 1), fu_classes.get(n, ANY))

    for n in nodes:
        ensure(n)
    edge_list = list(edges)
    for u, v, _, _ in edge_list:
        ensure(u)
        ensure(v)
    for u, v, lat, dist in edge_list:
        g.add_edge(u, v, lat, dist)
    return g
