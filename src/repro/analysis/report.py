"""Plain-text table rendering for the benchmark harness.

Each benchmark prints the rows the paper (or our prospective-study design in
DESIGN.md) reports, in a stable ASCII format so EXPERIMENTS.md can quote them
verbatim.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render a fixed-width table with a header rule."""
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: list[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.3f}"
    return str(cell)


def format_markdown_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render a GitHub-flavoured-markdown table (optionally under a
    bold title line)."""
    str_rows = [[_fmt(c) for c in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row width does not match headers")
    lines: list[str] = []
    if title:
        lines.append(f"**{title}**")
        lines.append("")
    lines.append("| " + " | ".join(headers) + " |")
    lines.append("|" + "|".join(" --- " for _ in headers) + "|")
    for row in str_rows:
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)


def print_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> None:
    print()
    print(format_table(headers, rows, title))
    print()


def trace_summary(trace) -> str:
    """Stall/occupancy summary of a :class:`~repro.obs.events.SimTrace`:
    issue and stall totals, stall causes, and window-occupancy statistics."""
    counts = trace.counts()
    occupancy = list(trace.occupancy_by_cycle().values())
    rows = [
        ["instructions", trace.num_instructions],
        ["window size", trace.window_size],
        ["cycles traced", trace.max_cycle + 1 if trace.events else 0],
        ["issues", counts.get("issue", 0)],
        ["stall cycles", trace.stall_cycles],
        ["  dependence/resource stalls", trace.stall_cycles - trace.barrier_stall_cycles],
        ["  barrier-wait stalls", trace.barrier_stall_cycles],
        ["window advances", counts.get("window_advance", 0)],
        ["barrier releases", counts.get("barrier_release", 0)],
    ]
    if occupancy:
        rows.append(
            ["mean window occupancy", sum(occupancy) / len(occupancy)]
        )
        rows.append(["max window occupancy", max(occupancy)])
    title = "simulation summary" + (f" — {trace.label}" if trace.label else "")
    return format_table(["metric", "value"], rows, title=title)


def phase_summary(recorder) -> str:
    """Wall-time-per-phase summary of a
    :class:`~repro.obs.recorder.TraceRecorder`'s spans."""
    rows = [
        [name, calls, f"{total * 1e3:.3f}", f"{total * 1e3 / calls:.3f}"]
        for name, (calls, total) in recorder.span_stats().items()
    ]
    return format_table(
        ["phase", "calls", "total ms", "mean ms"],
        rows,
        title="pipeline phase wall time",
    )


def stall_attribution_summary(trace, markdown: bool = False) -> str:
    """Stall-attribution table of a :class:`~repro.obs.events.SimTrace`:
    one row per cause, totalling exactly ``trace.stall_cycles``."""
    from ..obs.metrics import stall_attribution

    attribution = stall_attribution(trace)
    total = trace.stall_cycles
    rows = [
        [cause, stalled, f"{stalled / total * 100:.1f}%" if total else "-"]
        for cause, stalled in attribution.items()
    ]
    rows.append(["total", total, "100.0%" if total else "-"])
    table = format_markdown_table if markdown else format_table
    title = "stall attribution" + (f" — {trace.label}" if trace.label else "")
    return table(["cause", "stall cycles", "share"], rows, title=title)


def render_run_report(report, markdown: bool = False) -> str:
    """Render a :class:`~repro.obs.runreport.RunReport` as a terminal (or
    markdown) summary: provenance, flattened metrics, per-phase wall times."""
    from ..obs.runreport import flatten_metrics

    table = format_markdown_table if markdown else format_table
    parts: list[str] = []
    header = f"RunReport {report.name or '(unnamed)'} " \
             f"(schema v{report.schema_version})"
    parts.append(f"## {header}" if markdown else header)

    if report.provenance:
        rows = [
            [key, _fmt(value)]
            for key, value in sorted(flatten_metrics(report.provenance).items())
        ]
        parts.append(table(["provenance", "value"], rows))

    metric_rows = [
        [path, _fmt(value)]
        for path, value in sorted(flatten_metrics(report.metrics).items())
    ]
    parts.append(table(["metric", "value"], metric_rows))

    if report.phases:
        phase_rows = [
            [name, f"{seconds * 1e3:.3f}"]
            for name, seconds in sorted(
                report.phases.items(), key=lambda kv: -kv[1]
            )
        ]
        parts.append(table(["phase", "total ms"], phase_rows,
                           title="pipeline phase wall time"))
    return "\n\n".join(parts)


def render_report_diff(diff, markdown: bool = False) -> str:
    """Render a :class:`~repro.obs.runreport.ReportDiff` as a delta table
    plus a pass/fail summary line."""
    table = format_markdown_table if markdown else format_table
    changed = diff.changed()
    parts: list[str] = []
    if changed:
        rows = [
            [d.metric, _fmt(d.baseline), _fmt(d.new), d.status, d.note]
            for d in changed
        ]
        parts.append(table(
            ["metric", "baseline", "new", "status", "note"],
            rows,
            title=f"report deltas (threshold {diff.threshold_pct:g}%)",
        ))
    ok_count = sum(1 for d in diff.deltas if d.status == "ok")
    failures = diff.failures
    if failures:
        parts.append(
            f"FAIL: {len(failures)} regression(s)/drift(s), "
            f"{len(changed) - len(failures)} warning(s), {ok_count} metrics ok"
        )
    else:
        parts.append(
            f"OK: {ok_count} metrics within tolerance"
            + (f", {len(changed)} warning(s)" if changed else "")
        )
    return "\n\n".join(parts)
