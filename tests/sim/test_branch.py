"""Unit tests for the branch-prediction study harness."""

import pytest

from repro.core import algorithm_lookahead
from repro.machine import paper_machine
from repro.sim import BranchModel, run_with_prediction
from repro.workloads import figure2_trace, random_trace


class TestBranchModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            BranchModel(accuracy=1.5)
        with pytest.raises(ValueError):
            BranchModel(penalty=-1)

    def test_defaults(self):
        m = BranchModel()
        assert 0 <= m.accuracy <= 1 and m.penalty >= 0


class TestPredictionStudy:
    def test_bounds_ordering(self):
        t = figure2_trace()
        m = paper_machine(2)
        orders = algorithm_lookahead(t, m).block_orders
        study = run_with_prediction(t, orders, BranchModel(0.5, 2), m, trials=16)
        assert study.best_makespan <= study.mean_makespan <= study.worst_makespan
        assert len(study.samples) == 16

    def test_perfect_prediction_equals_best(self):
        t = figure2_trace()
        m = paper_machine(2)
        orders = algorithm_lookahead(t, m).block_orders
        study = run_with_prediction(t, orders, BranchModel(1.0, 2), m, trials=4)
        assert study.mean_makespan == study.best_makespan

    def test_zero_accuracy_equals_worst(self):
        t = figure2_trace()
        m = paper_machine(2)
        orders = algorithm_lookahead(t, m).block_orders
        study = run_with_prediction(t, orders, BranchModel(0.0, 2), m, trials=4)
        assert study.mean_makespan == study.worst_makespan

    def test_deterministic_with_seed(self):
        t = random_trace(4, 4, cross_probability=0.1, seed=1)
        m = paper_machine(3)
        orders = [list(t.block_nodes(i)) for i in range(t.num_blocks)]
        s1 = run_with_prediction(t, orders, BranchModel(0.7, 2), m, trials=8, seed=42)
        s2 = run_with_prediction(t, orders, BranchModel(0.7, 2), m, trials=8, seed=42)
        assert s1.samples == s2.samples

    def test_worse_accuracy_not_faster(self):
        t = random_trace(5, 5, cross_probability=0.1, seed=3)
        m = paper_machine(4)
        orders = [list(t.block_nodes(i)) for i in range(t.num_blocks)]
        hi = run_with_prediction(t, orders, BranchModel(0.95, 3), m, trials=24, seed=0)
        lo = run_with_prediction(t, orders, BranchModel(0.3, 3), m, trials=24, seed=0)
        assert lo.mean_makespan >= hi.mean_makespan
