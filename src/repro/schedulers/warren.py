"""Warren's scheduler for the IBM RISC System/6000 (paper §6, ref. [12]).

Warren's product-compiler algorithm "does greedy scheduling on a prioritized
list" for a machine with separate fixed- and floating-point units.  The
published priority combines: the instruction's maximum delay to the end of
the block (critical path including latencies), its *own* result latency
(start long-latency operations early), and the number of instructions it
uncovers, evaluated over a ready list per cycle.  This is a faithful-in-
spirit reconstruction used as the "production local scheduler" baseline.
"""

from __future__ import annotations

from ..ir.depgraph import DependenceGraph
from ..machine.model import MachineModel
from ..machine.presets import RS6000_LIKE
from ..core.rank import list_schedule
from ..core.schedule import Schedule


def warren_priority(graph: DependenceGraph) -> list[str]:
    """Static priority list: critical path, own latency, uncovering, order."""
    dist = graph.path_length_to_sinks()
    index = {n: i for i, n in enumerate(graph.nodes)}
    own_latency = {
        n: max((lat for lat in graph.successors(n).values()), default=0)
        + graph.exec_time(n)
        - 1
        for n in graph.nodes
    }
    return sorted(
        graph.nodes,
        key=lambda n: (
            -dist[n],
            -own_latency[n],
            -len(graph.successors(n)),
            index[n],
        ),
    )


def warren_schedule(
    graph: DependenceGraph, machine: MachineModel | None = None
) -> Schedule:
    """Greedy list scheduling under :func:`warren_priority` (defaults to the
    RS/6000-like multi-unit machine the algorithm targeted)."""
    machine = machine or RS6000_LIKE
    return list_schedule(graph, warren_priority(graph), machine)


def warren_order(
    graph: DependenceGraph, machine: MachineModel | None = None
) -> list[str]:
    return warren_schedule(graph, machine).permutation()
