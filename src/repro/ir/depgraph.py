"""Latency-labelled dependence DAGs.

A :class:`DependenceGraph` is the input to every scheduler in this library.
Nodes are instruction names (strings); each directed edge ``(u, v)`` carries an
integer *latency*: ``v`` may start no earlier than ``completion(u) + latency``.
With unit execution times and 0/1 latencies this is exactly the model of the
paper's core results; nodes may optionally carry execution times > 1 and
functional-unit classes for the §4.2 heuristic generalizations.

The class is deliberately self-contained (no networkx dependency) because the
rank computation needs tight control over reachability; descendant sets are
materialized as a numpy boolean matrix computed once per graph revision and
cached.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

import numpy as np

from .instruction import ANY, Instruction


class CycleError(ValueError):
    """Raised when a dependence graph that must be acyclic contains a cycle."""


class DependenceGraph:
    """Directed acyclic graph of instructions with latency-weighted edges."""

    def __init__(self) -> None:
        self._succ: dict[str, dict[str, int]] = {}
        self._pred: dict[str, dict[str, int]] = {}
        self._exec_time: dict[str, int] = {}
        self._fu_class: dict[str, str] = {}
        self._order: list[str] = []  # insertion order of nodes
        self._topo_cache: list[str] | None = None
        self._reach_cache: tuple[dict[str, int], np.ndarray] | None = None
        self._names_cache: np.ndarray | None = None  # program order, object dtype
        #: Scratch space for derived analyses (e.g. scheduler labellings);
        #: cleared whenever the graph changes.
        self.analysis_cache: dict[str, object] = {}

    # Construction -------------------------------------------------------------

    def add_node(self, name: str, exec_time: int = 1, fu_class: str = ANY) -> None:
        """Add an instruction node.  Re-adding an existing node is an error."""
        if name in self._succ:
            raise ValueError(f"duplicate node {name!r}")
        if exec_time < 1:
            raise ValueError(f"exec_time must be >= 1, got {exec_time}")
        self._succ[name] = {}
        self._pred[name] = {}
        self._exec_time[name] = exec_time
        self._fu_class[name] = fu_class
        self._order.append(name)
        self._invalidate()

    def add_instruction(self, instr: Instruction) -> None:
        self.add_node(instr.name, exec_time=instr.exec_time, fu_class=instr.fu_class)

    def add_edge(self, u: str, v: str, latency: int = 0) -> None:
        """Add (or tighten) a dependence edge ``u -> v``.

        Parallel edges are collapsed keeping the maximum latency, matching the
        usual dependence-graph convention.
        """
        if u not in self._succ or v not in self._succ:
            missing = u if u not in self._succ else v
            raise KeyError(f"unknown node {missing!r}")
        if u == v:
            raise CycleError(f"self edge on {u!r} (use LoopGraph for carried deps)")
        if latency < 0:
            raise ValueError(f"latency must be >= 0, got {latency}")
        old = self._succ[u].get(v)
        if old is None or latency > old:
            self._succ[u][v] = latency
            self._pred[v][u] = latency
            self._invalidate()

    def _invalidate(self) -> None:
        self._topo_cache = None
        self._reach_cache = None
        self._names_cache = None
        self.analysis_cache.clear()

    # Queries ------------------------------------------------------------------

    def __contains__(self, name: str) -> bool:
        return name in self._succ

    def __len__(self) -> int:
        return len(self._succ)

    def __iter__(self) -> Iterator[str]:
        return iter(self._order)

    @property
    def nodes(self) -> list[str]:
        """Nodes in insertion (program) order."""
        return list(self._order)

    def edges(self) -> Iterator[tuple[str, str, int]]:
        for u in self._order:
            for v, lat in self._succ[u].items():
                yield u, v, lat

    def num_edges(self) -> int:
        return sum(len(s) for s in self._succ.values())

    def successors(self, u: str) -> Mapping[str, int]:
        """Mapping successor -> edge latency."""
        return self._succ[u]

    def predecessors(self, v: str) -> Mapping[str, int]:
        """Mapping predecessor -> edge latency."""
        return self._pred[v]

    def exec_time(self, u: str) -> int:
        return self._exec_time[u]

    def fu_class(self, u: str) -> str:
        return self._fu_class[u]

    def latency(self, u: str, v: str) -> int:
        return self._succ[u][v]

    def sources(self) -> list[str]:
        """Nodes with no predecessors, in program order."""
        return [n for n in self._order if not self._pred[n]]

    def sinks(self) -> list[str]:
        """Nodes with no successors, in program order."""
        return [n for n in self._order if not self._succ[n]]

    # Topology -----------------------------------------------------------------

    def topological_order(self) -> list[str]:
        """Kahn topological order (stable w.r.t. program order); cached.

        Raises :class:`CycleError` if the graph has a cycle.
        """
        if self._topo_cache is None:
            indeg = {n: len(self._pred[n]) for n in self._order}
            # Stable worklist: scan program order repeatedly via index queue.
            ready = [n for n in self._order if indeg[n] == 0]
            out: list[str] = []
            head = 0
            while head < len(ready):
                n = ready[head]
                head += 1
                out.append(n)
                for s in self._succ[n]:
                    indeg[s] -= 1
                    if indeg[s] == 0:
                        ready.append(s)
            if len(out) != len(self._order):
                raise CycleError("dependence graph contains a cycle")
            self._topo_cache = out
        return list(self._topo_cache)

    def is_acyclic(self) -> bool:
        try:
            self.topological_order()
            return True
        except CycleError:
            return False

    def _reachability(self) -> tuple[dict[str, int], np.ndarray]:
        """Boolean matrix R with R[i, j] = True iff node j is a strict
        descendant of node i.  Computed by a reverse-topological DP with
        vectorized row ORs; cached until the graph changes."""
        if self._reach_cache is None:
            topo = self.topological_order()
            idx = {n: i for i, n in enumerate(self._order)}
            n = len(self._order)
            reach = np.zeros((n, n), dtype=bool)
            for u in reversed(topo):
                iu = idx[u]
                row = reach[iu]
                for v in self._succ[u]:
                    iv = idx[v]
                    row[iv] = True
                    row |= reach[iv]
            self._reach_cache = (idx, reach)
        return self._reach_cache

    def descendants(self, u: str) -> list[str]:
        """All strict descendants of ``u``, in program order."""
        idx, reach = self._reachability()
        if self._names_cache is None:
            self._names_cache = np.array(self._order, dtype=object)
        return self._names_cache[reach[idx[u]]].tolist()

    def node_index(self, u: str) -> int:
        """Program-order index of ``u`` (stable across queries)."""
        idx, _ = self._reachability()
        return idx[u]

    def reachability_row(self, u: str) -> np.ndarray:
        """Boolean descendant mask of ``u`` over program-order indices
        (shared cache — do not mutate)."""
        idx, reach = self._reachability()
        return reach[idx[u]]

    def ancestors(self, u: str) -> list[str]:
        idx, reach = self._reachability()
        col = reach[:, idx[u]]
        return [n for n in self._order if col[idx[n]]]

    def ancestor_row(self, u: str) -> np.ndarray:
        """Boolean ancestor mask of ``u`` over program-order indices
        (shared cache — do not mutate)."""
        idx, reach = self._reachability()
        return reach[:, idx[u]]

    def reaches(self, u: str, v: str) -> bool:
        idx, reach = self._reachability()
        return bool(reach[idx[u], idx[v]])

    # Derived metrics ------------------------------------------------------------

    def critical_path_length(self) -> int:
        """Length (in cycles) of the longest path including execution times and
        latencies — a lower bound on any single-FU makespan."""
        if not self._order:
            return 0
        finish: dict[str, int] = {}
        for u in self.topological_order():
            est = 0
            for p, lat in self._pred[u].items():
                est = max(est, finish[p] + lat)
            finish[u] = est + self._exec_time[u]
        return max(finish.values())

    def earliest_start_times(self) -> dict[str, int]:
        """Resource-unconstrained earliest start time of every node."""
        start: dict[str, int] = {}
        for u in self.topological_order():
            est = 0
            for p, lat in self._pred[u].items():
                est = max(est, start[p] + self._exec_time[p] + lat)
            start[u] = est
        return start

    def path_length_to_sinks(self) -> dict[str, int]:
        """For each node, the longest remaining path (exec + latency) starting
        at that node — the classic critical-path list-scheduling priority."""
        dist: dict[str, int] = {}
        for u in reversed(self.topological_order()):
            best = 0
            for v, lat in self._succ[u].items():
                best = max(best, lat + dist[v])
            dist[u] = self._exec_time[u] + best
        return dist

    # Transformations -------------------------------------------------------------

    def subgraph(self, keep: Iterable[str]) -> "DependenceGraph":
        """Induced subgraph on ``keep`` (program order preserved)."""
        keep_set = set(keep)
        unknown = keep_set - set(self._succ)
        if unknown:
            raise KeyError(f"unknown nodes {sorted(unknown)}")
        g = DependenceGraph()
        for n in self._order:
            if n in keep_set:
                g.add_node(n, self._exec_time[n], self._fu_class[n])
        for u, v, lat in self.edges():
            if u in keep_set and v in keep_set:
                g.add_edge(u, v, lat)
        return g

    def copy(self) -> "DependenceGraph":
        return self.subgraph(self._order)

    def union(self, other: "DependenceGraph") -> "DependenceGraph":
        """Disjoint union (node sets must not overlap)."""
        overlap = set(self._succ) & set(other._succ)
        if overlap:
            raise ValueError(f"node sets overlap: {sorted(overlap)}")
        g = self.copy()
        for n in other._order:
            g.add_node(n, other._exec_time[n], other._fu_class[n])
        for u, v, lat in other.edges():
            g.add_edge(u, v, lat)
        return g

    def relabeled(self, mapping: Mapping[str, str]) -> "DependenceGraph":
        """Copy with nodes renamed through ``mapping`` (missing keys keep
        their name)."""
        g = DependenceGraph()
        for n in self._order:
            g.add_node(mapping.get(n, n), self._exec_time[n], self._fu_class[n])
        for u, v, lat in self.edges():
            g.add_edge(mapping.get(u, u), mapping.get(v, v), lat)
        return g

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DependenceGraph(n={len(self)}, e={self.num_edges()}, "
            f"cp={self.critical_path_length() if self.is_acyclic() else '?'})"
        )


def graph_from_edges(
    edges: Iterable[tuple[str, str, int]],
    nodes: Iterable[str] = (),
    exec_times: Mapping[str, int] | None = None,
    fu_classes: Mapping[str, str] | None = None,
) -> DependenceGraph:
    """Convenience constructor: build a graph from an edge list.

    Nodes appearing only in ``edges`` are added in first-mention order after
    the explicitly listed ``nodes``.
    """
    exec_times = exec_times or {}
    fu_classes = fu_classes or {}
    g = DependenceGraph()

    def ensure(n: str) -> None:
        if n not in g:
            g.add_node(n, exec_times.get(n, 1), fu_classes.get(n, ANY))

    for n in nodes:
        ensure(n)
    edge_list = list(edges)
    for u, v, _ in edge_list:
        ensure(u)
        ensure(v)
    for u, v, lat in edge_list:
        g.add_edge(u, v, lat)
    return g
