"""Coffman-Graham two-processor scheduling (paper §6, ref. [5]).

The classic 1972 algorithm: optimal for unit-execution-time DAGs on two
identical processors with *no* latencies.  Nodes are labelled bottom-up; each
node's label is chosen so that the decreasing sequence of its successors'
labels is lexicographically minimal among unlabelled candidates; the schedule
then list-schedules by decreasing label.  Included because the Rank Algorithm
descends from this lineage (Bernstein-Gertner generalized it to 0/1
latencies on a pipelined processor) and because it is a useful two-unit
baseline.
"""

from __future__ import annotations

from ..ir.depgraph import DependenceGraph
from ..ir.instruction import ANY
from ..machine.model import MachineModel
from ..core.rank import list_schedule
from ..core.schedule import Schedule


def coffman_graham_labels(graph: DependenceGraph) -> dict[str, int]:
    """The lexicographic labelling.  Labels are 1..n; higher = schedule
    earlier.  Deterministic: ties fall back to program order."""
    n = len(graph)
    labels: dict[str, int] = {}
    index = {v: i for i, v in enumerate(graph.nodes)}
    for label in range(1, n + 1):
        candidates = [
            v
            for v in graph.nodes
            if v not in labels and all(s in labels for s in graph.successors(v))
        ]
        if not candidates:  # pragma: no cover - graph is a DAG
            raise RuntimeError("no candidate during Coffman-Graham labelling")

        def key(v: str) -> tuple:
            succ_labels = sorted(
                (labels[s] for s in graph.successors(v)), reverse=True
            )
            return (succ_labels, index[v])

        chosen = min(candidates, key=key)
        labels[chosen] = label
    return labels


def coffman_graham_priority(graph: DependenceGraph) -> list[str]:
    labels = coffman_graham_labels(graph)
    return sorted(graph.nodes, key=lambda v: -labels[v])


TWO_PROCESSOR = MachineModel(window_size=1, fu_counts={ANY: 2})


def coffman_graham_schedule(
    graph: DependenceGraph, machine: MachineModel | None = None
) -> Schedule:
    """List schedule by decreasing Coffman-Graham label.  Optimal on two
    identical units when all edge latencies are zero and execution times are
    one; otherwise a baseline heuristic."""
    machine = machine or TWO_PROCESSOR
    return list_schedule(graph, coffman_graham_priority(graph), machine)
