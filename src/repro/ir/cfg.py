"""Control-flow graphs and trace selection.

A trace is "a sequence of basic blocks obtained by following a simple path in
the program's control flow graph" (paper, footnote 2).  Anticipatory
scheduling pairs naturally with hardware branch prediction: the window is
filled with instructions from the block *predicted* to execute next.  This
module provides a small CFG with branch probabilities and the standard
Fisher-style greedy trace selection (most-probable successor first), which the
example applications and workload generators use to pick the trace handed to
``Algorithm Lookahead``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .basicblock import BasicBlock, Trace


@dataclass
class CFGEdge:
    src: str
    dst: str
    probability: float


class ControlFlowGraph:
    """A CFG over named basic blocks with branch probabilities."""

    def __init__(self) -> None:
        self._blocks: dict[str, BasicBlock] = {}
        self._succ: dict[str, list[CFGEdge]] = {}
        self._pred: dict[str, list[CFGEdge]] = {}
        self._order: list[str] = []
        self.entry: str | None = None

    def add_block(self, block: BasicBlock, entry: bool = False) -> None:
        if block.name in self._blocks:
            raise ValueError(f"duplicate block {block.name!r}")
        self._blocks[block.name] = block
        self._succ[block.name] = []
        self._pred[block.name] = []
        self._order.append(block.name)
        if entry or self.entry is None:
            if entry:
                self.entry = block.name
            elif self.entry is None:
                self.entry = block.name

    def add_edge(self, src: str, dst: str, probability: float = 1.0) -> None:
        if src not in self._blocks or dst not in self._blocks:
            missing = src if src not in self._blocks else dst
            raise KeyError(f"unknown block {missing!r}")
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {probability}")
        edge = CFGEdge(src, dst, probability)
        self._succ[src].append(edge)
        self._pred[dst].append(edge)

    def block(self, name: str) -> BasicBlock:
        return self._blocks[name]

    @property
    def block_names(self) -> list[str]:
        return list(self._order)

    def successors(self, name: str) -> list[CFGEdge]:
        return list(self._succ[name])

    def predecessors(self, name: str) -> list[CFGEdge]:
        return list(self._pred[name])

    def __len__(self) -> int:
        return len(self._blocks)

    # Trace selection -------------------------------------------------------------

    def select_trace_blocks(
        self, start: str | None = None, max_blocks: int | None = None
    ) -> list[str]:
        """Greedy most-probable-path trace selection from ``start``.

        Follows the highest-probability outgoing edge (ties broken by
        insertion order) until the path would revisit a block, has no
        successor, or reaches ``max_blocks``.  This mirrors the profile-driven
        selection of trace scheduling [7] that the paper positions itself
        against — the same traces feed both techniques.
        """
        if start is None:
            start = self.entry
        if start is None or start not in self._blocks:
            raise KeyError(f"unknown start block {start!r}")
        path = [start]
        visited = {start}
        while max_blocks is None or len(path) < max_blocks:
            edges = self._succ[path[-1]]
            if not edges:
                break
            best = max(edges, key=lambda e: e.probability)
            if best.dst in visited:
                break
            path.append(best.dst)
            visited.add(best.dst)
        return path

    def build_trace(
        self,
        block_names: list[str] | None = None,
        cross_edges: list[tuple[str, str, int]] | None = None,
    ) -> Trace:
        """Materialize a :class:`Trace` for the given (or greedily selected)
        block path, keeping only cross edges internal to the path."""
        if block_names is None:
            block_names = self.select_trace_blocks()
        blocks = [self._blocks[n] for n in block_names]
        keep: list[tuple[str, str, int]] = []
        if cross_edges:
            members: dict[str, int] = {}
            for i, bb in enumerate(blocks):
                for n in bb.node_names:
                    members[n] = i
            for u, v, lat in cross_edges:
                if u in members and v in members and members[u] < members[v]:
                    keep.append((u, v, lat))
        return Trace(blocks, cross_edges=keep)
