"""Guarded scheduling pipeline: budgets, post-hoc verification, and a
verified always-legal fallback.

The paper's safety contract (§1, §4) is that anticipatory scheduling only
reorders *within* basic blocks, so any failure can degrade to a per-block
schedule that is still correct.  :class:`GuardedScheduler` turns that
contract into machinery: it runs :func:`~repro.core.algorithm_lookahead`
under node/time budgets, verifies the emitted block orders with
:func:`~repro.analysis.verify.verify_scheduler_output`, and on *any*
failure — timeout, budget exhaustion, an exception (including an injected
:class:`~repro.sim.window.SimulationDeadlock`), or an
:class:`~repro.analysis.verify.OutputError` — falls back to the per-block
rank order of :func:`~repro.core.local_block_orders`, verifies *that*
(with fault injection suspended: the fallback's legality is a property of
the compiler, not of the simulated adversity), and returns it together
with a structured :class:`DegradedResult` diagnostic.  The fallback reason
is also recorded as an obs counter (``guard.fallback`` and
``guard.fallback.<reason>``), so degradation shows up in run reports.

The scheduler never returns an unverified order: if even the fallback
fails verification under clean conditions, :class:`GuardError` is raised
(that would mean the core pipeline itself is broken — exactly what the
differential fuzz driver exists to catch).
"""

from __future__ import annotations

import signal
import threading
import time as _time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator, Sequence

from ..analysis.verify import OutputError, verify_scheduler_output
from ..core.lookahead import algorithm_lookahead, local_block_orders
from ..ir.basicblock import Trace
from ..machine.model import MachineModel, single_unit_machine
from ..obs import recorder as obs
from . import faults

#: Degradation reasons a :class:`DegradedResult` may carry.
FALLBACK_REASONS = (
    "node_budget",
    "timeout",
    "output_error",
    "deadlock",
    "exception",
)


class GuardError(RuntimeError):
    """Even the per-block fallback failed verification under clean
    conditions — the pipeline cannot produce a legal order at all."""


#: Sentinel distinguishing "use the instance default" from an explicit
#: ``None`` ("no limit") in per-call budget overrides.
_UNSET = object()


class GuardTimeout(TimeoutError):
    """The primary scheduler exceeded the guard's time budget."""


@dataclass(frozen=True)
class DegradedResult:
    """Structured diagnostic attached when the guard fell back.

    ``reason`` is one of :data:`FALLBACK_REASONS`; ``detail`` is the
    human-readable cause (exception message, budget figures); ``elapsed_s``
    is the wall-clock the primary attempt consumed before it was killed or
    rejected.
    """

    reason: str
    detail: str
    scheduler: str = "lookahead"
    elapsed_s: float = 0.0

    def __post_init__(self) -> None:
        if self.reason not in FALLBACK_REASONS:
            raise ValueError(
                f"unknown degradation reason {self.reason!r}; "
                f"expected one of {FALLBACK_REASONS}"
            )

    def to_dict(self) -> dict:
        return {
            "reason": self.reason,
            "detail": self.detail,
            "scheduler": self.scheduler,
            "elapsed_s": self.elapsed_s,
        }


@dataclass
class GuardedResult:
    """Outcome of one guarded scheduling run.

    ``block_orders`` is always verified-legal.  ``source`` is
    ``"lookahead"`` for the primary path and ``"fallback"`` for the
    per-block rank order; ``degraded`` carries the diagnostic in the
    latter case.  ``predicted_makespan`` is only available on the primary
    path (the fallback makes no cross-block prediction).
    """

    trace: Trace
    block_orders: list[list[str]]
    source: str
    degraded: DegradedResult | None = None
    predicted_makespan: int | None = None
    verify_s: float = field(default=0.0, repr=False)

    @property
    def ok(self) -> bool:
        return self.degraded is None


@contextmanager
def _time_limit(budget_s: float | None) -> Iterator[None]:
    """Raise :class:`GuardTimeout` if the block runs past ``budget_s``.

    Uses a real ``SIGALRM`` interval timer when running on the main thread
    of the main interpreter (the only place Python delivers signals);
    elsewhere the caller's post-hoc elapsed check is the enforcement.
    """
    if budget_s is None or budget_s <= 0:
        yield
        return
    use_signal = (
        hasattr(signal, "setitimer")
        and threading.current_thread() is threading.main_thread()
    )
    if not use_signal:
        yield
        return

    def _on_alarm(signum, frame):
        raise GuardTimeout(f"scheduling exceeded time budget {budget_s:g}s")

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, budget_s)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


class GuardedScheduler:
    """Run the anticipatory pipeline under budgets with a verified fallback.

    Parameters
    ----------
    machine:
        Target machine (default: the paper's single-unit model).
    time_budget_s:
        Wall-clock budget for the primary schedule+verify attempt.  A hard
        ``SIGALRM`` limit on the main thread, and always a post-hoc check
        (a result that arrived late is discarded even where signals are
        unavailable).  ``None`` disables the limit.
    node_budget:
        Maximum trace size (instruction count) the primary scheduler is
        attempted on; larger traces degrade immediately — the
        combinatorial-solver "budget and fall back" discipline.
    verify:
        Verify the primary result before returning it (strongly
        recommended; the fallback is always verified).
    delay_idles:
        Forwarded to :func:`~repro.core.algorithm_lookahead`.
    primary:
        Override the primary scheduler (used by tests and the fuzz driver
        to inject broken/slow schedulers).  Must map ``(trace, machine)``
        to per-block orders.
    """

    def __init__(
        self,
        machine: MachineModel | None = None,
        time_budget_s: float | None = None,
        node_budget: int | None = None,
        verify: bool = True,
        delay_idles: bool = True,
        primary: Callable[[Trace, MachineModel], Sequence[Sequence[str]]]
        | None = None,
    ) -> None:
        if node_budget is not None and node_budget < 0:
            raise ValueError("node_budget must be >= 0 or None")
        self.machine = machine or single_unit_machine()
        self.time_budget_s = time_budget_s
        self.node_budget = node_budget
        self.verify = verify
        self.delay_idles = delay_idles
        self.primary = primary

    # -- primary path -------------------------------------------------------

    def _run_primary(
        self, trace: Trace
    ) -> tuple[list[list[str]], int | None]:
        if self.primary is not None:
            orders = [list(o) for o in self.primary(trace, self.machine)]
            return orders, None
        result = algorithm_lookahead(
            trace, self.machine, delay_idles=self.delay_idles
        )
        return result.block_orders, result.predicted_makespan

    def schedule(
        self, trace: Trace, time_budget_s: object = _UNSET
    ) -> GuardedResult:
        """Schedule ``trace``; always returns a verified-legal result.

        ``time_budget_s`` overrides the instance budget for this call only
        (pass ``None`` explicitly to disable the limit) — the serving
        worker tightens it to the request's remaining deadline.
        """
        budget_s = (
            self.time_budget_s if time_budget_s is _UNSET else time_budget_s
        )
        obs.count("guard.schedule")
        with obs.span("guard.schedule", nodes=len(trace.graph)):
            n = len(trace.graph)
            if self.node_budget is not None and n > self.node_budget:
                return self._fallback(
                    trace,
                    "node_budget",
                    f"trace has {n} instructions, node budget is "
                    f"{self.node_budget}",
                    elapsed_s=0.0,
                )

            started = _time.perf_counter()
            try:
                with _time_limit(budget_s):
                    orders, predicted = self._run_primary(trace)
                    verify_s = 0.0
                    if self.verify:
                        v0 = _time.perf_counter()
                        with obs.span("guard.verify", source="lookahead"):
                            verify_scheduler_output(trace, orders, self.machine)
                        verify_s = _time.perf_counter() - v0
                elapsed = _time.perf_counter() - started
                if budget_s is not None and 0 < budget_s < elapsed:
                    raise GuardTimeout(
                        f"scheduling took {elapsed:.3f}s, over the "
                        f"{budget_s:g}s budget"
                    )
            except GuardTimeout as exc:
                return self._fallback(
                    trace, "timeout", str(exc),
                    elapsed_s=_time.perf_counter() - started,
                )
            except OutputError as exc:
                return self._fallback(
                    trace, "output_error", str(exc),
                    elapsed_s=_time.perf_counter() - started,
                )
            except Exception as exc:
                # Injected or real simulator deadlocks get their own reason
                # (imported lazily to keep this module's import graph thin).
                from ..sim.window import SimulationDeadlock

                reason = (
                    "deadlock"
                    if isinstance(exc, SimulationDeadlock)
                    else "exception"
                )
                return self._fallback(
                    trace, reason, f"{type(exc).__name__}: {exc}",
                    elapsed_s=_time.perf_counter() - started,
                )

            obs.count("guard.primary_ok")
            return GuardedResult(
                trace=trace,
                block_orders=orders,
                source="lookahead",
                predicted_makespan=predicted,
                verify_s=verify_s,
            )

    # -- degraded path ------------------------------------------------------

    def _fallback(
        self, trace: Trace, reason: str, detail: str, elapsed_s: float
    ) -> GuardedResult:
        obs.count("guard.fallback")
        obs.count(f"guard.fallback.{reason}")
        degraded = DegradedResult(
            reason=reason, detail=detail, elapsed_s=elapsed_s
        )
        with obs.span("guard.fallback", reason=reason):
            # The fallback must never depend on the adversity that killed
            # the primary path: verify it under clean conditions.
            with faults.suspended():
                orders = local_block_orders(trace, self.machine)
                v0 = _time.perf_counter()
                try:
                    with obs.span("guard.verify", source="fallback"):
                        verify_scheduler_output(trace, orders, self.machine)
                except OutputError as exc:
                    raise GuardError(
                        f"per-block fallback failed verification after "
                        f"degradation ({reason}: {detail}): {exc}"
                    ) from exc
                verify_s = _time.perf_counter() - v0
        return GuardedResult(
            trace=trace,
            block_orders=orders,
            source="fallback",
            degraded=degraded,
            verify_s=verify_s,
        )
