"""Canonical machine configurations used across examples and benchmarks."""

from __future__ import annotations

from ..ir.instruction import ANY, BRANCH, FIXED, FLOAT, MEMORY
from .model import MachineModel

#: The paper's core analytical model: single FU, small window (§2.3 notes
#: W < 10 in practice; we default to 4).
PAPER_CORE = MachineModel(window_size=4, fu_counts={ANY: 1})

#: Single FU without lookahead — isolates the benefit of the window itself.
NO_LOOKAHEAD = MachineModel(window_size=1, fu_counts={ANY: 1})

#: An RS/6000-flavoured superscalar: separate fixed-point, floating-point,
#: memory and branch units (Warren [12] targets this machine class).
RS6000_LIKE = MachineModel(
    window_size=6,
    fu_counts={FIXED: 1, FLOAT: 1, MEMORY: 1, BRANCH: 1},
    issue_width=4,
)

#: A wide machine approximating the "assigned processor" / VLIW model (§6).
WIDE_VLIW = MachineModel(
    window_size=8,
    fu_counts={FIXED: 2, FLOAT: 2, MEMORY: 2, BRANCH: 1},
    issue_width=4,
)


def paper_machine(window_size: int) -> MachineModel:
    """The paper's single-FU model with an explicit window size."""
    return MachineModel(window_size=window_size, fu_counts={ANY: 1})
