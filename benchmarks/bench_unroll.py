"""E13 — unroll-and-schedule vs. the §5.2 rolled-loop algorithm.

Unrolling a single-block loop by U gives Algorithm Lookahead (§5.1 on the
unrolled loop trace) more instructions to weave per iteration, at U× code
size.  The §5.2 algorithm works on the rolled body directly.  Expected shape
(asserted): per-original-iteration cost of the unrolled schedules approaches
(never beats by more than rounding, never exceeds program order) the rolled
§5.2 steady state as U grows; on Figure 3 both reach 6 cycles/iteration.
"""

from common import emit_metrics, emit_table

from repro.core import schedule_single_block_loop
from repro.core.loops import schedule_loop_trace
from repro.machine import paper_machine
from repro.sim import simulated_initiation_interval
from repro.sim.loop_runner import simulate_loop_trace_orders
from repro.ir import unroll_loop
from repro.workloads import figure3_loop, random_loop

FACTORS = (1, 2, 4)
HORIZON = 8  # unrolled iterations simulated (scaled per factor)


def per_iteration_cost(loop, factor: int, machine) -> float:
    """Schedule the U-unrolled loop trace and measure asymptotic cycles per
    *original* iteration."""
    lt = unroll_loop(loop, factor)
    res = schedule_loop_trace(lt, machine)
    iters = max(2, HORIZON // factor)
    sim_a = simulate_loop_trace_orders(lt, res.block_orders, iters, machine)
    sim_b = simulate_loop_trace_orders(lt, res.block_orders, iters + 1, machine)
    return (sim_b.makespan - sim_a.makespan) / factor


def test_unroll_study(benchmark):
    m = paper_machine(2)
    rows = []
    loop_data = []
    cases = [("figure 3", figure3_loop())] + [
        (f"random {seed}", random_loop(5, seed=seed, carried_latencies=(1, 2, 4)))
        for seed in range(5)
    ]
    for name, loop in cases:
        rolled_res = schedule_single_block_loop(loop, m)
        rolled_ii = simulated_initiation_interval(loop, rolled_res.order, m)
        naive_ii = simulated_initiation_interval(loop, loop.nodes, m)
        costs = [per_iteration_cost(loop, f, m) for f in FACTORS]
        rows.append([name, naive_ii, rolled_ii] + [f"{c:.2f}" for c in costs])
        loop_data.append(
            {
                "loop": name,
                "program_order_ii": naive_ii,
                "rolled_ii": rolled_ii,
                "unrolled_cycles_per_iter": {
                    str(f): c for f, c in zip(FACTORS, costs)
                },
            }
        )
        # Unrolled scheduling should be in the same band as rolled §5.2:
        # never worse than program order, within one cycle of rolled at the
        # largest factor.
        assert costs[-1] <= naive_ii + 1e-9
        assert costs[-1] <= rolled_ii + 1.0 + 1e-9

    emit_table(
        "E13_unroll",
        ["loop", "program order II", "rolled §5.2 II"]
        + [f"unroll×{f} cycles/iter" for f in FACTORS],
        rows,
        title="E13: unroll-and-schedule vs rolled anticipatory loop scheduling (W=2)",
    )

    emit_metrics("E13_unroll", {"loops": loop_data}, machine=m)

    loop = figure3_loop()
    benchmark(lambda: per_iteration_cost(loop, 2, m))
