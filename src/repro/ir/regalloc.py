"""Register renaming and linear-scan register allocation.

Paper §6 discusses how the related local schedulers interact with register
allocation: Gibbons-Muchnick [8] encode allocator-induced anti-dependences as
extra dependence edges, and the PL.8 approach [2] schedules *renamed* code so
"the scheduler [need not] explicitly deal with constraints introduced by
register allocation, other than those encoded in the dependence graph".

This module provides both halves of that study:

- :func:`rename_registers` — SSA-style renaming of a straight-line sequence:
  every definition gets a fresh virtual register, uses refer to the reaching
  definition.  This removes all WAR/WAW register dependences, maximizing the
  scheduler's freedom.
- :func:`allocate_registers` — classic linear-scan allocation of the virtual
  registers onto K physical registers along a given instruction order.  With
  small K the allocator reuses registers aggressively, *re-introducing*
  WAR/WAW dependences into the rebuilt dependence graph; sweeping K
  quantifies how register pressure erodes the benefit of anticipatory
  scheduling (benchmark E12).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from .instruction import Instruction


class AllocationError(RuntimeError):
    """Raised when the live ranges need more physical registers than exist."""


def rename_registers(
    instructions: Sequence[Instruction], prefix: str = "v"
) -> list[Instruction]:
    """SSA-style renaming: each definition introduces a fresh register name
    ``{prefix}{k}``; each use reads the most recent definition of its
    original register (live-in registers keep their original names).
    Memory operand sets and everything else are preserved."""
    current: dict[str, str] = {}
    fresh = 0
    out: list[Instruction] = []
    for inst in instructions:
        reads = tuple(current.get(r, r) for r in inst.reads)
        writes = []
        for w in inst.writes:
            name = f"{prefix}{fresh}"
            fresh += 1
            current[w] = name
            writes.append(name)
        out.append(
            Instruction(
                name=inst.name,
                opcode=inst.opcode,
                reads=reads,
                writes=tuple(writes),
                loads=inst.loads,
                stores=inst.stores,
                exec_time=inst.exec_time,
                latency=inst.latency,
                fu_class=inst.fu_class,
                is_branch=inst.is_branch,
            )
        )
    return out


@dataclass(frozen=True)
class LiveInterval:
    """Live range of one virtual register along an instruction order."""

    register: str
    start: int  # position of the defining instruction (-1 for live-in)
    end: int  # position of the last use (inclusive)


def live_intervals(
    instructions: Sequence[Instruction], order: Sequence[str]
) -> list[LiveInterval]:
    """Live intervals of every register along ``order`` (a permutation of
    the instruction names).  Registers used before any definition are
    live-in (start = -1); registers never used after their definition still
    occupy their defining slot."""
    by_name = {i.name: i for i in instructions}
    if sorted(order) != sorted(by_name):
        raise ValueError("order must be a permutation of the instructions")
    start: dict[str, int] = {}
    end: dict[str, int] = {}
    for pos, name in enumerate(order):
        inst = by_name[name]
        for r in inst.reads:
            if r not in start:
                start[r] = -1  # live-in
            end[r] = pos
        for r in inst.writes:
            # A redefinition extends the same physical-name demand; for
            # renamed code each register has exactly one definition.
            if r not in start or start[r] == -1:
                start[r] = pos
            end[r] = max(end.get(r, pos), pos)
    return sorted(
        (LiveInterval(r, start[r], end[r]) for r in start),
        key=lambda iv: (iv.start, iv.end, iv.register),
    )


def allocate_registers(
    instructions: Sequence[Instruction],
    order: Sequence[str],
    num_registers: int,
    prefix: str = "p",
) -> list[Instruction]:
    """Linear-scan allocation onto ``num_registers`` physical registers.

    Returns the instruction sequence (in its original program order) with
    every register operand rewritten to a physical name ``{prefix}{k}``.
    Raises :class:`AllocationError` when more than ``num_registers`` values
    are simultaneously live (this library does not spill — the experiment
    sweeps K instead).
    """
    if num_registers < 1:
        raise ValueError("num_registers must be >= 1")
    intervals = live_intervals(instructions, order)
    free = [f"{prefix}{k}" for k in range(num_registers)]
    active: list[tuple[int, str, str]] = []  # (end, vreg, preg)
    assignment: dict[str, str] = {}
    for iv in intervals:
        # Expire intervals that ended strictly before this definition.
        still = []
        for end, vreg, preg in active:
            if end < iv.start:
                free.append(preg)
            else:
                still.append((end, vreg, preg))
        active = still
        if not free:
            raise AllocationError(
                f"register pressure exceeds {num_registers} at {iv.register!r}"
            )
        preg = free.pop(0)
        assignment[iv.register] = preg
        active.append((iv.end, iv.register, preg))

    out: list[Instruction] = []
    for inst in instructions:
        out.append(
            Instruction(
                name=inst.name,
                opcode=inst.opcode,
                reads=tuple(assignment[r] for r in inst.reads),
                writes=tuple(assignment[r] for r in inst.writes),
                loads=inst.loads,
                stores=inst.stores,
                exec_time=inst.exec_time,
                latency=inst.latency,
                fu_class=inst.fu_class,
                is_branch=inst.is_branch,
            )
        )
    return out


@dataclass
class SpillAllocation:
    """Result of spilling allocation: the rewritten sequence plus the
    register assignment contract.

    ``assignment`` maps every non-spilled virtual register to its physical
    register; live-in values are *precolored* — the caller/runtime must
    deliver each non-spilled live-in in its assigned register at entry
    (spilled live-ins are instead assumed to have stack homes).
    """

    instructions: list[Instruction]
    assignment: dict[str, str]
    spilled: set[str]

    def spill_count(self) -> int:
        return spill_count(self.instructions)


def allocate_with_spills(
    instructions: Sequence[Instruction],
    order: Sequence[str],
    num_registers: int,
    prefix: str = "p",
    spill_latency: int = 2,
) -> SpillAllocation:
    """Linear-scan allocation with furthest-end spilling (Poletto-Sarkar).

    When more values are live than registers, the active interval with the
    furthest end point is spilled to a dedicated stack slot: its definition
    is followed by a store, and every use reloads it into one of two
    reserved scratch registers just in time.  The returned sequence is *in
    schedule order* with spill code interleaved (names ``<v>.store`` /
    ``<use>.reload<k>``).  Intended for renamed (single-definition) code.

    Requires ``num_registers >= 3`` (two scratch registers are reserved).
    """
    if num_registers < 3:
        raise ValueError("spilling allocation needs at least 3 registers")
    pool = num_registers - 2
    scratch = [f"{prefix}{num_registers - 2}", f"{prefix}{num_registers - 1}"]

    intervals = live_intervals(instructions, order)
    free = [f"{prefix}{k}" for k in range(pool)]
    active: list[LiveInterval] = []
    assignment: dict[str, str] = {}
    spilled: set[str] = set()
    for iv in intervals:
        active = [a for a in active if not _expired(a, iv, free, assignment)]
        if free:
            assignment[iv.register] = free.pop(0)
            active.append(iv)
            continue
        victim = max(active, key=lambda a: a.end)
        if victim.end > iv.end:
            spilled.add(victim.register)
            assignment[iv.register] = assignment.pop(victim.register)
            active.remove(victim)
            active.append(iv)
        else:
            spilled.add(iv.register)

    by_name = {i.name: i for i in instructions}
    out: list[Instruction] = []
    for name in order:
        inst = by_name[name]
        reads: list[str] = []
        next_scratch = 0
        for r in inst.reads:
            if r in spilled:
                reg = scratch[next_scratch % 2]
                next_scratch += 1
                out.append(
                    Instruction(
                        name=f"{name}.reload{next_scratch - 1}",
                        opcode="reload",
                        writes=(reg,),
                        loads=(f"stack:{r}",),
                        latency=spill_latency,
                    )
                )
                reads.append(reg)
            else:
                reads.append(assignment[r])
        writes: list[str] = []
        stores_after: list[Instruction] = []
        for w in inst.writes:
            if w in spilled:
                reg = scratch[0]
                writes.append(reg)
                stores_after.append(
                    Instruction(
                        name=f"{w}.store",
                        opcode="spill",
                        reads=(reg,),
                        stores=(f"stack:{w}",),
                        latency=1,
                    )
                )
            else:
                writes.append(assignment[w])
        out.append(
            Instruction(
                name=inst.name,
                opcode=inst.opcode,
                reads=tuple(reads),
                writes=tuple(writes),
                loads=inst.loads,
                stores=inst.stores,
                exec_time=inst.exec_time,
                latency=inst.latency,
                fu_class=inst.fu_class,
                is_branch=inst.is_branch,
            )
        )
        out.extend(stores_after)
    return SpillAllocation(out, dict(assignment), set(spilled))


def _expired(
    interval: LiveInterval,
    current: LiveInterval,
    free: list[str],
    assignment: dict[str, str],
) -> bool:
    if interval.end < current.start and interval.register in assignment:
        free.append(assignment[interval.register])
        return True
    return interval.end < current.start


def spill_count(instructions: Sequence[Instruction]) -> int:
    """Number of spill/reload instructions in an allocated sequence."""
    return sum(1 for i in instructions if i.opcode in ("spill", "reload"))


def minimum_registers(
    instructions: Sequence[Instruction], order: Sequence[str]
) -> int:
    """Smallest K for which :func:`allocate_registers` succeeds — the
    maximum number of simultaneously live values along ``order``."""
    intervals = live_intervals(instructions, order)
    events: list[tuple[int, int]] = []
    for iv in intervals:
        events.append((iv.start, 1))
        events.append((iv.end + 1, -1))
    events.sort()
    live = peak = 0
    for _, delta in events:
        live += delta
        peak = max(peak, live)
    return max(peak, 1)
