"""Idle-slot delaying: Procedure Move_Idle_Slot (Fig. 4) and
Delay_Idle_Slots (Fig. 6).

Moving idle slots as late as possible within a block's schedule — without
increasing the makespan — is the paper's key enabling idea: a late idle slot
can be filled at runtime by an instruction of the *next* basic block sitting
in the hardware lookahead window.

State model.  Deadlines are the single source of truth; ranks are always
recomputed from the current deadlines (rank computation commutes with uniform
deadline shifts, so this matches the paper's "decrement every deadline, and
consequently every rank").  Each call to :func:`move_idle_slot`:

1. clamps the deadlines of the nodes in the u-set σᵢ (scheduled between the
   previous idle slot and tᵢ) to tᵢ — the paper's "this step insures that idle
   slots don't move earlier"; these clamps are *retained* even on failure,
   because later idle-slot processing relies on them;
2. repeatedly forces the *tail* node (the node completing at tᵢ) one time
   unit earlier — d(tail) := tᵢ − 1 — and re-runs the Rank Algorithm, until
   the i-th idle slot moves later (success: keep all modifications) or the
   deadline system becomes infeasible (failure: undo the tail reductions and
   return the input schedule).

In the optimal regime (unit times, 0/1 latencies, one FU) repeated
application yields a minimum-makespan schedule in which every idle slot is as
late as it can be over all optimal schedules (paper §3, citing [11]).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..machine.model import MachineModel, single_unit_machine
from ..obs import recorder as obs
from .rank import (
    RankEngine,
    compute_ranks,
    default_deadline,
    fill_deadlines,
    rank_schedule,
)
from .schedule import SINGLE_UNIT, Schedule, Unit


@dataclass
class IdleMoveResult:
    """Outcome of one :func:`move_idle_slot` call."""

    schedule: Schedule
    deadlines: dict[str, int]
    #: Start time of the i-th idle slot after the call; ``None`` when the slot
    #: was eliminated outright (possible only in heuristic, multi-unit cases).
    new_time: int | None
    moved: bool


def move_idle_slot(
    schedule: Schedule,
    deadlines: dict[str, int],
    index: int,
    machine: MachineModel | None = None,
    unit: Unit = SINGLE_UNIT,
    engine: RankEngine | None = None,
) -> IdleMoveResult:
    """Try to delay the ``index``-th (0-based, by time) idle slot on ``unit``.

    Returns the new schedule and deadline map on success; the input schedule
    (with σᵢ deadline clamps retained) on failure.  ``deadlines`` must cover
    every node (see :func:`repro.core.rank.fill_deadlines`); it is not
    mutated — updated copies are returned.

    ``engine`` is the incremental fast path: a :class:`RankEngine` whose
    deadline state equals ``deadlines`` on entry.  Each trial then updates
    ranks only for the changed node and its ancestors instead of running two
    full rank computations; on exit the engine's state equals the returned
    deadline map (tail reductions rolled back on failure, clamps kept).
    Results are bit-identical with and without an engine.
    """
    machine = machine or single_unit_machine()
    graph = schedule.graph
    times = schedule.idle_times(unit)
    if index >= len(times):
        return IdleMoveResult(schedule, dict(deadlines), None, False)
    t_i = times[index]
    prev_t = times[index - 1] if index > 0 else -1

    # Step 1: clamp σᵢ deadlines so the idle slot cannot move earlier.
    clamped = dict(deadlines)
    for n in graph.nodes:
        if schedule.unit(n) == unit and prev_t < schedule.start(n) < t_i:
            clamped[n] = min(clamped[n], t_i)
    # (Nodes starting at prev_t + 0 == 0 when index == 0 are covered by
    # prev_t = -1; an idle slot itself never holds a node.)
    if engine is not None:
        engine.set_deadlines(clamped)

    current = schedule
    trial = dict(clamped)
    reduced: dict[str, int] = {}  # tail -> pre-reduction (clamped) deadline
    for _ in range(len(graph) + 1):
        tail = current.tail_node(t_i, unit)
        if tail is None:
            break  # nothing ends at the slot: cannot push it later
        obs.count("idle.trials")
        ranks = engine.ranks if engine is not None else compute_ranks(
            graph, trial, machine
        )
        if ranks[tail] < t_i:
            break  # paper's guard: no node in σᵢ can still complete at tᵢ
        reduced.setdefault(tail, trial[tail])
        trial[tail] = t_i - 1
        if engine is not None:
            engine.set_deadlines({tail: t_i - 1})
            new_sched, _ = rank_schedule(
                graph, trial, machine, ranks=engine.ranks
            )
        else:
            new_sched, _ = rank_schedule(graph, trial, machine)
        if new_sched is None:
            break  # rank_alg cannot meet all deadlines
        new_times = new_sched.idle_times(unit)
        if index >= len(new_times):
            return IdleMoveResult(new_sched, trial, None, True)
        t_new = new_times[index]
        if t_new > t_i:
            return IdleMoveResult(new_sched, trial, t_new, True)
        if t_new < t_i:
            break  # defensive: should not happen given the clamps
        current = new_sched  # same position, different arrangement: retry
    # Failure: undo the tail reductions, keep the clamps, return input.
    if engine is not None and reduced:
        engine.set_deadlines(reduced)
    return IdleMoveResult(schedule, clamped, t_i, False)


def delay_idle_slots(
    schedule: Schedule,
    deadlines: dict[str, int] | None = None,
    machine: MachineModel | None = None,
    unit: Unit = SINGLE_UNIT,
    engine: RankEngine | None = None,
    incremental: bool = True,
) -> tuple[Schedule, dict[str, int]]:
    """Procedure Delay_Idle_Slots (Fig. 6): process idle slots earliest to
    latest, repeatedly delaying each one until it no longer moves.

    Returns the final schedule and the finalized deadline map.

    ``engine`` optionally carries incremental rank state whose deadlines
    equal the filled ``deadlines`` on entry (its state tracks the returned
    map on exit); with ``engine=None`` and ``incremental=True`` (default) a
    fresh engine is built with a single from-scratch rank computation.
    ``incremental=False`` forces the original two-full-recomputations-per-
    trial path — the oracle the fast path is fuzzed against.
    """
    machine = machine or single_unit_machine()
    d = fill_deadlines(schedule.graph, deadlines)
    if unit not in schedule.busy_units():
        return schedule, d  # nothing runs on this unit: nothing to delay
    if not schedule.idle_times(unit):
        return schedule, d
    if engine is None and incremental:
        engine = RankEngine(schedule.graph, d, machine)
    with obs.span(
        "delay_idle_slots",
        unit=f"{unit[0]}{unit[1]}",
        slots=len(schedule.idle_times(unit)),
    ):
        index = 0
        while index < len(schedule.idle_times(unit)):
            result = move_idle_slot(schedule, d, index, machine, unit, engine)
            schedule, d = result.schedule, result.deadlines
            if result.moved:
                obs.count("idle.slots_moved")
            if result.new_time is None and result.moved:
                continue  # slot eliminated: the next slot shifted into ``index``
            if not result.moved:
                index += 1  # cannot move further: freeze and go to the next slot
            # else: moved later — keep working on the same positional slot.
        return schedule, d


def makespan_deadlines(schedule: Schedule) -> dict[str, int]:
    """Uniform deadlines equal to the schedule's makespan — the paper's
    reduction "give all sink nodes a rank of T" before idle-slot processing."""
    span = schedule.makespan
    return {n: span for n in schedule.graph.nodes}


def schedule_block_with_late_idle_slots(
    graph, machine: MachineModel | None = None, unit: Unit = SINGLE_UNIT
) -> tuple[Schedule, dict[str, int]]:
    """Convenience pipeline for a single basic block: Rank-Algorithm schedule
    with the artificial deadline, then reduce deadlines to the makespan and
    delay every idle slot as late as possible (paper §3, "Moving the idle
    slots").  This is the per-block form of anticipatory scheduling used when
    no trace or loop information is available (paper §1)."""
    machine = machine or single_unit_machine()
    sched, ranks = rank_schedule(graph, None, machine)
    assert sched is not None  # unconstrained scheduling cannot miss deadlines
    d = makespan_deadlines(sched)
    # Reducing every deadline to the makespan is a uniform shift, which
    # commutes with ranks — seed the engine for free from the ranks we have.
    engine = None
    if graph.nodes:
        delta = sched.makespan - default_deadline(graph)
        engine = RankEngine(
            graph, d, machine, ranks={n: r + delta for n, r in ranks.items()}
        )
    return delay_idle_slots(sched, d, machine, unit, engine=engine)
