"""Basic blocks, traces and loop traces.

A *basic block* is a single-entry single-exit sequence of instructions with no
intervening control flow.  A *trace* is a sequence of basic blocks along a
simple path of the control-flow graph; dependence edges may cross block
boundaries (they constrain the runtime overlap realized by the hardware
lookahead window, paper §2.3).  A *loop trace* additionally carries
⟨latency, distance⟩ dependences that wrap from one iteration of the trace to a
later one (paper §5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from .depgraph import DependenceGraph
from .instruction import Instruction
from .loopgraph import LoopEdge, instance_name


@dataclass
class BasicBlock:
    """A named basic block: an ordered instruction sequence plus its local
    dependence graph (over exactly the block's instruction names)."""

    name: str
    graph: DependenceGraph
    instructions: list[Instruction] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.instructions:
            names = [i.name for i in self.instructions]
            if sorted(names) != sorted(self.graph.nodes):
                raise ValueError(
                    f"block {self.name!r}: instruction names do not match graph nodes"
                )

    @property
    def node_names(self) -> list[str]:
        return self.graph.nodes

    def __len__(self) -> int:
        return len(self.graph)


class Trace:
    """A trace BB₁ … BBₘ with optional cross-block dependence edges.

    The combined :attr:`graph` spans every instruction in the trace; node
    names must be globally unique across blocks.  Cross-block edges must go
    from an earlier block to a later block (control flows forward along the
    trace).
    """

    def __init__(
        self,
        blocks: Sequence[BasicBlock],
        cross_edges: Iterable[tuple[str, str, int]] = (),
    ) -> None:
        if not blocks:
            raise ValueError("a trace needs at least one basic block")
        self.blocks: list[BasicBlock] = list(blocks)
        self.block_of: dict[str, int] = {}
        for i, bb in enumerate(self.blocks):
            for n in bb.node_names:
                if n in self.block_of:
                    raise ValueError(f"node {n!r} appears in more than one block")
                self.block_of[n] = i

        g = self.blocks[0].graph.copy()
        for bb in self.blocks[1:]:
            g = g.union(bb.graph)
        self.cross_edges: list[tuple[str, str, int]] = []
        for u, v, lat in cross_edges:
            bu, bv = self.block_of.get(u), self.block_of.get(v)
            if bu is None or bv is None:
                missing = u if bu is None else v
                raise KeyError(f"cross edge references unknown node {missing!r}")
            if bu >= bv:
                raise ValueError(
                    f"cross edge {u!r}->{v!r} must go to a strictly later block"
                )
            g.add_edge(u, v, lat)
            self.cross_edges.append((u, v, lat))
        self.graph = g

    @property
    def num_blocks(self) -> int:
        return len(self.blocks)

    def __len__(self) -> int:
        return len(self.graph)

    def block_nodes(self, i: int) -> list[str]:
        return self.blocks[i].node_names

    def block_index(self, node: str) -> int:
        return self.block_of[node]

    def program_order(self) -> list[str]:
        """All instruction names in block order, program order within blocks."""
        out: list[str] = []
        for bb in self.blocks:
            out.extend(bb.node_names)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        sizes = "+".join(str(len(b)) for b in self.blocks)
        return f"Trace(blocks={self.num_blocks}, sizes={sizes})"


class LoopTrace(Trace):
    """A trace enclosed in a loop (paper §5.1): the trace's dependence graph
    plus loop-carried edges with distance ≥ 1 wrapping across iterations."""

    def __init__(
        self,
        blocks: Sequence[BasicBlock],
        cross_edges: Iterable[tuple[str, str, int]] = (),
        carried_edges: Iterable[tuple[str, str, int, int]] = (),
    ) -> None:
        super().__init__(blocks, cross_edges)
        self.carried_edges: list[LoopEdge] = []
        for u, v, lat, dist in carried_edges:
            if u not in self.block_of or v not in self.block_of:
                missing = u if u not in self.block_of else v
                raise KeyError(f"carried edge references unknown node {missing!r}")
            if dist < 1:
                raise ValueError("carried edges need distance >= 1")
            self.carried_edges.append(LoopEdge(u, v, lat, dist))

    def unrolled_graph(self, iterations: int) -> DependenceGraph:
        """Acyclic graph of ``iterations`` back-to-back trace instances with
        intra-iteration and carried edges instantiated (paper §5 semantics)."""
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        g = DependenceGraph()
        order = self.program_order()
        for k in range(iterations):
            for n in order:
                g.add_node(
                    instance_name(n, k),
                    self.graph.exec_time(n),
                    self.graph.fu_class(n),
                )
        for u, v, lat in self.graph.edges():
            for k in range(iterations):
                g.add_edge(instance_name(u, k), instance_name(v, k), lat)
        for e in self.carried_edges:
            for k in range(iterations - e.distance):
                g.add_edge(
                    instance_name(e.src, k),
                    instance_name(e.dst, k + e.distance),
                    e.latency,
                )
        return g


def block_from_graph(name: str, graph: DependenceGraph) -> BasicBlock:
    """Wrap a bare dependence graph as a basic block (no operand info)."""
    return BasicBlock(name=name, graph=graph)


def single_block_trace(graph: DependenceGraph, name: str = "BB1") -> Trace:
    return Trace([block_from_graph(name, graph)])
