"""Hand-written kernels in the library's textual ISA (paper §1 motivation:
"the workloads the paper's intro motivates" — small numeric loops and
branchy straight-line code compiled into traces).

Every kernel is expressed in the :mod:`repro.ir.parser` format so the full
front-end path (parse → def-use analysis → dependence graph) is exercised.
"""

from __future__ import annotations

from ..ir.basicblock import LoopTrace, Trace
from ..ir.loopgraph import LoopGraph, loop_from_edges
from ..ir.parser import parse_trace

#: Dot-product step: two loads feed a multiply feeding an accumulate, with a
#: long multiply latency — classic latency-hiding material.
DOT_PRODUCT_TEXT = """
block dot
  ldx op=load defs=r1 uses=ra loads=x lat=1
  ldy op=load defs=r2 uses=rb loads=y lat=1
  mul op=mul  defs=r3 uses=r1,r2     lat=4
  acc op=add  defs=r4 uses=r4,r3     lat=1
  bax op=add  defs=ra uses=ra        lat=1
  bby op=add  defs=rb uses=rb        lat=1
  cmp op=cmp  defs=cr0 uses=ra       lat=1
  br  op=bc   uses=cr0               lat=1 branch
"""


def dot_product_trace() -> Trace:
    return parse_trace(DOT_PRODUCT_TEXT)


def dot_product_loop() -> LoopGraph:
    """The dot-product step as a single-block loop with carried accumulator
    and induction-variable dependences."""
    return loop_from_edges(
        [
            # loop-independent
            ("ldx", "mul", 1, 0),
            ("ldy", "mul", 1, 0),
            ("mul", "acc", 4, 0),
            ("bax", "cmp", 1, 0),
            ("ldx", "br", 0, 0),
            ("ldy", "br", 0, 0),
            ("mul", "br", 0, 0),
            ("acc", "br", 0, 0),
            ("bax", "br", 0, 0),
            ("bby", "br", 0, 0),
            ("cmp", "br", 1, 0),
            # carried
            ("acc", "acc", 1, 1),  # accumulator recurrence
            ("bax", "ldx", 1, 1),  # address updates
            ("bby", "ldy", 1, 1),
            ("bax", "bax", 1, 1),
            ("bby", "bby", 1, 1),
            ("ldx", "bax", 0, 1),
            ("ldy", "bby", 0, 1),
        ],
        nodes=["ldx", "ldy", "mul", "acc", "bax", "bby", "cmp", "br"],
    )


#: A three-block if-then-join trace: compute a condition, a then-block that
#: consumes a long-latency divide, and a join block consuming both.
BRANCHY_TEXT = """
block head
  ld1  op=load defs=r1 uses=rp loads=a lat=1
  ld2  op=load defs=r2 uses=rq loads=b lat=1
  div  op=div  defs=r3 uses=r1,r2     lat=4 time=2
  cmp0 op=cmp  defs=cr0 uses=r1       lat=1
  br0  op=bc   uses=cr0               lat=1 branch
block then
  add1 op=add defs=r4 uses=r3,r1 lat=1
  add2 op=add defs=r5 uses=r4    lat=1
  st1  op=store uses=r5,rp stores=c lat=1
block join
  sub1 op=sub defs=r6 uses=r3,r2 lat=1
  mul1 op=mul defs=r7 uses=r6    lat=4
  st2  op=store uses=r7,rq stores=d lat=1
"""


def branchy_trace() -> Trace:
    return parse_trace(BRANCHY_TEXT)


#: Unrolled-by-2 saxpy body as a two-block trace whose seam carries the
#: register reuse between the unrolled halves.
SAXPY2_TEXT = """
block sax1
  lx0 op=load defs=x0 uses=ax loads=x lat=1
  ly0 op=load defs=y0 uses=ay loads=y lat=1
  m0  op=mul  defs=p0 uses=x0,sa     lat=4
  a0  op=add  defs=z0 uses=p0,y0     lat=1
  s0  op=store uses=z0,ay stores=y   lat=1
block sax2
  lx1 op=load defs=x1 uses=ax loads=x lat=1
  ly1 op=load defs=y1 uses=ay loads=y lat=1
  m1  op=mul  defs=p1 uses=x1,sa     lat=4
  a1  op=add  defs=z1 uses=p1,y1     lat=1
  s1  op=store uses=z1,ay stores=y   lat=1
  ux  op=add  defs=ax uses=ax        lat=1
  uy  op=add  defs=ay uses=ay        lat=1
"""


def saxpy_unrolled_trace() -> Trace:
    return parse_trace(SAXPY2_TEXT)


def partial_products_loop_trace() -> LoopTrace:
    """Figure 3's partial-products kernel wrapped as a one-block
    :class:`LoopTrace` (for the §5.1 path) — the §5.2 path uses
    :func:`repro.workloads.paper_examples.figure3_loop` directly."""
    from ..ir.basicblock import block_from_graph
    from .paper_examples import figure3_loop

    loop = figure3_loop()
    blocks = [block_from_graph("CL.18", loop.loop_independent_subgraph())]
    carried = [
        (e.src, e.dst, e.latency, e.distance) for e in loop.carried_edges()
    ]
    return LoopTrace(blocks, carried_edges=carried)


#: Reduction tree over eight loaded values — wide parallelism narrowing to a
#: single sink; good for multi-unit experiments.
REDUCTION_TEXT = """
block reduce
  l0 op=load defs=v0 uses=p loads=m lat=1 fu=memory
  l1 op=load defs=v1 uses=p loads=m lat=1 fu=memory
  l2 op=load defs=v2 uses=p loads=m lat=1 fu=memory
  l3 op=load defs=v3 uses=p loads=m lat=1 fu=memory
  l4 op=load defs=v4 uses=p loads=m lat=1 fu=memory
  l5 op=load defs=v5 uses=p loads=m lat=1 fu=memory
  l6 op=load defs=v6 uses=p loads=m lat=1 fu=memory
  l7 op=load defs=v7 uses=p loads=m lat=1 fu=memory
  a0 op=add defs=s0 uses=v0,v1 lat=1 fu=fixed
  a1 op=add defs=s1 uses=v2,v3 lat=1 fu=fixed
  a2 op=add defs=s2 uses=v4,v5 lat=1 fu=fixed
  a3 op=add defs=s3 uses=v6,v7 lat=1 fu=fixed
  b0 op=add defs=t0 uses=s0,s1 lat=1 fu=fixed
  b1 op=add defs=t1 uses=s2,s3 lat=1 fu=fixed
  c0 op=add defs=u0 uses=t0,t1 lat=1 fu=fixed
"""


def reduction_trace() -> Trace:
    return parse_trace(REDUCTION_TEXT)
