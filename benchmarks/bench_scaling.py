"""E10 — complexity study: polynomial-time claim of §7.

Measures scheduler wall-clock versus trace size and verifies the structural
complexity bounds the paper states: merge's deadline-relaxation loop stays
small (paper: ≤ 2W iterations), and the whole pipeline scales to hundreds of
instructions in well under a second.

Each size runs under a span recorder so the emitted metrics carry a
per-phase wall-time split per size; ``rank_delay_wall_s`` (full rank sweeps +
incremental rank updates + idle-slot delaying) is the figure the incremental
rank engine is measured by (see docs/PERFORMANCE.md).  Set
``REPRO_BENCH_SMOKE=1`` to restrict the sweep to the smallest size (CI smoke).
"""

import os
import time

from common import emit_metrics, emit_table, run_sweep

from repro.core import algorithm_lookahead
from repro.machine import paper_machine
from repro.obs import TraceRecorder, recording
from repro.workloads import random_trace

SIZES = ((2, 10), (4, 10), (8, 10), (4, 20), (4, 40), (8, 40))
WINDOW = 4


def make_trace(blocks: int, block_size: int, seed: int = 0):
    return random_trace(
        blocks,
        block_size,
        edge_probability=0.2,
        cross_probability=0.05,
        latencies=(0, 1, 2),
        seed=seed,
    )


def run_size(blocks: int, size: int) -> dict:
    m = paper_machine(WINDOW)
    t = make_trace(blocks, size)
    with recording(TraceRecorder(sim_events=False)) as rec:
        start = time.perf_counter()
        res = algorithm_lookahead(t, m)
        elapsed = time.perf_counter() - start
    phases = rec.phase_walltimes()
    rank_delay = (
        phases.get("rank", 0.0)
        + phases.get("rank.incremental", 0.0)
        + phases.get("delay_idle_slots", 0.0)
    )
    return {
        "blocks": blocks,
        "instrs_per_block": size,
        "total_instrs": blocks * size,
        "wall_s": elapsed,
        "predicted_makespan": res.predicted_makespan,
        "max_merge_relaxations": max(s.merge.relaxations for s in res.steps),
        "phase_wall_s": phases,
        "rank_delay_wall_s": rank_delay,
    }


def test_scaling(benchmark):
    m = paper_machine(WINDOW)
    sizes = SIZES[:1] if os.environ.get("REPRO_BENCH_SMOKE") else SIZES
    runs = run_sweep(run_size, list(sizes))

    rows = []
    for run in runs:
        rows.append(
            [
                run["blocks"],
                run["instrs_per_block"],
                run["total_instrs"],
                f"{run['wall_s'] * 1e3:.1f} ms",
                f"{run['rank_delay_wall_s'] * 1e3:.1f} ms",
                run["max_merge_relaxations"],
            ]
        )
        # Paper's bound: the relaxation loop is tiny (<= 2W in the optimal
        # regime; we allow the latency slack of the heuristic regime).
        assert run["max_merge_relaxations"] <= 2 * m.window_size + 4, run
        assert run["wall_s"] < 10.0

    emit_table(
        "E10_scaling",
        ["blocks", "instrs/block", "total instrs", "wall clock",
         "rank+delay", "max merge relaxations"],
        rows,
        title="E10: Algorithm Lookahead scaling (W=4, single run per size)",
    )

    largest = runs[-1]
    emit_metrics(
        "E10_scaling",
        {
            "window_size": m.window_size,
            "runs": runs,
            # Back-compat top-level split (largest size of the sweep).
            "phase_wall_s": largest["phase_wall_s"],
            "rank_delay_wall_s": largest["rank_delay_wall_s"],
        },
        phases=largest["phase_wall_s"],
        machine=m,
        smoke=bool(os.environ.get("REPRO_BENCH_SMOKE")),
    )

    t = make_trace(*sizes[0]) if os.environ.get("REPRO_BENCH_SMOKE") else make_trace(4, 20)
    benchmark(lambda: algorithm_lookahead(t, m))
