"""Cross-process telemetry pipeline: trace contexts and worker spools.

The recorder (:mod:`repro.obs.recorder`) is strictly in-process: the moment
work fans out over the fork pools of :mod:`repro.robust.sweep`, every
worker-side span, counter and :class:`~repro.obs.events.SimTrace` would be
recorded into the worker's *copy* of the recorder and silently dropped when
the worker exits.  This module is the substrate that carries that telemetry
back to the parent:

- :class:`TraceContext` — a ``(trace_id, parent_span_id, pid)`` triple every
  recorder carries and stamps onto its spans.  The parent derives one child
  context per sweep cell (:meth:`TraceContext.child`), the worker activates
  it, and the whole sweep shares one ``trace_id`` — so the merged stream
  renders as a single coherent trace tree across processes.
- **Worker spools** — workers append one self-contained JSON line per
  *completed* cell to a per-pid spool file (``spool-<pid>.jsonl``) and flush
  it immediately.  A cell line is written atomically-after-the-fact: a
  worker killed mid-cell (``os._exit``, segfault, OOM) leaves at worst a
  torn trailing line, and every previously completed cell remains readable.
- :func:`merge_spools` — the parent reads all spool files (skipping torn
  lines), timestamp-orders the spans across processes, and folds the
  records into the session :class:`~repro.obs.recorder.TraceRecorder` and a
  :class:`~repro.obs.metrics.MetricsRegistry`.  Crash/timeout recovery is
  free: whatever a dead worker finished spooling before it died is merged
  like everything else.

Merging counts *executions*, not logical cells: a cell that ran twice
(because a pool crash lost its collected result and it was requeued) is
spooled twice and counted twice, exactly as it would have been had both
executions happened in-process.
"""

from __future__ import annotations

import json
import os
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

from .events import SimEvent, SimTrace
from .metrics import MetricsRegistry
from .recorder import SpanRecord, TraceRecorder

#: Version of the one-line-per-cell spool schema.
SPOOL_VERSION = 1

#: Spool file name pattern (one file per worker process).
SPOOL_GLOB = "spool-*.jsonl"

#: Default histogram buckets (seconds) for span-duration metrics derived
#: from merged spools — log-spaced from 10 µs to 10 s.
SPAN_DURATION_BUCKETS = (
    1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 0.1, 0.3, 1.0, 3.0, 10.0,
)


@dataclass(frozen=True)
class TraceContext:
    """Identity a recorder stamps on its telemetry.

    ``trace_id`` names the whole distributed trace (one per session or
    sweep); ``parent_span_id`` names the parent-side span this context is a
    child of (``None`` for a root context); ``pid`` is the process that
    created the context.  Contexts are immutable and survive fork by
    construction: a worker never *inherits* one, it activates the child
    context it was explicitly handed (re-stamped with its own pid).
    """

    trace_id: str
    parent_span_id: str | None = None
    pid: int = field(default_factory=os.getpid)

    @classmethod
    def new(cls) -> "TraceContext":
        """A fresh root context with a random 16-hex trace id."""
        return cls(trace_id=uuid.uuid4().hex[:16])

    def child(self, parent_span_id: str) -> "TraceContext":
        """A child context under ``parent_span_id`` (e.g. ``"cell-3"``),
        sharing this trace id, stamped with the calling process's pid."""
        return TraceContext(
            trace_id=self.trace_id,
            parent_span_id=parent_span_id,
            pid=os.getpid(),
        )

    def to_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "parent_span_id": self.parent_span_id,
            "pid": self.pid,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "TraceContext":
        return cls(
            trace_id=str(d["trace_id"]),
            parent_span_id=d.get("parent_span_id"),
            pid=int(d.get("pid", 0)),
        )


def current_context() -> TraceContext:
    """The active recorder's context, or a fresh root context when tracing
    is off (so sweep drivers can always hand workers a real context)."""
    from . import recorder as obs

    rec = obs.get_recorder()
    return rec.context if rec is not None else TraceContext.new()


# -- spool writing (worker side) --------------------------------------------


def spool_path(directory: str | os.PathLike, pid: int | None = None) -> Path:
    """The spool file this process appends to inside ``directory``."""
    return Path(directory) / f"spool-{pid if pid is not None else os.getpid()}.jsonl"


def _sim_trace_dict(trace: SimTrace) -> dict:
    return {
        "window_size": trace.window_size,
        "instructions": trace.num_instructions,
        "label": trace.label,
        "events": [e.to_dict() for e in trace.events],
    }


def _sim_trace_from_dict(d: dict) -> SimTrace:
    trace = SimTrace(
        window_size=int(d.get("window_size", 0)),
        num_instructions=int(d.get("instructions", 0)),
        label=str(d.get("label", "")),
    )
    trace.events = [SimEvent.from_dict(e) for e in d.get("events", [])]
    return trace


def cell_record(recorder: TraceRecorder, cell: int, ok: bool = True) -> dict:
    """One spool line: everything ``recorder`` collected for one cell."""
    ctx = recorder.context
    return {
        "type": "cell",
        "v": SPOOL_VERSION,
        "cell": cell,
        "ok": ok,
        "trace_id": ctx.trace_id,
        "parent_span_id": ctx.parent_span_id,
        "pid": os.getpid(),
        "spans": [s.to_dict() for s in recorder.spans],
        "counters": dict(recorder.counters),
        "counter_samples": [
            [t, name, value] for t, name, value, _pid in recorder.counter_samples
        ],
        "sim_traces": [_sim_trace_dict(t) for t in recorder.sim_traces],
    }


def append_cell(directory: str | os.PathLike, record: dict) -> Path:
    """Append one cell record to this process's spool file and flush so the
    line survives ``os._exit`` — the whole crash-safety story is "a cell is
    either fully on disk or absent"."""
    path = spool_path(directory)
    path.parent.mkdir(parents=True, exist_ok=True)
    line = json.dumps(record, sort_keys=True)
    # flush() pushes the line into the OS page cache, which survives
    # os._exit / SIGKILL of the worker (only a machine crash could lose it).
    with path.open("a", encoding="utf-8") as fh:
        fh.write(line + "\n")
        fh.flush()
    return path


class spooled_cell:
    """Context manager a worker wraps one cell execution in.

    Installs a fresh :class:`TraceRecorder` under ``context`` (re-stamped
    with the worker's pid), records a ``sweep.cell`` root span around the
    cell, and on exit — *including* the exception path, since a raising
    cell still executed — appends the finished cell record to the spool and
    restores the previously active recorder.  A worker that dies mid-cell
    never reaches the append, so completed cells are never torn.
    """

    def __init__(
        self,
        directory: str | os.PathLike,
        context: TraceContext,
        cell: int,
        sim_events: bool = True,
    ) -> None:
        self.directory = directory
        self.context = TraceContext(
            trace_id=context.trace_id,
            parent_span_id=context.parent_span_id,
        )
        self.cell = cell
        self.sim_events = sim_events

    def __enter__(self) -> TraceRecorder:
        from . import recorder as obs

        self.recorder = TraceRecorder(
            sim_events=self.sim_events, context=self.context
        )
        self._previous = obs.set_recorder(self.recorder)
        self._span = self.recorder.span("sweep.cell", cell=self.cell)
        self._span.__enter__()
        return self.recorder

    def __exit__(self, exc_type, exc, tb) -> bool:
        from . import recorder as obs

        self._span.__exit__(exc_type, exc, tb)
        obs.set_recorder(self._previous)
        append_cell(
            self.directory,
            cell_record(self.recorder, self.cell, ok=exc_type is None),
        )
        return False


# -- spool reading and merging (parent side) ---------------------------------


@dataclass
class CellTelemetry:
    """One cell execution recovered from a spool file."""

    cell: int
    pid: int
    trace_id: str
    parent_span_id: str | None
    ok: bool
    spans: list[SpanRecord] = field(default_factory=list)
    counters: dict[str, int] = field(default_factory=dict)
    #: ``(t_ns, name, worker-cumulative total, pid)`` samples.
    counter_samples: list[tuple[int, str, int, int]] = field(default_factory=list)
    sim_traces: list[SimTrace] = field(default_factory=list)

    @property
    def start_ns(self) -> int:
        return min((s.start_ns for s in self.spans), default=0)


def _cell_from_record(rec: dict) -> CellTelemetry:
    pid = int(rec.get("pid", 0))
    return CellTelemetry(
        cell=int(rec.get("cell", -1)),
        pid=pid,
        trace_id=str(rec.get("trace_id", "")),
        parent_span_id=rec.get("parent_span_id"),
        ok=bool(rec.get("ok", True)),
        spans=[SpanRecord.from_dict(s) for s in rec.get("spans", [])],
        counters={str(k): int(v) for k, v in rec.get("counters", {}).items()},
        counter_samples=[
            (int(t), str(name), int(value), pid)
            for t, name, value in rec.get("counter_samples", [])
        ],
        sim_traces=[_sim_trace_from_dict(t) for t in rec.get("sim_traces", [])],
    )


def iter_spool_records(path: str | os.PathLike) -> Iterator[dict]:
    """Parsed cell records of one spool file.  Torn trailing lines (a
    worker died mid-append) and non-cell records are skipped, so a spool is
    readable at any moment — during the sweep, and after a crash."""
    try:
        text = Path(path).read_text(encoding="utf-8")
    except OSError:
        return
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            rec = json.loads(line)
        except json.JSONDecodeError:  # torn line: the writer died mid-cell
            continue
        if rec.get("type") == "cell" and rec.get("v") == SPOOL_VERSION:
            yield rec


def read_spools(directory: str | os.PathLike) -> list[CellTelemetry]:
    """All cell executions recovered from ``directory``'s spool files,
    ordered by earliest span start (i.e. wall-clock across processes)."""
    cells: list[CellTelemetry] = []
    for path in sorted(Path(directory).glob(SPOOL_GLOB)):
        for rec in iter_spool_records(path):
            cells.append(_cell_from_record(rec))
    cells.sort(key=lambda c: (c.start_ns, c.pid, c.cell))
    return cells


def clear_spools(directory: str | os.PathLike) -> int:
    """Delete existing spool files in ``directory`` (a new sweep must not
    merge a previous sweep's telemetry); returns the number removed."""
    removed = 0
    for path in Path(directory).glob(SPOOL_GLOB):
        try:
            path.unlink()
            removed += 1
        except OSError:
            pass
    return removed


@dataclass
class SpoolMerge:
    """The merged view of a spool directory."""

    cells: list[CellTelemetry]

    @property
    def spans(self) -> list[SpanRecord]:
        """All worker spans, timestamp-ordered across processes (fork
        children share the parent's monotonic clock base, so cross-process
        ordering by ``start_ns`` is meaningful)."""
        out = [s for c in self.cells for s in c.spans]
        out.sort(key=lambda s: s.start_ns)
        return out

    @property
    def counters(self) -> dict[str, int]:
        """Counter totals summed over every cell execution."""
        out: dict[str, int] = {}
        for c in self.cells:
            for name, value in c.counters.items():
                out[name] = out.get(name, 0) + value
        return out

    @property
    def counter_samples(self) -> list[tuple[int, str, int, int]]:
        out = [s for c in self.cells for s in c.counter_samples]
        out.sort(key=lambda s: s[0])
        return out

    @property
    def sim_traces(self) -> list[SimTrace]:
        return [t for c in self.cells for t in c.sim_traces]

    @property
    def pids(self) -> list[int]:
        return sorted({c.pid for c in self.cells})

    def span_durations(self) -> dict[str, list[float]]:
        """Per span name: every recorded duration in seconds."""
        out: dict[str, list[float]] = {}
        for span in self.spans:
            out.setdefault(span.name, []).append(span.duration_s)
        return out

    def merge_into(self, recorder: TraceRecorder) -> None:
        """Fold every spooled record into ``recorder`` — spans
        timestamp-ordered, counters accumulated (with their sample
        timelines), sim traces appended with a ``[pid N]`` label suffix so
        per-worker tracks stay distinguishable in exports."""
        recorder.spans.extend(self.spans)
        recorder.spans.sort(key=lambda s: s.start_ns)
        for name, value in sorted(self.counters.items()):
            recorder.counters[name] = recorder.counters.get(name, 0) + value
        recorder.counter_samples.extend(self.counter_samples)
        recorder.counter_samples.sort(key=lambda s: s[0])
        for cell in self.cells:
            for trace in cell.sim_traces:
                tag = f"[pid {cell.pid}]"
                if tag not in trace.label:
                    trace.label = f"{trace.label} {tag}".strip()
                recorder.add_sim_trace(trace)

    def registry(self, prefix: str = "") -> MetricsRegistry:
        """A :class:`MetricsRegistry` view of the merge: every merged
        counter, per-phase span-duration histograms
        (``<prefix>span.<name>.duration_s``), and cell bookkeeping."""
        registry = MetricsRegistry()
        for name, value in sorted(self.counters.items()):
            registry.counter(f"{prefix}{name}").inc(value)
        for name, durations in sorted(self.span_durations().items()):
            hist = registry.histogram(
                f"{prefix}span.{name}.duration_s", SPAN_DURATION_BUCKETS
            )
            for d in durations:
                hist.observe(d)
        registry.counter(f"{prefix}cells").inc(len(self.cells))
        registry.gauge(f"{prefix}workers").set(len(self.pids))
        return registry


def merge_spools(
    directory: str | os.PathLike, recorder: TraceRecorder | None = None
) -> SpoolMerge:
    """Read every spool in ``directory`` and (optionally) fold the result
    into ``recorder``; returns the :class:`SpoolMerge`."""
    merge = SpoolMerge(cells=read_spools(directory))
    if recorder is not None:
        merge.merge_into(recorder)
    return merge
