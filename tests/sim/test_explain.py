"""Unit tests for stall attribution and the event log."""

from repro.ir import graph_from_edges
from repro.machine import paper_machine
from repro.sim import simulate_window
from repro.sim.explain import event_log, explain_stalls


class TestDependenceStalls:
    def test_latency_gap_attributed(self):
        g = graph_from_edges([("a", "b", 3)])
        m = paper_machine(2)
        sim = simulate_window(g, ["a", "b"], m)
        report = explain_stalls(g, ["a", "b"], sim, m)
        assert report.dependence_cycles == 3
        assert report.window_cycles == 0
        assert all(s.waiting == "b" and s.blocker == "a" for s in report.stalls)

    def test_no_stalls_on_packed_schedule(self):
        g = graph_from_edges([], nodes=["a", "b", "c"])
        m = paper_machine(2)
        sim = simulate_window(g, ["a", "b", "c"], m)
        report = explain_stalls(g, ["a", "b", "c"], sim, m)
        assert report.stalls == []


class TestWindowStalls:
    def test_ready_outside_window_detected(self):
        """Stream [a, b(waits a+5), c]: with W=2 c gets in, but with the
        fourth instruction d beyond the window while ready, the stall is
        window-limited."""
        g = graph_from_edges([("a", "b", 5)], nodes=["a", "b", "c", "d"])
        m = paper_machine(2)
        sim = simulate_window(g, ["a", "b", "c", "d"], m)
        report = explain_stalls(g, ["a", "b", "c", "d"], sim, m)
        assert report.window_cycles > 0
        win = next(s for s in report.stalls if s.kind == "window")
        assert win.waiting == "d"
        assert win.blocker == "b"  # the stalled head pinning the window

    def test_bigger_window_removes_window_stalls(self):
        g = graph_from_edges([("a", "b", 5)], nodes=["a", "b", "c", "d"])
        m = paper_machine(4)
        sim = simulate_window(g, ["a", "b", "c", "d"], m)
        report = explain_stalls(g, ["a", "b", "c", "d"], sim, m)
        assert report.window_cycles == 0


class TestSummaryAndLog:
    def test_summary_counts(self):
        g = graph_from_edges([("a", "b", 2)])
        m = paper_machine(2)
        sim = simulate_window(g, ["a", "b"], m)
        report = explain_stalls(g, ["a", "b"], sim, m)
        assert "2 stall cycles" in report.summary()
        assert "2 dependence" in report.summary()

    def test_event_log_contents(self):
        g = graph_from_edges([("a", "b", 2)])
        m = paper_machine(2)
        sim = simulate_window(g, ["a", "b"], m)
        log = event_log(g, ["a", "b"], sim, m)
        text = "\n".join(log)
        assert "issue a" in text
        assert "complete a" in text
        assert "STALL (dependence)" in text
        assert "issue b" in text

    def test_log_on_figure1(self):
        from repro.core import rank_schedule
        from repro.workloads import figure1_bb1

        g = figure1_bb1()
        s, _ = rank_schedule(g)
        m = paper_machine(len(g))
        sim = simulate_window(g, s.permutation(), m)
        report = explain_stalls(g, s.permutation(), sim, m)
        assert len(report.stalls) == 1  # the single forced idle slot
        assert report.stalls[0].kind == "dependence"
