"""Transport-independent brain of the scheduling service.

:class:`ScheduleService` owns the canonical-digest cache, the robust
execution pool and the metrics registry; the asyncio daemon
(:mod:`repro.serve.daemon`) is a thin front-end that decodes bytes and
feeds request batches here.

Batch lifecycle
---------------

1. **decode** every wire document (:class:`~repro.serve.protocol
   .ScheduleRequest`); malformed ones become structured error responses
   without touching the rest of the batch;
2. **canonicalize** each request to its isomorphism-safe digest
   (:func:`~repro.serve.canonical.canonical_form`);
3. **cache lookup** — a hit translates the stored canonical schedule
   through the request's own labeling (no scheduler run, no simulation);
   duplicate digests *within* one batch collapse onto a single compute
   and the duplicates count as hits;
4. **compute misses** through the :class:`~repro.robust.ExecutionPool`
   (fresh crash-isolated workers per batch when ``jobs > 1``) and insert
   the canonical form of each fresh result;
5. **respond** in input order.

Bit-identity contract: a miss is answered with the worker's raw result —
exactly what a direct :func:`repro.serve.worker.compute_request` call
returns — and a hit for an order-preserving relabeling of a cached request
reproduces that result through the canonical translation (the scheduler
tie-breaks by program index, never by name; pinned in
``tests/serve/test_canonical.py``).

Telemetry: every batch runs under a ``serve.batch`` span (spooled to
``spool_dir`` when set, so ``repro metrics`` / ``repro top`` work on a live
daemon's spool directory), each request gets a child ``serve.request``
span, and the registry carries ``serve.requests`` / ``serve.errors``
counters plus per-request-class latency histograms
(``serve.request.<scheduler>.duration_s``).
"""

from __future__ import annotations

import os
import time

from ..core.schedule import schedule_digest
from ..obs import recorder as obs
from ..obs.metrics import MetricsRegistry
from ..obs.pipeline import SPAN_DURATION_BUCKETS, TraceContext, spooled_cell
from ..obs.runreport import RunReport, collect_provenance
from ..robust.pool import ExecutionPool, PoolConfig
from .cache import ScheduleCache
from .canonical import CanonicalForm, canonical_form
from .protocol import ProtocolError, ScheduleRequest, error_response, ok_response
from .worker import compute_request


def entry_from_result(form: CanonicalForm, result: dict) -> dict:
    """A freshly computed result, re-expressed in canonical ids for the
    cache."""
    cid = form.id_map()
    return {
        "block_orders": [[cid[n] for n in order] for order in result["block_orders"]],
        "makespan": result["makespan"],
        "stall_cycles": result["stall_cycles"],
        "starts": [[cid[n], t] for n, t in sorted(result["starts"].items())],
        "units": [[cid[n], list(u)] for n, u in sorted(result["units"].items())],
    }


def result_from_entry(form: CanonicalForm, entry: dict) -> dict:
    """A cached canonical entry, translated into the requesting trace's own
    node names — including the translated schedule's content digest."""
    names = form.order
    starts = {names[c]: t for c, t in entry["starts"]}
    units = {names[c]: tuple(u) for c, u in entry["units"]}
    return {
        "block_orders": [[names[c] for c in order] for order in entry["block_orders"]],
        "makespan": entry["makespan"],
        "stall_cycles": entry["stall_cycles"],
        "starts": starts,
        "units": units,
        "schedule_digest": schedule_digest(starts, units),
    }


class ScheduleService:
    """Decode, canonicalize, cache, compute, respond."""

    def __init__(
        self,
        jobs: int = 1,
        cache_size: int = 1024,
        cache_path: str | os.PathLike | None = None,
        spool_dir: str | os.PathLike | None = None,
        timeout_s: float | None = None,
        retries: int = 1,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.registry = registry or MetricsRegistry()
        self.cache = ScheduleCache(
            capacity=cache_size, path=cache_path, registry=self.registry
        )
        self.pool = ExecutionPool(
            compute_request,
            PoolConfig(jobs=jobs, timeout_s=timeout_s, retries=retries),
        )
        self.spool_dir = spool_dir
        self.context = TraceContext.new()
        self.requests = 0
        self.errors = 0
        self.batches = 0

    # -- public entry points -------------------------------------------------

    def handle(self, doc: dict) -> dict:
        """One request through the full batch path."""
        return self.handle_batch([doc])[0]

    def handle_batch(self, docs: list) -> list[dict]:
        """Answer a batch of wire documents, responses in input order.

        Runs synchronously in the calling thread; the daemon serializes
        batches through a single executor thread because the obs recorder
        is process-global.
        """
        self.batches += 1
        if self.spool_dir is not None:
            cell = spooled_cell(
                self.spool_dir,
                self.context.child(f"batch-{self.batches}"),
                cell=self.batches,
                sim_events=False,
            )
            with cell:
                return self._handle_batch(docs)
        return self._handle_batch(docs)

    # -- internals -----------------------------------------------------------

    def _handle_batch(self, docs: list) -> list[dict]:
        t_batch = time.perf_counter()
        responses: list[dict | None] = [None] * len(docs)
        slots: list[dict] = []  # decoded, not yet answered
        with obs.span("serve.batch", size=len(docs)):
            # 1/2: decode + canonicalize
            for i, doc in enumerate(docs):
                self.requests += 1
                self.registry.counter("serve.requests").inc()
                started = time.perf_counter()
                try:
                    request = ScheduleRequest.from_dict(doc)
                except ProtocolError as exc:
                    responses[i] = self._error(doc, str(exc))
                    continue
                form = canonical_form(
                    request.trace, request.machine, request.scheduler
                )
                slots.append(
                    {
                        "index": i,
                        "request": request,
                        "form": form,
                        "started": started,
                    }
                )

            # 3: cache lookup with within-batch dedupe
            pending: dict[str, list[dict]] = {}
            for slot in slots:
                form = slot["form"]
                waiting = pending.get(form.digest)
                if waiting is not None:
                    # Another request in this batch is already computing
                    # this digest: served without a scheduler run == a hit.
                    self.cache.note_hit()
                    slot["cached"] = True
                    waiting.append(slot)
                    continue
                entry = self.cache.get(form.digest)
                if entry is not None:
                    responses[slot["index"]] = self._ok(
                        slot, result_from_entry(form, entry), cached=True
                    )
                else:
                    slot["cached"] = False
                    pending[form.digest] = [slot]

            # 4: compute misses through the robust pool
            if pending:
                order = list(pending.values())
                with obs.span("serve.compute", misses=len(order)):
                    outcome = self.pool.run(
                        [group[0]["request"].to_dict() for group in order]
                    )
                for group, result in zip(order, outcome.results):
                    first = group[0]
                    if not isinstance(result, dict):  # a SweepFailure
                        for slot in group:
                            responses[slot["index"]] = self._error(
                                slot["request"],
                                f"scheduling failed: {result}",
                                decoded=True,
                            )
                        continue
                    self.cache.put(
                        first["form"].digest,
                        entry_from_result(first["form"], result),
                    )
                    # The computing request gets the worker's raw answer —
                    # bit-identical to an uncached direct call.
                    responses[first["index"]] = self._ok(
                        first, result, cached=False
                    )
                    for slot in group[1:]:
                        responses[slot["index"]] = self._ok(
                            slot,
                            result_from_entry(
                                slot["form"],
                                entry_from_result(first["form"], result),
                            ),
                            cached=True,
                        )
        self.registry.histogram(
            "serve.batch.duration_s", SPAN_DURATION_BUCKETS
        ).observe(time.perf_counter() - t_batch)
        return [r for r in responses]  # all filled by construction

    def _ok(self, slot: dict, result: dict, cached: bool) -> dict:
        request: ScheduleRequest = slot["request"]
        elapsed = time.perf_counter() - slot["started"]
        self.registry.counter(f"serve.requests.{request.scheduler}").inc()
        self.registry.histogram(
            f"serve.request.{request.scheduler}.duration_s",
            SPAN_DURATION_BUCKETS,
        ).observe(elapsed)
        with obs.span(
            "serve.request",
            scheduler=request.scheduler,
            digest=slot["form"].digest[:16],
            cached=cached,
        ):
            pass
        return ok_response(request.id, slot["form"].digest, cached, result)

    def _error(self, doc_or_request, message: str, decoded: bool = False) -> dict:
        self.errors += 1
        self.registry.counter("serve.errors").inc()
        obs.count("serve.error")
        if decoded:
            request_id = doc_or_request.id
        else:
            request_id = (
                doc_or_request.get("id") if isinstance(doc_or_request, dict) else None
            )
        return error_response(request_id, message)

    # -- introspection -------------------------------------------------------

    def stats(self) -> dict:
        return {
            "requests": self.requests,
            "errors": self.errors,
            "batches": self.batches,
            "cache": self.cache.stats(),
            "pool": {
                "jobs": self.pool.config.jobs,
                "batches": self.pool.batches,
                "attempts": self.pool.attempts,
                "pool_restarts": self.pool.pool_restarts,
            },
        }

    def run_report(self, name: str = "serve") -> RunReport:
        """The service's lifetime metrics as a comparable RunReport.

        Deterministic facts (request/error/cache counts) live under
        invariant keys; latency histograms live under ``duration_s`` paths,
        which ``repro compare`` thresholds instead of pinning — so the
        report doubles as a latency-SLO gate.
        """
        return RunReport(
            name=name,
            metrics={
                "requests": self.requests,
                "errors": self.errors,
                "batches": self.batches,
                "cache": self.cache.stats(),
                "latency": {
                    key: self.registry[key].to_value()
                    for key in self.registry.names()
                    if key.endswith(".duration_s")
                },
            },
            provenance=collect_provenance(jobs=self.pool.config.jobs),
        )
