"""Instruction IR substrate: instructions, dependence graphs, blocks, traces."""

from .basicblock import (
    BasicBlock,
    LoopTrace,
    Trace,
    block_from_graph,
    single_block_trace,
)
from .builder import build_block, build_dependence_graph, build_trace
from .cfg import CFGEdge, ControlFlowGraph
from .depgraph import CycleError, DependenceGraph, graph_from_edges
from .instruction import (
    ANY,
    BRANCH,
    FIXED,
    FLOAT,
    FU_CLASSES,
    MEMORY,
    Instruction,
    make_instructions,
)
from .loop_builder import build_loop_graph
from .loopgraph import LoopEdge, LoopGraph, instance_name, loop_from_edges
from .parser import ParseError, parse_program, parse_trace
from .regalloc import (
    AllocationError,
    LiveInterval,
    SpillAllocation,
    allocate_registers,
    allocate_with_spills,
    live_intervals,
    minimum_registers,
    rename_registers,
    spill_count,
)
from .unroll import reroll_orders, unroll_loop, unrolled_name

__all__ = [
    "ANY",
    "AllocationError",
    "BRANCH",
    "BasicBlock",
    "CFGEdge",
    "ControlFlowGraph",
    "CycleError",
    "DependenceGraph",
    "FIXED",
    "FLOAT",
    "FU_CLASSES",
    "Instruction",
    "LiveInterval",
    "LoopEdge",
    "LoopGraph",
    "LoopTrace",
    "MEMORY",
    "ParseError",
    "SpillAllocation",
    "Trace",
    "allocate_registers",
    "allocate_with_spills",
    "block_from_graph",
    "build_block",
    "build_dependence_graph",
    "build_loop_graph",
    "build_trace",
    "graph_from_edges",
    "instance_name",
    "live_intervals",
    "loop_from_edges",
    "make_instructions",
    "minimum_registers",
    "parse_program",
    "parse_trace",
    "rename_registers",
    "reroll_orders",
    "single_block_trace",
    "spill_count",
    "unroll_loop",
    "unrolled_name",
]
