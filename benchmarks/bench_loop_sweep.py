"""E6 — Table B of the §7 prospective study: single-block loops.

Compares the §5.2.3 anticipatory loop scheduler against (a) the
block-optimal schedule (ignore carried dependences, Rank Algorithm on G_li —
the Figure 3 "Schedule 1" strategy) and (b) raw program order, measuring the
simulated steady-state initiation interval.  Expected shape (asserted): the
anticipatory order's II never loses to the block-optimal order's II, and on
recurrence-dominated shapes it strictly wins (the Figure 3 / Figure 8
effect).
"""

from common import emit_metrics, emit_table

from repro.analysis import geometric_mean
from repro.core import schedule_single_block_loop
from repro.core.idle import schedule_block_with_late_idle_slots
from repro.machine import paper_machine
from repro.sim import simulated_initiation_interval
from repro.workloads import random_loop, recurrence_loop

TRIALS = 12


def block_optimal_order(loop, machine):
    sched, _ = schedule_block_with_late_idle_slots(
        loop.loop_independent_subgraph(), machine
    )
    return sched.permutation()


def test_loop_sweep(benchmark):
    m = paper_machine(1)
    rows = []
    wins = 0
    for seed in range(TRIALS):
        loop = random_loop(
            6,
            edge_probability=0.35,
            carried_probability=0.15,
            carried_latencies=(1, 2, 4),
            seed=seed,
        )
        res = schedule_single_block_loop(loop, m, horizon=8)
        ours = simulated_initiation_interval(loop, res.order, m)
        block = simulated_initiation_interval(loop, block_optimal_order(loop, m), m)
        naive = simulated_initiation_interval(loop, loop.nodes, m)
        rows.append([seed, naive, block, ours, res.best.kind, res.best.pivot])
        assert ours <= block, f"anticipatory lost on seed {seed}: {ours} vs {block}"
        if ours < block:
            wins += 1
    emit_table(
        "E6_loop_sweep",
        ["seed", "program order II", "block-optimal II", "anticipatory II",
         "transform", "pivot"],
        rows,
        title=(
            "E6 / Table B: random single-block loops (6 ops, carried "
            "latencies 1/2/4, simulated steady-state II at W=1)"
        ),
    )

    # Recurrence-dominated loops (the Figure 8 shape, scaled): anticipatory
    # must strictly beat program order once fillers exist to hide latency.
    rec_rows = []
    for chain, lat in ((3, 4), (4, 6), (5, 8)):
        loop = recurrence_loop(chain, recurrence_latency=lat)
        res = schedule_single_block_loop(loop, m)
        ours = simulated_initiation_interval(loop, res.order, m)
        naive = simulated_initiation_interval(loop, loop.nodes, m)
        rec_rows.append([chain, lat, naive, ours])
    emit_table(
        "E6_recurrence",
        ["chain length", "recurrence latency", "program order II",
         "anticipatory II"],
        rec_rows,
        title="E6 follow-up: recurrence-dominated loops",
    )

    emit_metrics(
        "E6_loop_sweep",
        {
            "trials": TRIALS,
            "strict_wins": wins,
            "loops": [
                {
                    "seed": seed,
                    "program_order_ii": naive,
                    "block_optimal_ii": block,
                    "anticipatory_ii": ours,
                    "transform": kind,
                    "pivot": pivot,
                }
                for seed, naive, block, ours, kind, pivot in rows
            ],
            "recurrence": [
                {
                    "chain_length": chain,
                    "recurrence_latency": lat,
                    "program_order_ii": naive,
                    "anticipatory_ii": ours,
                }
                for chain, lat, naive, ours in rec_rows
            ],
        },
        machine=m,
    )

    loop = random_loop(6, seed=0, carried_latencies=(1, 2, 4))
    benchmark(lambda: schedule_single_block_loop(loop, m, horizon=8))
