"""Asyncio front-end of the scheduling service: ``repro serve``.

Two transports over one :class:`~repro.serve.service.ScheduleService`:

- **unix socket** (``--socket PATH``): newline-delimited JSON.  Each line
  is either a scheduling request (:mod:`repro.serve.protocol`) or a
  control op — ``{"op": "ping"}``, ``{"op": "stats"}``,
  ``{"op": "metrics"}``, ``{"op": "traces"|"slow"|"errors"}``,
  ``{"op": "top"}`` — and receives exactly one response line.
  Multiple requests may be pipelined on one connection; responses come
  back in order.
- **HTTP** (``--port N``): a deliberately minimal HTTP/1.1 subset —
  ``POST /v1/schedule`` (a request document, or ``{"requests": [...]}``
  for an explicit batch), ``GET /metrics`` (Prometheus text exposition of
  the service registry), ``GET /healthz``, ``GET /stats``, and the live
  introspection surface: ``GET /debug/traces`` / ``/debug/slow`` /
  ``/debug/errors`` (tail-sampled request traces, ``?trace_id=``, ``?n=``,
  ``&format=jsonl`` for replayable waterfall JSONL), ``GET /debug/top``
  (one self-contained stats+metrics document for ``repro top``), and
  ``GET /debug/profile?seconds=S`` (on-demand flamegraph of the batch
  executor thread).  No keep-alive, no chunked bodies; enough for curl,
  load generators and scrapers without pulling in a web framework.

Batching: every schedule request lands in one queue; a collector task
drains it into batches of up to ``batch_max`` requests, waiting at most
``batch_window_s`` after the first arrival so concurrent clients coalesce.
Each batch runs in a **single-thread** executor — the obs recorder is
process-global, so request handling must not interleave in threads; CPU
parallelism comes from the service's worker pool (``--jobs``), not from
threading the daemon.

Overload safety: the queue is **bounded** by an
:class:`~repro.serve.admission.AdmissionController` — every request must
be admitted before it is enqueued, and a request beyond the queue
capacity (or its transport's inflight limit) is shed immediately with a
structured ``overloaded`` error carrying ``retry_after_s`` (HTTP answers
503 with a ``Retry-After`` header).  Above the brownout threshold the
collector stops paying the coalescing wait and the ``/debug/*``
endpoints answer 503 — optional work is shed before requests are.  A
request document may carry ``deadline_ms``; the daemon stamps its expiry
at admission, and the service drops it with ``deadline_exceeded`` (HTTP
504) if the budget dies in the queue.
"""

from __future__ import annotations

import asyncio
import functools
import json
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from urllib.parse import parse_qs, urlsplit

from ..obs.expo import prometheus_text
from ..obs.profiler import (
    SamplingProfiler,
    collapsed_stacks,
    flamegraph_html,
)
from .admission import AdmissionConfig, AdmissionController
from .protocol import deadline_s_from_doc, error_response
from .service import ScheduleService

#: Default limit on requests coalesced into one batch.
DEFAULT_BATCH_MAX = 16

#: Default coalescing window after the first request of a batch (seconds).
DEFAULT_BATCH_WINDOW_S = 0.002

_MAX_LINE = 32 * 1024 * 1024  # 32 MiB: generous bound for one JSON request


class ScheduleServer:
    """The daemon: transports + batcher around a :class:`ScheduleService`."""

    def __init__(
        self,
        service: ScheduleService,
        socket_path: str | os.PathLike | None = None,
        host: str = "127.0.0.1",
        port: int | None = None,
        batch_max: int = DEFAULT_BATCH_MAX,
        batch_window_s: float = DEFAULT_BATCH_WINDOW_S,
        access_log: str | os.PathLike | None = None,
        admission: AdmissionConfig | None = None,
        max_line: int = _MAX_LINE,
    ) -> None:
        if socket_path is None and port is None:
            raise ValueError("need a unix socket path and/or a TCP port")
        if batch_max < 1:
            raise ValueError(f"batch_max must be >= 1, got {batch_max}")
        if max_line < 1024:
            raise ValueError(f"max_line must be >= 1024, got {max_line}")
        self.service = service
        self.max_line = int(max_line)
        #: Bounded-queue admission ledger, shared by both transports and
        #: attached to the service so /stats and /metrics can surface it.
        self.admission = AdmissionController(
            admission, registry=service.registry
        )
        service.admission = self.admission
        self.socket_path = Path(socket_path) if socket_path is not None else None
        self.host = host
        self.port = port
        self.batch_max = batch_max
        self.batch_window_s = batch_window_s
        self.access_log_path = (
            Path(access_log) if access_log is not None else None
        )
        self._access_log = None
        self._queue: asyncio.Queue | None = None
        self._servers: list[asyncio.base_events.Server] = []
        self._batcher: asyncio.Task | None = None
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="serve-batch"
        )
        self._executor_thread_id: int | None = None

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        self._queue = asyncio.Queue()
        if self.access_log_path is not None:
            self.access_log_path.parent.mkdir(parents=True, exist_ok=True)
            self._access_log = self.access_log_path.open("a", encoding="utf-8")
        # Capture the batch executor's thread id so /debug/profile can
        # sample the thread that actually runs request handling.
        self._executor_thread_id = await asyncio.get_running_loop().run_in_executor(
            self._executor, threading.get_ident
        )
        self._batcher = asyncio.get_running_loop().create_task(self._batch_loop())
        if self.socket_path is not None:
            self.socket_path.parent.mkdir(parents=True, exist_ok=True)
            if self.socket_path.exists():
                self.socket_path.unlink()
            self._servers.append(
                await asyncio.start_unix_server(
                    self._serve_unix,
                    path=str(self.socket_path),
                    limit=self.max_line,
                )
            )
        if self.port is not None:
            server = await asyncio.start_server(
                self._serve_http,
                host=self.host,
                port=self.port,
                limit=self.max_line,
            )
            self._servers.append(server)
            # Resolve port 0 to the actual bound port for clients.
            self.port = server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        for server in self._servers:
            server.close()
            await server.wait_closed()
        self._servers.clear()
        if self._batcher is not None:
            self._batcher.cancel()
            try:
                await self._batcher
            except asyncio.CancelledError:
                pass
            self._batcher = None
        self._executor.shutdown(wait=True)
        if self._access_log is not None:
            self._access_log.close()
            self._access_log = None
        if self.socket_path is not None and self.socket_path.exists():
            self.socket_path.unlink()

    async def serve_forever(self) -> None:
        if not self._servers:
            await self.start()
        try:
            await asyncio.gather(*(s.serve_forever() for s in self._servers))
        finally:
            await self.stop()

    def endpoints(self) -> list[str]:
        """Human-readable listening endpoints (valid after :meth:`start`)."""
        out = []
        if self.socket_path is not None:
            out.append(f"unix:{self.socket_path}")
        if self.port is not None:
            out.append(f"http://{self.host}:{self.port}")
        return out

    # -- batching ------------------------------------------------------------

    async def _submit(self, doc: dict, transport: str = "unknown") -> dict:
        """Admit + enqueue one request document; resolves to its response.

        Admission is the bounded front door: a request beyond the queue
        capacity or the transport's inflight limit is answered
        ``overloaded`` right here — it never touches the queue, the batch
        executor, or the pool.  Admitted requests get their ``deadline_ms``
        expiry stamped now, so queue wait counts against the budget.
        """
        request_id = doc.get("id") if isinstance(doc, dict) else None
        reason = self.admission.try_admit(transport)
        if reason is not None:
            return error_response(
                request_id,
                f"overloaded: {reason.replace('_', ' ')} "
                f"(retry after {self.admission.config.retry_after_s:g}s)",
                code="overloaded",
                retry_after_s=self.admission.config.retry_after_s,
            )
        budget_s = deadline_s_from_doc(doc)
        expires = None if budget_s is None else time.monotonic() + budget_s
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        await self._queue.put(
            (doc, transport, time.monotonic(), expires, future)
        )
        try:
            return await future
        finally:
            self.admission.release(transport)

    async def _batch_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            first = await self._queue.get()
            batch = [first]
            deadline = loop.time() + self.batch_window_s
            while len(batch) < self.batch_max:
                if self.admission.brownout:
                    # Brownout: stop paying the coalescing wait — take only
                    # what is already queued and get it to the executor.
                    try:
                        batch.append(self._queue.get_nowait())
                    except asyncio.QueueEmpty:
                        break
                    continue
                remaining = deadline - loop.time()
                if remaining <= 0:
                    break
                try:
                    batch.append(
                        await asyncio.wait_for(self._queue.get(), remaining)
                    )
                except asyncio.TimeoutError:
                    break
            self.admission.note_dequeued(len(batch))
            docs = [doc for doc, _, _, _, _ in batch]
            transports = [transport for _, transport, _, _, _ in batch]
            # Remaining per-request budgets at dispatch: queue wait already
            # spent; the service drops expired ones before they reach the
            # pool and tightens the pool stall timeout to the rest.
            now = time.monotonic()
            deadlines = [
                None if expires is None else expires - now
                for _, _, _, expires, _ in batch
            ]
            try:
                responses = await loop.run_in_executor(
                    self._executor,
                    functools.partial(
                        self.service.handle_batch,
                        docs,
                        transports=transports,
                        deadlines=deadlines,
                    ),
                )
            except Exception as exc:  # defensive: the service shouldn't raise
                responses = [
                    error_response(
                        doc.get("id") if isinstance(doc, dict) else None,
                        f"internal error: {exc}",
                        code="internal",
                    )
                    for doc in docs
                ]
            now = time.monotonic()
            for (doc, transport, enqueued, _, future), response in zip(
                batch, responses
            ):
                if not future.done():
                    future.set_result(response)
                self._log_access(doc, transport, response, now - enqueued)

    def _log_access(
        self, doc, transport: str, response: dict, duration_s: float
    ) -> None:
        """One structured access-log line per answered request (no-op
        without ``--access-log``)."""
        if self._access_log is None:
            return
        trace = response.get("trace") if isinstance(response, dict) else None
        digest = response.get("digest") if isinstance(response, dict) else None
        line = {
            "ts": time.time(),
            "transport": transport,
            "trace_id": (trace or {}).get("trace_id"),
            "id": response.get("id") if isinstance(response, dict) else None,
            "scheduler": (
                doc.get("scheduler", "anticipatory")
                if isinstance(doc, dict)
                else None
            ),
            "digest": digest[:12] if isinstance(digest, str) else None,
            "cached": (
                response.get("cached") if isinstance(response, dict) else None
            ),
            "status": (
                "ok"
                if isinstance(response, dict) and response.get("ok")
                else "error"
            ),
            "duration_ms": round(duration_s * 1e3, 3),
        }
        self._access_log.write(json.dumps(line, sort_keys=True) + "\n")
        self._access_log.flush()

    # -- unix-socket transport ------------------------------------------------

    def _control(self, doc: dict) -> dict | None:
        op = doc.get("op")
        if op is None:
            return None
        if op == "ping":
            return {"ok": True, "op": "ping"}
        if op == "stats":
            return {"ok": True, "op": "stats", "stats": self.service.stats()}
        if op == "metrics":
            self.service.refresh_gauges()
            return {
                "ok": True,
                "op": "metrics",
                "text": prometheus_text(self.service.registry),
            }
        if op in ("traces", "slow", "errors", "degraded", "top"):
            # Debug introspection is the first thing brownout sheds: these
            # ops serialize whole trace rings while the daemon is already
            # behind (stats/metrics stay up — operators need them most
            # exactly now).
            if self.admission.brownout:
                return {
                    "ok": False,
                    "op": op,
                    "error": "debug surface disabled during brownout",
                    "code": "overloaded",
                    "retry_after_s": self.admission.config.retry_after_s,
                }
            if op == "top":
                return {"ok": True, "op": "top", **self._top_doc()}
            return {
                "ok": True,
                "op": op,
                **self._traces_doc(
                    ring=op if op != "traces" else "recent",
                    n=doc.get("n"),
                    trace_id=doc.get("trace_id"),
                ),
            }
        return {"ok": False, "error": f"unknown op {op!r}"}

    # -- debug documents (shared by both transports) --------------------------

    def _traces_doc(
        self,
        ring: str = "recent",
        n: object = None,
        trace_id: str | None = None,
    ) -> dict:
        buf = self.service.tracebuf
        select = {
            "recent": buf.recent,
            "slow": buf.slow,
            "errors": buf.errors,
            "degraded": buf.degraded,
        }[ring]
        limit = None
        if n is not None:
            try:
                limit = int(n)
            except (TypeError, ValueError):
                limit = None
        traces = select(n=limit, trace_id=trace_id or None)
        return {
            "ring": ring,
            "count": len(traces),
            "buffer": buf.stats(),
            "traces": [t.to_dict() for t in traces],
        }

    def _top_doc(self) -> dict:
        self.service.refresh_gauges()
        return {
            "stats": self.service.stats(),
            "metrics": self.service.registry.to_dict(),
        }

    async def _serve_unix(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    await self._write_line(
                        writer, error_response(None, "request line too long")
                    )
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                try:
                    doc = json.loads(line)
                except ValueError as exc:
                    await self._write_line(
                        writer, error_response(None, f"bad JSON: {exc}")
                    )
                    continue
                if isinstance(doc, dict) and (control := self._control(doc)):
                    await self._write_line(writer, control)
                    continue
                await self._write_line(
                    writer, await self._submit(doc, transport="unix")
                )
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    @staticmethod
    async def _write_line(writer: asyncio.StreamWriter, doc: dict) -> None:
        writer.write(json.dumps(doc, sort_keys=True).encode() + b"\n")
        await writer.drain()

    # -- HTTP transport --------------------------------------------------------

    async def _serve_http(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            result = await self._http_response(reader)
            status, content_type, body = result[:3]
            extra_headers = result[3] if len(result) > 3 else {}
            head = (
                f"HTTP/1.1 {status}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(body)}\r\n"
                + "".join(
                    f"{name}: {value}\r\n"
                    for name, value in extra_headers.items()
                )
                + "Connection: close\r\n\r\n"
            )
            writer.write(head.encode() + body)
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _http_response(self, reader: asyncio.StreamReader) -> tuple:
        request_line = (await reader.readline()).decode("latin-1").strip()
        parts = request_line.split()
        if len(parts) < 2:
            return "400 Bad Request", "text/plain", b"bad request line\n"
        method, target = parts[0].upper(), parts[1]
        url = urlsplit(target)
        path = url.path
        query = {
            key: values[-1]
            for key, values in parse_qs(url.query, keep_blank_values=True).items()
        }
        content_length = 0
        while True:
            header = (await reader.readline()).decode("latin-1").strip()
            if not header:
                break
            key, _, value = header.partition(":")
            if key.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    return "400 Bad Request", "text/plain", b"bad content-length\n"
        if method == "GET" and path == "/healthz":
            return "200 OK", "text/plain", b"ok\n"
        if method == "GET" and path == "/metrics":
            self.service.refresh_gauges()
            text = prometheus_text(self.service.registry)
            return "200 OK", "text/plain; version=0.0.4", text.encode()
        if method == "GET" and path == "/stats":
            body = json.dumps(self.service.stats(), sort_keys=True) + "\n"
            return "200 OK", "application/json", body.encode()
        if path.startswith("/debug/") and self.admission.brownout:
            # Brownout sheds the debug surface before it sheds requests.
            retry = self.admission.config.retry_after_s
            return (
                "503 Service Unavailable",
                "text/plain",
                b"debug surface disabled during brownout\n",
                {"Retry-After": f"{max(int(retry + 0.999), 1)}"},
            )
        if method == "GET" and path in (
            "/debug/traces", "/debug/slow", "/debug/errors", "/debug/degraded"
        ):
            ring = {"/debug/traces": "recent", "/debug/slow": "slow",
                    "/debug/errors": "errors",
                    "/debug/degraded": "degraded"}[path]
            doc = self._traces_doc(
                ring=ring,
                n=query.get("n"),
                trace_id=query.get("trace_id"),
            )
            if query.get("format") == "jsonl":
                # The selected traces as waterfall JSONL — the same schema
                # `repro trace` replays and Perfetto export consumes.
                from .tracebuf import RequestTrace

                lines = []
                for t in doc["traces"]:
                    for record in RequestTrace.from_dict(t).waterfall_records():
                        lines.append(json.dumps(record, sort_keys=True))
                return (
                    "200 OK",
                    "application/jsonl",
                    ("\n".join(lines) + "\n").encode() if lines else b"",
                )
            body = json.dumps(doc, sort_keys=True) + "\n"
            return "200 OK", "application/json", body.encode()
        if method == "GET" and path == "/debug/top":
            body = json.dumps(self._top_doc(), sort_keys=True) + "\n"
            return "200 OK", "application/json", body.encode()
        if method == "GET" and path == "/debug/profile":
            return await self._profile_response(query)
        if method == "POST" and path == "/v1/schedule":
            if content_length > self.max_line:
                return (
                    "413 Payload Too Large",
                    "text/plain",
                    f"body exceeds {self.max_line} bytes\n".encode(),
                )
            if content_length <= 0:
                return "400 Bad Request", "text/plain", b"need a JSON body\n"
            raw = await reader.readexactly(content_length)
            try:
                doc = json.loads(raw)
            except ValueError as exc:
                body = json.dumps(
                    error_response(None, f"bad JSON: {exc}", code="bad_request")
                ) + "\n"
                return "400 Bad Request", "application/json", body.encode()
            if isinstance(doc, dict) and isinstance(doc.get("requests"), list):
                responses = await asyncio.gather(
                    *(self._submit(d, transport="http") for d in doc["requests"])
                )
                body = json.dumps({"responses": responses}, sort_keys=True) + "\n"
                # Batch answers stay 200: per-request outcomes (including
                # sheds) are in the response documents.
                return "200 OK", "application/json", body.encode()
            response = await self._submit(doc, transport="http")
            body = json.dumps(response, sort_keys=True) + "\n"
            return self._single_schedule_http(response, body)
        return "404 Not Found", "text/plain", b"not found\n"

    def _single_schedule_http(self, response: dict, body: str) -> tuple:
        """Status line + headers for a single ``POST /v1/schedule`` answer:
        structured error codes map onto the matching HTTP semantics
        (``overloaded`` / ``breaker_open`` -> 503 + Retry-After,
        ``deadline_exceeded`` -> 504).  Decodable-but-invalid requests keep
        answering 200 with a structured ``ok: false`` body — that contract
        predates the error codes and clients rely on it."""
        status = "200 OK"
        headers: dict = {}
        if isinstance(response, dict) and not response.get("ok", False):
            code = response.get("code")
            if code in ("overloaded", "breaker_open"):
                status = "503 Service Unavailable"
                retry = response.get("retry_after_s")
                if retry:
                    headers["Retry-After"] = f"{max(int(retry + 0.999), 1)}"
            elif code == "deadline_exceeded":
                status = "504 Gateway Timeout"
        return status, "application/json", body.encode(), headers

    async def _profile_response(self, query: dict) -> tuple[str, str, bytes]:
        """``GET /debug/profile``: sample the batch-executor thread for
        ``seconds`` and answer a flamegraph (``format=html``, default) or
        collapsed stacks (``format=collapsed``)."""
        try:
            seconds = min(max(float(query.get("seconds", 1.0)), 0.05), 30.0)
            interval_ms = min(
                max(float(query.get("interval_ms", 5.0)), 0.5), 100.0
            )
        except ValueError:
            return "400 Bad Request", "text/plain", b"bad profile parameters\n"
        fmt = query.get("format", "html")
        if fmt not in ("html", "collapsed"):
            return "400 Bad Request", "text/plain", b"format: html|collapsed\n"
        prof = SamplingProfiler(
            interval_s=interval_ms / 1e3,
            mode="thread",
            target_thread_id=self._executor_thread_id,
        )
        try:
            prof.start()
        except RuntimeError as exc:  # another profiler already active
            return "409 Conflict", "text/plain", f"{exc}\n".encode()
        try:
            await asyncio.sleep(seconds)
        finally:
            prof.stop()
        if fmt == "collapsed":
            return "200 OK", "text/plain", collapsed_stacks(prof.samples).encode()
        html = flamegraph_html(
            prof.samples,
            title=f"repro serve pid {os.getpid()} — {seconds:g}s @ "
            f"{interval_ms:g}ms",
        )
        return "200 OK", "text/html", html.encode()


class ServerHandle:
    """A daemon running on a background thread (tests, smoke, notebooks).

    ``with ServerHandle(server):`` starts the asyncio loop on a daemon
    thread, waits until the transports are bound, and tears everything
    down on exit.
    """

    def __init__(self, server: ScheduleServer) -> None:
        self.server = server
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._startup_error: BaseException | None = None

    def __enter__(self) -> "ServerHandle":
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        if not self._started.wait(timeout=10):
            raise RuntimeError("schedule server failed to start within 10 s")
        if self._startup_error is not None:
            raise RuntimeError("schedule server failed to start") from (
                self._startup_error
            )
        return self

    def _run(self) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)
        try:
            self._loop.run_until_complete(self.server.start())
        except BaseException as exc:
            self._startup_error = exc
            self._started.set()
            return
        self._started.set()
        try:
            self._loop.run_forever()
        finally:
            self._loop.run_until_complete(self.server.stop())
            self._loop.close()

    def stop(self, timeout_s: float = 10.0) -> None:
        """Stop the daemon thread; raises :class:`RuntimeError` if it does
        not join within ``timeout_s`` (a hung shutdown must not be silently
        reported as a clean one — a leaked daemon thread still owns the
        sockets and the batch executor)."""
        if self._loop is not None and self._loop.is_running():
            self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=timeout_s)
            if self._thread.is_alive():
                raise RuntimeError(
                    f"schedule server thread failed to stop within "
                    f"{timeout_s:g}s; daemon thread leaked (endpoints: "
                    f"{', '.join(self.server.endpoints()) or 'none'})"
                )
            self._thread = None

    def __exit__(self, exc_type, exc, tb) -> None:
        try:
            self.stop()
        except RuntimeError:
            if exc_type is None:
                raise
            # An exception is already propagating out of the with-block;
            # don't mask it — surface the hung shutdown as a warning.
            import warnings

            warnings.warn(
                "schedule server thread failed to stop within 10s while "
                "handling an exception; daemon thread leaked",
                RuntimeWarning,
                stacklevel=2,
            )
