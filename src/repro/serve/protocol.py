"""Wire format of the scheduling service.

Requests and responses are JSON documents — one per line on the unix-socket
transport, one per HTTP body on the TCP transport (see
:mod:`repro.serve.daemon` and ``docs/SERVING.md`` for the full protocol
spec).  A request names a program (trace of basic blocks), a machine
config and a scheduler; a response carries the emitted per-block
instruction orders, the simulated makespan/stall count, the canonical
digest the request hashed to, the schedule's own content digest, and
whether the answer came from cache.

Everything here is transport-agnostic pure data plumbing:
encode/decode between JSON dicts and the library's value types
(:class:`~repro.ir.basicblock.Trace`,
:class:`~repro.machine.model.MachineModel`), with
:class:`ProtocolError` raised on any malformed input so the daemon can
answer a structured error instead of dying.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Mapping

from ..ir.basicblock import BasicBlock, Trace
from ..ir.depgraph import DependenceGraph
from ..ir.instruction import ANY
from ..machine.model import MachineModel

#: Version of the request/response schema.
PROTOCOL_VERSION = 1

#: Scheduler names accepted on the wire (mirrors ``repro schedule``).
SCHEDULER_NAMES = ("anticipatory", "local", "critical-path", "source")

#: Legal trace ids on the wire: they end up in file names, log lines and
#: Prometheus labels, so the alphabet is deliberately narrow.
TRACE_ID_RE = re.compile(r"^[A-Za-z0-9_-]{1,64}$")

#: Structured error codes an error response may carry (``code`` field).
#: ``bad_request`` — the document failed decode; ``overloaded`` — shed by
#: admission control (comes with ``retry_after_s``); ``deadline_exceeded``
#: — the request's ``deadline_ms`` expired before dispatch;
#: ``breaker_open`` — the scheduler class's circuit breaker is open;
#: ``scheduling_failed`` — the compute itself failed after retries;
#: ``internal`` — anything else.
ERROR_CODES = (
    "bad_request",
    "overloaded",
    "deadline_exceeded",
    "breaker_open",
    "scheduling_failed",
    "internal",
)


class ProtocolError(ValueError):
    """Raised when a wire document cannot be decoded into a request."""


def validate_trace_id(trace_id: object) -> str:
    """``trace_id`` as a string, or :class:`ProtocolError` if it is not
    1–64 chars of ``[A-Za-z0-9_-]``."""
    if not isinstance(trace_id, str) or not TRACE_ID_RE.match(trace_id):
        raise ProtocolError(
            f"bad trace_id {trace_id!r}: need 1-64 chars of [A-Za-z0-9_-]"
        )
    return trace_id


def trace_from_wire(value: object) -> tuple[str, str | None] | None:
    """Decode a request's ``trace`` field into ``(trace_id,
    parent_span_id)``.

    Accepted shapes: a bare string (just the trace id) or an object
    ``{"trace_id": ..., "parent_span_id": ...}`` — the dict form of
    :class:`repro.obs.pipeline.TraceContext`.  ``None``/absent means the
    daemon mints an id.  Anything else is a :class:`ProtocolError`.
    """
    if value is None:
        return None
    if isinstance(value, str):
        return validate_trace_id(value), None
    if isinstance(value, Mapping):
        trace_id = validate_trace_id(value.get("trace_id"))
        parent = value.get("parent_span_id")
        if parent is not None and not isinstance(parent, str):
            raise ProtocolError(
                f"bad parent_span_id {parent!r}: need a string or null"
            )
        return trace_id, parent
    raise ProtocolError(
        f"bad trace field: need a string or an object, got "
        f"{type(value).__name__}"
    )


def deadline_from_wire(value: object) -> float | None:
    """Decode a request's ``deadline_ms`` field into a relative budget in
    **seconds**.

    ``None``/absent means no deadline.  The value is the client's total
    patience in milliseconds, measured from the moment the daemon admits
    the request; it must be a positive real number.
    """
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ProtocolError(
            f"bad deadline_ms {value!r}: need a positive number of "
            f"milliseconds"
        )
    if not value > 0 or value != value or value == float("inf"):
        raise ProtocolError(
            f"bad deadline_ms {value!r}: need a positive finite number"
        )
    return float(value) / 1e3


def deadline_s_from_doc(doc: object) -> float | None:
    """Lenient :func:`deadline_from_wire` for the daemon's admission path:
    invalid values answer ``None`` (no deadline) so the later full decode
    produces the structured error instead of the transport loop."""
    if not isinstance(doc, Mapping):
        return None
    try:
        return deadline_from_wire(doc.get("deadline_ms"))
    except ProtocolError:
        return None


# -- machine ------------------------------------------------------------------


def machine_to_dict(machine: MachineModel) -> dict:
    return {
        "window_size": machine.window_size,
        "fu_counts": dict(machine.fu_counts),
        "issue_width": machine.issue_width,
    }


def machine_from_dict(doc: Mapping) -> MachineModel:
    if not isinstance(doc, Mapping):
        raise ProtocolError(f"machine must be an object, got {type(doc).__name__}")
    try:
        fu_counts = {
            str(cls): int(count)
            for cls, count in dict(doc.get("fu_counts") or {ANY: 1}).items()
        }
        machine = MachineModel(
            window_size=int(doc.get("window_size", 4)),
            fu_counts=fu_counts,
            issue_width=(
                None
                if doc.get("issue_width") is None
                else int(doc["issue_width"])
            ),
        )
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"bad machine config: {exc}") from exc
    return machine


# -- trace --------------------------------------------------------------------


def trace_to_dict(trace: Trace) -> dict:
    blocks = []
    for bb in trace.blocks:
        g = bb.graph
        blocks.append(
            {
                "name": bb.name,
                "nodes": [
                    [n, g.exec_time(n), g.fu_class(n)] for n in g.nodes
                ],
                "edges": [[u, v, lat] for u, v, lat in g.edges()],
            }
        )
    return {
        "blocks": blocks,
        "cross_edges": [[u, v, lat] for u, v, lat in trace.cross_edges],
    }


def _block_from_dict(doc: Mapping, index: int) -> BasicBlock:
    name = str(doc.get("name") or f"BB{index + 1}")
    graph = DependenceGraph()
    nodes = doc.get("nodes")
    if not isinstance(nodes, (list, tuple)) or not nodes:
        raise ProtocolError(f"block {name!r} needs a non-empty 'nodes' list")
    for entry in nodes:
        if isinstance(entry, str):
            entry = [entry]
        try:
            node = str(entry[0])
            exec_time = int(entry[1]) if len(entry) > 1 else 1
            fu_class = str(entry[2]) if len(entry) > 2 else ANY
            graph.add_node(node, exec_time=exec_time, fu_class=fu_class)
        except (LookupError, TypeError, ValueError) as exc:
            raise ProtocolError(
                f"block {name!r}: bad node entry {entry!r}: {exc}"
            ) from exc
    for edge in doc.get("edges") or ():
        try:
            u, v = str(edge[0]), str(edge[1])
            lat = int(edge[2]) if len(edge) > 2 else 0
            graph.add_edge(u, v, lat)
        except (LookupError, TypeError, ValueError, KeyError) as exc:
            raise ProtocolError(
                f"block {name!r}: bad edge {edge!r}: {exc}"
            ) from exc
    return BasicBlock(name=name, graph=graph)


def trace_from_dict(doc: Mapping) -> Trace:
    if not isinstance(doc, Mapping):
        raise ProtocolError(f"program must be an object, got {type(doc).__name__}")
    blocks_doc = doc.get("blocks")
    if not isinstance(blocks_doc, (list, tuple)) or not blocks_doc:
        raise ProtocolError("program needs a non-empty 'blocks' list")
    blocks = [
        _block_from_dict(b, i) if isinstance(b, Mapping) else _bad_block(b)
        for i, b in enumerate(blocks_doc)
    ]
    cross = []
    for edge in doc.get("cross_edges") or ():
        try:
            cross.append(
                (
                    str(edge[0]),
                    str(edge[1]),
                    int(edge[2]) if len(edge) > 2 else 0,
                )
            )
        except (LookupError, TypeError, ValueError) as exc:
            raise ProtocolError(f"bad cross edge {edge!r}: {exc}") from exc
    try:
        return Trace(blocks, cross_edges=cross)
    except (KeyError, ValueError) as exc:
        raise ProtocolError(f"bad program: {exc}") from exc


def _bad_block(doc) -> BasicBlock:
    raise ProtocolError(f"block must be an object, got {type(doc).__name__}")


# -- request / response -------------------------------------------------------


@dataclass
class ScheduleRequest:
    """One decoded scheduling request."""

    trace: Trace
    machine: MachineModel
    scheduler: str = "anticipatory"
    #: Opaque client correlation id, echoed on the response.
    id: object = None
    #: Distributed-trace id this request belongs to (client-stamped or
    #: daemon-minted; always set after decode by the service).
    trace_id: str | None = None
    #: Client-side parent span this request hangs under, if the caller is
    #: itself traced.
    parent_span_id: str | None = None
    #: Remaining time budget in **milliseconds** (the wire unit).  The
    #: daemon drops the request with ``deadline_exceeded`` if it cannot be
    #: dispatched within this budget, and the worker's guard inherits the
    #: remaining budget as its time limit.
    deadline_ms: float | None = None

    def to_dict(self) -> dict:
        out = {
            "v": PROTOCOL_VERSION,
            "program": trace_to_dict(self.trace),
            "machine": machine_to_dict(self.machine),
            "scheduler": self.scheduler,
        }
        if self.id is not None:
            out["id"] = self.id
        if self.deadline_ms is not None:
            out["deadline_ms"] = self.deadline_ms
        if self.trace_id is not None:
            trace: dict = {"trace_id": self.trace_id}
            if self.parent_span_id is not None:
                trace["parent_span_id"] = self.parent_span_id
            out["trace"] = trace
        return out

    @classmethod
    def from_dict(cls, doc: Mapping) -> "ScheduleRequest":
        if not isinstance(doc, Mapping):
            raise ProtocolError(
                f"request must be an object, got {type(doc).__name__}"
            )
        version = doc.get("v", PROTOCOL_VERSION)
        if version != PROTOCOL_VERSION:
            raise ProtocolError(
                f"unsupported protocol version {version!r} "
                f"(this daemon speaks v{PROTOCOL_VERSION})"
            )
        scheduler = str(doc.get("scheduler", "anticipatory"))
        if scheduler not in SCHEDULER_NAMES:
            raise ProtocolError(
                f"unknown scheduler {scheduler!r} "
                f"(choose from {', '.join(SCHEDULER_NAMES)})"
            )
        if "program" not in doc:
            raise ProtocolError("request needs a 'program' field")
        trace = trace_from_dict(doc["program"])
        machine = machine_from_dict(doc.get("machine") or {})
        if not machine.can_execute(trace.graph):
            raise ProtocolError(
                "machine cannot execute program: some fu class has no "
                "usable unit"
            )
        wire_trace = trace_from_wire(doc.get("trace"))
        trace_id, parent_span_id = wire_trace if wire_trace else (None, None)
        deadline_s = deadline_from_wire(doc.get("deadline_ms"))
        return cls(
            trace=trace,
            machine=machine,
            scheduler=scheduler,
            id=doc.get("id"),
            trace_id=trace_id,
            parent_span_id=parent_span_id,
            deadline_ms=None if deadline_s is None else deadline_s * 1e3,
        )


def ok_response(
    request_id: object,
    digest: str,
    cached: bool,
    result: Mapping,
    trace_id: str | None = None,
    server: Mapping | None = None,
    degraded: Mapping | None = None,
) -> dict:
    """A success response: the schedule result plus cache provenance.

    ``trace_id`` echoes the request's distributed-trace id; ``server`` is
    the daemon's phase-timing breakdown (``server.phases.<name>_s`` plus
    pids), so a client can report where its latency went without a second
    round trip.  ``degraded`` marks a guarded-fallback answer: the
    schedule is still verified-legal, but it came from the always-legal
    per-block fallback, with the diagnostic (``reason`` / ``detail`` /
    ``elapsed_s``) attached — degraded answers are never cached.
    """
    out = {
        "v": PROTOCOL_VERSION,
        "ok": True,
        "digest": digest,
        "cached": bool(cached),
        "block_orders": [list(o) for o in result["block_orders"]],
        "makespan": result["makespan"],
        "stall_cycles": result["stall_cycles"],
        "schedule_digest": result["schedule_digest"],
    }
    if request_id is not None:
        out["id"] = request_id
    if trace_id is not None:
        out["trace"] = {"trace_id": trace_id}
    if server is not None:
        out["server"] = dict(server)
    if degraded is not None:
        out["degraded"] = dict(degraded)
    return out


def error_response(
    request_id: object,
    message: str,
    trace_id: str | None = None,
    server: Mapping | None = None,
    code: str | None = None,
    retry_after_s: float | None = None,
) -> dict:
    """A structured failure.  ``code`` (one of :data:`ERROR_CODES`) lets
    clients branch without parsing the message; ``retry_after_s`` is the
    advisory backoff stamped on ``overloaded`` / ``breaker_open`` sheds
    (the unix-socket equivalent of HTTP's ``Retry-After``)."""
    out = {"v": PROTOCOL_VERSION, "ok": False, "error": str(message)}
    if code is not None:
        out["code"] = str(code)
    if retry_after_s is not None:
        out["retry_after_s"] = float(retry_after_s)
    if request_id is not None:
        out["id"] = request_id
    if trace_id is not None:
        out["trace"] = {"trace_id": trace_id}
    if server is not None:
        out["server"] = dict(server)
    return out


def server_timings(response: Mapping) -> dict | None:
    """The ``server`` phase-timing block of a response, or ``None``."""
    server = response.get("server")
    return dict(server) if isinstance(server, Mapping) else None
