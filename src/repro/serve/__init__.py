"""Scheduling-as-a-service: a long-lived daemon with a content-addressed
schedule cache (``repro serve``, see ``docs/SERVING.md``).

The pipeline turns one-shot library calls into a service:

- :mod:`repro.serve.canonical` — isomorphism-safe canonical forms; the
  sha256 **canonical digest** that keys the cache, invariant under node
  renaming so relabeled-but-identical kernels hit;
- :mod:`repro.serve.protocol` — the JSON wire format (requests, responses,
  trace/machine codecs, :class:`ProtocolError`);
- :mod:`repro.serve.cache` — :class:`ScheduleCache`, a bounded in-memory
  LRU over an append-only on-disk JSONL store, instrumented with
  ``serve.cache.{hit,miss,evict}``;
- :mod:`repro.serve.worker` — the module-level (picklable) compute
  function dispatched through :class:`repro.robust.ExecutionPool`;
- :mod:`repro.serve.service` — :class:`ScheduleService`, the
  transport-independent brain: decode, canonicalize, dedupe, cache
  lookup, pooled compute, per-request telemetry;
- :mod:`repro.serve.daemon` — :class:`ScheduleServer`, the asyncio
  front-end (unix-socket JSONL and minimal HTTP) with request batching;
- :mod:`repro.serve.client` — blocking clients for both transports;
- :mod:`repro.serve.smoke` — the end-to-end smoke harness CI runs
  (``python -m repro.serve.smoke``).
"""

from __future__ import annotations

from .cache import ScheduleCache
from .canonical import CanonicalForm, canonical_form, payload_digest, relabel_trace
from .protocol import (
    PROTOCOL_VERSION,
    SCHEDULER_NAMES,
    ProtocolError,
    ScheduleRequest,
)
from .service import ScheduleService

__all__ = [
    "CanonicalForm",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "SCHEDULER_NAMES",
    "ScheduleCache",
    "ScheduleRequest",
    "ScheduleService",
    "canonical_form",
    "payload_digest",
    "relabel_trace",
]
