"""Exact small-instance schedulers — the test oracle.

Branch-and-bound over issue decisions gives the true minimum makespan (and a
deadline-feasibility oracle) for instances of ~a dozen instructions; the
property-based tests use it to certify the Rank Algorithm's optimality claims
in the regime where the paper proves them, and to measure how far the
heuristics stray outside it.
"""

from __future__ import annotations

from itertools import permutations
from typing import Mapping, Sequence

from ..ir.depgraph import DependenceGraph
from ..machine.model import MachineModel, single_unit_machine
from ..core.rank import list_schedule
from ..core.schedule import Schedule


def optimal_makespan(
    graph: DependenceGraph,
    machine: MachineModel | None = None,
    deadlines: Mapping[str, int] | None = None,
) -> int | None:
    """Exact minimum makespan via branch and bound (None if the deadlines are
    unsatisfiable).  Intended for graphs of at most ~14 nodes."""
    machine = machine or single_unit_machine()
    sched = optimal_schedule(graph, machine, deadlines)
    return None if sched is None else sched.makespan


def optimal_schedule(
    graph: DependenceGraph,
    machine: MachineModel | None = None,
    deadlines: Mapping[str, int] | None = None,
) -> Schedule | None:
    """Exact minimum-makespan schedule via depth-first branch and bound over
    "issue one ready node now" / "advance time" decisions."""
    machine = machine or single_unit_machine()
    if len(graph) == 0:
        return Schedule(graph, {})
    if len(graph) > 16:
        raise ValueError("brute force limited to 16 nodes")
    deadlines = dict(deadlines or {})
    nodes = graph.nodes
    index = {n: i for i, n in enumerate(nodes)}
    heights = graph.path_length_to_sinks()

    # Upper bound seed: greedy critical-path schedule.
    seed_priority = sorted(nodes, key=lambda n: (-heights[n], index[n]))
    seed = list_schedule(graph, seed_priority, machine)
    best_span = seed.makespan if seed.is_feasible(deadlines) else None
    best: Schedule | None = seed if best_span is not None else None
    # Even when the seed misses deadlines it bounds the search depth.
    span_cap = seed.makespan + sum(graph.exec_time(n) for n in nodes)

    width = machine.issue_width or machine.total_units
    unit_list = machine.unit_names()

    starts: dict[str, int] = {}
    units: dict[str, tuple[str, int]] = {}

    def search(time: int, unit_free: tuple[int, ...], done_mask: int) -> None:
        nonlocal best, best_span
        if done_mask == (1 << len(nodes)) - 1:
            span = max(starts[n] + graph.exec_time(n) for n in nodes)
            if best_span is None or span < best_span:
                sched = Schedule(graph, dict(starts), dict(units))
                if sched.is_feasible(deadlines):
                    best_span = span
                    best = sched
            return
        # Lower bound pruning: remaining critical path from any unscheduled
        # ready-or-future node.
        lb = time
        for i, n in enumerate(nodes):
            if not done_mask >> i & 1:
                lb = max(lb, time + heights[n] - 0)
        if best_span is not None and lb >= best_span:
            return
        if time > span_cap:
            return
        # Ready nodes at this time.
        ready: list[str] = []
        future_events: list[int] = []
        for i, n in enumerate(nodes):
            if done_mask >> i & 1:
                continue
            est = 0
            ok = True
            for p, lat in graph.predecessors(n).items():
                if p not in starts:
                    ok = False
                    break
                est = max(est, starts[p] + graph.exec_time(p) + lat)
            if not ok:
                continue
            if est <= time:
                ready.append(n)
            else:
                future_events.append(est)
        issued_something = False
        for n in ready:
            if deadlines.get(n) is not None and time + graph.exec_time(n) > deadlines[n]:
                continue
            tried_classes: set[str] = set()
            for ui, u in enumerate(unit_list):
                if unit_free[ui] > time:
                    continue
                if u not in machine.units_for(graph.fu_class(n)):
                    continue
                if u[0] in tried_classes:
                    continue  # units of one class are interchangeable
                tried_classes.add(u[0])
                starts[n] = time
                units[n] = u
                nf = list(unit_free)
                nf[ui] = time + graph.exec_time(n)
                search(time, tuple(nf), done_mask | 1 << index[n])
                del starts[n]
                del units[n]
                issued_something = True
        # Branch: advance time without issuing (needed for optimality with
        # latencies — sometimes waiting beats greedily issuing).
        events = future_events + [t for t in unit_free if t > time]
        nxt = min(events) if events else time + 1
        if ready and issued_something:
            # Also allow deliberately idling past a ready node.
            search(time + 1, unit_free, done_mask)
        else:
            search(nxt, unit_free, done_mask)

    search(0, tuple(0 for _ in unit_list), 0)
    return best


def is_feasible_instance(
    graph: DependenceGraph,
    deadlines: Mapping[str, int],
    machine: MachineModel | None = None,
) -> bool:
    """Exact deadline-feasibility oracle."""
    return optimal_schedule(graph, machine, deadlines) is not None


def best_stream_order(
    graph: DependenceGraph,
    grouping: Sequence[Sequence[str]],
    machine: MachineModel | None = None,
) -> tuple[list[str], int]:
    """Exhaustively search per-group permutations (e.g. per-block orders) for
    the one whose windowed execution has minimum makespan.  Exponential —
    test-size instances only (product of group factorials ≲ 10⁵)."""
    from ..sim.window import simulate_window

    machine = machine or single_unit_machine()
    groups = [list(g) for g in grouping]

    best_order: list[str] | None = None
    best_span: int | None = None

    def rec(i: int, prefix: list[str]) -> None:
        nonlocal best_order, best_span
        if i == len(groups):
            sim = simulate_window(graph, prefix, machine)
            if best_span is None or sim.makespan < best_span:
                best_span = sim.makespan
                best_order = list(prefix)
            return
        for perm in permutations(groups[i]):
            if _respects_dependences(graph, perm):
                rec(i + 1, prefix + list(perm))

    rec(0, [])
    assert best_order is not None and best_span is not None
    return best_order, best_span


def _respects_dependences(graph: DependenceGraph, order: Sequence[str]) -> bool:
    """A block's emitted order must be a topological order of its subgraph."""
    pos = {n: i for i, n in enumerate(order)}
    for u, v, _ in graph.edges():
        if u in pos and v in pos and pos[u] > pos[v]:
            return False
    return True
