"""Unit tests for Procedure Chop (paper Fig. 6)."""

import pytest

from repro.core import Schedule, chop
from repro.core.rank import fill_deadlines
from repro.ir import graph_from_edges


def sched_with_idles(starts, nodes=None, edges=()):
    g = graph_from_edges(edges, nodes=nodes or list(starts))
    return Schedule(g, starts)


class TestNoChop:
    def test_no_idle_slots(self):
        s = sched_with_idles({"a": 0, "b": 1, "c": 2})
        d = fill_deadlines(s.graph)
        res = chop(s, d, window_size=2)
        assert res.committed == []
        assert res.suffix.starts == s.starts
        assert res.shift == 0

    def test_fewer_nodes_than_window(self):
        s = sched_with_idles({"a": 0, "b": 2})
        res = chop(s, fill_deadlines(s.graph), window_size=3)
        assert res.committed == []
        assert res.shift == 0

    def test_all_slots_fillable(self):
        # Idle at 2 with 2 nodes after it; W=3 can reach it: no commit.
        s = sched_with_idles({"a": 0, "b": 1, "c": 3, "d": 4})
        res = chop(s, fill_deadlines(s.graph), window_size=3)
        assert res.committed == []

    def test_invalid_window(self):
        s = sched_with_idles({"a": 0})
        with pytest.raises(ValueError):
            chop(s, fill_deadlines(s.graph), window_size=0)


class TestChopping:
    def test_commits_prefix_before_unreachable_slot(self):
        # Schedule a b _ c d, W=2: slot t=2 has 2 >= W followers: commit a b.
        s = sched_with_idles({"a": 0, "b": 1, "c": 3, "d": 4})
        d = fill_deadlines(s.graph)
        res = chop(s, d, window_size=2)
        assert res.committed == ["a", "b"]
        assert res.shift == 3
        assert res.suffix.starts == {"c": 0, "d": 1}

    def test_suffix_deadlines_shifted(self):
        s = sched_with_idles({"a": 0, "b": 1, "c": 3, "d": 4})
        d = {n: 5 for n in s.graph.nodes}
        res = chop(s, d, window_size=2)
        assert res.suffix_deadlines == {"c": 2, "d": 2}

    def test_picks_last_unreachable_slot(self):
        # a _ b _ c d e, W=2: slot 1 has 4 followers, slot 3 has 3: pick 3.
        s = sched_with_idles({"a": 0, "b": 2, "c": 4, "d": 5, "e": 6})
        res = chop(s, fill_deadlines(s.graph), window_size=2)
        assert res.shift == 4
        assert res.committed == ["a", "b"]
        assert set(res.suffix.starts) == {"c", "d", "e"}

    def test_keeps_at_least_window_nodes(self):
        s = sched_with_idles(
            {"a": 0, "b": 2, "c": 4, "d": 5, "e": 6}
        )
        for w in (2, 3):
            res = chop(s, fill_deadlines(s.graph), window_size=w)
            if res.shift:
                assert len(res.suffix) >= w

    def test_suffix_is_valid_schedule(self):
        s = sched_with_idles(
            {"a": 0, "b": 2, "c": 4, "d": 5, "e": 6},
            edges=[("a", "b", 1), ("c", "d", 0)],
        )
        res = chop(s, fill_deadlines(s.graph), window_size=2)
        res.suffix.validate()
