"""Command-line interface.

Usage (also via ``python -m repro``)::

    repro schedule prog.s --window 4 --scheduler anticipatory --simulate
    repro schedule prog.s --simulate --trace run.jsonl
    repro trace run.jsonl
    repro report run.jsonl
    repro report benchmarks/results/E10_scaling.json --markdown
    repro compare baseline.json new.json --threshold 25
    repro ranks prog.s --deadline 100
    repro loop prog.s --window 2 --iterations 8
    repro dot prog.s -o deps.dot
    repro fuzz --seeds 16 --min-cells 500
    repro sweep --windows 2,3,4 --seeds 8 --jobs 4 --checkpoint ck.jsonl
    repro sweep --windows 2,3,4 --seeds 8 --checkpoint ck.jsonl --resume
    repro sweep --faults --jobs 2 --spool-dir spool/ --report sweep.json
    repro serve --socket /tmp/repro.sock --jobs 4 --cache-path sched.jsonl
    repro top spool/ --interval 1
    repro metrics spool/ -o metrics.prom
    repro flame --repeat 20 -o flame.html --max-overhead 5

``prog.s`` uses the textual format of :mod:`repro.ir.parser` (see its
docstring or ``examples/``); ``loop`` treats a single-block program as a
loop body and derives its carried dependences automatically.

``--trace FILE`` (on ``schedule``, ``ranks`` and ``loop``) records pipeline
spans and cycle-level simulator events, writing both ``FILE`` (JSONL) and a
Chrome trace-event sibling ``FILE`` with a ``.chrome.json`` suffix (openable
in Perfetto).  ``repro trace FILE`` replays a recorded JSONL stream as a
per-cycle timeline; see ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

from . import __version__
from .analysis.dot import loop_to_dot, trace_to_dot
from .analysis.report import (
    format_table,
    render_report_diff,
    render_run_report,
    stall_attribution_summary,
    trace_summary,
)
from .core import algorithm_lookahead, compute_ranks
from .core.loops import schedule_single_block_loop
from .ir.loop_builder import build_loop_graph
from .ir.parser import ParseError, parse_program, parse_trace
from .machine import (
    MachineModel,
    NO_LOOKAHEAD,
    PAPER_CORE,
    RS6000_LIKE,
    WIDE_VLIW,
)
from .obs import TraceRecorder, recording
from .obs.runreport import RunReport, compare_reports
from .obs.export import (
    chrome_trace_path,
    read_jsonl,
    sim_traces_from_records,
    write_chrome_trace,
    write_jsonl,
)
from .serve.tracebuf import WATERFALL_KIND, waterfall_text
from .sim import simulate_loop_order, simulate_trace, simulated_initiation_interval

MACHINES = {
    "paper": PAPER_CORE,
    "inorder": NO_LOOKAHEAD,
    "rs6000": RS6000_LIKE,
    "vliw": WIDE_VLIW,
}


def _machine(args: argparse.Namespace) -> MachineModel:
    base = MACHINES[args.machine]
    if args.window is not None:
        base = MachineModel(
            window_size=args.window,
            fu_counts=dict(base.fu_counts),
            issue_width=base.issue_width,
        )
    return base


def _load_trace(path: str):
    return parse_trace(Path(path).read_text())


def cmd_schedule(args: argparse.Namespace) -> int:
    trace = _load_trace(args.file)
    machine = _machine(args)
    # Shared dispatch table with the serving daemon (repro.serve.worker),
    # so `repro serve` can never drift from `repro schedule`.
    from .serve.worker import compute_block_orders

    orders = compute_block_orders(trace, machine, args.scheduler)
    for bb, order in zip(trace.blocks, orders):
        print(f"{bb.name}: {' '.join(order)}")
    # --trace implies a simulation: cycle-level events only exist at runtime.
    if args.simulate or args.trace:
        sim = simulate_trace(trace, orders, machine)
        print(f"completion: {sim.makespan} cycles "
              f"(stalls: {sim.stall_cycles}, W={machine.window_size})")
        if args.simulate:
            print(sim.schedule.gantt())
    return 0


def cmd_ranks(args: argparse.Namespace) -> int:
    trace = _load_trace(args.file)
    deadlines = {n: args.deadline for n in trace.graph.nodes}
    for item in (args.deadlines or "").split(","):
        item = item.strip()
        if not item:
            continue
        name, sep, value = item.partition("=")
        if not sep or not name.strip():
            print(f"error: malformed --deadlines entry {item!r} "
                  "(expected name=int)", file=sys.stderr)
            return 2
        try:
            deadlines[name.strip()] = int(value)
        except ValueError:
            print(f"error: malformed --deadlines entry {item!r} "
                  "(expected name=int)", file=sys.stderr)
            return 2
    try:
        ranks = compute_ranks(trace.graph, deadlines, _machine(args))
    except ValueError as exc:  # unknown instruction names, from fill_deadlines
        print(f"error: {exc}", file=sys.stderr)
        return 2
    rows = [
        [n, trace.blocks[trace.block_index(n)].name, ranks[n]]
        for n in sorted(trace.graph.nodes, key=lambda n: ranks[n])
    ]
    print(format_table(["instruction", "block", "rank"], rows,
                       title=f"ranks at deadline {args.deadline}"))
    return 0


def cmd_loop(args: argparse.Namespace) -> int:
    blocks = parse_program(Path(args.file).read_text())
    if len(blocks) != 1:
        print("error: 'loop' needs a single-block program", file=sys.stderr)
        return 2
    _, instructions = blocks[0]
    loop = build_loop_graph(instructions)
    machine = _machine(args)
    res = schedule_single_block_loop(loop, machine)
    print("carried dependences:")
    for e in loop.carried_edges():
        print(f"  {e.src} -> {e.dst}  <{e.latency},{e.distance}>")
    rows = [
        [c.kind, c.pivot or "-", " ".join(c.order),
         c.single_iteration_makespan, c.completion]
        for c in res.candidates
    ]
    print(format_table(
        ["transform", "pivot", "order", "1-iter", "horizon completion"],
        rows, title="candidate schedules (§5.2.3)",
    ))
    ii = simulated_initiation_interval(loop, res.order, machine)
    sim = simulate_loop_order(loop, res.order, args.iterations, machine)
    print(f"chosen order: {' '.join(res.order)}")
    print(f"steady-state II: {ii} cycles/iteration; "
          f"{args.iterations} iterations complete in {sim.makespan} cycles")
    return 0


def _render_waterfalls(records: list[dict]) -> int:
    """Render one or more concatenated request waterfalls (the
    ``/debug/traces?format=jsonl`` output) as indented span timelines."""
    groups: list[list[dict]] = []
    for r in records:
        if r.get("type") == "meta":
            groups.append([r])
        elif groups:
            groups[-1].append(r)
    for i, group in enumerate(groups):
        meta = group[0]
        req = meta.get("request") or {}
        if i:
            print()
        status = req.get("status", "ok")
        if status != "ok" and req.get("error"):
            status = f"error ({req['error']})"
        print(
            f"request {meta.get('trace_id', '?')} "
            f"[{req.get('scheduler', '?')}, "
            f"{'cache hit' if req.get('cached') else 'miss'}, {status}] "
            f"{float(req.get('duration_s') or 0.0) * 1e3:.3f} ms "
            f"via {req.get('transport', 'unknown')}"
        )
        for line in waterfall_text(group):
            print(f"  {line}")
    print(f"\n{len(groups)} request waterfall(s)")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Replay a recorded JSONL trace as a per-cycle timeline."""
    try:
        records = read_jsonl(args.file)
    except (OSError, ValueError) as exc:
        print(f"error: not a repro trace file: {exc}", file=sys.stderr)
        return 2
    meta = next((r for r in records if r.get("type") == "meta"), None)
    if meta is None:
        print("error: not a repro trace file (no meta record)", file=sys.stderr)
        return 2
    if meta.get("kind") == WATERFALL_KIND:
        # A request waterfall captured from the daemon's trace buffer
        # (/debug/traces?format=jsonl or smoke --waterfall): render the span
        # tree as an indented timeline instead of the simulator replay.
        return _render_waterfalls(records)
    # Schema v1 files carry no trace_id/pid fields; everything below treats
    # them as absent, so either version replays.
    if meta.get("trace_id"):
        span_pids = sorted(
            {
                r["pid"]
                for r in records
                if r.get("type") == "span" and r.get("pid") is not None
            }
        )
        procs = f", {len(span_pids)} process(es)" if span_pids else ""
        print(
            f"trace {meta['trace_id']} "
            f"(format v{meta.get('version', 1)}{procs})"
        )
    sim_traces = sim_traces_from_records(records)
    if not sim_traces:
        print("no simulator events in this trace "
              "(recorded without a simulation?)")
    total_stalls = 0
    for trace in sim_traces:
        if trace.label:
            print(f"== {trace.label} "
                  f"(W={trace.window_size}, {trace.num_instructions} instructions)")
        for cycle, events in trace.events_by_cycle().items():
            parts = []
            for e in events:
                if e.kind == "issue":
                    unit = f" [{e.unit}]" if e.unit else ""
                    parts.append(f"issue {e.node}{unit}")
                elif e.kind == "window_advance":
                    parts.append(e.detail or f"advance head -> {e.head}")
                else:
                    parts.append(f"{e.kind.upper()}: {e.detail}" if e.detail
                                 else e.kind.upper())
            occ = next(
                (e.occupancy for e in reversed(events) if e.occupancy is not None),
                None,
            )
            occ_txt = f"  [window occupancy {occ}]" if occ is not None else ""
            print(f"cycle {cycle:>5}: " + "; ".join(parts) + occ_txt)
        print(f"total: {trace.issue_count} issues, {trace.stall_cycles} stall "
              f"cycles, {trace.window_advances} window advances")
        total_stalls += trace.stall_cycles
    if len(sim_traces) > 1:
        print(f"all simulations: {total_stalls} stall cycles")
    spans = [r for r in records if r.get("type") == "span"]
    # Timestamp-order spans before aggregating: a v2 file merged from worker
    # spools interleaves records from several processes, not one stream
    # (fork children share the parent's monotonic clock base).
    spans.sort(key=lambda s: s.get("start_us", 0))
    if spans:
        stats: dict[str, tuple[int, float]] = {}
        for s in spans:
            calls, total = stats.get(s["name"], (0, 0.0))
            stats[s["name"]] = (calls + 1, total + s["dur_us"] / 1000)
        rows = [
            [name, calls, f"{total:.3f}"]
            for name, (calls, total) in sorted(
                stats.items(), key=lambda kv: -kv[1][1]
            )
        ]
        print()
        print(format_table(["phase", "calls", "total ms"], rows,
                           title="pipeline phase wall time"))
        per_pid: dict[int, tuple[int, float]] = {}
        for s in spans:
            pid = s.get("pid")
            if pid is None:
                continue
            calls, total = per_pid.get(pid, (0, 0.0))
            per_pid[pid] = (calls + 1, total + s["dur_us"] / 1000)
        if len(per_pid) > 1:
            rows = [
                [pid, calls, f"{total:.3f}"]
                for pid, (calls, total) in sorted(per_pid.items())
            ]
            print()
            print(format_table(["pid", "spans", "total ms"], rows,
                               title="per-process span activity"))
    counters = [r for r in records if r.get("type") == "counter"]
    if counters:
        rows = [[c["name"], c["value"]]
                for c in sorted(counters, key=lambda c: c["name"])]
        print()
        print(format_table(["counter", "value"], rows, title="counters"))
    return 0


def _report_from_jsonl(path: str) -> tuple["RunReport", list]:
    """Build an in-memory RunReport (plus the sim traces) from a recorded
    JSONL trace file."""
    from .obs.metrics import MetricsRegistry, sim_metrics
    from .obs.runreport import collect_provenance

    records = read_jsonl(path)
    if not any(r.get("type") == "meta" for r in records):
        raise ValueError("no meta record")
    sim_traces = sim_traces_from_records(records)
    registry = MetricsRegistry()
    for i, trace in enumerate(sim_traces):
        prefix = "sim." if len(sim_traces) == 1 else f"sim.{i}."
        sim_metrics(trace, registry, prefix)
    phases: dict[str, float] = {}
    for r in records:
        if r.get("type") == "span":
            phases[r["name"]] = phases.get(r["name"], 0.0) + r["dur_us"] / 1e6
    report = RunReport(
        name=Path(path).name,
        metrics=registry.to_dict(),
        phases=phases,
        provenance=collect_provenance(source="trace-jsonl"),
    )
    return report, sim_traces


def cmd_report(args: argparse.Namespace) -> int:
    """Render a RunReport JSON or a recorded JSONL trace as a summary."""
    try:
        text = Path(args.file).read_text()
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    # A RunReport is one (possibly pretty-printed) JSON document; a trace
    # is JSONL whose first record is the meta line.
    try:
        doc = json.loads(text)
    except json.JSONDecodeError:
        doc = None
    if isinstance(doc, dict) and doc.get("type") != "meta":
        try:
            report = RunReport.from_dict(doc)
        except ValueError as exc:
            print(f"error: not a RunReport: {exc}", file=sys.stderr)
            return 2
        print(render_run_report(report, markdown=args.markdown))
        return 0

    first_line = next((ln for ln in text.splitlines() if ln.strip()), "")
    try:
        first = json.loads(first_line)
    except json.JSONDecodeError:
        first = None
    if not (isinstance(first, dict) and first.get("type") == "meta"):
        print(f"error: {args.file} is neither a RunReport JSON nor a "
              "repro trace file", file=sys.stderr)
        return 2
    try:
        report, sim_traces = _report_from_jsonl(args.file)
    except (OSError, ValueError) as exc:
        print(f"error: not a repro trace file: {exc}", file=sys.stderr)
        return 2
    print(render_run_report(report, markdown=args.markdown))
    for trace in sim_traces:
        print()
        print(trace_summary(trace))
        print()
        print(stall_attribution_summary(trace, markdown=args.markdown))
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    """Diff two RunReports; exit 1 when an invariant metric drifted or a
    wall-time regressed beyond the threshold."""
    try:
        baseline = RunReport.load(args.baseline)
        new = RunReport.load(args.new)
    except (OSError, json.JSONDecodeError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.threshold < 0:
        print("error: --threshold must be >= 0", file=sys.stderr)
        return 2
    diff = compare_reports(baseline, new, threshold_pct=args.threshold)
    print(f"comparing {args.baseline} (baseline) vs {args.new}")
    print(render_report_diff(diff, markdown=args.markdown))
    return 0 if diff.ok else 1


def cmd_fuzz(args: argparse.Namespace) -> int:
    """Run the differential fault-injection fuzz matrix (chaos smoke)."""
    from .robust.fuzz import run_fuzz

    report = run_fuzz(
        seeds=args.seeds,
        base_seed=args.base_seed,
        time_budget_s=args.budget_s,
    )
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.summary())
    if not report.ok:
        print(
            f"error: {len(report.violations)} invariant violation(s)",
            file=sys.stderr,
        )
        return 1
    if args.min_cells and report.num_cells < args.min_cells:
        print(
            f"error: only {report.num_cells} cells ran, --min-cells "
            f"requires {args.min_cells}",
            file=sys.stderr,
        )
        return 1
    return 0


def _sweep_report(res, params, args) -> "RunReport":
    """A RunReport over the sweep's merged worker telemetry: every merged
    counter and per-span-name call count is invariant (so ``repro compare``
    between a ``--jobs 1`` and a ``--jobs N`` run of the same grid is the
    cross-process parity gate); wall-times land under timing keys, which
    comparisons threshold rather than pin."""
    from .obs.runreport import collect_provenance

    merge = res.telemetry
    metrics: dict[str, object] = dict(sorted(merge.counters.items()))
    metrics["cells"] = len(merge.cells)
    metrics["cells_ok"] = sum(1 for c in merge.cells if c.ok)
    metrics["failures"] = len(res.failures)
    phases: dict[str, float] = {}
    for name, durations in sorted(merge.span_durations().items()):
        metrics[f"span.{name}.count"] = len(durations)
        metrics[f"span.{name}.wall_s"] = sum(durations)
        phases[name] = sum(durations)
    return RunReport(
        name="sweep",
        metrics=metrics,
        phases=phases,
        provenance=collect_provenance(
            cells=len(params),
            jobs=args.jobs,
            faults=bool(args.faults),
            workers=len(merge.pids),
            trace_id=merge.cells[0].trace_id if merge.cells else None,
        ),
    )


def cmd_sweep(args: argparse.Namespace) -> int:
    """Crash-tolerant demo sweep: anticipatory vs per-block-local makespan
    over a windows×seeds grid, with checkpoint/resume.  ``--faults`` swaps
    in the guarded fault-injected cell; ``--spool-dir`` turns on the
    cross-process telemetry pipeline; ``--report`` writes the merged
    telemetry as a RunReport."""
    import tempfile

    from .robust.sweep import (
        SweepFailure,
        guarded_cell,
        run_sweep_robust,
        schedule_cell,
    )

    try:
        windows = [int(x) for x in args.windows.split(",") if x.strip()]
    except ValueError:
        windows = []
    if not windows or any(w < 1 for w in windows):
        print(
            f"error: malformed --windows {args.windows!r} "
            "(expected comma-separated positive ints)",
            file=sys.stderr,
        )
        return 2
    if args.resume and not args.checkpoint:
        print("error: --resume requires --checkpoint", file=sys.stderr)
        return 2
    if args.checkpoint and not args.resume:
        # A fresh sweep must not silently reuse a stale checkpoint.
        Path(args.checkpoint).unlink(missing_ok=True)

    params = [(w, s) for w in windows for s in range(args.seeds)]
    cell_fn = guarded_cell if args.faults else schedule_cell
    spool_dir = args.spool_dir
    tmp_spool = None
    if args.report and spool_dir is None:
        # --report needs merged telemetry even without a user spool dir.
        tmp_spool = tempfile.TemporaryDirectory(prefix="repro-spool-")
        spool_dir = tmp_spool.name
    try:
        res = run_sweep_robust(
            cell_fn,
            params,
            jobs=args.jobs,
            timeout_s=args.timeout_s,
            retries=args.retries,
            checkpoint=args.checkpoint,
            telemetry_dir=spool_dir,
        )
        rows = []
        if args.faults:
            for (w, s), value in zip(params, res.results):
                if isinstance(value, SweepFailure):
                    rows.append([w, s, "-", "-", "-", value.error_type])
                else:
                    _, _, makespan, source, plan = value
                    rows.append(
                        [w, s, makespan if makespan >= 0 else "-",
                         source, plan, "ok"]
                    )
            text = format_table(
                ["W", "seed", "makespan", "source", "fault plan", "status"],
                rows,
                title=f"guarded scheduling under fault injection "
                      f"({len(params)} cells)",
            )
        else:
            for (w, s), value in zip(params, res.results):
                if isinstance(value, SweepFailure):
                    rows.append([w, s, "-", "-", "-", value.error_type])
                else:
                    _, _, ant, local, stalls = value
                    rows.append([w, s, ant, local, stalls, "ok"])
            text = format_table(
                ["W", "seed", "anticipatory", "local", "stalls", "status"],
                rows,
                title=f"anticipatory vs per-block-local makespan "
                      f"({len(params)} cells)",
            )
        print(text)
        print(
            f"cells: {res.completed}/{len(params)} completed, "
            f"{res.resumed} resumed, {res.attempts} attempts, "
            f"{res.pool_restarts} pool restarts"
        )
        if res.telemetry is not None:
            print(
                f"telemetry: {len(res.telemetry.cells)} cell(s) spooled by "
                f"{len(res.telemetry.pids)} worker(s)"
            )
        if args.output:
            Path(args.output).write_text(text + "\n")
            print(f"wrote {args.output}")
        if args.report:
            path = _sweep_report(res, params, args).write(args.report)
            print(f"report: wrote {path}")
        if res.failures:
            for failure in res.failures:
                print(f"error: {failure}", file=sys.stderr)
            return 1
        return 0
    finally:
        if tmp_spool is not None:
            tmp_spool.cleanup()


def cmd_flame(args: argparse.Namespace) -> int:
    """Profile a scheduling workload with the sampling profiler and write a
    flamegraph HTML (plus optional collapsed stacks / overhead gate)."""
    from .obs.profiler import (
        collapsed_stacks,
        profile,
        profile_overhead,
        write_flamegraph,
    )

    machine = _machine(args)
    if args.file:
        trace = _load_trace(args.file)
        label = args.file
    else:
        # The E10 reference workload (benchmarks/bench_scaling.py): 4 blocks
        # of 20 instructions at W=4 — the size the <5% overhead gate uses.
        from .workloads.traces import random_trace

        trace = random_trace(
            4, 20, edge_probability=0.2, cross_probability=0.05,
            latencies=(0, 1, 2), seed=0,
        )
        label = "E10 workload (4x20, W=4)"

    def workload() -> None:
        for _ in range(args.repeat):
            orders = algorithm_lookahead(trace, machine).block_orders
            simulate_trace(trace, orders, machine)

    interval_s = args.interval_ms / 1000.0
    measure_overhead = args.overhead or args.max_overhead is not None
    overhead = None
    if measure_overhead:
        overhead, prof = profile_overhead(workload, interval_s=interval_s)
    else:
        _, prof = profile(workload, interval_s=interval_s)
    print(
        f"profiled {label}: {prof.sample_count} samples "
        f"({len(prof.samples)} stacks, mode {prof.mode}, "
        f"interval {args.interval_ms:g} ms)"
    )
    out = write_flamegraph(
        args.output, prof.samples, title=f"repro flame — {label}"
    )
    print(f"flamegraph: wrote {out}")
    if args.collapsed:
        Path(args.collapsed).write_text(collapsed_stacks(prof.samples))
        print(f"collapsed stacks: wrote {args.collapsed}")
    if overhead is not None:
        print(f"profiler overhead: {overhead * 100:.2f}%")
        if args.max_overhead is not None and overhead * 100 > args.max_overhead:
            print(
                f"error: overhead {overhead * 100:.2f}% exceeds "
                f"--max-overhead {args.max_overhead:g}%",
                file=sys.stderr,
            )
            return 1
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the scheduling daemon (see docs/SERVING.md)."""
    import asyncio

    from .serve.admission import AdmissionConfig
    from .serve.daemon import ScheduleServer
    from .serve.service import ScheduleService

    if args.socket is None and args.port is None:
        print("error: need --socket PATH and/or --port N", file=sys.stderr)
        return 2
    service = ScheduleService(
        jobs=args.jobs,
        cache_size=args.cache_size,
        cache_path=args.cache_path,
        spool_dir=args.spool_dir,
        timeout_s=args.timeout_s,
        retries=args.retries,
        guard_budget_s=args.guard_budget_s,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown_s=args.breaker_cooldown_s,
    )
    server = ScheduleServer(
        service,
        socket_path=args.socket,
        host=args.host,
        port=args.port,
        batch_max=args.batch_max,
        batch_window_s=args.batch_window_ms / 1000.0,
        access_log=args.access_log,
        admission=AdmissionConfig(
            queue_capacity=args.queue_capacity,
            inflight_limit=args.inflight_limit,
        ),
    )

    async def _run() -> None:
        await server.start()
        print(
            f"repro serve: listening on {', '.join(server.endpoints())} "
            f"(jobs={args.jobs}, cache={args.cache_size}"
            + (f", store={args.cache_path}" if args.cache_path else "")
            + ")",
            flush=True,
        )
        await server.serve_forever()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        pass
    stats = service.stats()
    cache = stats["cache"]
    admission = stats.get("admission") or {}
    print(
        f"repro serve: stopped after {stats['requests']} request(s) "
        f"({cache['hits']} cache hit(s), {cache['misses']} miss(es), "
        f"{stats['errors']} error(s), {admission.get('shed_total', 0)} "
        f"shed)"
    )
    return 0


def cmd_serve_chaos(args: argparse.Namespace) -> int:
    """Run the serve-tier chaos harness against a live daemon
    (see docs/RELIABILITY.md)."""
    from .serve.chaos import ChaosFailure, run_chaos

    try:
        report = run_chaos(
            requests=args.requests,
            burst=args.burst,
            queue_capacity=args.queue_capacity,
            jobs=args.jobs,
            seed=args.seed,
            report_path=args.report,
        )
    except ChaosFailure as exc:
        print(f"serve chaos FAILED: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        inv = report.metrics["invariants"]
        observed = report.provenance["observed"]
        print(
            "serve chaos OK: "
            f"{sum(inv.values())}/{len(inv)} invariants held "
            f"(shed {observed['shed_seen']}, "
            f"degraded {observed['degraded']}, "
            f"crash errors {observed['crash_errors']}, "
            f"{report.metrics['chaos_wall_s']:.2f}s)"
        )
    if args.report:
        print(f"report: wrote {args.report}")
    return 0


def cmd_metrics(args: argparse.Namespace) -> int:
    """Render a spool directory's merged telemetry in Prometheus text
    exposition format."""
    from .obs.expo import prometheus_text
    from .obs.pipeline import merge_spools

    if not Path(args.spool_dir).is_dir():
        print(f"error: {args.spool_dir} is not a directory", file=sys.stderr)
        return 2
    merge = merge_spools(args.spool_dir)
    labels = {"trace_id": merge.cells[0].trace_id} if merge.cells else None
    text = prometheus_text(
        merge.registry(), namespace=args.namespace, labels=labels
    )
    if args.output:
        Path(args.output).write_text(text)
        print(f"wrote {args.output}")
    else:
        sys.stdout.write(text)
    if not merge.cells:
        print("warning: no spooled cells found", file=sys.stderr)
    return 0


def _daemon_fetch(addr: str):
    """A zero-arg fetcher for ``repro top --connect ADDR`` — ADDR is either
    ``host:port`` (HTTP ``/debug/top``) or a unix socket path (``top`` op).
    """
    host, sep, port = addr.rpartition(":")
    if sep and port.isdigit() and "/" not in addr:
        from .serve.client import http_get

        def fetch() -> dict:
            status, body = http_get(host or "127.0.0.1", int(port), "/debug/top")
            if status != 200:
                raise ConnectionError(f"GET /debug/top -> {status}")
            return json.loads(body)

        return fetch

    from .serve.client import ScheduleClient

    def fetch() -> dict:
        with ScheduleClient(addr, connect_attempts=1) as client:
            return client.top()

    return fetch


def cmd_top(args: argparse.Namespace) -> int:
    """Live terminal view of a running sweep's spool directory, or — with
    ``--connect`` — of a running scheduling daemon."""
    from .obs.expo import watch_daemon, watch_spools

    if args.connect:
        try:
            watch_daemon(
                _daemon_fetch(args.connect),
                interval_s=args.interval_s,
                iterations=args.frames,
                label=args.connect,
            )
        except (ConnectionError, OSError) as exc:
            print(f"error: cannot reach daemon at {args.connect}: {exc}",
                  file=sys.stderr)
            return 2
        return 0
    if not args.spool_dir:
        print("error: need a spool directory or --connect ADDR",
              file=sys.stderr)
        return 2
    if not Path(args.spool_dir).is_dir():
        print(f"error: {args.spool_dir} is not a directory", file=sys.stderr)
        return 2
    watch_spools(
        args.spool_dir, interval_s=args.interval_s, iterations=args.frames
    )
    return 0


def cmd_dot(args: argparse.Namespace) -> int:
    if args.loop:
        blocks = parse_program(Path(args.file).read_text())
        if len(blocks) != 1:
            print("error: --loop needs a single-block program", file=sys.stderr)
            return 2
        text = loop_to_dot(build_loop_graph(blocks[0][1]))
    else:
        text = trace_to_dot(_load_trace(args.file))
    if args.output:
        Path(args.output).write_text(text + "\n")
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Anticipatory instruction scheduling (SPAA'96) toolkit",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {_package_version()}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("file", help="program in the repro textual format")
        p.add_argument("--machine", choices=sorted(MACHINES), default="paper")
        p.add_argument("--window", "-w", type=int, default=None,
                       help="override the machine's lookahead window size")
        p.add_argument(
            "--trace", metavar="FILE", default=None,
            help="record pipeline spans and cycle-level simulator events to "
                 "FILE (JSONL) plus a Chrome-trace .chrome.json sibling "
                 "(open in Perfetto); replay with 'repro trace FILE'",
        )

    p = sub.add_parser("schedule", help="schedule a trace and print block orders")
    common(p)
    p.add_argument(
        "--scheduler",
        choices=["anticipatory", "local", "critical-path", "source"],
        default="anticipatory",
    )
    p.add_argument("--simulate", action="store_true",
                   help="execute the result on the window simulator")
    p.set_defaults(func=cmd_schedule)

    p = sub.add_parser("ranks", help="print Rank-Algorithm ranks")
    p.add_argument(
        "--deadlines",
        metavar="NAME=INT[,NAME=INT...]",
        help="per-instruction deadline overrides (unknown names are an error)",
    )
    common(p)
    p.add_argument("--deadline", type=int, default=100)
    p.set_defaults(func=cmd_ranks)

    p = sub.add_parser("loop", help="schedule a single-block loop (§5.2)")
    common(p)
    p.add_argument("--iterations", "-n", type=int, default=8)
    p.set_defaults(func=cmd_loop)

    p = sub.add_parser("dot", help="emit Graphviz DOT for a program")
    common(p)
    p.add_argument("--loop", action="store_true",
                   help="derive and render the loop dependence graph")
    p.add_argument("--output", "-o", default=None)
    p.set_defaults(func=cmd_dot)

    p = sub.add_parser(
        "fuzz",
        help="differential fault-injection fuzz of the scheduler zoo "
             "(nonzero exit on invariant violations)",
    )
    p.add_argument("--seeds", type=int, default=8,
                   help="number of random traces to fuzz (default 8)")
    p.add_argument("--base-seed", type=int, default=0)
    p.add_argument("--budget-s", type=float, default=None, metavar="SEC",
                   help="stop starting new seeds after SEC seconds")
    p.add_argument("--min-cells", type=int, default=0, metavar="N",
                   help="fail (exit 1) unless at least N cells ran")
    p.add_argument("--json", action="store_true",
                   help="emit the full report as JSON")
    p.set_defaults(func=cmd_fuzz)

    p = sub.add_parser(
        "sweep",
        help="crash-tolerant demo sweep (anticipatory vs per-block-local "
             "makespan) with checkpoint/resume",
    )
    p.add_argument("--windows", default="2,3,4", metavar="W1,W2,...",
                   help="comma-separated lookahead window sizes (default 2,3,4)")
    p.add_argument("--seeds", type=int, default=8,
                   help="random-trace seeds per window (default 8)")
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes (default 1: in-process)")
    p.add_argument("--checkpoint", metavar="FILE", default=None,
                   help="JSONL checkpoint appended to as cells complete")
    p.add_argument("--resume", action="store_true",
                   help="reuse completed cells from --checkpoint instead of "
                        "starting fresh")
    p.add_argument("--timeout-s", type=float, default=None, metavar="SEC",
                   help="declare running cells hung when no cell completes "
                        "for SEC seconds (jobs > 1)")
    p.add_argument("--retries", type=int, default=1,
                   help="extra attempts per failed cell (default 1)")
    p.add_argument("--output", "-o", metavar="FILE", default=None,
                   help="also write the result table to FILE")
    p.add_argument("--faults", action="store_true",
                   help="run the fault-injected guarded cell instead of the "
                        "plain comparison cell (exercises guard.*/faults.* "
                        "telemetry)")
    p.add_argument("--spool-dir", metavar="DIR", default=None,
                   help="spool per-cell worker telemetry to DIR and merge it "
                        "at sweep end (watch live with 'repro top DIR')")
    p.add_argument("--report", metavar="FILE", default=None,
                   help="write the merged telemetry as a RunReport JSON "
                        "(counters and span counts invariant across --jobs)")
    p.set_defaults(func=cmd_sweep)

    p = sub.add_parser(
        "serve",
        help="run the scheduling daemon with the content-addressed "
             "schedule cache (see docs/SERVING.md)",
    )
    p.add_argument("--socket", metavar="PATH", default=None,
                   help="unix socket to listen on (JSONL protocol)")
    p.add_argument("--port", type=int, default=None, metavar="N",
                   help="TCP port for the HTTP transport (0 = ephemeral)")
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address for --port (default 127.0.0.1)")
    p.add_argument("--jobs", "-j", type=int, default=1,
                   help="worker processes per batch (default 1: in-process)")
    p.add_argument("--cache-size", type=int, default=1024, metavar="N",
                   help="max resident schedule-cache entries (LRU, "
                        "default 1024)")
    p.add_argument("--cache-path", metavar="FILE", default=None,
                   help="append-only JSONL schedule store; reloaded on "
                        "restart so the cache survives the daemon")
    p.add_argument("--spool-dir", metavar="DIR", default=None,
                   help="spool per-batch telemetry to DIR (inspect live "
                        "with 'repro top DIR' / 'repro metrics DIR')")
    p.add_argument("--batch-max", type=int, default=16, metavar="N",
                   help="max requests coalesced into one batch (default 16)")
    p.add_argument("--batch-window-ms", type=float, default=2.0,
                   metavar="MS",
                   help="coalescing window after the first request of a "
                        "batch (default 2 ms)")
    p.add_argument("--timeout-s", type=float, default=None, metavar="SEC",
                   help="declare a batch's running requests hung after no "
                        "completion for SEC seconds (jobs > 1)")
    p.add_argument("--retries", type=int, default=1,
                   help="extra attempts per request on worker crash or "
                        "timeout (default 1)")
    p.add_argument("--access-log", metavar="FILE", default=None,
                   help="append one structured JSON line per request "
                        "(trace_id, digest, hit/miss, duration, status)")
    p.add_argument("--queue-capacity", type=int, default=128, metavar="N",
                   help="admission queue bound; requests beyond it are shed "
                        "with a structured 'overloaded' error (default 128)")
    p.add_argument("--inflight-limit", type=int, default=256, metavar="N",
                   help="max requests in flight per transport before "
                        "shedding (default 256)")
    p.add_argument("--guard-budget-s", type=float, default=5.0, metavar="SEC",
                   help="per-request scheduling time budget; blowouts "
                        "return a verified legal fallback marked "
                        "'degraded' (default 5)")
    p.add_argument("--breaker-threshold", type=int, default=5, metavar="K",
                   help="consecutive failures before a scheduler class's "
                        "circuit breaker opens (default 5)")
    p.add_argument("--breaker-cooldown-s", type=float, default=30.0,
                   metavar="SEC",
                   help="open-breaker cooldown before the half-open probe "
                        "(default 30)")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "serve-chaos",
        help="fault-injection harness for the serving daemon: seeded "
             "worker crashes/hangs, slow schedulers, malformed frames, "
             "client disconnects and overload bursts against a live "
             "daemon, asserting every accepted request gets exactly one "
             "structured response (see docs/RELIABILITY.md)",
    )
    p.add_argument("--requests", type=int, default=36, metavar="N",
                   help="chaotic pipelined requests (default 36)")
    p.add_argument("--burst", type=int, default=48, metavar="N",
                   help="concurrent overload-burst requests (default 48)")
    p.add_argument("--queue-capacity", type=int, default=8, metavar="N",
                   help="admission queue capacity under test (default 8)")
    p.add_argument("--jobs", type=int, default=2,
                   help="service worker processes (default 2; crash/hang "
                        "chaos needs >= 2)")
    p.add_argument("--seed", type=int, default=0,
                   help="fault-plan seed (default 0)")
    p.add_argument("--report", metavar="FILE", default=None,
                   help="write the invariant RunReport JSON to FILE")
    p.add_argument("--json", action="store_true",
                   help="print the RunReport to stdout")
    p.set_defaults(func=cmd_serve_chaos)

    p = sub.add_parser(
        "flame",
        help="profile a scheduling workload with the sampling profiler and "
             "write a flamegraph HTML",
    )
    p.add_argument("file", nargs="?", default=None,
                   help="program to profile (default: the E10 scaling "
                        "workload, 4 blocks x 20 instructions)")
    p.add_argument("--machine", choices=sorted(MACHINES), default="paper")
    p.add_argument("--window", "-w", type=int, default=None,
                   help="override the machine's lookahead window size")
    p.add_argument("--repeat", type=int, default=20,
                   help="schedule+simulate iterations to profile (default 20)")
    p.add_argument("--interval-ms", type=float, default=5.0, metavar="MS",
                   help="sampling interval in milliseconds (default 5)")
    p.add_argument("--output", "-o", metavar="FILE", default="flame.html",
                   help="flamegraph HTML path (default flame.html)")
    p.add_argument("--collapsed", metavar="FILE", default=None,
                   help="also write Brendan-Gregg collapsed stacks to FILE")
    p.add_argument("--overhead", action="store_true",
                   help="also measure profiler overhead (bare vs profiled "
                        "wall-clock)")
    p.add_argument("--max-overhead", type=float, default=None, metavar="PCT",
                   help="exit 1 if measured overhead exceeds PCT percent "
                        "(implies --overhead)")
    p.set_defaults(func=cmd_flame)

    p = sub.add_parser(
        "metrics",
        help="render a spool directory's merged telemetry in Prometheus "
             "text exposition format",
    )
    p.add_argument("spool_dir", help="spool directory of a telemetry sweep")
    p.add_argument("--namespace", default="repro",
                   help="metric name prefix (default 'repro')")
    p.add_argument("--output", "-o", metavar="FILE", default=None,
                   help="write the exposition to FILE instead of stdout")
    p.set_defaults(func=cmd_metrics)

    p = sub.add_parser(
        "top",
        help="live terminal view of a running sweep's spool directory "
             "(per-phase rates, latency percentiles, guard/fault counters) "
             "or, with --connect, of a running scheduling daemon",
    )
    p.add_argument("spool_dir", nargs="?", default=None,
                   help="spool directory being written by a sweep")
    p.add_argument("--connect", metavar="ADDR", default=None,
                   help="watch a running daemon instead: host:port (HTTP "
                        "/debug/top) or a unix socket path")
    p.add_argument("--interval", dest="interval_s", type=float, default=1.0,
                   metavar="SEC", help="refresh interval (default 1s)")
    p.add_argument("--frames", type=int, default=None, metavar="N",
                   help="render N frames then exit (default: until Ctrl-C)")
    p.set_defaults(func=cmd_top)

    p = sub.add_parser(
        "trace",
        help="replay a recorded JSONL trace as a per-cycle timeline",
    )
    p.add_argument("file", help="JSONL trace written by --trace")
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser(
        "report",
        help="render a RunReport JSON (or a recorded JSONL trace) as a "
             "metrics/stall-attribution summary",
    )
    p.add_argument("file", help="RunReport .json or JSONL trace written by --trace")
    p.add_argument("--markdown", action="store_true",
                   help="emit GitHub-flavoured-markdown tables")
    p.set_defaults(func=cmd_report)

    p = sub.add_parser(
        "compare",
        help="diff two RunReports; nonzero exit on metric drift or "
             "wall-time regression",
    )
    p.add_argument("baseline", help="baseline RunReport JSON")
    p.add_argument("new", help="new RunReport JSON")
    p.add_argument("--threshold", type=float, default=25.0, metavar="PCT",
                   help="allowed wall-time increase in percent (default 25); "
                        "all other metrics must match exactly")
    p.add_argument("--markdown", action="store_true",
                   help="emit GitHub-flavoured-markdown tables")
    p.set_defaults(func=cmd_compare)
    return parser


def _package_version() -> str:
    """The installed package version, falling back to the source tree's."""
    try:
        from importlib.metadata import version

        return version("repro")
    except Exception:  # pragma: no cover - not installed
        return __version__


def _run_traced(args: argparse.Namespace) -> int:
    """Run a subcommand under a recorder and export both trace formats."""
    with recording(TraceRecorder()) as rec:
        code = args.func(args)
    jsonl = write_jsonl(args.trace, rec)
    chrome = write_chrome_trace(chrome_trace_path(jsonl), rec)
    sim_events = sum(len(t.events) for t in rec.sim_traces)
    print(f"trace: wrote {jsonl} and {chrome} "
          f"({len(rec.spans)} spans, {sim_events} simulator events)")
    return code


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if getattr(args, "trace", None) and args.func is not cmd_trace:
            return _run_traced(args)
        return args.func(args)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ParseError as exc:
        print(f"parse error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Output piped into a pager that exited early (e.g. `| head`).
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
