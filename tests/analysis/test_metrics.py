"""Unit tests for analysis metrics."""

import pytest

from repro.analysis import (
    gap_recovered,
    geometric_mean,
    idle_stats,
    overlap_cycles,
    speedup,
    utilization,
)
from repro.core import Schedule, algorithm_lookahead
from repro.ir import graph_from_edges
from repro.machine import paper_machine
from repro.sim import simulate_trace
from repro.workloads import figure2_trace, random_trace


class TestScalarMetrics:
    def test_speedup(self):
        assert speedup(10, 5) == 2.0
        with pytest.raises(ValueError):
            speedup(10, 0)

    def test_gap_recovered(self):
        assert gap_recovered(local=13, anticipatory=11, global_bound=11) == 1.0
        assert gap_recovered(local=13, anticipatory=12, global_bound=11) == 0.5
        assert gap_recovered(local=13, anticipatory=13, global_bound=11) == 0.0
        assert gap_recovered(local=10, anticipatory=10, global_bound=10) == 1.0

    def test_geometric_mean(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1.0, -1.0])

    def test_error_messages_name_the_offending_value(self):
        with pytest.raises(ValueError, match=r"got 0"):
            speedup(10, 0)
        with pytest.raises(ValueError, match=r"got -1\.0 at index 1"):
            geometric_mean([1.0, -1.0, 2.0])


class TestScheduleMetrics:
    def test_idle_stats(self):
        g = graph_from_edges([], nodes=["a", "b"])
        s = Schedule(g, {"a": 0, "b": 3})
        st = idle_stats(s)
        assert st.count == 2
        assert st.first == 1 and st.last == 2

    def test_idle_stats_packed(self):
        g = graph_from_edges([], nodes=["a", "b"])
        s = Schedule(g, {"a": 0, "b": 1})
        st = idle_stats(s)
        assert st.count == 0 and st.first is None

    def test_utilization(self):
        g = graph_from_edges([], nodes=["a", "b"])
        s = Schedule(g, {"a": 0, "b": 3})
        assert utilization(s) == pytest.approx(2 / 4)

    def test_overlap_cycles_on_figure2(self):
        t = figure2_trace(with_cross_edge=False)
        m = paper_machine(2)
        res = algorithm_lookahead(t, m)
        sim = simulate_trace(t, res.block_orders, m)
        # z fills BB1's idle slot: at least the trailing BB1 instruction(s)
        # issue after a BB2 instruction.
        assert overlap_cycles(t, sim.schedule) >= 1

    def test_no_overlap_with_window_1(self):
        t = figure2_trace(with_cross_edge=False)
        m = paper_machine(1)
        orders = [list(t.block_nodes(i)) for i in range(2)]
        sim = simulate_trace(t, orders, m)
        assert overlap_cycles(t, sim.schedule) == 0

    def test_idle_stats_to_dict(self):
        g = graph_from_edges([], nodes=["a", "b"])
        st = idle_stats(Schedule(g, {"a": 0, "b": 3}))
        d = st.to_dict()
        assert d["count"] == 2 and d["first"] == 1 and d["last"] == 2
        assert d["mean_position"] == pytest.approx(st.mean_position)

    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("window", [2, 4])
    def test_overlap_cycles_matches_quadratic_reference(self, seed, window):
        # The O(n) running-max implementation must agree with the direct
        # quadratic definition: an issue "overlaps" when any earlier-issued
        # instruction comes from a later block.
        def quadratic(trace, schedule):
            perm = schedule.permutation()
            count = 0
            for i, node in enumerate(perm):
                b = trace.block_index(node)
                if any(trace.block_index(e) > b for e in perm[:i]):
                    count += 1
            return count

        m = paper_machine(window)
        t = random_trace(
            4, (4, 7), edge_probability=0.3, cross_probability=0.08,
            latencies=(0, 1, 2, 4), seed=seed,
        )
        sim = simulate_trace(t, algorithm_lookahead(t, m).block_orders, m)
        assert overlap_cycles(t, sim.schedule) == quadratic(t, sim.schedule)
