"""Unit tests for the operand-level program generator."""

import pytest

from repro.core import algorithm_lookahead
from repro.ir import build_trace, minimum_registers, rename_registers
from repro.machine import paper_machine
from repro.sim import simulate_trace
from repro.workloads import random_program, random_program_trace


class TestGeneration:
    def test_shape(self):
        program = random_program(3, 6, seed=0)
        assert len(program) == 3
        assert all(len(instrs) == 6 for _, instrs in program)

    def test_unique_names(self):
        program = random_program(4, 8, seed=1)
        names = [i.name for _, instrs in program for i in instrs]
        assert len(names) == len(set(names))

    def test_deterministic(self):
        a = random_program(3, 6, seed=5)
        b = random_program(3, 6, seed=5)
        assert [
            (i.name, i.opcode, i.reads, i.writes) for _, x in a for i in x
        ] == [(i.name, i.opcode, i.reads, i.writes) for _, x in b for i in x]

    def test_reads_reference_defined_or_livein(self):
        program = random_program(3, 10, seed=2)
        defined = {f"in{i}" for i in range(4)}
        for _, instrs in program:
            for inst in instrs:
                for r in inst.reads:
                    assert r in defined, f"{inst.name} reads undefined {r}"
                defined.update(inst.writes)

    def test_validation(self):
        with pytest.raises(ValueError):
            random_program(0, 5)


class TestEndToEnd:
    def test_trace_builds_and_schedules(self):
        trace = random_program_trace(3, 7, seed=3)
        m = paper_machine(4)
        res = algorithm_lookahead(trace, m)
        sim = simulate_trace(trace, res.block_orders, m)
        sim.schedule.validate()

    def test_programs_are_ssa_like(self):
        """Every generated value is written exactly once, so renaming is a
        no-op on the dependence structure."""
        program = random_program(2, 8, seed=4)
        flat = [i for _, instrs in program for i in instrs]
        renamed = rename_registers(flat)
        g0 = build_trace(program).graph
        g1 = build_trace(
            [("B0", renamed[:8]), ("B1", renamed[8:])]
        ).graph
        assert g0.num_edges() == g1.num_edges()

    def test_minimum_registers_reasonable(self):
        program = random_program(2, 8, seed=6)
        flat = [i for _, instrs in program for i in instrs]
        k = minimum_registers(flat, [i.name for i in flat])
        assert 1 <= k <= len(flat) + 4
