"""Tests for the content-addressed schedule cache: LRU bounds, counters,
and crash-tolerant JSONL persistence."""

import json

from repro.obs.metrics import MetricsRegistry
from repro.obs.recorder import TraceRecorder, recording
from repro.serve.cache import ScheduleCache

E1 = {"makespan": 3}
E2 = {"makespan": 5}
E3 = {"makespan": 7}


class TestLRU:
    def test_miss_then_hit(self):
        cache = ScheduleCache(capacity=4)
        assert cache.get("d1") is None
        cache.put("d1", E1)
        assert cache.get("d1") == E1
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1

    def test_eviction_order_is_least_recently_used(self):
        cache = ScheduleCache(capacity=2)
        cache.put("a", E1)
        cache.put("b", E2)
        cache.get("a")  # refresh a; b is now LRU
        cache.put("c", E3)
        assert "a" in cache and "c" in cache and "b" not in cache
        assert cache.evictions == 1

    def test_put_refreshes_existing(self):
        cache = ScheduleCache(capacity=2)
        cache.put("a", E1)
        cache.put("b", E2)
        cache.put("a", E3)  # refresh, not insert
        cache.put("c", E1)
        assert "a" in cache and "b" not in cache

    def test_note_hit_counts_without_lookup(self):
        cache = ScheduleCache(capacity=2)
        cache.note_hit()
        assert cache.hits == 1

    def test_capacity_validated(self):
        try:
            ScheduleCache(capacity=0)
        except ValueError:
            pass
        else:
            raise AssertionError("capacity=0 accepted")


class TestCounters:
    def test_registry_mirrors_hit_miss_evict(self):
        reg = MetricsRegistry()
        cache = ScheduleCache(capacity=1, registry=reg)
        cache.get("x")
        cache.put("x", E1)
        cache.get("x")
        cache.put("y", E2)  # evicts x
        assert reg.counter("serve.cache.hit").value == 1
        assert reg.counter("serve.cache.miss").value == 1
        assert reg.counter("serve.cache.evict").value == 1

    def test_active_recorder_sees_counts(self):
        cache = ScheduleCache(capacity=4)
        with recording(TraceRecorder()) as rec:
            cache.get("x")
            cache.put("x", E1)
            cache.get("x")
        assert rec.counters["serve.cache.miss"] == 1
        assert rec.counters["serve.cache.hit"] == 1


class TestPersistence:
    def test_roundtrip_across_restart(self, tmp_path):
        path = tmp_path / "store.jsonl"
        cache = ScheduleCache(capacity=8, path=path)
        cache.put("a", E1)
        cache.put("b", E2)
        reborn = ScheduleCache(capacity=8, path=path)
        assert reborn.get("a") == E1
        assert reborn.get("b") == E2

    def test_last_write_wins(self, tmp_path):
        path = tmp_path / "store.jsonl"
        with path.open("w") as fh:
            fh.write(json.dumps({"digest": "a", "entry": {"v": 1}}) + "\n")
            fh.write(json.dumps({"digest": "a", "entry": {"v": 2}}) + "\n")
        cache = ScheduleCache(capacity=8, path=path)
        assert cache.peek("a") == {"v": 2}

    def test_torn_final_line_is_skipped(self, tmp_path):
        path = tmp_path / "store.jsonl"
        with path.open("w") as fh:
            fh.write(json.dumps({"digest": "a", "entry": E1}) + "\n")
            fh.write('{"digest": "b", "entry": {"mak')  # daemon died here
        cache = ScheduleCache(capacity=8, path=path)
        assert cache.peek("a") == E1
        assert "b" not in cache
        assert len(cache) == 1

    def test_garbage_lines_are_skipped(self, tmp_path):
        path = tmp_path / "store.jsonl"
        path.write_text(
            "not json\n"
            + json.dumps({"digest": 5, "entry": E1})  # bad digest type
            + "\n"
            + json.dumps({"digest": "ok", "entry": E2})
            + "\n"
        )
        cache = ScheduleCache(capacity=8, path=path)
        assert len(cache) == 1 and cache.peek("ok") == E2

    def test_load_respects_capacity_keeping_most_recent(self, tmp_path):
        path = tmp_path / "store.jsonl"
        with path.open("w") as fh:
            for i in range(5):
                fh.write(
                    json.dumps({"digest": f"d{i}", "entry": {"i": i}}) + "\n"
                )
        cache = ScheduleCache(capacity=2, path=path)
        assert len(cache) == 2
        assert cache.peek("d3") and cache.peek("d4")

    def test_refreshing_known_digest_does_not_reappend(self, tmp_path):
        path = tmp_path / "store.jsonl"
        cache = ScheduleCache(capacity=8, path=path)
        cache.put("a", E1)
        cache.put("a", E1)
        assert len(path.read_text().splitlines()) == 1


class TestHitRatio:
    def test_none_before_any_lookup(self):
        assert ScheduleCache(capacity=2).hit_ratio is None

    def test_ratio_and_stats_key(self):
        cache = ScheduleCache(capacity=2)
        cache.get("a")          # miss
        cache.put("a", E1)
        cache.get("a")          # hit
        assert cache.hit_ratio == 0.5
        assert cache.stats()["hit_ratio"] == 0.5


class TestCompaction:
    def test_compact_rewrites_to_live_entries_only(self, tmp_path):
        path = tmp_path / "store.jsonl"
        cache = ScheduleCache(capacity=2, path=path, compact_ratio=100.0)
        for i in range(8):
            cache.put(f"d{i}", {"makespan": i})
        assert cache.store_lines == 8 and len(cache) == 2
        dropped = cache.compact()
        assert dropped == 6
        assert cache.store_lines == 2 and cache.compactions == 1
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert [r["digest"] for r in lines] == ["d6", "d7"]

    def test_append_triggers_compaction_at_ratio(self, tmp_path):
        path = tmp_path / "store.jsonl"
        cache = ScheduleCache(capacity=2, path=path, compact_ratio=2.0)
        # Dead lines bound: store never exceeds (1 + ratio) * live for long.
        for i in range(50):
            cache.put(f"d{i}", {"makespan": i})
        assert cache.compactions >= 1
        # The trigger measures against the pre-eviction live set, so the
        # dead-line bound is ratio * (live + 1) + 1.
        assert cache.store_lines - len(cache) <= 2.0 * (len(cache) + 1) + 1

    def test_load_compacts_garbage_heavy_store(self, tmp_path):
        path = tmp_path / "store.jsonl"
        writer = ScheduleCache(capacity=2, path=path, compact_ratio=1000.0)
        for i in range(40):
            writer.put(f"d{i}", {"makespan": i})
        assert writer.store_lines == 40
        # A fresh process with a normal ratio compacts on load.
        cache = ScheduleCache(capacity=2, path=path, compact_ratio=2.0)
        assert cache.compactions == 1
        assert cache.store_lines == 2
        assert "d38" in cache and "d39" in cache

    def test_compaction_is_atomic_no_tmp_left_behind(self, tmp_path):
        path = tmp_path / "store.jsonl"
        cache = ScheduleCache(capacity=1, path=path, compact_ratio=100.0)
        for i in range(5):
            cache.put(f"d{i}", {"makespan": i})
        cache.compact()
        assert not (tmp_path / "store.jsonl.tmp").exists()
        reloaded = ScheduleCache(capacity=4, path=path)
        assert len(reloaded) == 1 and "d4" in reloaded

    def test_compact_without_path_is_noop(self):
        cache = ScheduleCache(capacity=4)
        assert cache.compact() == 0
        assert cache.compactions == 0

    def test_stats_carries_store_lines_and_compactions(self, tmp_path):
        path = tmp_path / "store.jsonl"
        cache = ScheduleCache(capacity=4, path=path)
        cache.put("a", E1)
        stats = cache.stats()
        assert stats["store_lines"] == 1 and stats["compactions"] == 0

    def test_compact_ratio_validated(self, tmp_path):
        try:
            ScheduleCache(capacity=4, compact_ratio=0.5)
        except ValueError:
            pass
        else:
            raise AssertionError("compact_ratio=0.5 accepted")
