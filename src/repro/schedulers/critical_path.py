"""Gibbons-Muchnick-style pipeline list scheduler (paper §6, ref. [8]).

Gibbons & Muchnick schedule a basic block for a pipelined machine with an
O(n²) greedy that, at each cycle, picks among the ready instructions using a
cascade of tie-breakers: (1) does the instruction interlock with (delay) its
successors — prefer those, to pay latencies early; (2) longest path to a
leaf; (3) number of immediate successors ("uncovering" power).  We implement
the cascade as a dynamic greedy (priorities consulted cycle by cycle, not as
a fixed list) to stay close to their formulation.
"""

from __future__ import annotations

from ..ir.depgraph import DependenceGraph
from ..machine.model import MachineModel, single_unit_machine
from ..core.schedule import Schedule, Unit


def gibbons_muchnick_schedule(
    graph: DependenceGraph, machine: MachineModel | None = None
) -> Schedule:
    """Cycle-driven greedy with the Gibbons-Muchnick tie-break cascade."""
    machine = machine or single_unit_machine()
    if not machine.can_execute(graph):
        raise ValueError("machine lacks a functional unit for some instruction")
    dist = graph.path_length_to_sinks()
    index = {n: i for i, n in enumerate(graph.nodes)}
    max_out_latency = {
        n: max((lat for lat in graph.successors(n).values()), default=0)
        for n in graph.nodes
    }

    npred = {n: len(graph.predecessors(n)) for n in graph.nodes}
    est = {n: 0 for n in graph.nodes}
    starts: dict[str, int] = {}
    units: dict[str, Unit] = {}
    unit_free_at: dict[Unit, int] = {u: 0 for u in machine.unit_names()}
    width = machine.issue_width or machine.total_units

    time = 0
    remaining = len(graph)
    while remaining > 0:
        ready = [
            n
            for n in graph.nodes
            if n not in starts and npred[n] == 0 and est[n] <= time
        ]
        # Tie-break cascade: interlocking successors > critical path >
        # uncovering > program order.
        ready.sort(
            key=lambda n: (
                -max_out_latency[n],
                -dist[n],
                -len(graph.successors(n)),
                index[n],
            )
        )
        issued = 0
        for n in ready:
            unit = next(
                (
                    u
                    for u in machine.units_for(graph.fu_class(n))
                    if unit_free_at[u] <= time
                ),
                None,
            )
            if unit is None:
                continue
            starts[n] = time
            units[n] = unit
            completion = time + graph.exec_time(n)
            unit_free_at[unit] = completion
            remaining -= 1
            for s, lat in graph.successors(n).items():
                npred[s] -= 1
                est[s] = max(est[s], completion + lat)
            issued += 1
            if issued >= width:
                break
        if remaining == 0:
            break
        if any(
            n not in starts and npred[n] == 0 and est[n] <= time
            for n in graph.nodes
        ):
            time += 1
            continue
        events = [
            est[n] for n in graph.nodes if n not in starts and npred[n] == 0
        ]
        events += [t for t in unit_free_at.values() if t > time]
        future = [t for t in events if t > time]
        if not future:  # pragma: no cover - defensive
            raise RuntimeError("scheduling stalled")
        time = min(future)
    return Schedule(graph, starts, units)


def gibbons_muchnick_order(
    graph: DependenceGraph, machine: MachineModel | None = None
) -> list[str]:
    return gibbons_muchnick_schedule(graph, machine).permutation()
